// Fixture: the same ABBA shape as bad_cycle.cc, but the reversed
// acquisition carries a waiver — the lint must stay silent.
#include "util/sync.h"

namespace fixture {

struct Registry {
  corona::Mutex names;
  corona::Mutex values;
  int entries = 0;
};

inline void bind(Registry& r) {
  corona::MutexLock n(r.names);
  corona::MutexLock v(r.values);
  ++r.entries;
}

inline void unbind(Registry& r) {
  corona::MutexLock v(r.values);
  // Fixture-only justification: pretend a trylock protocol makes this
  // reversal safe.  lint: lock-order-ok
  corona::MutexLock n(r.names);
  --r.entries;
}

}  // namespace fixture
