// Fixture: classic ABBA deadlock — transfer() nests debit under credit,
// audit() nests credit under debit.  The lint must report the cycle.
#include "util/sync.h"

namespace fixture {

struct Ledger {
  corona::Mutex credit;
  corona::Mutex debit;
  int balance = 0;
};

inline void transfer(Ledger& l) {
  corona::MutexLock a(l.credit);
  corona::MutexLock b(l.debit);
  ++l.balance;
}

inline void audit(Ledger& l) {
  corona::MutexLock b(l.debit);
  corona::MutexLock a(l.credit);
  --l.balance;
}

}  // namespace fixture
