// Fixture: two locks always taken in the same order — one edge, no cycle.
#include "util/sync.h"

namespace fixture {

struct Pipeline {
  corona::Mutex intake;
  corona::Mutex outflow;
  int queued = 0;
};

inline void push(Pipeline& p) {
  corona::MutexLock a(p.intake);
  corona::MutexLock b(p.outflow);
  ++p.queued;
}

inline void drain(Pipeline& p) {
  corona::MutexLock a(p.intake);
  corona::MutexLock b(p.outflow);
  --p.queued;
}

}  // namespace fixture
