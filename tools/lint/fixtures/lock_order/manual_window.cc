// Fixture: the worker-loop callback window — the first lock is manually
// released before the second is taken, so NO edge may be recorded.
#include "util/sync.h"

namespace fixture {

struct Mailbox {
  corona::Mutex box_mu;
  corona::Mutex log_mu;
  int flushed = 0;
};

inline void flush(Mailbox& m) {
  corona::MutexLock hold(m.box_mu);
  ++m.flushed;
  hold.unlock();
  {
    corona::MutexLock log(m.log_mu);
    ++m.flushed;
  }
  hold.lock();
  ++m.flushed;
}

}  // namespace fixture
