// Fixture: CORONA_REQUIRES marks a lock held on entry; acquiring another
// lock inside the body records an edge from the required lock.
#include "util/sync.h"

namespace fixture {

struct Cache {
  corona::Mutex map_mu;
  corona::Mutex stats_mu;
  int hits CORONA_GUARDED_BY(stats_mu) = 0;

  void bump_hits() CORONA_REQUIRES(map_mu) {
    corona::MutexLock s(stats_mu);
    ++hits;
  }
};

}  // namespace fixture
