// Fixture: full dispatch coverage of FixtureMsg — contributes nothing.
#include "../serial/fixture_msg.h"

namespace fixture {
// lint-dispatch: FixtureMsg
int dispatch_all(FixtureMsg m) {
  switch (m) {
    case FixtureMsg::kAlpha: return 1;
    case FixtureMsg::kBravo: return 2;
    case FixtureMsg::kCharlie: return 3;
  }
  return 0;
}
}  // namespace fixture
