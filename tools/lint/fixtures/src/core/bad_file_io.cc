// Fixture: raw file I/O in protocol code — durable bytes must go through
// the storage/disk/ backend.  The fopen, the ofstream, and the open(2) are
// flagged; the waived diagnostic read on the last line is not.
#include <cstdio>
#include <fstream>

namespace fixture {

void persist_state(const char* path) {
  FILE* f = fopen(path, "wb");
  if (f) fclose(f);
  std::ofstream out(path);
  int fd = ::open(path, 0);
  (void)fd;
}

void read_config(const char* path) {
  std::ifstream in(path);  // startup-only config read; lint: file-io-ok
}

}  // namespace fixture
