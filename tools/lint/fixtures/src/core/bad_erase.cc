// Fixture: erasing from the container that drives a range-for — iterator
// invalidation that often *passes* tests.  Two bad loops; the erase+break
// idiom is waived and the post-loop erase is clean.
#include <map>

namespace fixture {

void prune(std::map<int, int>& m) {
  for (auto& [k, v] : m) {
    if (v == 0) {
      (void)k;
      m.erase(k);
    }
  }
}

void drop_all(std::map<int, int>& m) {
  for (auto& [k, v] : m) m.erase(k);
}

void drop_first_negative(std::map<int, int>& m) {
  for (auto& [k, v] : m) {
    if (v < 0) {
      m.erase(k);  // exits the loop immediately; lint: erase-ok
      break;
    }
  }
  m.erase(0);  // after the loop: clean
}

}  // namespace fixture
