// Fixture: a dispatch surface that misses kCharlie, carries a stale
// waiver for kBravo (it IS referenced below) and waives a token that is
// not an enumerator at all.
#include "../serial/fixture_msg.h"

namespace fixture {
// lint-dispatch: FixtureMsg
// dispatch-ignore: kBravo -- stale: handled below after a refactor
// dispatch-ignore: kZulu -- no such enumerator
int dispatch(FixtureMsg m) {
  switch (m) {
    case FixtureMsg::kAlpha: return 1;
    case FixtureMsg::kBravo: return 2;
    default: return 0;
  }
}
}  // namespace fixture
