// Fixture: a pervasive, justified exception — the lint-file waiver must
// silence every hit of the named rule in the whole file.
// lint-file: clock-ok — models a profiling shim that reads the steady
// clock everywhere by design.
#include <chrono>

namespace fixture {

long t0() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long t1() { return std::chrono::system_clock::now().time_since_epoch().count(); }

}  // namespace fixture
