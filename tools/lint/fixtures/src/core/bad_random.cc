// Fixture: unseeded/global randomness in protocol code; all randomness
// must flow through the explicitly seeded corona::Rng.  Both flagged.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() { return rand() % 6; }

std::mt19937 global_gen;

}  // namespace fixture
