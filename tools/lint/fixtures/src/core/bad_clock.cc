// Fixture: wall-clock reads in protocol code — sim-visible code must use
// the injected Runtime clock; both reads flagged.
#include <chrono>
#include <ctime>

namespace fixture {

long now_pair() {
  long a = std::chrono::steady_clock::now().time_since_epoch().count();
  struct timespec ts;
  clock_gettime(0, &ts);
  return a + ts.tv_sec;
}

}  // namespace fixture
