// Fixture: partial dispatch with every gap explicitly waived — clean.
#include "../serial/fixture_msg.h"

namespace fixture {
// lint-dispatch: FixtureMsg
// dispatch-ignore: kBravo kCharlie -- forwarded upstream, never seen here
int dispatch_some(FixtureMsg m) {
  return m == FixtureMsg::kAlpha ? 1 : 0;
}
}  // namespace fixture
