// Fixture: storage/disk/ is the sanctioned home of raw file I/O — the
// raw-file-io rule must stay silent here without any waiver.
#include <cstdio>
#include <fstream>

namespace fixture {

void backend_write(const char* path) {
  FILE* f = fopen(path, "wb");
  if (f) fclose(f);
  int fd = ::open(path, 0);
  (void)fd;
  std::ofstream out(path);
}

}  // namespace fixture
