// Fixture: raw std locking primitives.  src/runtime/ is exempt from
// raw-thread (spawning threads is its job) but NOT from raw-mutex: locking
// must go through the annotated corona wrappers even here, or the clang
// thread-safety build and lock_order.py are blind to it.
#include <condition_variable>
#include <mutex>

namespace fixture {

std::mutex g_mu;                                            // line 10: flagged
std::condition_variable g_cv;                               // line 11: flagged

void touch() {
  std::lock_guard<std::mutex> hold(g_mu);                   // line 14: flagged
}

void wait_once() {
  std::unique_lock<std::mutex> hold(g_mu);                  // line 18: flagged
  g_cv.wait(hold);                                          // line 19: clean (no std:: spelling)
}

void bridge() {
  // Interop with a foreign library that hands us a std::unique_lock; the
  // waiver must silence the rule.
  std::unique_lock<std::mutex> hold(g_mu);  // lint: raw-mutex-ok
}

}  // namespace fixture
