// Fixture: the one place real clocks and threads are the job.  Everything
// here must lint clean without waivers — note locking still goes through
// the annotated corona wrappers (raw-mutex applies even here).
#include <chrono>
#include <thread>

#include "util/sync.h"

namespace fixture {

corona::Mutex g_mu;  // allowed: the annotated wrapper, not std::mutex

long run() {
  std::thread t([] {});  // allowed: src/runtime/ owns concurrency
  t.join();
  corona::MutexLock lock(g_mu);
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
