// Fixture: the one place real clocks and threads are the job.  Everything
// here must lint clean without waivers.
#include <chrono>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex g_mu;  // allowed: src/runtime/ owns concurrency

long run() {
  std::thread t([] {});  // allowed
  t.join();
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
