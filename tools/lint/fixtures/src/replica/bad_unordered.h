// Fixture: unordered container declared in a replica header; the paired
// source iterates it.
#pragma once

#include <string>
#include <unordered_map>

namespace fixture {

class Registry {
 public:
  int total() const;

 private:
  std::unordered_map<int, std::string> entries_;            // line 15: flagged
};

}  // namespace fixture
