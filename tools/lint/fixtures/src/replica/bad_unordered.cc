// Fixture: iteration over the unordered member declared in the paired
// header — the cross-file case the two-pass collection exists for.
#include "bad_unordered.h"

namespace fixture {

int Registry::total() const {
  int n = 0;
  for (const auto& [k, v] : entries_) {                     // line 9: flagged
    n += k + static_cast<int>(v.size());
  }
  return n;
}

}  // namespace fixture
