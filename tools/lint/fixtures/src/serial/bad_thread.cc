// Fixture: raw threading primitives outside src/runtime/.
#include <mutex>
#include <thread>

namespace fixture {

std::mutex g_mu;                                            // line 7: flagged

void spin() {
  std::thread t([] {});                                     // line 10: flagged
  t.join();
}

}  // namespace fixture
