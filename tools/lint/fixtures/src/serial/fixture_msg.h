// Fixture enum for the dispatch-exhaustiveness fixtures.  Lives under
// serial/ to mirror where the real wire enums are defined.
#pragma once

enum class FixtureMsg : unsigned char {
  kAlpha = 0,
  kBravo = 1,
  kCharlie = 2,
};
