// Fixture: what src/net/ still must NOT do — unordered containers (route
// tables get iterated; order must be deterministic) and unseeded
// randomness (reconnect backoff must be reproducible).
#include <cstdlib>
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> routes_;                       // line 9: flagged

int jittered_backoff(int base) {
  return base + rand() % base;                              // line 12: flagged
}

int sum_routes() {
  int n = 0;
  for (const auto& [id, fd] : routes_) {                    // line 17: flagged
    n += id + fd;
  }
  return n;
}

}  // namespace fixture
