// Fixture: src/net/ is a real transport — wall clocks and threading
// primitives are its job (like the thread runtime) and must lint clean
// without waivers.  Randomness stays banned there.
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace fixture {

std::mutex net_mu;  // allowed: src/net/ owns its loop-thread concurrency

long transport_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // allowed
}

void spawn_loop() {
  std::thread loop([] {});  // allowed
  loop.join();
}

}  // namespace fixture
