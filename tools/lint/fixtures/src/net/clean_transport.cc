// Fixture: src/net/ is a real transport — wall clocks and threading
// primitives are its job (like the thread runtime) and must lint clean
// without waivers.  Randomness stays banned there, and locking still goes
// through the annotated corona wrappers (raw-mutex applies even here).
#include <chrono>
#include <map>
#include <thread>

#include "util/sync.h"

namespace fixture {

corona::Mutex net_mu;  // allowed: the annotated wrapper, not std::mutex

long transport_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // allowed
}

void spawn_loop() {
  std::thread loop([] {});  // allowed
  loop.join();
  corona::MutexLock lock(net_mu);
}

}  // namespace fixture
