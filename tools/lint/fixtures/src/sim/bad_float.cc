// Fixture: float accumulation in a sim cost model, one waived line.
namespace fixture {

long total_cost(int n) {
  double acc = 0.0;                                         // line 5: flagged
  for (int i = 0; i < n; ++i) {
    acc += 0.5 * i;                                         // no token: clean
  }
  const double scale = 1.25;  // calibration knob; lint: float-ok
  return static_cast<long>(acc * scale);
}

}  // namespace fixture
