#!/usr/bin/env python3
"""Self-test for lock_order.py: the fixtures must produce exactly the
expected graph — the seeded ABBA cycle is detected, a consistent order is
clean, waivers and the manual unlock window suppress edges, REQUIRES
contributes held locks, and the baseline flags unreviewed new edges."""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lock_order  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures", "lock_order")


def run(argv: list[str]) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = lock_order.main(argv)
    return code, out.getvalue(), err.getvalue()


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


class CycleDetection(unittest.TestCase):
    def test_seeded_abba_cycle_is_detected(self) -> None:
        code, out, _ = run([fixture("bad_cycle.cc")])
        self.assertEqual(code, 1)
        self.assertIn("CYCLE", out)
        self.assertIn("Ledger::credit", out)
        self.assertIn("Ledger::debit", out)

    def test_consistent_order_is_clean(self) -> None:
        code, out, err = run(["--print-graph", fixture("good_nested.cc")])
        self.assertEqual(code, 0, out + err)
        self.assertIn("edge Pipeline::intake -> Pipeline::outflow", out)
        self.assertNotIn("CYCLE", out)

    def test_whole_fixture_dir_has_exactly_the_seeded_cycle(self) -> None:
        code, out, _ = run([FIXTURES])
        self.assertEqual(code, 1)
        self.assertEqual(out.count("CYCLE"), 1)
        self.assertIn("Ledger::", out)


class Suppression(unittest.TestCase):
    def test_waiver_breaks_the_cycle(self) -> None:
        code, out, err = run([fixture("waived_cycle.cc")])
        self.assertEqual(code, 0, out + err)

    def test_manual_unlock_window_records_no_edge(self) -> None:
        code, out, err = run(["--print-graph",
                              fixture("manual_window.cc")])
        self.assertEqual(code, 0, out + err)
        self.assertNotIn("edge ", out)

    def test_requires_marks_lock_held(self) -> None:
        code, out, err = run(["--print-graph",
                              fixture("requires_held.cc")])
        self.assertEqual(code, 0, out + err)
        self.assertIn("edge Cache::map_mu -> Cache::stats_mu", out)


class Baseline(unittest.TestCase):
    def test_baseline_roundtrip_and_new_edge_detection(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            code, _, err = run(["--write-baseline", base,
                                fixture("good_nested.cc")])
            self.assertEqual(code, 0, err)
            with open(base, encoding="utf-8") as f:
                payload = json.load(f)
            self.assertEqual(payload["edges"],
                             [["Pipeline::intake", "Pipeline::outflow"]])

            # The recorded edge passes against its own baseline...
            code, out, err = run(["--baseline", base,
                                  fixture("good_nested.cc")])
            self.assertEqual(code, 0, out + err)

            # ...and an empty baseline flags it as a new, unreviewed edge.
            with open(base, "w", encoding="utf-8") as f:
                json.dump({"edges": []}, f)
            code, out, _ = run(["--baseline", base,
                                fixture("good_nested.cc")])
            self.assertEqual(code, 1)
            self.assertIn("new lock-order edge", out)

    def test_missing_baseline_is_a_usage_error(self) -> None:
        code, _, err = run(["--baseline", fixture("no_such.json"),
                            fixture("good_nested.cc")])
        self.assertEqual(code, 2)
        self.assertIn("cannot read baseline", err)


class RealTree(unittest.TestCase):
    """The annotated src/ tree: its one deliberate nesting is present,
    resolved to fully-qualified identities, and the graph is acyclic."""

    SRC = os.path.normpath(os.path.join(HERE, "..", "..", "src"))

    def test_src_is_acyclic_with_known_edges(self) -> None:
        code, out, err = run(["--print-graph", self.SRC])
        self.assertEqual(code, 0, out + err)
        self.assertNotIn("CYCLE", out)
        self.assertIn("edge Worker::mu -> ThreadRuntime::cancel_mu_", out)

    def test_src_matches_committed_baseline(self) -> None:
        base = os.path.join(HERE, "lock_order_baseline.json")
        code, out, err = run(["--baseline", base, self.SRC])
        self.assertEqual(code, 0, out + err)


if __name__ == "__main__":
    unittest.main()
