#!/usr/bin/env python3
"""lock-order: static lock-acquisition-order lint over the annotated tree.

corona's locking all flows through the corona::Mutex / corona::MutexLock
wrappers (util/sync.h) — enforced by corona-lint's `raw-mutex` rule — so a
line-level scanner can see *every* acquisition site.  This tool builds the
lock-acquisition-order graph and fails on cycles: if thread 1 ever holds A
while taking B and thread 2 holds B while taking A, they can deadlock, and
no amount of testing reliably catches it (the window is often a few
instructions wide).  Clang's -Wthread-safety proves each *individual*
access is guarded; this lint proves the *global* order is consistent.

How the graph is built (two passes, dependency-free):

  pass 1  Collect every `Mutex` / `RecursiveMutex` declaration, keyed by
          the innermost enclosing class/struct: `Worker::mu`,
          `SocketRuntime::mu_`, or a bare name for globals.

  pass 2  Walk each file tracking the held-lock set:
            * `MutexLock l(expr);` / `RecursiveMutexLock l(expr);` RAII
              scopes, popped by brace depth;
            * manual `l.unlock()` / `l.lock()` on a scope variable
              (the worker-loop callback window);
            * `CORONA_REQUIRES(mu, ...)` on an inline definition marks
              the locks as held for the following body.
          Acquiring B with A held records edge A -> B with its site.
          A bare member expression (`mu_`, `w->mu`) resolves to a
          declared lock by unique member name, else by the header/source
          pair sharing the file's stem.

Cycles in the graph are always violations.  With `--baseline FILE`, every
edge must additionally appear in the committed baseline
(tools/lint/lock_order_baseline.json): introducing a *new* nesting of one
lock under another is a reviewable event, exactly like a new clang-tidy
finding — refresh with --write-baseline after review.

Waivers: `// lint: lock-order-ok` on (or directly above) an acquisition
line suppresses the edges recorded at that site — the lock is still
tracked as held.  Waive narrowly and say why.

Exit status: 0 clean, 1 violations found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import NamedTuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from corona_lint import (  # noqa: E402
    CXX_EXTENSIONS,
    file_stem,
    gather_files,
    logical_lines,
    waivers_on,
)

MUTEX_DECL_RE = re.compile(
    r"\b(?:corona::)?(Mutex|RecursiveMutex)\b\s+([A-Za-z_]\w*)\s*;"
)
CLASS_OPEN_RE = re.compile(
    r"\b(?:class|struct)\s+(?:CORONA_\w+(?:\([^)]*\))?\s+)*([A-Za-z_]\w*)"
    r"[^;{]*\{"
)
LOCK_DECL_RE = re.compile(
    r"\b(?:corona::)?(MutexLock|RecursiveMutexLock)\b\s+([A-Za-z_]\w*)"
    r"\s*[({]\s*([^(){};]+?)\s*[)}]"
)
REQUIRES_RE = re.compile(r"\bCORONA_REQUIRES\s*\(([^()]*)\)")
METHOD_RE = re.compile(r"\b(\w+)\s*\.\s*(lock|unlock)\s*\(\s*\)")


class Lock(NamedTuple):
    identity: str   # "Class::member" or bare global name
    recursive: bool
    path: str       # declaring file
    line: int


class Edge(NamedTuple):
    held: str       # identity already held
    acquired: str   # identity being taken
    path: str
    line: int


class Held(NamedTuple):
    identity: str
    depth: int        # brace depth of the owning scope; popped below it
    var: str | None   # MutexLock variable name; None for REQUIRES entries


def collect_locks(files: list[str]) -> list[Lock]:
    locks: list[Lock] = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        depth = 0
        classes: list[tuple[str, int]] = []  # (name, depth of its body)
        for lineno, _, code in logical_lines(text):
            # Declarations are attributed by position, so a one-line
            # `struct X { Mutex m; };` still files m under X.
            decls = list(MUTEX_DECL_RE.finditer(code))
            di = 0
            opens = {m.end() - 1: m.group(1)
                     for m in CLASS_OPEN_RE.finditer(code)}
            for pos, ch in enumerate(code + "\n"):
                while di < len(decls) and decls[di].start() <= pos:
                    m = decls[di]
                    di += 1
                    cls = classes[-1][0] if classes else ""
                    name = m.group(2)
                    identity = f"{cls}::{name}" if cls else name
                    locks.append(Lock(identity,
                                      m.group(1) == "RecursiveMutex",
                                      path, lineno))
                if ch == "{":
                    depth += 1
                    if pos in opens:
                        classes.append((opens[pos], depth))
                elif ch == "}":
                    if classes and classes[-1][1] == depth:
                        classes.pop()
                    depth -= 1
    return locks


def _member_of(expr: str) -> str | None:
    """`w->mu` / `this->mu_` / `p.a` / `mu_` -> the final member token."""
    expr = expr.strip()
    tail = re.split(r"->|\.", expr)[-1].strip()
    return tail if re.fullmatch(r"[A-Za-z_]\w*", tail) else None


class Resolver:
    def __init__(self, locks: list[Lock]):
        self.by_member: dict[str, list[Lock]] = {}
        for lk in locks:
            member = lk.identity.rsplit("::", 1)[-1]
            self.by_member.setdefault(member, []).append(lk)

    def resolve(self, expr: str, path: str) -> Lock | None:
        member = _member_of(expr)
        if member is None:
            return None
        cands = self.by_member.get(member, [])
        if len(cands) == 1:
            return cands[0]
        stem = file_stem(path)
        same = [lk for lk in cands if file_stem(lk.path) == stem]
        return same[0] if len(same) == 1 else None


def scan_file(path: str, resolver: Resolver,
              edges: list[Edge], unresolved: list[str]) -> None:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"lock-order: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    depth = 0
    held: list[Held] = []
    inactive: dict[str, Held] = {}      # manually unlock()ed scope vars
    pending_requires: list[str] | None = None  # identities awaiting a '{'
    prev_waived = False

    def acquire(identity: str, recursive: bool, var: str | None,
                lineno: int, waived: bool) -> None:
        for h in held:
            if h.identity == identity and recursive:
                continue  # re-entry on a recursive mutex: no edge
            if not waived:
                edges.append(Edge(h.identity, identity, path, lineno))
        held.append(Held(identity, depth, var))

    for lineno, raw, code in logical_lines(text):
        waived = "lock-order" in waivers_on(raw) or prev_waived
        prev_waived = "lock-order" in waivers_on(raw) and not code.strip()

        # Positions of interesting events on this line, processed in
        # order so brace depth is correct at each acquisition.
        events: list[tuple[int, str, tuple]] = []
        for m in LOCK_DECL_RE.finditer(code):
            events.append((m.start(), "decl",
                           (m.group(1), m.group(2), m.group(3))))
        for m in METHOD_RE.finditer(code):
            events.append((m.start(), m.group(2), (m.group(1),)))
        for m in REQUIRES_RE.finditer(code):
            events.append((m.start(), "requires", (m.group(1),)))
        events.sort()
        ei = 0

        for pos, ch in enumerate(code + "\n"):
            while ei < len(events) and events[ei][0] <= pos:
                _, kind, args = events[ei]
                ei += 1
                if kind == "decl":
                    kindname, var, expr = args
                    lk = resolver.resolve(expr, path)
                    if lk is None:
                        unresolved.append(
                            f"{path}:{lineno}: cannot resolve lock "
                            f"expression '{expr.strip()}'")
                        continue
                    inactive.pop(var, None)
                    acquire(lk.identity, lk.recursive, var, lineno, waived)
                elif kind == "unlock":
                    (var,) = args
                    for i, h in enumerate(held):
                        if h.var == var:
                            inactive[var] = held.pop(i)
                            break
                elif kind == "lock":
                    (var,) = args
                    h = inactive.pop(var, None)
                    if h is not None:
                        lk = resolver.by_member.get(
                            h.identity.rsplit("::", 1)[-1])
                        recursive = bool(lk) and all(
                            x.recursive for x in lk
                            if x.identity == h.identity)
                        acquire(h.identity, recursive, var, lineno, waived)
                elif kind == "requires":
                    (arglist,) = args
                    idents = []
                    for piece in arglist.split(","):
                        lk = resolver.resolve(piece, path)
                        if lk is not None:
                            idents.append(lk.identity)
                    if idents:
                        pending_requires = idents
            if ch == "{":
                depth += 1
                if pending_requires is not None:
                    for identity in pending_requires:
                        held.append(Held(identity, depth, None))
                    pending_requires = None
            elif ch == "}":
                depth -= 1
                while held and held[-1].depth > depth:
                    dead = held.pop()
                    if dead.var is not None:
                        inactive.pop(dead.var, None)
                # Scope variables declared at this depth are gone too.
                inactive = {v: h for v, h in inactive.items()
                            if h.depth <= depth}
            elif ch == ";" and pending_requires is not None:
                # Pure declaration (`void f() CORONA_REQUIRES(mu_);`).
                pending_requires = None


def find_cycles(edges: list[Edge]) -> list[list[Edge]]:
    """Returns one representative cycle per strongly-entangled loop found
    by DFS (first back edge along each path)."""
    adj: dict[str, dict[str, Edge]] = {}
    for e in edges:
        adj.setdefault(e.held, {}).setdefault(e.acquired, e)
    cycles: list[list[Edge]] = []
    color: dict[str, int] = {}  # 0/absent white, 1 gray, 2 black

    def dfs(u: str, stack: list[Edge]) -> None:
        color[u] = 1
        for v, e in sorted(adj.get(u, {}).items()):
            if color.get(v, 0) == 1:
                # Back edge: slice the stack from v's entry onward.
                cyc = [e]
                for se in reversed(stack):
                    cyc.insert(0, se)
                    if se.held == v:
                        break
                cycles.append(cyc)
            elif color.get(v, 0) == 0:
                stack.append(e)
                dfs(v, stack)
                stack.pop()
        color[u] = 2

    for node in sorted(adj):
        if color.get(node, 0) == 0:
            dfs(node, [])
    return cycles


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="lock-order",
        description="static lock-acquisition-order / deadlock lint",
    )
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument("--baseline", metavar="FILE",
                        help="committed edge baseline; unreviewed new "
                             "edges become violations")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the observed edge set and exit")
    parser.add_argument("--print-graph", action="store_true",
                        help="dump every edge with one example site")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    files = [f for f in gather_files(args.paths)
             if os.path.splitext(f)[1] in CXX_EXTENSIONS]
    locks = collect_locks(files)
    resolver = Resolver(locks)
    edges: list[Edge] = []
    unresolved: list[str] = []
    for path in files:
        scan_file(path, resolver, edges, unresolved)

    uniq: dict[tuple[str, str], Edge] = {}
    for e in edges:
        uniq.setdefault((e.held, e.acquired), e)

    if args.write_baseline:
        payload = {
            "comment": "lock-order edge baseline: every `held -> acquired` "
                       "nesting the lint may observe.  A new edge means a "
                       "new lock-order constraint — review it for deadlock "
                       "potential, then refresh with --write-baseline.",
            "edges": sorted([h, a] for h, a in uniq),
        }
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"lock-order: wrote {len(uniq)} edge(s) to "
              f"{args.write_baseline}", file=sys.stderr)
        return 0

    failures = 0
    cycles = find_cycles(edges)
    for cyc in cycles:
        failures += 1
        chain = " -> ".join([cyc[0].held] + [e.acquired for e in cyc])
        print(f"lock-order: CYCLE {chain}")
        for e in cyc:
            print(f"  {e.path}:{e.line}: takes {e.acquired} "
                  f"while holding {e.held}")

    if args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as f:
                allowed = {tuple(e) for e in json.load(f).get("edges", [])}
        except (OSError, ValueError) as e:
            print(f"lock-order: cannot read baseline {args.baseline}: {e}",
                  file=sys.stderr)
            return 2
        for (h, a), e in sorted(uniq.items()):
            if (h, a) not in allowed:
                failures += 1
                print(f"{e.path}:{e.line}: new lock-order edge "
                      f"{h} -> {a} not in {args.baseline}; review the "
                      "nesting for deadlock potential, then refresh the "
                      "baseline with --write-baseline")

    if args.print_graph:
        for (h, a), e in sorted(uniq.items()):
            print(f"edge {h} -> {a}  ({e.path}:{e.line})")

    for msg in unresolved:
        print(f"lock-order: warning: {msg}", file=sys.stderr)
    if not args.quiet:
        print(f"lock-order: {len(files)} files, {len(locks)} lock(s), "
              f"{len(uniq)} edge(s), {len(cycles)} cycle(s), "
              f"{failures} violation(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
