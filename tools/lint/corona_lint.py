#!/usr/bin/env python3
"""corona-lint: dependency-free determinism & concurrency lint for src/.

The simulator must be bit-reproducible: the same seed must yield the same
event trace, the same stats, the same bytes.  Most determinism bugs enter
through a handful of C++ constructs, so this lint bans them mechanically,
with per-directory scoping (the thread runtime is *allowed* to use real
clocks and threads — that is its job).

Rules (see docs/ANALYSIS.md for the full contract):

  wall-clock     src/** except runtime/thread_runtime.* and net/
                 No std::chrono::{system,steady,high_resolution}_clock,
                 time(), gettimeofday, clock_gettime, localtime, gmtime.
                 Sim-visible code must read time from its injected Runtime.
                 (net/ is a real transport: wall-clock is its job, like the
                 thread runtime.)

  raw-random     src/** except runtime/thread_runtime.*
                 No rand()/srand()/drand48, std::random_device, std::mt19937.
                 All randomness flows through the seeded util/rng.h.
                 net/ is NOT exempt: reconnect backoff etc. must be
                 deterministic.

  unordered-container
                 src/core, src/replica, src/sim, src/net, src/check
                 No std::unordered_map/set declarations: iteration order is
                 nondeterministic and *someone* eventually iterates.  Use
                 std::map/std::set, or waive lookup-only uses.

  unordered-iteration
                 src/core, src/replica, src/sim, src/net, src/check
                 No range-for / .begin() iteration over an identifier that
                 was declared anywhere in the scanned tree as an unordered
                 container (catches members declared in headers elsewhere).

  erase-in-range-for
                 src/core, src/replica, src/sim, src/net, src/check
                 No `c.erase(...)` inside a range-for over `c`: erasing
                 invalidates the iterators driving the loop (undefined
                 behaviour that often *passes* tests).  Collect victims and
                 erase after the loop, or use an explicit iterator loop with
                 the erase() return value.  Waive with `erase-ok` only when
                 the loop provably exits right after (e.g. erase+break).

  raw-thread     src/** except src/runtime and src/net
                 No std::thread/std::jthread/std::mutex/std::shared_mutex/
                 std::recursive_mutex/std::condition_variable/std::async.
                 Concurrency lives in the runtime and transport layers only.

  raw-mutex      src/** except src/util/sync.h
                 No std::mutex/std::recursive_mutex/std::lock_guard/
                 std::unique_lock/std::scoped_lock/std::condition_variable —
                 not even in the runtime/transport layers that raw-thread
                 exempts.  All locking goes through the annotated
                 corona::Mutex/MutexLock/CondVar wrappers (util/sync.h) so
                 the clang -Wthread-safety build and tools/lint/
                 lock_order.py see every acquisition.  std::thread itself
                 stays raw-thread's business (spawning is not locking).

  raw-file-io    src/** except storage/disk/
                 No fopen/freopen/open(2)/creat/openat/mkstemp, no
                 std::{i,o,}fstream, no std::filesystem.  Durability is a
                 protocol property here: every byte that must survive a
                 crash goes through the storage/disk/ backend, which owns
                 the fsync discipline, atomic-replace idiom, and failure
                 policy.  A stray ofstream silently loses data on power
                 loss and dodges the disk counters.  Waive (`file-io-ok`)
                 only for config/diagnostic files whose loss is harmless.

  float-accum    src/sim
                 No float/double in sim cost models without an explicit
                 waiver: accumulating floats makes results depend on
                 evaluation order.  Compute in integral microseconds, or
                 round immediately and waive.

  dispatch-exhaustiveness
                 files carrying a `// lint-dispatch: <Enum>` marker
                 Every enumerator of the named enum (collected from the
                 scanned tree, e.g. MsgType in serial/message.h, FrameKind
                 in net/frame.h) must be referenced in the file
                 (`Enum::kName`) or listed on a `// dispatch-ignore: kA kB
                 -- why` line.  Adding a message type without handling it
                 in every role's dispatch switch is a lint failure, not a
                 silent drop into the default: arm.  Stale ignore entries
                 (listed but referenced, or not an enumerator at all) are
                 violations too, so waiver lists stay minimal.  The role
                 files themselves (CoronaServer, client, ReplicaServer,
                 Coordinator, the serializer's kind list, the SocketRuntime
                 frame loop) are REQUIRED to carry the marker whenever the
                 enum definition is in the scanned set.

Waivers: append `// lint: <rule>-ok` to the offending line (or place it on
the line directly above).  Several waivers may share one comment, e.g.
`// lint: float-ok thread-ok`.  A file with a pervasive, justified
exception may carry `// lint-file: <rule>-ok` once (near the top, with the
justification alongside).  Waive narrowly and say why in a comment.

Exit status: 0 clean, 1 violations found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Callable, Iterable, NamedTuple

CXX_EXTENSIONS = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}

# `lint:`/`lint-file:` may appear anywhere in a comment, so a waiver can
# share a line with prose: `// 10 Mbps Ethernet; lint: float-ok`.
WAIVER_RE = re.compile(r"(?<![\w-])lint:\s*([a-z0-9\- ]+)")
FILE_WAIVER_RE = re.compile(r"(?<![\w-])lint-file:\s*([a-z0-9\- ]+)")


class Violation(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


class Rule(NamedTuple):
    name: str
    waiver: str  # `<waiver>-ok` in a comment silences the rule
    applies: Callable[[str], bool]  # takes the src-relative path
    pattern: re.Pattern
    message: str


def src_relative(path: str) -> str:
    """Path after the last 'src/' component; '' if there is none.

    Both real sources (src/sim/x.cc) and test fixtures
    (tools/lint/fixtures/src/sim/x.cc) resolve to the same rule scope.
    """
    parts = path.replace(os.sep, "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "src":
            return "/".join(parts[i + 1:])
    return ""


def in_dirs(*prefixes: str) -> Callable[[str], bool]:
    return lambda rel: any(rel.startswith(p) for p in prefixes)


def everywhere_except(*prefixes: str) -> Callable[[str], bool]:
    return lambda rel: bool(rel) and not any(rel.startswith(p) for p in prefixes)


RULES = [
    Rule(
        "wall-clock",
        "clock",
        everywhere_except("runtime/thread_runtime.", "net/"),
        re.compile(
            r"std::chrono::(?:system|steady|high_resolution)_clock"
            r"|\b(?:system|steady|high_resolution)_clock::"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0|&|\))"
            r"|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b"
        ),
        "wall-clock access outside the thread runtime; sim-visible code must "
        "use the injected Runtime clock (runtime/runtime.h)",
    ),
    Rule(
        "raw-random",
        "random",
        everywhere_except("runtime/thread_runtime."),
        re.compile(
            r"\b(?:s?rand)\s*\(|\bd?rand48\b"
            r"|std::random_device|\brandom_device\b|std::mt19937"
        ),
        "unseeded/global randomness; all randomness must flow through the "
        "explicitly seeded corona::Rng (util/rng.h)",
    ),
    Rule(
        "unordered-container",
        "unordered",
        in_dirs("core/", "replica/", "sim/", "net/", "check/", "storage/"),
        re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        "unordered container in determinism-critical code; iteration order "
        "is nondeterministic — use std::map/std::set (or waive a proven "
        "lookup-only use)",
    ),
    Rule(
        "raw-thread",
        "thread",
        everywhere_except("runtime/", "net/"),
        re.compile(
            r"std::(?:jthread|thread|mutex|shared_mutex|recursive_mutex|"
            r"timed_mutex|condition_variable|async)\b"
        ),
        "raw threading primitive outside src/runtime/; protocol code is "
        "single-threaded by construction — concurrency belongs to the "
        "runtime layer",
    ),
    Rule(
        "raw-mutex",
        "raw-mutex",
        everywhere_except("util/sync.h"),
        re.compile(
            r"std::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
            r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|"
            r"scoped_lock|shared_lock|condition_variable(?:_any)?)\b"
        ),
        "raw std locking primitive; all locking goes through the annotated "
        "corona::Mutex/MutexLock/CondVar wrappers (util/sync.h) so the "
        "clang thread-safety build and lock_order.py can see it",
    ),
    Rule(
        "raw-file-io",
        "file-io",
        everywhere_except("storage/disk/"),
        re.compile(
            r"\bf(?:re|d)?open\s*\(|\bcreat\s*\(|\bopenat\s*\(|\bopen\s*\("
            r"|\bmkstemps?\s*\(|\btmpfile\s*\("
            r"|std::(?:basic_)?[io]?fstream\b|\b[io]fstream\b"
            r"|std::filesystem\b"
        ),
        "raw file I/O outside src/storage/disk/; durable bytes must go "
        "through the disk backend (fsync discipline, atomic replace, "
        "failure policy, disk counters) — or waive a harmless "
        "config/diagnostic read with a justification",
    ),
    Rule(
        "float-accum",
        "float",
        in_dirs("sim/"),
        re.compile(r"\b(?:float|double)\b"),
        "float/double in sim cost-model code; floating accumulation is "
        "evaluation-order-sensitive — compute in integral microseconds, or "
        "round immediately and waive with a justification",
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
)
ENUM_DEF_RE = re.compile(r"\benum\s+class\s+([A-Za-z_]\w*)")
DISPATCH_MARKER_RE = re.compile(r"(?<![\w-])lint-dispatch:\s*([A-Za-z_]\w*)")
DISPATCH_IGNORE_RE = re.compile(
    r"(?<![\w-])dispatch-ignore:\s*([A-Za-z0-9_ ]+?)(?:--|$)")

# Role files that MUST carry a lint-dispatch marker for the given enum
# whenever that enum's definition is inside the scanned file set: the
# dispatch surfaces of the paper's roles, plus the serializer's kind list
# (the cross-check that wire names and dispatch agree on the enumerators).
REQUIRED_DISPATCH_ROLES = {
    "core/server.cc": "MsgType",            # CoronaServer::process
    "core/client.cc": "MsgType",            # CoronaClient::on_message
    "replica/replica_server.cc": "MsgType", # ReplicaServer::on_message
    "replica/coordinator.cc": "MsgType",    # Coordinator fwd_type dispatch
    "serial/message.cc": "MsgType",         # msg_type_name kind list
    "net/socket_runtime.cc": "FrameKind",   # SocketRuntime::handle_frame
    "net/frame.cc": "FrameKind",            # FrameDecoder::parse_body
}
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:this->)?(\w+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?r?begin\s*\(")
ERASE_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*erase\s*\(")

# Directories under the full determinism contract (unordered-* and
# erase-in-range-for); the remaining rules carry their own scopes above.
# storage/ joined in PR 8: flush/crash iterate per-group state with
# externally visible side effects (fsync order), so hashed iteration there
# is just as sim-breaking as in core/.
STRICT_SCOPE = in_dirs("core/", "replica/", "sim/", "net/", "check/",
                       "storage/")


def strip_strings(code: str) -> str:
    """Blanks out string and char literals (keeps length unimportant)."""
    out = []
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if code[i] == "\\":
                    i += 2
                    continue
                if code[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def logical_lines(text: str) -> Iterable[tuple[int, str, str]]:
    """Yields (lineno, raw_line, code_only_line) with comments stripped.

    Tracks /* */ across lines.  The raw line is kept for waiver detection
    (waivers live inside comments).
    """
    in_block = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_strings(raw)
        code = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            code.append(line[i])
            i += 1
        yield lineno, raw, "".join(code)


def _waiver_tokens(m: re.Match | None) -> set[str]:
    if not m:
        return set()
    toks = m.group(1).split()
    return {t[:-3] for t in toks if t.endswith("-ok")}


def waivers_on(raw_line: str) -> set[str]:
    return _waiver_tokens(WAIVER_RE.search(raw_line))


def file_waivers(text: str) -> set[str]:
    out: set[str] = set()
    for m in FILE_WAIVER_RE.finditer(text):
        out |= _waiver_tokens(m)
    return out


def declared_identifier(code: str, match_end: int) -> str | None:
    """After `unordered_map<`, skip the balanced template args and return the
    declared identifier, if this line is a declaration."""
    depth = 1
    i = match_end
    n = len(code)
    while i < n and depth > 0:
        if code[i] == "<":
            depth += 1
        elif code[i] == ">":
            depth -= 1
        i += 1
    if depth != 0:
        return None
    m = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;{=,)]", code[i:])
    return m.group(1) if m else None


def file_stem(path: str) -> str:
    """Directory + basename without extension: header/source pairs share it,
    so a member declared in foo.h is tracked when foo.cc iterates it —
    without leaking identically-named members from unrelated files."""
    root, _ = os.path.splitext(path)
    return root


def collect_unordered_names(files: list[str]) -> dict[str, set[str]]:
    """Maps each file stem to the unordered-container identifiers declared
    in that header/source pair."""
    names: dict[str, set[str]] = {}
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        for _, _, code in logical_lines(text):
            for m in UNORDERED_DECL_RE.finditer(code):
                ident = declared_identifier(code, m.end())
                if ident:
                    names.setdefault(file_stem(path), set()).add(ident)
    return names


def collect_enums(files: list[str]) -> dict[str, list[str]]:
    """Maps each `enum class` name found in the scanned set to its
    enumerator list (comments stripped, values ignored)."""
    enums: dict[str, list[str]] = {}
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        code = "\n".join(c for _, _, c in logical_lines(text))
        for m in ENUM_DEF_RE.finditer(code):
            open_brace = code.find("{", m.end())
            if open_brace < 0:
                continue
            close = code.find("}", open_brace)  # enum bodies don't nest
            if close < 0:
                continue
            body = code[open_brace + 1:close]
            names = []
            for piece in body.split(","):
                ident = re.match(r"\s*([A-Za-z_]\w*)", piece)
                if ident:
                    names.append(ident.group(1))
            if names:
                enums[m.group(1)] = names
    return enums


def check_dispatch(path: str, text: str,
                   enums: dict[str, list[str]]) -> list[Violation]:
    """dispatch-exhaustiveness for one file (see the module docstring)."""
    rel = src_relative(path)
    out: list[Violation] = []
    if "dispatch" in file_waivers(text):
        return out

    markers: list[tuple[int, str]] = []   # (line, enum name)
    ignored: dict[str, int] = {}          # token -> line it appears on
    referenced: dict[str, set[str]] = {}  # enum -> enumerators referenced
    for lineno, raw, code in logical_lines(text):
        for m in DISPATCH_MARKER_RE.finditer(raw):
            markers.append((lineno, m.group(1)))
        for m in DISPATCH_IGNORE_RE.finditer(raw):
            for tok in m.group(1).split():
                ignored.setdefault(tok, lineno)
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*::\s*(k\w+)", code):
            referenced.setdefault(m.group(1), set()).add(m.group(2))

    required = REQUIRED_DISPATCH_ROLES.get(rel)
    if required and required in enums and \
            not any(e == required for _, e in markers):
        out.append(Violation(
            path, 1, "dispatch-exhaustiveness",
            f"role file must carry `// lint-dispatch: {required}` — this is "
            "one of the protocol's dispatch surfaces and its coverage of "
            f"{required} is part of the analysis gates",
        ))

    known: set[str] = set()
    for marker_line, enum in markers:
        if enum not in enums:
            # Single-file runs may not see the defining header; the rule
            # only fires when the enum is inside the scanned set.
            continue
        enumerators = enums[enum]
        known.update(enumerators)
        refs = referenced.get(enum, set())
        for name in enumerators:
            if name in refs or name in ignored:
                continue
            out.append(Violation(
                path, marker_line, "dispatch-exhaustiveness",
                f"{enum}::{name} is neither handled in this file nor "
                "listed on a `dispatch-ignore:` line — a new message kind "
                "must be dispatched (or explicitly waived) in every role",
            ))
        for name in sorted(set(enumerators) & set(ignored) & refs):
            out.append(Violation(
                path, ignored[name], "dispatch-exhaustiveness",
                f"stale waiver: {enum}::{name} is on a dispatch-ignore list "
                "but IS referenced in this file — drop it from the list",
            ))
    if markers and any(e in enums for _, e in markers):
        for tok, lineno in sorted(ignored.items()):
            if tok not in known:
                out.append(Violation(
                    path, lineno, "dispatch-exhaustiveness",
                    f"dispatch-ignore token '{tok}' is not an enumerator of "
                    "any enum this file dispatches on — stale or misspelled",
                ))
    return out


def lint_file(path: str,
              unordered_names: dict[str, set[str]]) -> list[Violation]:
    rel = src_relative(path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"corona-lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)

    out: list[Violation] = []
    whole_file_waivers = file_waivers(text)
    pair_unordered = unordered_names.get(file_stem(path), set())
    prev_waivers: set[str] = set()
    iteration_scoped = STRICT_SCOPE(rel)
    # erase-in-range-for bookkeeping: which containers are currently driving
    # an enclosing range-for, tracked by brace depth.  `pending_for` holds a
    # loop whose body brace (or braceless statement) hasn't started yet.
    brace_depth = 0
    range_for_stack: list[tuple[str, int]] = []  # (ident, body depth)
    pending_for: str | None = None
    for lineno, raw, code in logical_lines(text):
        active_waivers = waivers_on(raw) | prev_waivers | whole_file_waivers
        # A waiver-only line waives the NEXT line; a code line's waiver
        # applies to itself only.
        prev_waivers = waivers_on(raw) if not code.strip() else set()

        if code.strip().startswith("#include"):
            continue

        for rule in RULES:
            if not rule.applies(rel):
                continue
            if rule.waiver in active_waivers:
                continue
            if rule.pattern.search(code):
                out.append(Violation(path, lineno, rule.name, rule.message))

        if iteration_scoped and "unordered" not in active_waivers:
            idents = {m.group(1) for m in RANGE_FOR_RE.finditer(code)}
            idents |= {m.group(1) for m in BEGIN_CALL_RE.finditer(code)}
            for ident in sorted(idents & pair_unordered):
                out.append(
                    Violation(
                        path,
                        lineno,
                        "unordered-iteration",
                        f"iterating over '{ident}', declared as an unordered "
                        "container; iteration order is nondeterministic — "
                        "use std::map/std::set or copy-and-sort first",
                    )
                )

        if iteration_scoped:
            fors = list(RANGE_FOR_RE.finditer(code))
            if "erase" not in active_waivers:
                active = {ident for ident, _ in range_for_stack}
                if pending_for is not None:
                    active.add(pending_for)
                for em in ERASE_CALL_RE.finditer(code):
                    ident = em.group(1)
                    enclosing = ident in active or any(
                        fm.group(1) == ident and fm.end() <= em.start()
                        for fm in fors
                    )
                    if enclosing:
                        out.append(
                            Violation(
                                path,
                                lineno,
                                "erase-in-range-for",
                                f"'{ident}.erase(...)' inside a range-for "
                                f"over '{ident}'; erasing invalidates the "
                                "loop's iterators — collect victims and "
                                "erase after the loop, or use an iterator "
                                "loop with the erase() return value",
                            )
                        )
            # Advance the loop tracker: a range-for becomes pending at its
            # header's end, binds to the next '{' (its body), and a pending
            # braceless body ends at the next ';'.
            fi = 0
            for pos, ch in enumerate(code):
                while fi < len(fors) and fors[fi].end() <= pos:
                    pending_for = fors[fi].group(1)
                    fi += 1
                if ch == "{":
                    brace_depth += 1
                    if pending_for is not None:
                        range_for_stack.append((pending_for, brace_depth))
                        pending_for = None
                elif ch == "}":
                    brace_depth -= 1
                    while range_for_stack and \
                            range_for_stack[-1][1] > brace_depth:
                        range_for_stack.pop()
                elif ch == ";" and pending_for is not None:
                    pending_for = None
            while fi < len(fors):
                pending_for = fors[fi].group(1)
                fi += 1
    return out


def gather_files(roots: list[str]) -> list[str]:
    files: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        if not os.path.isdir(root):
            print(f"corona-lint: no such file or directory: {root}",
                  file=sys.stderr)
            sys.exit(2)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                    files.append(os.path.join(dirpath, name))
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="corona-lint",
        description="determinism & concurrency lint for the corona tree",
    )
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    files = gather_files(args.paths)
    unordered_names = collect_unordered_names(files)
    enums = collect_enums(files)
    violations: list[Violation] = []
    for path in files:
        violations.extend(lint_file(path, unordered_names))
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                violations.extend(check_dispatch(path, f.read(), enums))
        except OSError:
            pass

    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if not args.quiet:
        print(
            f"corona-lint: {len(files)} files, {len(violations)} violation(s)",
            file=sys.stderr,
        )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
