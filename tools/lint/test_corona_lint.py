#!/usr/bin/env python3
"""Self-test for corona_lint: run the lint over the known-bad fixture tree
and assert exactly the expected diagnostics come out (and nothing else).

Run directly (python3 tools/lint/test_corona_lint.py) or via ctest
(corona_lint_selftest).  Dependency-free: unittest only.
"""

from __future__ import annotations

import io
import os
import sys
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import corona_lint  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")


def lint(*roots: str) -> list[corona_lint.Violation]:
    files = corona_lint.gather_files(list(roots))
    names = corona_lint.collect_unordered_names(files)
    enums = corona_lint.collect_enums(files)
    out: list[corona_lint.Violation] = []
    for path in files:
        out.extend(corona_lint.lint_file(path, names))
        with open(path, encoding="utf-8", errors="replace") as f:
            out.extend(corona_lint.check_dispatch(path, f.read(), enums))
    return out


def keyed(violations: list[corona_lint.Violation]) -> set[tuple[str, int, str]]:
    return {
        (os.path.relpath(v.path, FIXTURES).replace(os.sep, "/"), v.line, v.rule)
        for v in violations
    }


class FixtureTree(unittest.TestCase):
    """The fixture tree produces exactly the expected (file, line, rule) set."""

    def test_expected_diagnostics(self):
        expected = {
            ("src/core/bad_clock.cc", 9, "wall-clock"),
            ("src/core/bad_clock.cc", 11, "wall-clock"),
            ("src/core/bad_random.cc", 8, "raw-random"),
            ("src/core/bad_random.cc", 10, "raw-random"),
            ("src/replica/bad_unordered.h", 15, "unordered-container"),
            ("src/replica/bad_unordered.cc", 9, "unordered-iteration"),
            ("src/sim/bad_float.cc", 5, "float-accum"),
            ("src/serial/bad_thread.cc", 7, "raw-thread"),
            ("src/serial/bad_thread.cc", 7, "raw-mutex"),
            ("src/serial/bad_thread.cc", 10, "raw-thread"),
            ("src/runtime/bad_raw_mutex.cc", 10, "raw-mutex"),
            ("src/runtime/bad_raw_mutex.cc", 11, "raw-mutex"),
            ("src/runtime/bad_raw_mutex.cc", 14, "raw-mutex"),
            ("src/runtime/bad_raw_mutex.cc", 18, "raw-mutex"),
            ("src/net/bad_net.cc", 9, "unordered-container"),
            ("src/net/bad_net.cc", 12, "raw-random"),
            ("src/net/bad_net.cc", 17, "unordered-iteration"),
            ("src/core/bad_file_io.cc", 10, "raw-file-io"),
            ("src/core/bad_file_io.cc", 12, "raw-file-io"),
            ("src/core/bad_file_io.cc", 13, "raw-file-io"),
            ("src/core/bad_erase.cc", 12, "erase-in-range-for"),
            ("src/core/bad_erase.cc", 18, "erase-in-range-for"),
            ("src/core/bad_dispatch.cc", 7, "dispatch-exhaustiveness"),
            ("src/core/bad_dispatch.cc", 8, "dispatch-exhaustiveness"),
            ("src/core/bad_dispatch.cc", 9, "dispatch-exhaustiveness"),
        }
        self.assertEqual(keyed(lint(FIXTURES)), expected)

    def test_thread_runtime_is_exempt(self):
        path = os.path.join(FIXTURES, "src", "runtime", "thread_runtime.cc")
        self.assertEqual(lint(path), [])

    def test_net_transport_may_use_clocks_and_threads(self):
        path = os.path.join(FIXTURES, "src", "net", "clean_transport.cc")
        self.assertEqual(lint(path), [])

    def test_net_still_bans_unordered_and_random(self):
        path = os.path.join(FIXTURES, "src", "net", "bad_net.cc")
        rules = sorted(v.rule for v in lint(path))
        self.assertEqual(
            rules, ["raw-random", "unordered-container", "unordered-iteration"])

    def test_erase_fixture_flags_only_the_bad_loops(self):
        path = os.path.join(FIXTURES, "src", "core", "bad_erase.cc")
        found = sorted((v.line, v.rule) for v in lint(path))
        self.assertEqual(found, [(12, "erase-in-range-for"),
                                 (18, "erase-in-range-for")])

    def test_raw_mutex_fires_in_runtime_but_waiver_silences(self):
        # src/runtime/ escapes raw-thread but NOT raw-mutex; the line waiver
        # on the bridge() interop case must be honored.
        path = os.path.join(FIXTURES, "src", "runtime", "bad_raw_mutex.cc")
        found = sorted((v.line, v.rule) for v in lint(path))
        self.assertEqual(found, [(10, "raw-mutex"), (11, "raw-mutex"),
                                 (14, "raw-mutex"), (18, "raw-mutex")])

    def test_raw_mutex_exempts_sync_header(self):
        # The wrapper header itself is the one sanctioned home of the std
        # primitives.
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            util = os.path.join(tmp, "src", "util")
            os.makedirs(util)
            with open(os.path.join(util, "sync.h"), "w") as f:
                f.write("// lint-file: thread-ok\n"
                        "#pragma once\n"
                        "class Mutex { std::mutex mu_; };\n")
            found = [v for v in lint(os.path.join(tmp, "src"))]
        self.assertEqual(found, [])

    def test_file_io_fixture_flags_only_unwaived_sites(self):
        path = os.path.join(FIXTURES, "src", "core", "bad_file_io.cc")
        found = sorted((v.line, v.rule) for v in lint(path))
        self.assertEqual(found, [(10, "raw-file-io"), (12, "raw-file-io"),
                                 (13, "raw-file-io")])

    def test_file_io_exempts_disk_backend(self):
        # storage/disk/ is the one sanctioned home of raw file I/O.
        path = os.path.join(FIXTURES, "src", "storage", "disk",
                            "clean_disk_io.cc")
        self.assertEqual(lint(path), [])

    def test_file_waiver_covers_whole_file(self):
        path = os.path.join(FIXTURES, "src", "core", "clean_waived.cc")
        self.assertEqual(lint(path), [])

    def test_dispatch_good_and_waived_fixtures_are_clean(self):
        # Lint the fixture tree (so the enum header is in the scanned set)
        # and check the good/waived variants contribute nothing.
        for name in ("good_dispatch.cc", "waived_dispatch.cc"):
            with self.subTest(fixture=name):
                rel = "src/core/" + name
                hits = [k for k in keyed(lint(FIXTURES)) if k[0] == rel]
                self.assertEqual(hits, [])

    def test_dispatch_bad_fixture_details(self):
        msgs = [v.message for v in lint(FIXTURES)
                if v.path.endswith("bad_dispatch.cc")]
        self.assertEqual(len(msgs), 3)
        self.assertTrue(any("kCharlie" in m for m in msgs))
        self.assertTrue(any("stale waiver" in m and "kBravo" in m
                            for m in msgs))
        self.assertTrue(any("kZulu" in m for m in msgs))

    def test_dispatch_required_marker_enforced(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            serial = os.path.join(tmp, "src", "serial")
            core = os.path.join(tmp, "src", "core")
            os.makedirs(serial)
            os.makedirs(core)
            with open(os.path.join(serial, "wire.h"), "w") as f:
                f.write("enum class MsgType { kPing };\n")
            # A role file with no lint-dispatch marker must be flagged.
            with open(os.path.join(core, "server.cc"), "w") as f:
                f.write("void process() {}\n")
            found = [(v.line, v.rule) for v in lint(os.path.join(tmp, "src"))
                     if v.path.endswith("server.cc")]
        self.assertEqual(found, [(1, "dispatch-exhaustiveness")])

    def test_dispatch_file_waiver_silences_rule(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            core = os.path.join(tmp, "src", "core")
            os.makedirs(core)
            with open(os.path.join(core, "wire.h"), "w") as f:
                f.write("enum class FixtureMsg { kAlpha, kBravo };\n")
            with open(os.path.join(core, "partial.cc"), "w") as f:
                f.write("// lint-file: dispatch-ok\n"
                        "// lint-dispatch: FixtureMsg\n"
                        "void f() {}\n")
            found = [v for v in lint(os.path.join(tmp, "src"))
                     if v.path.endswith("partial.cc")]
        self.assertEqual(found, [])

    def test_main_exit_codes_and_output(self):
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            rc = corona_lint.main([FIXTURES])
        self.assertEqual(rc, 1)
        first = stdout.getvalue().splitlines()[0]
        # file:line: [rule] message — the format the acceptance criteria pin.
        self.assertRegex(first, r"^.+:\d+: \[[a-z-]+\] .+$")
        self.assertIn("violation(s)", stderr.getvalue())

    def test_main_clean_tree_exits_zero(self):
        path = os.path.join(FIXTURES, "src", "core", "clean_waived.cc")
        with redirect_stdout(io.StringIO()), redirect_stderr(io.StringIO()):
            rc = corona_lint.main([path])
        self.assertEqual(rc, 0)


class Mechanics(unittest.TestCase):
    """Unit coverage of the trickier helpers."""

    def test_src_relative_handles_fixture_nesting(self):
        self.assertEqual(
            corona_lint.src_relative("tools/lint/fixtures/src/sim/a.cc"),
            "sim/a.cc",
        )
        self.assertEqual(corona_lint.src_relative("src/core/b.h"), "core/b.h")
        self.assertEqual(corona_lint.src_relative("README.md"), "")

    def test_comments_and_strings_are_not_code(self):
        text = (
            '// std::thread in a comment\n'
            'const char* s = "std::mutex in a string";\n'
            "/* std::chrono::system_clock spanning\n"
            "   a block comment */\n"
        )
        lines = list(corona_lint.logical_lines(text))
        self.assertNotIn("thread", lines[0][2])
        self.assertNotIn("mutex", lines[1][2])
        self.assertNotIn("clock", lines[2][2])

    def test_waiver_parsing(self):
        self.assertEqual(
            corona_lint.waivers_on("// knobs; lint: float-ok thread-ok"),
            {"float", "thread"},
        )
        self.assertEqual(corona_lint.waivers_on("// lint-file: clock-ok"), set())
        self.assertEqual(corona_lint.file_waivers("// lint-file: clock-ok"),
                         {"clock"})

    def test_erase_tracking_respects_nesting_and_scope(self):
        import tempfile
        src = (
            "void f(std::map<int, int>& outer, std::vector<int>& inner) {\n"
            "  for (auto& [k, v] : outer) {\n"
            "    for (int x : inner) {\n"
            "      outer.erase(k);\n"   # line 4: outer loop still encloses
            "    }\n"
            "  }\n"
            "  for (int x : inner) {\n"
            "  }\n"
            "  outer.erase(1);\n"       # line 9: no enclosing loop — clean
            "}\n"
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "src", "core")
            os.makedirs(path)
            fpath = os.path.join(path, "t.cc")
            with open(fpath, "w") as f:
                f.write(src)
            found = [(v.line, v.rule) for v in lint(fpath)]
        self.assertEqual(found, [(4, "erase-in-range-for")])

    def test_declared_identifier_skips_nested_templates(self):
        code = "std::unordered_map<int, std::pair<int, int>> table_;"
        m = corona_lint.UNORDERED_DECL_RE.search(code)
        self.assertIsNotNone(m)
        self.assertEqual(corona_lint.declared_identifier(code, m.end()),
                         "table_")


if __name__ == "__main__":
    unittest.main()
