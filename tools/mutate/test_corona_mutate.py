#!/usr/bin/env python3
"""Unit tests for corona_mutate's pure logic: operator generation, source
masking, sampler determinism, and cache-key sensitivity.

Run directly or via ctest (mutate_selftest).  Nothing here builds or runs
mutants — the pipeline itself is exercised by `--golden-only` in CI.
"""

from __future__ import annotations

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import corona_mutate as cm  # noqa: E402


class Masking(unittest.TestCase):
    def test_comments_and_strings_are_blanked_column_preserving(self):
        src = ('int a = 1;  // seq < limit\n'
               'const char* s = "x < y";\n')
        masked = cm.mask_source(src)
        self.assertEqual(len(masked[0]), len('int a = 1;  // seq < limit'))
        self.assertNotIn("seq", masked[0])
        self.assertNotIn("<", masked[1].split("=", 1)[1])

    def test_block_comments_span_lines(self):
        masked = cm.mask_source("a /* x <\n y */ b;\n")
        self.assertNotIn("<", masked[0].replace("/*", ""))
        self.assertIn("b;", masked[1])


class Generation(unittest.TestCase):
    def gen(self, text: str) -> list:
        return cm.generate_for_file("src/core/x.cc", text)

    def test_relop_flip_generated(self):
        muts = self.gen("void f(int a, int b) {\n  if (a < b) { g(); }\n}\n")
        ops = {m.op for m in muts}
        self.assertIn("relop", ops)
        flipped = [m for m in muts if m.op == "relop"][0]
        self.assertIn("<=", flipped.mutated)

    def test_off_by_one_on_seq_arithmetic(self):
        muts = self.gen("void f() {\n  seq = next_seq + 1;\n}\n")
        self.assertTrue(any(m.op == "offbyone" and "+ 2" in m.mutated
                            for m in muts))

    def test_side_effect_call_deletion(self):
        muts = self.gen("void f() {\n  log_.flush();\n  queue.pop();\n}\n")
        delcall = [m for m in muts if m.op == "delcall"]
        self.assertTrue(any("flush" in m.original for m in delcall))

    def test_comments_produce_no_mutants(self):
        muts = self.gen("// if (a < b) flush();\n")
        self.assertEqual(muts, [])

    def test_mutant_ids_are_stable_and_unique(self):
        text = "void f(int a, int b) {\n  if (a < b) { a = b + 1; }\n}\n"
        a = [m.mid for m in self.gen(text)]
        b = [m.mid for m in self.gen(text)]
        self.assertEqual(a, b)
        self.assertEqual(len(a), len(set(a)))


class Sampler(unittest.TestCase):
    def fake_mutants(self, n: int) -> list:
        return [cm.Mutant(f"src/core/f.cc:{i}:relop:0-{i:08x}",
                          "src/core/f.cc", i, "relop", "a < b", "a <= b",
                          "flip")
                for i in range(n)]

    def test_same_seed_same_sample(self):
        pop = self.fake_mutants(100)
        a = cm.deterministic_sample(pop, 10, seed=42)
        b = cm.deterministic_sample(list(reversed(pop)), 10, seed=42)
        self.assertEqual([m.mid for m in a], [m.mid for m in b])

    def test_different_seed_different_sample(self):
        pop = self.fake_mutants(100)
        a = cm.deterministic_sample(pop, 10, seed=1)
        b = cm.deterministic_sample(pop, 10, seed=2)
        self.assertNotEqual([m.mid for m in a], [m.mid for m in b])

    def test_oversized_request_returns_whole_population(self):
        pop = self.fake_mutants(5)
        out = cm.deterministic_sample(pop, 50, seed=7)
        self.assertEqual(len(out), 5)

    def test_ci_default_seed_is_pinned(self):
        # The CI job's determinism hangs on this default; changing it must
        # be a conscious baseline update.
        pop = self.fake_mutants(30)
        sample = cm.deterministic_sample(pop, 5, seed=20260806)
        self.assertEqual([m.mid for m in sample],
                         [m.mid for m in cm.deterministic_sample(
                             pop, 5, seed=20260806)])


class CacheKey(unittest.TestCase):
    def test_key_changes_with_file_content_not_with_tests(self):
        with tempfile.TemporaryDirectory() as tmp:
            rel = "src/core/f.cc"
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path))
            with open(path, "w") as f:
                f.write("int f() { return 1; }\n")
            m = cm.Mutant(rel + ":1:relop:0-deadbeef", rel, 1, "relop",
                          "int f() { return 1; }", "int f() { return 2; }",
                          "const")
            k1 = cm.cache_key(tmp, m)
            k2 = cm.cache_key(tmp, m)
            self.assertEqual(k1, k2)
            with open(path, "a") as f:
                f.write("// touched\n")
            self.assertNotEqual(cm.cache_key(tmp, m), k1)

    def test_key_embeds_pipeline_version(self):
        with tempfile.TemporaryDirectory() as tmp:
            rel = "src/core/f.cc"
            os.makedirs(os.path.join(tmp, "src/core"))
            with open(os.path.join(tmp, rel), "w") as f:
                f.write("x\n")
            m = cm.Mutant(rel + ":1:relop:0-deadbeef", rel, 1, "relop",
                          "x", "y", "d")
            self.assertIn(f"v{cm.PIPELINE_VERSION}:", cm.cache_key(tmp, m))


class EquivalentsLedger(unittest.TestCase):
    def mutant(self, mid: str) -> cm.Mutant:
        rel, line, op, _ = mid.rsplit(":", 3)
        return cm.Mutant(mid, rel, int(line), op, "a < b", "a <= b", "flip")

    def test_stable_key_drops_only_the_line(self):
        self.assertEqual(
            cm.stable_key("src/core/f.cc:42:relop:0-deadbeef"),
            "src/core/f.cc:relop:0-deadbeef")
        # Golden ids carry no position and pass through untouched.
        self.assertEqual(cm.stable_key("golden-dup-suppress"),
                         "golden-dup-suppress")

    def test_rationale_is_mandatory(self):
        with self.assertRaises(ValueError):
            cm.load_equivalents(
                {"equivalents": [{"key": "src/core/f.cc:relop:0-aa",
                                  "rationale": "  "}]})
        got = cm.load_equivalents(
            {"equivalents": [{"key": "k", "rationale": "dead code"}]})
        self.assertEqual(got, {"k": "dead code"})

    def test_stable_key_resolves_to_current_line(self):
        pop = [self.mutant("src/core/f.cc:99:relop:0-deadbeef")]
        resolved = cm.resolve_equivalents(
            {"src/core/f.cc:relop:0-deadbeef": "why"}, pop)
        self.assertEqual(resolved,
                         {"src/core/f.cc:99:relop:0-deadbeef": "why"})

    def test_textual_twins_refuse_line_free_keys(self):
        # Two lines with identical text mutate identically apart from the
        # line number; a line-free key cannot distinguish the reviewed-
        # equivalent one from its possibly-buggy twin.
        pop = [self.mutant("src/core/f.cc:10:relop:0-deadbeef"),
               self.mutant("src/core/f.cc:20:relop:0-deadbeef")]
        with self.assertRaises(ValueError):
            cm.resolve_equivalents(
                {"src/core/f.cc:relop:0-deadbeef": "why"}, pop)
        # Pinning the exact id disambiguates.
        resolved = cm.resolve_equivalents(
            {"src/core/f.cc:10:relop:0-deadbeef": "why"}, pop)
        self.assertEqual(list(resolved), ["src/core/f.cc:10:relop:0-deadbeef"])

    def test_unmatched_keys_are_inert(self):
        pop = [self.mutant("src/core/f.cc:10:relop:0-deadbeef")]
        self.assertEqual(
            cm.resolve_equivalents({"src/gone/g.cc:relop:0-bb": "why"}, pop),
            {})

    def test_equivalents_excluded_from_score(self):
        def res(status: str, op: str = "relop") -> dict:
            return {"status": status, "file": "src/core/f.cc", "op": op,
                    "stage": 1, "id": "src/core/f.cc:1:%s:0-aa" % op,
                    "line": 1, "description": "d", "diff": "",
                    "nearest_oracle": "o"}
        results = [res("killed"), res("survived"),
                   res("equivalent"), res("equivalent", op="const")]
        report = cm.summarize(results, generated=4, config={})
        self.assertEqual(report["killed"], 1)
        self.assertEqual(report["survived"], 1)
        self.assertEqual(report["equivalent"], 2)
        self.assertAlmostEqual(report["score"], 0.5)

    def test_repo_ledger_loads_and_resolves(self):
        # The committed baseline must always parse, carry rationales, and
        # (textual twins aside) stay unambiguous against the live tree.
        import json
        repo = cm.repo_root()
        with open(os.path.join(repo, "tools", "mutate",
                               "MUTATION_BASELINE.json")) as f:
            baseline = json.load(f)
        equivalents = cm.load_equivalents(baseline)
        self.assertGreater(len(equivalents), 0)
        resolved = cm.resolve_equivalents(equivalents,
                                          cm.scan_tree(repo))
        self.assertEqual(len(resolved), len(equivalents),
                         "a ledger key no longer matches any mutant -- "
                         "prune it or fix the key")


class Goldens(unittest.TestCase):
    def test_goldens_resolve_against_the_real_tree(self):
        repo = cm.repo_root()
        goldens = cm.golden_mutants(repo)
        self.assertEqual(len(goldens), len(cm.GOLDENS))
        self.assertEqual(len({g.mid for g in goldens}), len(cm.GOLDENS))
        for g in goldens:
            self.assertTrue(os.path.exists(os.path.join(repo, g.rel)), g.rel)
            self.assertNotEqual(g.original, g.mutated)


if __name__ == "__main__":
    unittest.main()
