#!/usr/bin/env python3
"""corona-mutate: mutation analysis of the protocol core.

The oracle stack (unit tests, corona-check schedule exploration, the
property suites, the CORONA_INVARIANT layer) guards the paper's correctness
claims — total ordering, customized state transfer, resync after crash.
This tool measures how strong those oracles actually are: it plants small,
realistic bugs ("mutants") into src/core, src/replica, src/serial and
src/net, rebuilds, and checks that *something* notices.  A mutant nobody
kills is a hole in the oracle net, listed with its diff so a targeted test
can close it (docs/ANALYSIS.md §7).

Mutation operators
    relop       relational-operator & conditional-boundary flips
                (`<` <-> `<=`, `>` <-> `>=`, `==` <-> `!=`)
    offbyone    off-by-one on `+ 1` / `- 1` arithmetic (seq bookkeeping)
    delcall     delete a side-effecting statement
                (`flush|ack|send|erase|push_back` calls)
    ternary     swap the arms of a `cond ? a : b`
    const       perturb a numeric constant on timeout/batch/bound lines

Kill pipeline (per mutant, stops at the first kill)
    stage 0     rebuild — a compile error is a *stillborn* mutant, excluded
                from the score (it was never a plausible bug)
    stage 1     fast unit tests for the mutated directory
    stage 2     corona-check bounded DFS (single / batched / replicated)
    stage 3     property & chaos suites

Results land in MUTATION_REPORT.json: per-mutant kill stage, killer, wall
time, and for survivors the diff plus the nearest oracle that should have
seen it.  A content-hash cache (build-root/cache.json) skips mutants whose
source file, mutation and stage plan are unchanged; killed verdicts stay
valid when tests are only added (oracles grow monotonically), survivors are
re-run with --recheck-survivors.

Some survivors are not oracle holes: a mutant can be semantically
equivalent to the original program (dead defensive code, an unreachable
boundary, a latency heuristic no deterministic test may pin).  Those are
recorded in the `equivalents` section of MUTATION_BASELINE.json, keyed by
a line-number-free id (`rel:op:k-sig` — the sig hashes the line content,
so the key survives renumbering) and each carrying a mandatory written
rationale (the analysis lives in ANALYSIS.md §7).  Recorded equivalents
still execute but are excluded from the score denominator, and one that a
test manages to KILL fails the run until its stale entry is deleted — the
ledger only shrinks as oracles strengthen, like the lint baselines.

Modes
    --list                enumerate mutation points, run nothing
    --full                run every generated mutant (capped by --max-mutants)
    --sample N            run a deterministic sample (--sample-seed)
    --ci                  sampled mode + golden mutants, compared against a
                          recorded baseline (--baseline); exits 1 on a score
                          regression or an unkilled golden mutant
    --golden-only         run just the four golden mutants
    --mutant ID           reproduce a single mutant locally

The four golden mutants re-plant the `--seed-*-bug` bugs the repo already
uses to validate corona-check (gap detection off, batch-tail drop) plus a
sequencer skip and a lock-FIFO inversion; the pipeline must kill each at
stage <= 2 or the run fails.
"""

from __future__ import annotations

import argparse
import difflib
import hashlib
import json
import os
import random
import re
import shutil
import subprocess
import sys
import time
from typing import NamedTuple

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

SCAN_DIRS = ["src/core", "src/replica", "src/serial", "src/net"]

# Tool version: bump to invalidate every cache entry (operator or pipeline
# semantics changed).
PIPELINE_VERSION = 1

CHECK_SINGLE = ("corona-check", ["--schedules", "250", "--depth", "16"])
CHECK_BATCH = ("corona-check",
               ["--batch", "4", "--schedules", "200", "--depth", "16"])
CHECK_REPLICATED = ("corona-check",
                    ["--world", "replicated", "--schedules", "150",
                     "--depth", "20"])

# Per-directory kill plan: stage 1 fast unit tests, stage 2 corona-check
# sweeps, stage 3 property/chaos suites.  Names are CMake targets; tuples
# are (binary, argv) corona-check invocations expected to exit 0.
STAGE_PLANS = {
    "core": [
        ["core_components_test", "shared_state_test", "server_client_test",
         "client_failure_test"],
        [CHECK_SINGLE, CHECK_BATCH],
        ["property_test", "batch_property_test", "fault_injection_test",
         "client_api_test"],
    ],
    "serial": [
        ["serial_test", "storage_test"],
        [CHECK_SINGLE, CHECK_REPLICATED],
        ["property_test", "batch_property_test"],
    ],
    "replica": [
        ["replica_components_test", "replica_integration_test"],
        [CHECK_REPLICATED, CHECK_SINGLE],
        ["replica_chaos_test", "replica_edge_test", "peer_join_test",
         "replica_cold_restart_test"],
    ],
    "net": [
        ["net_frame_test", "net_address_test"],
        ["socket_loopback_test"],
        ["net_frame_fuzz_test"],
    ],
}

# "Nearest oracle" hint for survivors: the suite a bug in this directory
# should have tripped, used when triaging MUTATION_REPORT.json survivors.
NEAREST_ORACLE = {
    "core": "corona-check single/batched oracles + property_test",
    "serial": "serial_test codec round-trips",
    "replica": "corona-check replicated oracles + replica_chaos_test",
    "net": "net_frame_test / socket_loopback_test",
}

TEST_TIMEOUT_S = 240
CHECK_TIMEOUT_S = 300
BUILD_TIMEOUT_S = 900


class GoldenSpec(NamedTuple):
    gid: str
    rel: str           # file under the repo root
    find: str          # regex locating the target line
    sub: str           # replacement applied to that line (re.sub)
    description: str
    nth: int = 0       # which match when the pattern hits several lines


# The golden mutants: known-real bugs the oracle stack is documented to
# catch (the `--seed-*-bug` plants, ANALYSIS.md §4) plus two protocol-core
# classics.  Each must die at stage <= 2.
GOLDENS = [
    GoldenSpec(
        "golden-gap-detection-off",
        "src/core/client.cc",
        r"rec\.seq > r\.next_expected && config_\.gap_detection",
        "rec.seq > r.next_expected && false",
        "client applies reordered deliveries without gap detection "
        "(--seed-bug equivalent: silent divergence)",
    ),
    GoldenSpec(
        "golden-drop-batch-tail",
        "src/core/server.cc",
        r"config_\.debug_drop_batch_tail && msgs\.size\(\) > 1",
        "msgs.size() > 1",
        "server drops the tail record of every coalesced batch frame "
        "(--seed-batch-bug equivalent)",
    ),
    GoldenSpec(
        "golden-sequencer-skip",
        "src/replica/coordinator.cc",
        r"rec\.seq = cg\.next_seq\+\+;",
        "rec.seq = ++cg.next_seq;",
        "coordinator sequencer skips a sequence number per multicast "
        "(total-order gap)",
    ),
    GoldenSpec(
        "golden-lock-lifo",
        "src/core/locks.cc",
        r"e\.holder = e\.queue\.front\(\);",
        "e.holder = e.queue.back();",
        "lock release grants the newest waiter but dequeues the oldest "
        "(FIFO inversion + lost waiter)",
        0,  # first occurrence: LockTable::release (the second is drop_member)
    ),
]


# ---------------------------------------------------------------------------
# Source masking: blank strings and comments (preserving column positions)
# so operators only fire on real code.
# ---------------------------------------------------------------------------

def mask_source(text: str) -> list[str]:
    """Returns the file as lines with string/char literals and comments
    replaced by spaces.  Positions are preserved so a regex match on a
    masked line maps 1:1 onto the raw line."""
    out_lines: list[str] = []
    in_block = False
    for raw in text.splitlines():
        buf = list(raw)
        i, n = 0, len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    for j in range(i, n):
                        buf[j] = " "
                    i = n
                else:
                    for j in range(i, end + 2):
                        buf[j] = " "
                    in_block = False
                    i = end + 2
                continue
            c = raw[i]
            if raw.startswith("//", i):
                for j in range(i, n):
                    buf[j] = " "
                break
            if raw.startswith("/*", i):
                in_block = True
                continue
            if c in "\"'":
                quote = c
                j = i + 1
                while j < n:
                    if raw[j] == "\\":
                        j += 2
                        continue
                    if raw[j] == quote:
                        break
                    j += 1
                for k in range(i + 1, min(j, n)):
                    buf[k] = " "
                i = min(j, n - 1) + 1
                continue
            i += 1
        out_lines.append("".join(buf))
    return out_lines


# ---------------------------------------------------------------------------
# Mutation operators
# ---------------------------------------------------------------------------

class Mutant(NamedTuple):
    mid: str          # stable id: rel:line:op:k-hash
    rel: str          # repo-relative path
    line: int         # 1-based
    op: str
    original: str     # the raw line before mutation
    mutated: str      # the raw line after mutation
    description: str


def _line_mutant(rel: str, lineno: int, op: str, k: int, raw: str,
                 mutated: str, desc: str) -> Mutant:
    sig = hashlib.sha256(
        f"{op}|{raw}|{mutated}".encode()).hexdigest()[:8]
    mid = f"{rel}:{lineno}:{op}:{k}-{sig}"
    return Mutant(mid, rel, lineno, op, raw, mutated, desc)


# Relational flips.  Bare `<`/`>` only when space-padded (the repo style for
# binary comparisons; template args and arrows are unspaced).  `<=`/`>=` and
# `==`/`!=` are unambiguous modulo shifts and the spaceship.
RELOP_FLIPS = [
    (re.compile(r"(?<=[\w\s)\]]) <= (?=[\w\s(\-+!])"), " < ", "<= -> <"),
    (re.compile(r"(?<=[\w\s)\]]) >= (?=[\w\s(\-+!])"), " > ", ">= -> >"),
    (re.compile(r"(?<=[\w\s)\]]) < (?=[\w\s(\-+!])"), " <= ", "< -> <="),
    (re.compile(r"(?<=[\w\s)\]]) > (?=[\w\s(\-+!])"), " >= ", "> -> >="),
    (re.compile(r"(?<=[\w\s)\]]) == (?=[\w\s(\-+!])"), " != ", "== -> !="),
    (re.compile(r"(?<=[\w\s)\]]) != (?=[\w\s(\-+!])"), " == ", "!= -> =="),
]

OFFBYONE_SUBS = [
    (re.compile(r"\+ 1(?=[;,)\s\]])"), "+ 2", "+1 -> +2"),
    (re.compile(r"- 1(?=[;,)\s\]])"), "- 2", "-1 -> -2"),
]

DELCALL_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*"
    r"[A-Za-z_]*(?:flush|ack|send|erase|push_back)\w*\s*\(.*\)\s*;\s*$")

CONST_LINE_RE = re.compile(
    r"timeout|interval|delay|batch|backoff|retry|keepalive|max|limit|bound"
    r"|window|threshold", re.IGNORECASE)
CONST_INT_RE = re.compile(r"(?<![\w.])([2-9]|[1-9]\d+)(?![\w.])")

SKIP_LINE_RE = re.compile(
    r"^\s*(?:#|template\b|static_assert\b|using\b|namespace\b|case\b"
    r"|CORONA_|LOG_)")


def find_ternary(masked: str) -> tuple[int, int, int] | None:
    """Finds a single-line spaced ternary; returns (q, c, end) — positions
    of ' ? ', ' : ' and the arm end — or None."""
    q = masked.find(" ? ")
    if q < 0:
        return None
    c = masked.find(" : ", q + 3)
    if c < 0 or "?" in masked[q + 3:c]:
        return None
    # Second arm runs to the last of ; ) , on the line (trailing delimiters).
    tail = masked.rstrip()
    end = len(tail)
    while end > c + 3 and tail[end - 1] in ");,":
        end -= 1
    if end <= c + 3:
        return None
    # Arms must be balanced so we don't cut a call in half.
    for lo, hi in ((q + 3, c), (c + 3, end)):
        seg = masked[lo:hi]
        if seg.count("(") != seg.count(")") or not seg.strip():
            return None
    return q, c, end


def generate_for_file(rel: str, text: str) -> list[Mutant]:
    mutants: list[Mutant] = []
    masked_lines = mask_source(text)
    raw_lines = text.splitlines()
    for idx, (raw, masked) in enumerate(zip(raw_lines, masked_lines)):
        lineno = idx + 1
        if SKIP_LINE_RE.match(masked) or not masked.strip():
            continue
        # relop / conditional boundary
        k = 0
        for pat, repl, desc in RELOP_FLIPS:
            for m in pat.finditer(masked):
                mutated = raw[:m.start()] + repl + raw[m.end():]
                mutants.append(_line_mutant(
                    rel, lineno, "relop", k, raw, mutated, desc))
                k += 1
        # off-by-one
        k = 0
        for pat, repl, desc in OFFBYONE_SUBS:
            for m in pat.finditer(masked):
                mutated = raw[:m.start()] + repl + raw[m.end():]
                mutants.append(_line_mutant(
                    rel, lineno, "offbyone", k, raw, mutated, desc))
                k += 1
        # delete side-effecting statement
        if (DELCALL_RE.match(masked) and "=" not in masked
                and masked.count("(") == masked.count(")")):
            mutated = raw[:len(raw) - len(raw.lstrip())] + ";"
            mutants.append(_line_mutant(
                rel, lineno, "delcall", 0, raw, mutated,
                "side-effecting statement deleted"))
        # ternary arm swap
        t = find_ternary(masked)
        if t is not None:
            q, c, end = t
            mutated = (raw[:q + 3] + raw[c + 3:end] + " : "
                       + raw[q + 3:c] + raw[end:])
            if mutated != raw:
                mutants.append(_line_mutant(
                    rel, lineno, "ternary", 0, raw, mutated,
                    "ternary arms swapped"))
        # constant perturbation on timeout/batch/bound lines
        if CONST_LINE_RE.search(masked):
            k = 0
            for m in CONST_INT_RE.finditer(masked):
                val = int(m.group(1))
                mutated = raw[:m.start()] + str(val * 2) + raw[m.end():]
                mutants.append(_line_mutant(
                    rel, lineno, "const", k, raw, mutated,
                    f"constant {val} -> {val * 2}"))
                k += 1
    return mutants


def scan_tree(repo: str) -> list[Mutant]:
    mutants: list[Mutant] = []
    for d in SCAN_DIRS:
        root = os.path.join(repo, d)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".cc"):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, repo)
                with open(path, encoding="utf-8") as f:
                    text = f.read()
                mutants.extend(generate_for_file(rel, text))
    return mutants


def golden_mutants(repo: str) -> list[Mutant]:
    out: list[Mutant] = []
    for g in GOLDENS:
        path = os.path.join(repo, g.rel)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        hits = [(i + 1, ln) for i, ln in enumerate(lines)
                if re.search(g.find, ln)]
        if g.nth >= len(hits):
            raise RuntimeError(
                f"golden {g.gid}: pattern {g.find!r} matched "
                f"{len(hits)} lines in {g.rel} (need index {g.nth}) — "
                "update the GoldenSpec")
        lineno, raw = hits[g.nth]
        mutated = re.sub(g.find, g.sub.replace("\\", "\\\\"), raw)
        out.append(Mutant(g.gid, g.rel, lineno, "golden", raw, mutated,
                          g.description))
    return out


# ---------------------------------------------------------------------------
# Build & run
# ---------------------------------------------------------------------------

class Pipeline:
    def __init__(self, repo: str, build_root: str, verbose: bool = False):
        self.repo = repo
        self.build_root = os.path.abspath(build_root)
        self.tree = os.path.join(self.build_root, "tree")
        self.bld = os.path.join(self.build_root, "bld")
        self.verbose = verbose

    # -- shadow tree ---------------------------------------------------------

    def setup(self) -> None:
        """Copies the repo into the shadow tree and configures a fast -O0
        build with the invariant checkpoints active."""
        os.makedirs(self.build_root, exist_ok=True)
        for sub in ("CMakeLists.txt", "CMakePresets.json", ".clang-tidy"):
            src = os.path.join(self.repo, sub)
            if os.path.isfile(src):
                os.makedirs(self.tree, exist_ok=True)
                shutil.copy2(src, os.path.join(self.tree, sub))
        for sub in ("src", "tests", "bench", "examples", "fuzz", "tools"):
            src = os.path.join(self.repo, sub)
            dst = os.path.join(self.tree, sub)
            if not os.path.isdir(src):
                continue
            shutil.rmtree(dst, ignore_errors=True)
            shutil.copytree(src, dst,
                            ignore=shutil.ignore_patterns(
                                "build", ".git", "__pycache__"))
        if not os.path.isfile(os.path.join(self.bld, "CMakeCache.txt")):
            self._run(["cmake", "-S", self.tree, "-B", self.bld,
                       "-DCMAKE_BUILD_TYPE=Debug",
                       "-DCMAKE_CXX_FLAGS_DEBUG=-O0"],
                      timeout=BUILD_TIMEOUT_S)

    def sync_tests(self) -> None:
        """Re-copies tests/ (oracles may have grown since setup)."""
        src = os.path.join(self.repo, "tests")
        dst = os.path.join(self.tree, "tests")
        shutil.rmtree(dst, ignore_errors=True)
        shutil.copytree(src, dst)

    def _run(self, argv: list[str], timeout: int,
             cwd: str | None = None) -> subprocess.CompletedProcess:
        if self.verbose:
            print(f"    $ {' '.join(argv)}", flush=True)
        return subprocess.run(argv, cwd=cwd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True,
                              timeout=timeout)

    def build_target(self, target: str) -> tuple[bool, str]:
        try:
            proc = self._run(["cmake", "--build", self.bld,
                              "--target", target, "-j2"],
                             timeout=BUILD_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            return False, "build timeout"
        return proc.returncode == 0, proc.stdout[-4000:]

    def _binary(self, name: str) -> str:
        for cand in (os.path.join(self.bld, "tests", name),
                     os.path.join(self.bld, "src", name),
                     os.path.join(self.bld, name)):
            if os.path.isfile(cand):
                return cand
        raise FileNotFoundError(f"binary {name} not found under {self.bld}")

    def run_oracle(self, entry) -> tuple[bool, str, float]:
        """Builds + runs one stage entry.  Returns (killed, detail, secs)."""
        t0 = time.monotonic()
        if isinstance(entry, tuple):
            binary_name, extra = entry
            target, timeout = "corona_check", CHECK_TIMEOUT_S
            label = f"{binary_name} {' '.join(extra)}"
        else:
            binary_name, extra = entry, []
            target, timeout = entry, TEST_TIMEOUT_S
            label = entry
        ok, out = self.build_target(target)
        if not ok:
            # A mutant that breaks the *test* build (e.g. a deleted symbol)
            # still counts as caught by the build, handled by the caller.
            return True, f"build of {target} failed", time.monotonic() - t0
        argv = [self._binary(binary_name)] + list(extra)
        if not isinstance(entry, tuple):
            argv.append("--gtest_brief=1")
        try:
            proc = self._run(argv, timeout=timeout)
        except subprocess.TimeoutExpired:
            return True, f"{label}: timeout (hang)", time.monotonic() - t0
        killed = proc.returncode != 0
        detail = f"{label}: exit {proc.returncode}"
        return killed, detail, time.monotonic() - t0

    # -- mutant lifecycle ----------------------------------------------------

    def apply(self, m: Mutant) -> bytes:
        path = os.path.join(self.tree, m.rel)
        with open(path, "rb") as f:
            original = f.read()
        lines = original.decode("utf-8").splitlines(keepends=True)
        idx = m.line - 1
        eol = "\n" if lines[idx].endswith("\n") else ""
        if lines[idx].rstrip("\n") != m.original:
            raise RuntimeError(
                f"{m.mid}: tree line {m.line} no longer matches the mutant "
                "(stale mutant id — regenerate)")
        lines[idx] = m.mutated + eol
        with open(path, "w", encoding="utf-8") as f:
            f.write("".join(lines))
        return original

    def restore(self, m: Mutant, original: bytes) -> None:
        with open(os.path.join(self.tree, m.rel), "wb") as f:
            f.write(original)

    def run_mutant(self, m: Mutant) -> dict:
        """Runs the tiered pipeline for one mutant; returns a result dict."""
        plan = STAGE_PLANS[top_dir(m.rel)]
        t0 = time.monotonic()
        original = self.apply(m)
        result = {
            "id": m.mid, "file": m.rel, "line": m.line, "op": m.op,
            "description": m.description,
            "diff": unified_diff(m),
        }
        try:
            ok, out = self.build_target("corona")
            if not ok:
                result.update(status="stillborn", stage=0,
                              killer="compile error",
                              wall_s=round(time.monotonic() - t0, 1))
                return result
            for stage_no, stage in enumerate(plan, start=1):
                for entry in stage:
                    killed, detail, _secs = self.run_oracle(entry)
                    if killed:
                        result.update(
                            status="killed", stage=stage_no, killer=detail,
                            wall_s=round(time.monotonic() - t0, 1))
                        return result
            result.update(status="survived", stage=None, killer=None,
                          nearest_oracle=NEAREST_ORACLE[top_dir(m.rel)],
                          stages_run=len(plan),
                          wall_s=round(time.monotonic() - t0, 1))
            return result
        finally:
            self.restore(m, original)

    def rebuild_pristine(self) -> None:
        """After a batch of mutants, rebuild once so the tree's objects match
        the pristine sources again (keeps later cache hits honest)."""
        self.build_target("corona")


def top_dir(rel: str) -> str:
    parts = rel.replace(os.sep, "/").split("/")
    return parts[1] if len(parts) > 1 and parts[0] == "src" else parts[0]


def unified_diff(m: Mutant) -> str:
    return "".join(difflib.unified_diff(
        [m.original + "\n"], [m.mutated + "\n"],
        fromfile=f"a/{m.rel}", tofile=f"b/{m.rel}",
        lineterm="\n", n=0)).replace("@@ -1 +1 @@\n", f"@@ line {m.line} @@\n")


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

def cache_key(repo: str, m: Mutant) -> str:
    path = os.path.join(repo, m.rel)
    with open(path, "rb") as f:
        file_hash = hashlib.sha256(f.read()).hexdigest()
    plan = STAGE_PLANS[top_dir(m.rel)]
    plan_sig = hashlib.sha256(
        json.dumps(plan, sort_keys=True).encode()).hexdigest()[:12]
    return f"v{PIPELINE_VERSION}:{m.mid}:{file_hash[:16]}:{plan_sig}"


def load_cache(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return {}


def save_cache(path: str, cache: dict) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(cache, f, indent=1, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------

def deterministic_sample(mutants: list[Mutant], n: int,
                         seed: int) -> list[Mutant]:
    """Same seed + same mutant set -> same sample, independent of dict/hash
    order.  Sorted by id first so the population order is canonical."""
    population = sorted(mutants, key=lambda m: m.mid)
    if n >= len(population):
        return population
    rng = random.Random(seed)
    return sorted(rng.sample(population, n), key=lambda m: m.mid)


# ---------------------------------------------------------------------------
# Reviewed-equivalent ledger
# ---------------------------------------------------------------------------

def stable_key(mid: str) -> str:
    """Line-number-free mutant key (`rel:op:k-sig`).  The sig hashes the
    line's content together with its mutation, so the key survives the
    renumbering that unrelated edits cause — the same property the lint
    baselines get from `(rule, subject, leaf)` keys."""
    if mid.count(":") < 3:
        return mid  # goldens and other non-positional ids
    rel, _line, op, tail = mid.rsplit(":", 3)
    return f"{rel}:{op}:{tail}"


def load_equivalents(baseline: dict) -> dict[str, str]:
    """The `equivalents` section of the CI baseline: reviewed mutants that
    are semantically equivalent to the original program (or observable only
    through means the suite deliberately excludes, e.g. death tests).  Each
    entry must carry a written rationale; they are excluded from the score
    denominator, and a recorded equivalent that a test KILLS fails the run
    loudly — the ledger must shrink when the oracles strengthen, exactly
    like the lint baselines."""
    out: dict[str, str] = {}
    for entry in baseline.get("equivalents", []):
        key, rationale = entry.get("key", ""), entry.get("rationale", "")
        if not key or not rationale.strip():
            raise ValueError(
                f"equivalents entry {key!r} has no written rationale")
        out[key] = rationale
    return out


def resolve_equivalents(equivalents: dict[str, str],
                        all_mutants: list[Mutant]) -> dict[str, str]:
    """Map ledger keys onto current mutant ids.  A key may be a full
    line-qualified id (exact, survives textual twins) or the line-free
    stable key (survives renumbering).  A stable key matching several
    mutation points — identical lines elsewhere in the same file — is
    refused: twins can differ semantically (`n > 0` after sendmsg is an
    unreachable boundary; the same text after recv is an EOF bug), so an
    ambiguous entry must pin the exact id.  Raises ValueError."""
    all_mids = {m.mid for m in all_mutants}
    by_stable: dict[str, list[str]] = {}
    for m in all_mutants:
        by_stable.setdefault(stable_key(m.mid), []).append(m.mid)
    resolved: dict[str, str] = {}
    for key, why in equivalents.items():
        if key in all_mids:
            resolved[key] = why
            continue
        mids = by_stable.get(key, [])
        if len(mids) > 1:
            raise ValueError(
                f"equivalents ledger key {key!r} is ambiguous — "
                f"{len(mids)} textual twins ({', '.join(sorted(mids))}); "
                "pin the full line-qualified id")
        if mids:
            resolved[mids[0]] = why
        # An unmatched key is not an error: the line content changed or the
        # mutation point vanished; the entry is inert until it matches.
    return resolved


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def summarize(results: list[dict], generated: int, config: dict) -> dict:
    executed = [r for r in results if r["status"] != "stillborn"]
    killed = [r for r in executed if r["status"] == "killed"]
    survived = [r for r in executed if r["status"] == "survived"]
    # Reviewed equivalents are executed (so a stale entry is noticed) but
    # excluded from the score denominator: an unkillable mutant measures
    # nothing about oracle strength.
    equivalent = [r for r in executed if r["status"] == "equivalent"]
    by_stage: dict[str, int] = {}
    by_op: dict[str, dict[str, int]] = {}
    by_dir: dict[str, dict[str, int]] = {}
    for r in killed:
        by_stage[str(r["stage"])] = by_stage.get(str(r["stage"]), 0) + 1
    for r in executed:
        for table, key in ((by_op, r["op"]), (by_dir, top_dir(r["file"]))):
            slot = table.setdefault(
                key, {"killed": 0, "survived": 0, "equivalent": 0})
            slot[r["status"]] += 1
    scored = len(killed) + len(survived)
    score = (len(killed) / scored) if scored else 0.0
    return {
        "config": config,
        "generated": generated,
        "executed": len(executed),
        "killed": len(killed),
        "survived": len(survived),
        "equivalent": len(equivalent),
        "stillborn": len(results) - len(executed),
        "score": round(score, 4),
        "killed_by_stage": by_stage,
        "by_operator": by_op,
        "by_directory": by_dir,
        "survivors": [
            {k: r[k] for k in ("id", "file", "line", "op", "description",
                               "diff", "nearest_oracle")}
            for r in sorted(survived, key=lambda r: r["id"])
        ],
        "mutants": sorted(results, key=lambda r: r["id"]),
    }


# ---------------------------------------------------------------------------
# Main
# ---------------------------------------------------------------------------

def repo_root() -> str:
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="corona-mutate", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--list", action="store_true",
                      help="enumerate mutation points and exit")
    mode.add_argument("--full", action="store_true",
                      help="run every generated mutant (see --max-mutants)")
    mode.add_argument("--sample", type=int, metavar="N",
                      help="run a deterministic sample of N mutants")
    mode.add_argument("--ci", action="store_true",
                      help="sampled CI mode: budgeted sample + goldens, "
                      "blocking on --baseline score regression")
    mode.add_argument("--golden-only", action="store_true",
                      help="run only the golden mutants")
    mode.add_argument("--mutant", metavar="ID",
                      help="run one mutant by id (reproduce a survivor)")
    parser.add_argument("--repo", default=repo_root())
    parser.add_argument("--build-root", default=None,
                        help="work area (default <repo>/build/mutate)")
    parser.add_argument("--report", default=None,
                        help="report path (default <repo>/MUTATION_REPORT.json"
                        "; CI mode defaults to build-root/ci_report.json)")
    parser.add_argument("--max-mutants", type=int, default=200,
                        help="cap on executed mutants in --full mode "
                        "(deterministically sampled down; default 200)")
    parser.add_argument("--sample-seed", type=int, default=20260806,
                        help="seed for the deterministic sampler")
    parser.add_argument("--baseline", default=None,
                        help="CI baseline json (score floor + sample spec)")
    parser.add_argument("--recheck-survivors", action="store_true",
                        help="re-run cached survivors (after adding tests)")
    parser.add_argument("--no-goldens", action="store_true",
                        help="skip the golden mutants (debugging only)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    repo = os.path.abspath(args.repo)
    build_root = args.build_root or os.path.join(repo, "build", "mutate")

    # The reviewed-equivalent ledger applies in every mode, not just --ci:
    # the default baseline is consulted when --baseline is not given.
    baseline_path = args.baseline or os.path.join(
        repo, "tools", "mutate", "MUTATION_BASELINE.json")
    baseline: dict = {}
    if os.path.isfile(baseline_path):
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f)
    try:
        equivalents = load_equivalents(baseline)
    except ValueError as e:
        print(f"corona-mutate: {e}", file=sys.stderr)
        return 2

    all_mutants = scan_tree(repo)
    goldens = golden_mutants(repo)
    try:
        equivalents = resolve_equivalents(equivalents, all_mutants)
    except ValueError as e:
        print(f"corona-mutate: {e}", file=sys.stderr)
        return 2

    if args.list:
        for m in sorted(all_mutants, key=lambda m: m.mid):
            print(f"{m.mid}\n  - {m.original.strip()}\n  + {m.mutated.strip()}")
        print(f"# {len(all_mutants)} mutation points over "
              f"{', '.join(SCAN_DIRS)} (+{len(goldens)} goldens)",
              file=sys.stderr)
        return 0

    # Choose the run set.
    config: dict = {"sample_seed": args.sample_seed,
                    "pipeline_version": PIPELINE_VERSION,
                    "scan_dirs": SCAN_DIRS}
    if args.mutant:
        chosen = [m for m in all_mutants + goldens if m.mid == args.mutant]
        if not chosen:
            print(f"corona-mutate: no mutant {args.mutant!r} "
                  "(ids change when the source line changes; try --list)",
                  file=sys.stderr)
            return 2
        run_goldens: list[Mutant] = []
        config["mode"] = "single"
    elif args.golden_only:
        chosen, run_goldens = [], goldens
        config["mode"] = "golden-only"
    elif args.ci:
        n = int(baseline.get("sample_size", 10))
        seed = int(baseline.get("sample_seed", args.sample_seed))
        chosen = deterministic_sample(all_mutants, n, seed)
        run_goldens = [] if args.no_goldens else goldens
        config.update(mode="ci", sample_size=n, sample_seed=seed)
    elif args.sample is not None:
        chosen = deterministic_sample(all_mutants, args.sample,
                                      args.sample_seed)
        run_goldens = [] if args.no_goldens else goldens
        config.update(mode="sample", sample_size=args.sample)
    elif args.full:
        chosen = deterministic_sample(all_mutants, args.max_mutants,
                                      args.sample_seed)
        run_goldens = [] if args.no_goldens else goldens
        config.update(mode="full", max_mutants=args.max_mutants)
    else:
        parser.print_usage(sys.stderr)
        return 2

    pipe = Pipeline(repo, build_root, verbose=args.verbose)
    print(f"[mutate] shadow tree {pipe.tree}", flush=True)
    pipe.setup()
    pipe.sync_tests()

    cache_path = os.path.join(build_root, "cache.json")
    cache = load_cache(cache_path)

    results: list[dict] = []
    golden_results: list[dict] = []
    stale_equivalents: list[tuple[str, str]] = []
    todo = [(m, False) for m in chosen] + [(g, True) for g in run_goldens]
    for i, (m, is_golden) in enumerate(todo, start=1):
        key = cache_key(repo, m)
        cached = cache.get(key)
        reuse = cached is not None and not (
            args.recheck_survivors and cached["status"] == "survived")
        if reuse:
            r = dict(cached)
            r["cached"] = True
        else:
            print(f"[mutate] ({i}/{len(todo)}) {m.mid}", flush=True)
            r = pipe.run_mutant(m)
            cache[key] = r
            save_cache(cache_path, cache)
        # Ledger relabeling happens after the cache so cached verdicts stay
        # raw: a surviving mutant with a reviewed equivalence rationale is
        # excluded from the score; a KILLED one means the entry went stale.
        if not is_golden and m.mid in equivalents:
            if r["status"] == "survived":
                r["status"] = "equivalent"
                r["equivalence_rationale"] = equivalents[m.mid]
            elif r["status"] == "killed":
                stale_equivalents.append((m.mid, r.get("killer", "")))
        (golden_results if is_golden else results).append(r)
        tag = "CACHED " if reuse else ""
        print(f"[mutate]   {tag}{r['status']}"
              + (f" at stage {r['stage']} ({r['killer']})"
                 if r["status"] == "killed" else ""), flush=True)
    pipe.rebuild_pristine()

    # Golden gate: each must be killed at stage <= 2.
    golden_ok = True
    for r in golden_results:
        ok = r["status"] == "killed" and (r["stage"] or 99) <= 2
        golden_ok &= ok
        print(f"[mutate] golden {r['id']}: {r['status']}"
              f" stage={r.get('stage')} -> {'OK' if ok else 'FAIL'}")

    report = summarize(results, generated=len(all_mutants), config=config)
    report["golden"] = [
        {"id": r["id"], "status": r["status"], "stage": r.get("stage"),
         "killer": r.get("killer"), "description": r["description"]}
        for r in golden_results
    ]
    report["golden_ok"] = golden_ok

    report_path = args.report or (
        os.path.join(build_root, "ci_report.json") if args.ci
        else os.path.join(repo, "MUTATION_REPORT.json"))
    if args.mutant:
        print(json.dumps(results[0], indent=2))
        return 0 if results and results[0]["status"] != "survived" else 1
    with open(report_path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"[mutate] report -> {report_path}")
    print(f"[mutate] generated {report['generated']} points; executed "
          f"{report['executed']}: {report['killed']} killed, "
          f"{report['survived']} survived, "
          f"{report['equivalent']} reviewed-equivalent, "
          f"{report['stillborn']} stillborn "
          f"-> score {report['score']:.1%}")

    if stale_equivalents:
        for mid, killer in stale_equivalents:
            print(f"[mutate] FAIL: recorded equivalent {mid} was KILLED "
                  f"({killer}) — remove its stale ledger entry from "
                  f"{baseline_path}", file=sys.stderr)
        return 1
    if not golden_ok and not args.no_goldens:
        print("[mutate] FAIL: a golden mutant was not killed at stage <= 2",
              file=sys.stderr)
        return 1
    if args.ci and args.baseline:
        floor = float(baseline.get("score_floor", 0.0))
        if report["executed"] and report["score"] < floor:
            print(f"[mutate] FAIL: sampled score {report['score']:.1%} "
                  f"below recorded baseline floor {floor:.1%}",
                  file=sys.stderr)
            return 1
        print(f"[mutate] CI gate OK: score {report['score']:.1%} >= "
              f"floor {floor:.1%}, goldens killed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
