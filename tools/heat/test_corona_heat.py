#!/usr/bin/env python3
"""Self-test for corona_heat.py: every planted fixture violation — the
alloc, copy and format leaf shapes, including the signature-derived
by-value findings — must be caught, every sanctioned counter-case (moves,
scalar pushes, reserved range-appends, log macros, waivers, loop-context
boundaries) must stay silent, the baseline gate must enforce written
rationales, and the shared call-graph engine must keep corona-reach's own
fixtures reporting exactly what they did before the extraction."""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)
import corona_heat  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")
REACH_DIR = os.path.join(os.path.dirname(HERE), "reach")


def run(argv: list[str]) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = corona_heat.main(argv)
    return code, out.getvalue(), err.getvalue()


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def run_fixture(name: str) -> tuple[int, str, str]:
    return run(["--frontend", "textual", "--no-baseline", fixture(name)])


class AllocInHotPath(unittest.TestCase):
    def test_container_insert_and_new_behind_a_helper(self) -> None:
        code, out, _ = run_fixture("fixture_alloc.cc")
        self.assertEqual(code, 1)
        self.assertIn("[alloc-in-hot-path]", out)
        self.assertIn("container-insert", out)
        self.assertIn("new-expr", out)
        # The via chain walks through the helper, not just the entry.
        self.assertIn("AllocIngest::on_ingest -> AllocIngest::tag", out)


class CopyInHotPath(unittest.TestCase):
    def test_all_five_copy_shapes_are_caught(self) -> None:
        code, out, _ = run_fixture("fixture_copy.cc")
        self.assertEqual(code, 1)
        self.assertIn("byval-param(m)", out)
        self.assertIn("copy-init", out)
        self.assertIn("copy-push(m)", out)
        self.assertIn("copy-arg(m)", out)
        self.assertIn("byval-return(Message)", out)

    def test_scalar_operands_do_not_flag(self) -> None:
        # `send(t, m)` flags because m is a Message; the scalar target id
        # next to it must never surface as an operand.
        _, out, _ = run_fixture("fixture_copy.cc")
        self.assertNotIn("copy-arg(t)", out)
        self.assertNotIn("copy-push(t)", out)

    def test_rvo_initialization_flags_the_callee_not_the_caller(self) -> None:
        _, out, _ = run_fixture("fixture_copy.cc")
        # `Message note = make_note()` is not a copy-init; the by-value
        # return is charged to make_note's signature.
        self.assertNotIn("fixture_copy.cc:20", out)
        self.assertIn("CopyFanout::make_note incurs byval-return", out)


class FormatInHotPath(unittest.TestCase):
    def test_stream_and_to_string_behind_a_helper(self) -> None:
        code, out, _ = run_fixture("fixture_format.cc")
        self.assertEqual(code, 1)
        self.assertIn("[format-in-hot-path]", out)
        self.assertIn("stream-format", out)
        self.assertIn("to-string", out)
        self.assertIn("FormatTrace::on_commit -> FormatTrace::describe", out)

    def test_log_macro_formatting_is_sanctioned(self) -> None:
        _, out, _ = run_fixture("fixture_format.cc")
        # on_commit's only formatting sits inside CORONA_LOG.
        self.assertNotIn("on_commit incurs", out)


class Waivers(unittest.TestCase):
    def test_waived_planted_copy_is_suppressed(self) -> None:
        code, out, err = run_fixture("fixture_waived.cc")
        self.assertEqual(code, 0, out + err)

    def test_clean_fixture_is_clean(self) -> None:
        # Moves, scalar pushes, reserved range-appends, log macros, and a
        # loop-context boundary hiding an allocation: all silent.
        code, out, err = run_fixture("fixture_clean.cc")
        self.assertEqual(code, 0, out + err)

    def test_whole_fixture_dir_plants_exactly_nine_findings(self) -> None:
        # alloc: container-insert + new-expr; copy: byval-param, copy-init,
        # copy-push, copy-arg, byval-return; format: stream-format +
        # to-string.  waived + clean contribute nothing.
        code, out, _ = run(["--frontend", "textual", "--no-baseline",
                            FIXTURES])
        self.assertEqual(code, 1)
        self.assertEqual(len([ln for ln in out.splitlines()
                              if "] " in ln and " incurs " in ln]), 9)


class Baseline(unittest.TestCase):
    def test_baseline_requires_a_written_rationale(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            code, _, err = run(["--frontend", "textual",
                                "--write-baseline", base,
                                fixture("fixture_alloc.cc")])
            self.assertEqual(code, 0, err)

            # Freshly written entries have empty rationales: still a gate
            # failure, with a message pointing at the baseline.
            code, out, _ = run(["--frontend", "textual", "--baseline", base,
                                fixture("fixture_alloc.cc")])
            self.assertEqual(code, 1)
            self.assertIn("WITHOUT a rationale", out)

            with open(base, encoding="utf-8") as f:
                payload = json.load(f)
            self.assertEqual(len(payload["findings"]), 2)
            for entry in payload["findings"]:
                entry["rationale"] = "reviewed: fixture"
            with open(base, "w", encoding="utf-8") as f:
                json.dump(payload, f)

            code, out, err = run(["--frontend", "textual",
                                  "--baseline", base,
                                  fixture("fixture_alloc.cc")])
            self.assertEqual(code, 0, out + err)

    def test_rewrite_preserves_existing_rationales(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            run(["--frontend", "textual", "--write-baseline", base,
                 fixture("fixture_alloc.cc")])
            with open(base, encoding="utf-8") as f:
                payload = json.load(f)
            payload["findings"][0]["rationale"] = "kept across rewrites"
            with open(base, "w", encoding="utf-8") as f:
                json.dump(payload, f)

            run(["--frontend", "textual", "--write-baseline", base,
                 fixture("fixture_alloc.cc")])
            with open(base, encoding="utf-8") as f:
                payload = json.load(f)
            self.assertEqual(payload["findings"][0]["rationale"],
                             "kept across rewrites")

    def test_new_finding_fails_against_a_clean_baseline(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            run(["--frontend", "textual", "--write-baseline", base,
                 fixture("fixture_clean.cc")])
            code, out, _ = run(["--frontend", "textual", "--baseline", base,
                                fixture("fixture_copy.cc")])
            self.assertEqual(code, 1)
            self.assertIn("copy-in-hot-path", out)


class Frontends(unittest.TestCase):
    def test_require_libclang_fails_loudly_when_absent(self) -> None:
        if corona_heat._load_cindex() is not None:
            self.skipTest("libclang present; fallback path not reachable")
        code, _, err = run(["--frontend", "libclang", "--require-libclang",
                            fixture("fixture_clean.cc")])
        self.assertEqual(code, 2)
        self.assertIn("libclang", err)

    def test_auto_falls_back_to_textual_with_a_notice(self) -> None:
        if corona_heat._load_cindex() is not None:
            self.skipTest("libclang present; fallback path not reachable")
        code, _, err = run([fixture("fixture_clean.cc")])
        self.assertEqual(code, 0)

    def test_compile_commands_positional_is_accepted(self) -> None:
        # The acceptance-command shape: a .json db first, sources after.
        # Without libclang the db is ignored and textual runs.
        with tempfile.TemporaryDirectory() as tmp:
            db = os.path.join(tmp, "compile_commands.json")
            with open(db, "w", encoding="utf-8") as f:
                f.write("[]")
            code, out, err = run([db, fixture("fixture_clean.cc"),
                                  "--no-baseline"])
            self.assertEqual(code, 0, out + err)


class SharedEngineNoDrift(unittest.TestCase):
    """The callgraph extraction must not change what corona-reach reports:
    its fixture directory still plants exactly seven findings."""

    def test_reach_fixtures_unchanged(self) -> None:
        sys.path.insert(0, REACH_DIR)
        try:
            import corona_reach  # noqa: PLC0415
        finally:
            sys.path.remove(REACH_DIR)
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = corona_reach.main(
                ["--frontend", "textual", "--no-baseline",
                 os.path.join(REACH_DIR, "fixtures")])
        self.assertEqual(code, 1)
        self.assertEqual(len([ln for ln in out.getvalue().splitlines()
                              if "] " in ln and " reaches " in ln]), 7)


if __name__ == "__main__":
    unittest.main(verbosity=2)
