// heat fixture: planted copy-in-hot-path violations, one per leaf shape.
// A by-value heavy parameter never moved onward, a heavy copy-init from an
// lvalue, a heavy lvalue pushed into an outbox, a heavy lvalue re-sent per
// fan-out target, and a by-value heavy return two calls in.  The scalar
// target ids travelling next to them must NOT flag.
#include <cstdint>
#include <vector>

#define CORONA_HOT_PATH

struct Message {
  std::vector<std::uint8_t> payload;
};

class CopyFanout {
 public:
  // planted: byval-param(m) — by value, never std::move'd onward.
  CORONA_HOT_PATH void on_publish(Message m) {
    Message dup = m;  // planted: copy-init
    Message note = make_note();  // RVO territory; flags the callee, not here
    stash(dup);
    stash(note);
    broadcast(m);
  }

 private:
  Message make_note();  // planted: byval-return(Message)

  void stash(const Message& m) {
    outbox_.push_back(m);  // planted: copy-push(m)
  }

  void broadcast(const Message& m) {
    for (std::uint64_t t : targets_) {
      send(t, m);  // planted: copy-arg(m) — one deep copy per target
    }
  }

  void send(std::uint64_t to, const Message& m);

  std::vector<Message> outbox_;
  std::vector<std::uint64_t> targets_;
};

Message CopyFanout::make_note() { return Message{}; }
