// heat fixture: a planted heavy copy carrying an inline waiver.  The tool
// must stay silent — the waiver names the rule and states its reason.
#include <cstdint>
#include <vector>

#define CORONA_HOT_PATH

using Bytes = std::vector<std::uint8_t>;

class WaivedMirror {
 public:
  CORONA_HOT_PATH void on_frame(const Bytes& wire) {
    // heat: waive copy-in-hot-path -- the mirror buffer intentionally owns
    // a second copy; this is the sanctioned tee point.
    mirror_.push_back(wire);
  }

 private:
  std::vector<Bytes> mirror_;
};
