// heat fixture: entirely clean hot-path code.  Ownership transfer by move,
// scalar push_back, reserved range-append, log-macro formatting, and a
// loop-context dispatch boundary — the tool must report nothing here.
#include <cstdint>
#include <utility>
#include <vector>

#define CORONA_HOT_PATH
#define CORONA_LOOP_CONTEXT
#define CORONA_LOG(...) do {} while (0)

struct Message {
  std::vector<std::uint8_t> payload;
};

class MoveForward {
 public:
  // By-value heavy parameter moved onward: ownership transfer, not a copy.
  CORONA_HOT_PATH void on_accept(Message m) {
    enqueue(std::move(m));
  }

  CORONA_HOT_PATH void on_route(std::uint64_t peer) {
    peers_.push_back(peer);  // scalar push: not a heavy copy
    CORONA_LOG("routed " + std::to_string(peer));  // compiled-out log path
    audit();
  }

 private:
  void enqueue(Message m) {
    // Reserved contiguous range-append is amortized growth, not a node
    // allocation; the final push hands the buffer over by move.
    flat_.reserve(flat_.size() + m.payload.size());
    flat_.insert(flat_.end(), m.payload.begin(), m.payload.end());
    queue_.push_back(std::move(m));
  }

  // Dispatch boundary: annotated loop-context and allocating freely — the
  // hot-path walk must stop at this edge.
  CORONA_LOOP_CONTEXT void audit() {
    trail_ = new std::uint64_t[4];
  }

  std::vector<Message> queue_;
  std::vector<std::uint8_t> flat_;
  std::vector<std::uint64_t> peers_;
  std::uint64_t* trail_ = nullptr;
};
