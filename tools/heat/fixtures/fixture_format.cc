// heat fixture: planted format-in-hot-path violations.  A stringstream and
// a bare std::to_string behind a helper must be reported; the same
// formatting inside the logging macro is sanctioned (it compiles out below
// the active level) and must stay silent.
#include <cstdint>
#include <sstream>
#include <string>

#define CORONA_HOT_PATH
#define CORONA_LOG(...) do {} while (0)

class FormatTrace {
 public:
  CORONA_HOT_PATH void on_commit(std::uint64_t seq) {
    note_ = describe(seq);
    CORONA_LOG("commit " + std::to_string(seq));  // log macro: sanctioned
  }

 private:
  std::string describe(std::uint64_t seq) {
    std::ostringstream os;  // planted: stream-format
    os << "seq=" << std::to_string(seq);  // planted: to-string
    return os.str();
  }

  std::string note_;
};
