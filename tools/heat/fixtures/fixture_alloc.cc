// heat fixture: planted alloc-in-hot-path violations.  A node-based
// container insertion on the hot entry itself, and a raw `new` behind a
// helper one call away — both must be reported with their via chains.
#include <cstdint>
#include <map>

#define CORONA_HOT_PATH

struct Slot {
  std::uint64_t id;
};

class AllocIngest {
 public:
  CORONA_HOT_PATH void on_ingest(std::uint64_t id) {
    index_.emplace(id, next_++);  // planted: container-insert
    tag(id);
  }

 private:
  void tag(std::uint64_t id) {
    last_ = new Slot{id};  // planted: new-expr
  }

  std::map<std::uint64_t, std::uint64_t> index_;
  std::uint64_t next_ = 0;
  Slot* last_ = nullptr;
};
