#!/usr/bin/env python3
"""corona-heat: interprocedural hot-path allocation & copy lint.

The paper's sequencer is the per-message bottleneck: every multicast
traverses dispatch -> sequence -> apply -> log -> encode -> fan-out on one
thread, so an allocation or heavy-type copy anywhere on that path is paid
once per message (sometimes once per member).  ROADMAP item 2 wants a
zero-copy ByteBuffer hot path; before that refactor can land, somebody has
to ENUMERATE the copies and stop new ones from landing.  This tool is that
somebody.

It shares the whole-program call-graph engine with corona-reach
(tools/analysis/callgraph.py: textual + libclang frontends, conservative
name-based CHA, waiver parsing) and walks everything reachable from
functions annotated CORONA_HOT_PATH (src/util/context.h), stopping at
CORONA_LOOP_CONTEXT dispatch boundaries.  Three rules:

  alloc-in-hot-path    `new`, make_shared/make_unique, node-based container
                       insertion (insert/emplace), string construction or
                       concatenation.
  copy-in-hot-path     copies of heavy types (Message, Bytes, UpdateRecord,
                       Frame, std::string, std::vector<...>): by-value
                       parameters that are never std::move'd onward,
                       by-value returns of the domain types, heavy
                       copy-initialization from an lvalue, a bare lvalue
                       passed to send/send_batch or push_back (e.g. the
                       default fan-out loops re-copying one Message per
                       target).  send/push_back operands are type-checked
                       against the function's heavy-typed declarations and
                       parameters, so pushing a NodeId never flags.
  format-in-hot-path   to_string / ostringstream / snprintf / std::format
                       outside the Logger macros (CORONA_LOG / LOG_*),
                       which already compile out below the active level.

Findings are suppressed by an inline `// heat: waive <rule> -- reason` or
by the committed baseline tools/heat/heat_baseline.json, where EVERY entry
carries a written rationale.  That reviewed baseline IS the copy inventory
ROADMAP item 2b calls for, and the gate makes it monotonically shrinking:
a new hot-path allocation or copy fails the build; burning an entry down
removes it from the file.  Finding keys are (rule, containing function,
leaf kind) — line-number drift does not invalidate the inventory.

Exit status: 0 clean, 1 violations, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "analysis"))
import callgraph as cg  # noqa: E402
from callgraph import (  # noqa: E402,F401 - re-exported for tests
    CXX_EXTENSIONS,
    CallgraphConfig,
    Finding,
    Graph,
    annotated_entries,
    gather_files,
)

RULES = (
    "alloc-in-hot-path",
    "copy-in-hot-path",
    "format-in-hot-path",
)

# ---------------------------------------------------------------------------
# Leaf models
# ---------------------------------------------------------------------------

# The domain's heavy types: anything holding payload bytes or a container.
HEAVY_TYPES = r"(?:Message|Bytes|UpdateRecord|Frame|std::string|std::vector\s*<[^<>()]*>)"
# By-value returns are only flagged for the domain structs: std::string /
# std::vector returns are endemic to cold accessors sharing names with hot
# code under CHA, and the real payload carriers are these four.
HEAVY_RETURN_TYPES = {"Message", "Bytes", "UpdateRecord", "Frame"}

LOG_MACRO_RE = re.compile(r"\bCORONA_LOG\s*\(|\bLOG_(?:TRACE|DEBUG|INFO|WARN|ERROR)\s*\(")

ALLOC_LEAVES = [
    ("new-expr", re.compile(r"\bnew\s+[A-Za-z_(]")),
    ("make-managed", re.compile(r"\bmake_(?:shared|unique)\s*<")),
    # insert/emplace are node allocations on the associative containers the
    # tree actually uses on these paths (std::map member indices, outbox
    # maps).  Contiguous growth is NOT this leaf: emplace_back/emplace_front
    # and range-append (`v.insert(v.end(), ...)`) are amortized O(1) once
    # the buffer is reserved, which the encoder/frame reserve() work
    # guarantees — flagging them would re-open trivially-fixed entries.
    ("container-insert",
     re.compile(r"\.\s*(?:insert|emplace)(?!_back|_front|_hint)\s*\("
                r"\s*(?![A-Za-z_][\w.\->]*(?:\.|->)\s*end\s*\()")),
    ("string-build",
     re.compile(r"\bstd::string\s*[({]|\+\s*\"|\"\s*\+|\+=\s*\""),
     LOG_MACRO_RE),
]

COPY_LEAVES = [
    # Heavy-type copy-initialization from a bare lvalue chain (`Message m =
    # other;`, `Bytes b = rec.data;`).  Initialization from a call is not
    # matched: that is RVO/move territory, and the callee's return type is
    # what byval-return audits.
    ("copy-init", re.compile(
        rf"\b(?:const\s+)?{HEAVY_TYPES}\s+\w+\s*=\s*"
        r"[A-Za-z_]\w*(?:(?:\.|->)\w+)*\s*$")),
    # A bare lvalue handed to the fan-out primitives: the default engine
    # loops copy/re-encode it once per target.  std::move(x) and nested
    # calls deliberately do not match.  The captured operand name is
    # type-checked against the function's heavy declarations (below), so
    # `send(from, t, m)` flags only when `m` is a Message/Bytes/..., not
    # when it is a NodeId or other scalar.
    ("copy-arg", re.compile(
        r"\bsend(?:_batch)?\s*\([^()]*,\s*([A-Za-z_]\w*)\s*\)")),
    # push_back of a bare lvalue copies; push_back(std::move(x)) does not.
    # Operand-filtered like copy-arg: pushing a NodeId is not a copy worth
    # inventorying.
    ("copy-push", re.compile(r"\bpush_back\s*\(\s*([A-Za-z_]\w*)\s*\)")),
]

# Harvest model (produces no findings itself): names declared with a heavy
# type inside each body, by value or by reference — the reference case
# matters because copying *through* a `const Message&` is still a deep copy.
HEAVY_DECL_LEAVES = [
    ("decl", re.compile(
        rf"\b(?:const\s+)?{HEAVY_TYPES}(?:\s+|\s*&&?\s*)([A-Za-z_]\w*)")),
]

FORMAT_LEAVES = [
    ("stream-format", re.compile(
        r"\bo?stringstream\b|\bstd::format\s*\(|\bs?n?printf\s*\(",
    ), LOG_MACRO_RE),
    ("to-string", re.compile(r"\bto_string\s*\("), LOG_MACRO_RE),
]

CONFIG = CallgraphConfig(
    tool="heat",
    rules=RULES,
    leaf_models={
        "alloc": ALLOC_LEAVES,
        "copy": COPY_LEAVES,
        "format": FORMAT_LEAVES,
        "heavydecl": HEAVY_DECL_LEAVES,
    },
)

RULE_MODEL = {
    "alloc-in-hot-path": "alloc",
    "copy-in-hot-path": "copy",
    "format-in-hot-path": "format",
}

# Header analysis for copy-in-hot-path: by-value heavy parameters and
# by-value heavy returns, derived from the definition's signature text.
BYVAL_PARAM_RE = re.compile(
    rf"(?P<const>\bconst\s+)?(?P<type>{HEAVY_TYPES})\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?=,|\))")
# Any heavy parameter (value OR reference): seeds the per-function heavy
# name set used to type-check copy-arg/copy-push operands.
HEAVY_PARAM_RE = re.compile(
    rf"\b(?:const\s+)?{HEAVY_TYPES}(?:\s+|\s*&&?\s*)"
    r"([A-Za-z_]\w*)\s*(?=,|\)|=)")
COPY_OPERAND_RE = re.compile(r"^(copy-arg|copy-push)\((\w+)\)$")
HEADER_SPECIFIERS = {
    "static", "inline", "constexpr", "virtual", "explicit", "friend",
    "extern",
}

# ---------------------------------------------------------------------------
# Engine entry points, bound to this tool's config
# ---------------------------------------------------------------------------

_load_cindex = cg.load_cindex


def build_graph_textual(files: list) -> Graph:
    return cg.build_graph_textual(files, CONFIG)


def build_graph_libclang(db_dir: str, files: list) -> Graph | None:
    return cg.build_graph_libclang(db_dir, files, CONFIG)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def hot_reachable(graph: Graph, rule: str) -> dict:
    """qname -> via tuple for everything reachable from a CORONA_HOT_PATH
    entry (CHA-widened), stopping at loop-context dispatch boundaries and
    honoring `// heat: waive` on definitions and call sites."""
    entries = annotated_entries(graph, "hot_path")
    boundary = annotated_entries(graph, "loop_context") - entries
    via = {}
    queue = []
    for entry in sorted(entries):
        fn = graph.functions.get(entry)
        if fn is None or rule in fn.waived:
            continue
        via[entry] = (entry,)
        queue.append(entry)
    while queue:
        qname = queue.pop(0)
        fn = graph.functions.get(qname)
        if fn is None:
            continue
        for call in fn.calls:
            if rule in call.waived:
                continue
            for callee in graph.resolve(call):
                if callee in via or callee in boundary:
                    continue
                cf = graph.functions.get(callee)
                if cf is None or rule in cf.waived:
                    continue
                via[callee] = via[qname] + (callee,)
                queue.append(callee)
    return via


def _return_type(header: str) -> str | None:
    head = header.split("(", 1)[0]
    toks = [t for t in head.replace("\t", " ").split()
            if t not in HEADER_SPECIFIERS
            and not t.startswith(("CORONA_", "[["))]
    return toks[0] if len(toks) >= 2 else None


def _header_findings(fn, rule: str) -> list:
    """(leaf, line) copy findings derived from the signature: by-value
    heavy parameters never moved onward, and by-value heavy returns."""
    out = []
    if not fn.header or rule in fn.waived:
        return out
    if "(" in fn.header:
        params = fn.header.split("(", 1)[1]
        for m in BYVAL_PARAM_RE.finditer(params):
            name = m.group("name")
            if m.group("const"):
                # `const T x`: by value AND unmovable — always a copy.
                out.append((f"byval-param({name})", fn.line))
            elif name not in fn.moves:
                out.append((f"byval-param({name})", fn.line))
    rt = _return_type(fn.header)
    if rt in HEAVY_RETURN_TYPES:
        out.append((f"byval-return({rt})", fn.line))
    return out


def _heavy_names(fn) -> set:
    """Names with a heavy declared type in `fn`: body declarations (from
    the heavydecl harvest model) plus heavy parameters, by value or ref."""
    names = set()
    for label, _line, _locked, _waive in fn.hits("heavydecl"):
        if label.startswith("decl(") and label.endswith(")"):
            names.add(label[5:-1])
    if fn.header and "(" in fn.header:
        params = fn.header.split("(", 1)[1]
        for m in HEAVY_PARAM_RE.finditer(params):
            names.add(m.group(1))
    return names


def run_rules(graph: Graph) -> list:
    findings = []
    for rule in RULES:
        model = RULE_MODEL[rule]
        reachable = hot_reachable(graph, rule)
        for qname in sorted(reachable):
            fn = graph.functions.get(qname)
            if fn is None:
                continue
            via = " -> ".join(reachable[qname])
            for leaf, line, _locked, waive in fn.hits(model):
                if rule in waive:
                    continue
                op = COPY_OPERAND_RE.match(leaf)
                if op and op.group(2) not in _heavy_names(fn):
                    # The pushed/sent operand is not a known heavy-typed
                    # lvalue in this function (e.g. a NodeId) — cheap copy.
                    continue
                findings.append(Finding(rule, qname, leaf,
                                        fn.rel or fn.path, line, via))
            if rule == "copy-in-hot-path":
                for leaf, line in _header_findings(fn, rule):
                    findings.append(Finding(rule, qname, leaf,
                                            fn.rel or fn.path, line, via))
    uniq = {}
    for f in findings:
        uniq.setdefault(f.key, f)
    return [uniq[k] for k in sorted(uniq)]


# ---------------------------------------------------------------------------
# Baseline + CLI
# ---------------------------------------------------------------------------

DEFAULT_BASELINE = os.path.join(HERE, "heat_baseline.json")

BASELINE_COMMENT = (
    "corona-heat copy inventory (ROADMAP item 2b).  Every entry is a "
    "known allocation/copy/format on the CORONA_HOT_PATH fast path with a "
    "reviewed rationale; the gate makes this list monotonically shrinking "
    "— new hot-path findings fail the build, and burning one down removes "
    "its entry.  Refresh with --write-baseline after review — existing "
    "rationales are preserved.")


def load_baseline(path: str) -> dict:
    return cg.load_baseline(path, "heat")


def write_baseline(path: str, findings: list, old: dict) -> None:
    cg.write_baseline(path, findings, old, "heat", BASELINE_COMMENT)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="corona-heat",
        description="interprocedural hot-path allocation & copy lint",
    )
    parser.add_argument("inputs", nargs="+",
                        help="optional compile_commands.json followed by "
                             "source files/directories")
    parser.add_argument("--frontend", choices=("auto", "textual", "libclang"),
                        default="auto")
    parser.add_argument("--require-libclang", action="store_true",
                        help="fail (exit 2) instead of falling back to the "
                             "textual frontend when libclang is unavailable")
    parser.add_argument("--baseline", metavar="FILE",
                        help="findings baseline (default: committed "
                             "heat_baseline.json when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding; ignore any baseline")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the observed findings (preserving "
                             "existing rationales) and exit")
    parser.add_argument("--print-graph", action="store_true",
                        help="dump every call edge")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    db_path = None
    paths = []
    for inp in args.inputs:
        if inp.endswith(".json"):
            db_path = inp
        else:
            paths.append(inp)
    if not paths:
        print("heat: no source paths given", file=sys.stderr)
        return 2

    files = [f for f in gather_files(paths)
             if os.path.splitext(f)[1] in CXX_EXTENSIONS]

    graph = None
    frontend = args.frontend
    if frontend in ("auto", "libclang"):
        if db_path and os.path.isfile(db_path):
            graph = build_graph_libclang(os.path.dirname(
                os.path.abspath(db_path)) or ".", files)
        if graph is None:
            msg = ("heat: libclang frontend unavailable "
                   "(no python clang bindings or no compile_commands.json)")
            if args.require_libclang or frontend == "libclang":
                print(f"{msg}; --require-libclang set, failing",
                      file=sys.stderr)
                return 2
            if not args.quiet:
                print(f"{msg}; falling back to the textual frontend",
                      file=sys.stderr)
    if graph is None:
        graph = build_graph_textual(files)

    findings = run_rules(graph)

    if args.print_graph:
        for qname in sorted(graph.functions):
            fn = graph.functions[qname]
            tags = ",".join(sorted(fn.annotations)) or "-"
            print(f"fn {qname} [{tags}] ({fn.rel or fn.path}:{fn.line})")
            for call in fn.calls:
                print(f"  -> {call.qualified or call.simple}")

    if args.write_baseline:
        old = (load_baseline(args.write_baseline)
               if os.path.isfile(args.write_baseline) else {})
        write_baseline(args.write_baseline, findings, old)
        return 0

    baseline = {}
    baseline_path = args.baseline
    if not args.no_baseline and not baseline_path and \
            os.path.isfile(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if not args.no_baseline and baseline_path:
        baseline = load_baseline(baseline_path)

    failures = 0
    matched = set()
    for f in findings:
        rationale = baseline.get(f.key)
        if rationale:
            matched.add(f.key)
            continue
        failures += 1
        if rationale == "":
            print(f"{f.path}:{f.line}: [{f.rule}] {f.subject} incurs "
                  f"{f.leaf} — baselined WITHOUT a rationale; justify it "
                  f"in {baseline_path}")
        else:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.subject} incurs "
                  f"{f.leaf}")
        print(f"    via {f.via}")
    for key in sorted(set(baseline) - matched):
        print(f"heat: note: stale baseline entry {key} no longer observed",
              file=sys.stderr)

    if not args.quiet:
        print(f"heat: {len(files)} files, {len(graph.functions)} "
              f"function(s), {len(findings)} finding(s), "
              f"{len(matched)} baselined, {failures} violation(s)",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
