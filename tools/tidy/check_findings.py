#!/usr/bin/env python3
"""Baseline gate for clang-tidy output.

Reads clang-tidy's stdout on stdin, normalizes each finding to a
`<repo-relative-file> [<check>]` key, and compares the set against the
checked-in baseline (tools/tidy/baseline.txt):

  * findings NOT in the baseline  -> printed, exit 1 (the blocking part)
  * baseline entries with no finding -> stale-entry warning, exit 0
  * --update rewrites the baseline to exactly the current finding set

Keys are file+check (not line numbers) so unrelated edits to a file do not
churn the baseline.  A waiver therefore covers every instance of that check
in that file; fix-or-waive decisions are reviewed when the baseline changes.

Usage:
  clang-tidy ... | python3 tools/tidy/check_findings.py \
      --baseline tools/tidy/baseline.txt --repo .
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# clang-tidy diagnostic line:  /abs/path/file.cc:12:5: warning: msg [check-a,check-b]
FINDING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<kind>warning|error):\s+(?P<msg>.*)\s+\[(?P<checks>[\w.,-]+)\]\s*$")


def finding_keys(stream, repo: str) -> dict[str, list[str]]:
    """Maps normalized `file [check]` keys to the raw lines that produced
    them (for error reporting)."""
    repo = os.path.abspath(repo)
    keys: dict[str, list[str]] = {}
    for raw in stream:
        m = FINDING_RE.match(raw.rstrip("\n"))
        if not m:
            continue
        path = m.group("path")
        if os.path.isabs(path):
            path = os.path.relpath(path, repo)
        path = path.replace(os.sep, "/")
        if path.startswith(".."):
            continue  # finding outside the repo (system header): ignore
        for check in m.group("checks").split(","):
            key = f"{path} [{check}]"
            keys.setdefault(key, []).append(raw.rstrip("\n"))
    return keys


def read_baseline(path: str) -> list[str]:
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.append(line)
    return entries


BASELINE_HEADER = """\
# clang-tidy baseline/waiver list (see tools/tidy/check_findings.py).
#
# One entry per line: `<repo-relative-file> [<check-name>]`.  An entry waives
# every instance of that check in that file.  Regenerate with:
#   tools/run_clang_tidy.sh --update-baseline
# Remove entries as findings are fixed; stale entries are reported.
"""


def write_baseline(path: str, keys: list[str]) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(BASELINE_HEADER)
        for key in sorted(keys):
            f.write(key + "\n")


def main(argv: list[str] | None = None, stream=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--repo", default=".")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline to the current finding set")
    args = ap.parse_args(argv)

    keys = finding_keys(stream if stream is not None else sys.stdin,
                        args.repo)
    if args.update:
        write_baseline(args.baseline, list(keys))
        print(f"check_findings: baseline updated with {len(keys)} entr"
              f"{'y' if len(keys) == 1 else 'ies'} -> {args.baseline}")
        return 0

    baseline = set(read_baseline(args.baseline))
    new = sorted(k for k in keys if k not in baseline)
    stale = sorted(b for b in baseline if b not in keys)

    for entry in stale:
        print(f"check_findings: stale baseline entry (fixed? remove it): "
              f"{entry}", file=sys.stderr)
    if new:
        print(f"check_findings: {len(new)} finding(s) not in the baseline:")
        for key in new:
            print(f"  {key}")
            for line in keys[key][:3]:
                print(f"    {line}")
        print("fix them or waive them via tools/run_clang_tidy.sh "
              "--update-baseline")
        return 1
    print(f"check_findings: ok ({len(keys)} finding(s), all baselined; "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
