#!/usr/bin/env python3
"""Self-test for the clang-tidy baseline gate (check_findings.py).

Run directly or via ctest (tidy_gate_selftest).  Dependency-free.
"""

from __future__ import annotations

import io
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_findings  # noqa: E402

SAMPLE = """\
/repo/src/core/server.cc:10:3: warning: use after move [bugprone-use-after-move]
    note: context line that is not a finding
/repo/src/core/server.cc:44:9: warning: moved twice [bugprone-use-after-move]
/repo/src/net/frame.cc:7:1: warning: slow loop [performance-for-range-copy]
/repo/src/serial/codec.cc:3:2: error: broken [clang-diagnostic-error]
/usr/include/c++/12/vector:99:9: warning: system header noise [bugprone-x]
garbage line without a finding
"""


def keys_of(text: str, repo: str = "/repo"):
    return check_findings.finding_keys(io.StringIO(text), repo)


class Parsing(unittest.TestCase):
    def test_findings_normalize_to_file_check_keys(self):
        keys = keys_of(SAMPLE)
        self.assertEqual(sorted(keys), [
            "src/core/server.cc [bugprone-use-after-move]",
            "src/net/frame.cc [performance-for-range-copy]",
            "src/serial/codec.cc [clang-diagnostic-error]",
        ])

    def test_duplicate_findings_collapse_but_keep_lines(self):
        keys = keys_of(SAMPLE)
        self.assertEqual(
            len(keys["src/core/server.cc [bugprone-use-after-move]"]), 2)

    def test_out_of_repo_findings_are_dropped(self):
        keys = keys_of(SAMPLE)
        self.assertFalse(any("vector" in k for k in keys))

    def test_multi_check_brackets_fan_out(self):
        text = ("/repo/src/a.cc:1:1: warning: m "
                "[bugprone-a,performance-b]\n")
        self.assertEqual(sorted(keys_of(text)), [
            "src/a.cc [bugprone-a]",
            "src/a.cc [performance-b]",
        ])


class Gate(unittest.TestCase):
    def run_main(self, argv, text):
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            rc = check_findings.main(argv, stream=io.StringIO(text))
        return rc, stdout.getvalue(), stderr.getvalue()

    def test_unbaselined_finding_blocks(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.txt")
            rc, out, _ = self.run_main(
                ["--baseline", baseline, "--repo", "/repo"], SAMPLE)
        self.assertEqual(rc, 1)
        self.assertIn("bugprone-use-after-move", out)

    def test_fully_baselined_run_passes_and_reports_stale(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.txt")
            with open(baseline, "w") as f:
                f.write("# comment\n")
                for key in sorted(keys_of(SAMPLE)):
                    f.write(key + "\n")
                f.write("src/gone.cc [bugprone-a]\n")  # stale
            rc, out, err = self.run_main(
                ["--baseline", baseline, "--repo", "/repo"], SAMPLE)
        self.assertEqual(rc, 0)
        self.assertIn("ok", out)
        self.assertIn("stale baseline entry", err)
        self.assertIn("src/gone.cc", err)

    def test_update_writes_sorted_baseline(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.txt")
            rc, _, _ = self.run_main(
                ["--baseline", baseline, "--repo", "/repo", "--update"],
                SAMPLE)
            self.assertEqual(rc, 0)
            entries = check_findings.read_baseline(baseline)
            self.assertEqual(entries, sorted(keys_of(SAMPLE)))
            # And the updated baseline makes the same input pass.
            rc, _, _ = self.run_main(
                ["--baseline", baseline, "--repo", "/repo"], SAMPLE)
            self.assertEqual(rc, 0)

    def test_clean_input_passes_on_empty_baseline(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.txt")
            rc, out, _ = self.run_main(
                ["--baseline", baseline, "--repo", "/repo"], "no findings\n")
        self.assertEqual(rc, 0)
        self.assertIn("0 finding(s)", out)


if __name__ == "__main__":
    unittest.main()
