#!/usr/bin/env python3
"""Unit tests for run_benches.py's pure logic: metric direction inference,
fnmatch threshold resolution, and baseline comparison.

Run directly or via ctest (bench_driver_selftest).  Dependency-free; no
bench binaries are executed.
"""

from __future__ import annotations

import io
import os
import sys
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import run_benches  # noqa: E402


class MetricDirection(unittest.TestCase):
    def test_rates_are_higher_is_better(self):
        self.assertEqual(run_benches.metric_direction("msgs_per_sec"), "higher")
        self.assertEqual(run_benches.metric_direction("speedup_x"), "higher")

    def test_latencies_and_ratios_are_lower_is_better(self):
        self.assertEqual(run_benches.metric_direction("p99_ms"), "lower")
        self.assertEqual(run_benches.metric_direction("rtt_ms_mean"), "lower")
        self.assertEqual(run_benches.metric_direction("cpu_pct"), "lower")
        self.assertEqual(run_benches.metric_direction("slope"), "lower")

    def test_unknown_metrics_have_no_direction(self):
        self.assertIsNone(run_benches.metric_direction("n_clients"))
        self.assertIsNone(run_benches.metric_direction("bytes_total"))


class ThresholdFor(unittest.TestCase):
    THRESHOLDS = {
        "*": 25.0,
        "fig3_roundtrip.*": 10.0,
        "fig3_roundtrip.p99_ms": 5.0,
        "*.msgs_per_sec": 15.0,
    }

    def test_longest_matching_pattern_wins(self):
        self.assertEqual(
            run_benches.threshold_for(
                "fig3_roundtrip", "p99_ms", self.THRESHOLDS, 99.0), 5.0)
        self.assertEqual(
            run_benches.threshold_for(
                "fig3_roundtrip", "p50_ms", self.THRESHOLDS, 99.0), 10.0)
        self.assertEqual(
            run_benches.threshold_for(
                "table1_throughput", "msgs_per_sec", self.THRESHOLDS, 99.0),
            15.0)

    def test_fallbacks(self):
        self.assertEqual(
            run_benches.threshold_for(
                "table1_throughput", "weird", self.THRESHOLDS, 99.0), 25.0)
        self.assertEqual(
            run_benches.threshold_for("b", "weird", {}, 7.5), 7.5)


class CompareMetrics(unittest.TestCase):
    def compare(self, baseline, fresh, threshold=10.0, thresholds=None):
        buf = io.StringIO()
        with redirect_stdout(buf):
            n = run_benches.compare_metrics(
                baseline, fresh, threshold, thresholds or {})
        return n, buf.getvalue()

    def test_within_threshold_is_clean(self):
        n, _ = self.compare({"b": {"p99_ms": 100.0}}, {"b": {"p99_ms": 105.0}})
        self.assertEqual(n, 0)

    def test_lower_is_better_regression(self):
        n, out = self.compare(
            {"b": {"p99_ms": 100.0}}, {"b": {"p99_ms": 150.0}})
        self.assertEqual(n, 1)
        self.assertIn("REGRESSION b.p99_ms", out)

    def test_higher_is_better_regression(self):
        n, out = self.compare(
            {"b": {"msgs_per_sec": 1000.0}}, {"b": {"msgs_per_sec": 800.0}})
        self.assertEqual(n, 1)
        self.assertIn("REGRESSION b.msgs_per_sec", out)

    def test_improvement_is_reported_not_failed(self):
        n, out = self.compare(
            {"b": {"p99_ms": 100.0}}, {"b": {"p99_ms": 50.0}})
        self.assertEqual(n, 0)
        self.assertIn("improved", out)

    def test_per_metric_threshold_overrides_default(self):
        thresholds = {"b.p99_ms": 100.0}
        n, _ = self.compare(
            {"b": {"p99_ms": 100.0}}, {"b": {"p99_ms": 150.0}},
            thresholds=thresholds)
        self.assertEqual(n, 0)  # +50% allowed by the override

    def test_missing_bench_and_metric_are_informational(self):
        n, out = self.compare(
            {"old_bench": {"p99_ms": 1.0}, "b": {"p99_ms": 1.0}},
            {"new_bench": {"p99_ms": 9.0}, "b": {"p99_ms": 1.0, "extra": 3}})
        self.assertEqual(n, 0)
        self.assertIn("only in baseline", out)
        self.assertIn("only in fresh run", out)
        self.assertIn("metric added", out)

    def test_directionless_and_non_numeric_metrics_are_skipped(self):
        n, _ = self.compare(
            {"b": {"n_clients": 4, "label": "x"}},
            {"b": {"n_clients": 400, "label": "y"}})
        self.assertEqual(n, 0)

    def test_thresholds_key_is_not_a_bench(self):
        n, _ = self.compare(
            {run_benches.THRESHOLDS_KEY: {"*": 1.0}, "b": {"p99_ms": 1.0}},
            {"b": {"p99_ms": 1.0}})
        self.assertEqual(n, 0)


if __name__ == "__main__":
    unittest.main()
