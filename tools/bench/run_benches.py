#!/usr/bin/env python3
"""Run the paper-reproduction benches and merge their --json metrics.

Runs fig3_roundtrip, table1_throughput, and table2_replicated from a build
tree, collects each binary's `--json` output, and writes one merged baseline
file (default: BENCH_socket_baseline.json in the repo root) keyed by bench
name.  Exit status is non-zero if any bench fails to run or emits no JSON.

Usage:
    tools/bench/run_benches.py [--build-dir build] [--out BENCH_socket_baseline.json]
    tools/bench/run_benches.py --compare BENCH_socket_baseline.json

With --compare the freshly-measured metrics are checked against a recorded
baseline and the run fails (exit 1) if any direction-known metric regressed
beyond its threshold.  Metric direction is inferred from the key: *_ms /
*_pct / *slope* are lower-is-better, *per_sec* is higher-is-better, anything
else is reported informationally and never fails the run.

Thresholds are per-metric.  A baseline file may carry a top-level
`_thresholds` section mapping fnmatch patterns over "bench.metric" names to
a regression percentage; the longest (most specific) matching pattern wins:

    "_thresholds": {
      "ablation_batching.speedup_batch64_vs_1": 2.0,
      "ablation_batching.*": 10.0
    }

Metrics with no matching pattern fall back to --threshold (default 25).
The `_thresholds` section is not a bench: it is skipped when comparing and
carried over verbatim when --out records fresh numbers.  The baseline file
is left untouched in compare mode unless --out names a different path.
"""

import argparse
import fnmatch
import json
import os
import subprocess
import sys
import tempfile

BENCHES = [
    "fig3_roundtrip",
    "table1_throughput",
    "table2_replicated",
    "ablation_batching",
    "ablation_durability",
]

# Reserved top-level baseline key holding per-metric thresholds, not metrics.
THRESHOLDS_KEY = "_thresholds"


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def find_binary(build_dir: str, name: str) -> str:
    candidates = [
        os.path.join(build_dir, "bench", name),
        os.path.join(build_dir, "bin", name),
        os.path.join(build_dir, name),
    ]
    for path in candidates:
        if os.path.isfile(path) and os.access(path, os.X_OK):
            return path
    raise FileNotFoundError(
        f"bench binary '{name}' not found under {build_dir} "
        f"(tried: {', '.join(candidates)}); build the 'bench' targets first"
    )


def run_bench(binary: str, timeout_s: int) -> dict:
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="corona_bench_", delete=False
    ) as tmp:
        tmp_path = tmp.name
    try:
        proc = subprocess.run(
            [binary, "--json", tmp_path],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=timeout_s,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            raise RuntimeError(f"{binary} exited with status {proc.returncode}")
        with open(tmp_path, "r", encoding="utf-8") as f:
            return json.load(f)
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


def metric_direction(key: str) -> str | None:
    """'lower' / 'higher' when the key names a known-direction metric."""
    if "per_sec" in key or "speedup" in key:
        return "higher"
    if key.endswith("_ms") or "_ms" in key or "_pct" in key or "slope" in key:
        return "lower"
    return None


def threshold_for(
    bench: str, key: str, thresholds: dict, default_pct: float
) -> float:
    """Most-specific (longest) fnmatch pattern over 'bench.metric' wins."""
    name = f"{bench}.{key}"
    best_pattern = None
    for pattern in thresholds:
        if fnmatch.fnmatchcase(name, pattern):
            if best_pattern is None or len(pattern) > len(best_pattern):
                best_pattern = pattern
    if best_pattern is None:
        return default_pct
    return float(thresholds[best_pattern])


def compare_metrics(
    baseline: dict, fresh: dict, threshold_pct: float, thresholds: dict
) -> int:
    """Prints a per-metric comparison; returns the regression count."""
    regressions = 0
    for bench in sorted(set(baseline) | set(fresh)):
        if bench == THRESHOLDS_KEY:
            continue
        if bench not in baseline or bench not in fresh:
            side = "baseline" if bench in baseline else "fresh run"
            print(f"[compare] {bench}: only in {side} — skipped")
            continue
        old_metrics, new_metrics = baseline[bench], fresh[bench]
        for key in sorted(set(old_metrics) | set(new_metrics)):
            if key not in old_metrics or key not in new_metrics:
                print(f"[compare] {bench}.{key}: metric "
                      f"{'removed' if key not in new_metrics else 'added'} — "
                      "informational")
                continue
            old, new = old_metrics[key], new_metrics[key]
            if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
                continue
            direction = metric_direction(key)
            if direction is None or abs(old) < 1e-9:
                continue
            metric_threshold = threshold_for(bench, key, thresholds, threshold_pct)
            delta_pct = (new - old) / abs(old) * 100.0
            regressed = (
                delta_pct > metric_threshold
                if direction == "lower"
                else -delta_pct > metric_threshold
            )
            if regressed:
                regressions += 1
                print(f"[compare] REGRESSION {bench}.{key}: "
                      f"{old:g} -> {new:g} ({delta_pct:+.1f}%, "
                      f"{direction}-is-better, threshold {metric_threshold:g}%)")
            elif abs(delta_pct) > metric_threshold:
                # Large move in the *good* direction: worth a line, not a
                # failure (often a machine/load artifact).
                print(f"[compare] improved   {bench}.{key}: "
                      f"{old:g} -> {new:g} ({delta_pct:+.1f}%)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--build-dir",
        default=os.path.join(repo_root(), "build"),
        help="CMake build tree holding the bench binaries (default: ./build)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="merged output path (default: BENCH_socket_baseline.json when "
        "recording; in --compare mode nothing is written unless --out is "
        "given explicitly)",
    )
    parser.add_argument(
        "--timeout",
        type=int,
        default=1800,
        help="per-bench timeout in seconds (default: 1800)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE_JSON",
        help="compare fresh metrics against this recorded baseline and fail "
        "on regressions instead of (re)writing it",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="fallback regression threshold in percent for --compare when no "
        "baseline `_thresholds` pattern matches (default: 25)",
    )
    parser.add_argument(
        "--benches",
        metavar="NAME[,NAME...]",
        help="comma-separated subset of benches to run "
        f"(default: {','.join(BENCHES)})",
    )
    args = parser.parse_args()

    benches = BENCHES
    if args.benches:
        benches = [b.strip() for b in args.benches.split(",") if b.strip()]
        unknown = [b for b in benches if b not in BENCHES]
        if unknown:
            raise RuntimeError(
                f"unknown bench(es): {', '.join(unknown)} "
                f"(known: {', '.join(BENCHES)})"
            )

    baseline = None
    thresholds = {}
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as f:
            baseline = json.load(f)
        thresholds = baseline.get(THRESHOLDS_KEY, {})

    merged = {}
    for name in benches:
        binary = find_binary(args.build_dir, name)
        print(f"[run_benches] running {name} ...", flush=True)
        result = run_bench(binary, args.timeout)
        bench_key = result.get("bench", name)
        metrics = {k: v for k, v in result.items() if k != "bench"}
        if not metrics:
            raise RuntimeError(f"{name} emitted an empty metrics object")
        merged[bench_key] = metrics
        print(f"[run_benches]   {len(metrics)} metrics", flush=True)

    if baseline is not None:
        regressions = compare_metrics(baseline, merged, args.threshold,
                                      thresholds)
        # Compare mode never clobbers a baseline implicitly; an explicit
        # --out (different from the compared file) records the fresh
        # numbers, with the baseline's thresholds carried over.
        if args.out and os.path.abspath(args.out) != os.path.abspath(
                args.compare):
            if thresholds:
                merged[THRESHOLDS_KEY] = thresholds
            with open(args.out, "w", encoding="utf-8") as f:
                json.dump(merged, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"[run_benches] wrote {args.out} ({len(merged)} benches)")
        if regressions:
            print(f"[run_benches] FAIL: {regressions} metric(s) regressed "
                  "beyond threshold")
            return 1
        print("[run_benches] compare OK: no metric regressed beyond its "
              f"threshold (fallback {args.threshold:g}%)")
        return 0

    if args.out is None:
        args.out = os.path.join(repo_root(), "BENCH_socket_baseline.json")
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[run_benches] wrote {args.out} ({len(merged)} benches)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (FileNotFoundError, RuntimeError, subprocess.TimeoutExpired) as err:
        sys.stderr.write(f"[run_benches] error: {err}\n")
        sys.exit(1)
