#!/usr/bin/env python3
"""Run the paper-reproduction benches and merge their --json metrics.

Runs fig3_roundtrip, table1_throughput, and table2_replicated from a build
tree, collects each binary's `--json` output, and writes one merged baseline
file (default: BENCH_socket_baseline.json in the repo root) keyed by bench
name.  Exit status is non-zero if any bench fails to run or emits no JSON.

Usage:
    tools/bench/run_benches.py [--build-dir build] [--out BENCH_socket_baseline.json]
    tools/bench/run_benches.py --compare BENCH_socket_baseline.json

With --compare the freshly-measured metrics are checked against a recorded
baseline and the run fails (exit 1) if any direction-known metric regressed
by more than --threshold percent (default 25).  Metric direction is inferred
from the key: *_ms / *_pct / *slope* are lower-is-better, *per_sec* is
higher-is-better, anything else is reported informationally and never
fails the run.  The baseline file is left untouched in compare mode unless
--out names a different path.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

BENCHES = ["fig3_roundtrip", "table1_throughput", "table2_replicated"]


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def find_binary(build_dir: str, name: str) -> str:
    candidates = [
        os.path.join(build_dir, "bench", name),
        os.path.join(build_dir, "bin", name),
        os.path.join(build_dir, name),
    ]
    for path in candidates:
        if os.path.isfile(path) and os.access(path, os.X_OK):
            return path
    raise FileNotFoundError(
        f"bench binary '{name}' not found under {build_dir} "
        f"(tried: {', '.join(candidates)}); build the 'bench' targets first"
    )


def run_bench(binary: str, timeout_s: int) -> dict:
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="corona_bench_", delete=False
    ) as tmp:
        tmp_path = tmp.name
    try:
        proc = subprocess.run(
            [binary, "--json", tmp_path],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=timeout_s,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            raise RuntimeError(f"{binary} exited with status {proc.returncode}")
        with open(tmp_path, "r", encoding="utf-8") as f:
            return json.load(f)
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


def metric_direction(key: str) -> str | None:
    """'lower' / 'higher' when the key names a known-direction metric."""
    if "per_sec" in key:
        return "higher"
    if key.endswith("_ms") or "_ms" in key or "_pct" in key or "slope" in key:
        return "lower"
    return None


def compare_metrics(baseline: dict, fresh: dict, threshold_pct: float) -> int:
    """Prints a per-metric comparison; returns the regression count."""
    regressions = 0
    for bench in sorted(set(baseline) | set(fresh)):
        if bench not in baseline or bench not in fresh:
            side = "baseline" if bench in baseline else "fresh run"
            print(f"[compare] {bench}: only in {side} — skipped")
            continue
        old_metrics, new_metrics = baseline[bench], fresh[bench]
        for key in sorted(set(old_metrics) | set(new_metrics)):
            if key not in old_metrics or key not in new_metrics:
                print(f"[compare] {bench}.{key}: metric "
                      f"{'removed' if key not in new_metrics else 'added'} — "
                      "informational")
                continue
            old, new = old_metrics[key], new_metrics[key]
            if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
                continue
            direction = metric_direction(key)
            if direction is None or abs(old) < 1e-9:
                continue
            delta_pct = (new - old) / abs(old) * 100.0
            regressed = (
                delta_pct > threshold_pct
                if direction == "lower"
                else -delta_pct > threshold_pct
            )
            if regressed:
                regressions += 1
                print(f"[compare] REGRESSION {bench}.{key}: "
                      f"{old:g} -> {new:g} ({delta_pct:+.1f}%, "
                      f"{direction}-is-better, threshold {threshold_pct:g}%)")
            elif abs(delta_pct) > threshold_pct:
                # Large move in the *good* direction: worth a line, not a
                # failure (often a machine/load artifact).
                print(f"[compare] improved   {bench}.{key}: "
                      f"{old:g} -> {new:g} ({delta_pct:+.1f}%)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--build-dir",
        default=os.path.join(repo_root(), "build"),
        help="CMake build tree holding the bench binaries (default: ./build)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(repo_root(), "BENCH_socket_baseline.json"),
        help="merged output path (default: BENCH_socket_baseline.json)",
    )
    parser.add_argument(
        "--timeout",
        type=int,
        default=1800,
        help="per-bench timeout in seconds (default: 1800)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE_JSON",
        help="compare fresh metrics against this recorded baseline and fail "
        "on regressions instead of (re)writing it",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="regression threshold in percent for --compare (default: 25)",
    )
    args = parser.parse_args()

    baseline = None
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as f:
            baseline = json.load(f)

    merged = {}
    for name in BENCHES:
        binary = find_binary(args.build_dir, name)
        print(f"[run_benches] running {name} ...", flush=True)
        result = run_bench(binary, args.timeout)
        bench_key = result.get("bench", name)
        metrics = {k: v for k, v in result.items() if k != "bench"}
        if not metrics:
            raise RuntimeError(f"{name} emitted an empty metrics object")
        merged[bench_key] = metrics
        print(f"[run_benches]   {len(metrics)} metrics", flush=True)

    if baseline is not None:
        regressions = compare_metrics(baseline, merged, args.threshold)
        # Don't clobber the baseline we just compared against; an explicit
        # different --out still records the fresh numbers.
        if os.path.abspath(args.out) != os.path.abspath(args.compare):
            with open(args.out, "w", encoding="utf-8") as f:
                json.dump(merged, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"[run_benches] wrote {args.out} ({len(merged)} benches)")
        if regressions:
            print(f"[run_benches] FAIL: {regressions} metric(s) regressed "
                  f"beyond {args.threshold:g}%")
            return 1
        print(f"[run_benches] compare OK: no metric regressed beyond "
              f"{args.threshold:g}%")
        return 0

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[run_benches] wrote {args.out} ({len(merged)} benches)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (FileNotFoundError, RuntimeError, subprocess.TimeoutExpired) as err:
        sys.stderr.write(f"[run_benches] error: {err}\n")
        sys.exit(1)
