#!/usr/bin/env python3
"""Run the paper-reproduction benches and merge their --json metrics.

Runs fig3_roundtrip, table1_throughput, and table2_replicated from a build
tree, collects each binary's `--json` output, and writes one merged baseline
file (default: BENCH_socket_baseline.json in the repo root) keyed by bench
name.  Exit status is non-zero if any bench fails to run or emits no JSON.

Usage:
    tools/bench/run_benches.py [--build-dir build] [--out BENCH_socket_baseline.json]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

BENCHES = ["fig3_roundtrip", "table1_throughput", "table2_replicated"]


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def find_binary(build_dir: str, name: str) -> str:
    candidates = [
        os.path.join(build_dir, "bench", name),
        os.path.join(build_dir, "bin", name),
        os.path.join(build_dir, name),
    ]
    for path in candidates:
        if os.path.isfile(path) and os.access(path, os.X_OK):
            return path
    raise FileNotFoundError(
        f"bench binary '{name}' not found under {build_dir} "
        f"(tried: {', '.join(candidates)}); build the 'bench' targets first"
    )


def run_bench(binary: str, timeout_s: int) -> dict:
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix="corona_bench_", delete=False
    ) as tmp:
        tmp_path = tmp.name
    try:
        proc = subprocess.run(
            [binary, "--json", tmp_path],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            timeout=timeout_s,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            raise RuntimeError(f"{binary} exited with status {proc.returncode}")
        with open(tmp_path, "r", encoding="utf-8") as f:
            return json.load(f)
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--build-dir",
        default=os.path.join(repo_root(), "build"),
        help="CMake build tree holding the bench binaries (default: ./build)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(repo_root(), "BENCH_socket_baseline.json"),
        help="merged output path (default: BENCH_socket_baseline.json)",
    )
    parser.add_argument(
        "--timeout",
        type=int,
        default=1800,
        help="per-bench timeout in seconds (default: 1800)",
    )
    args = parser.parse_args()

    merged = {}
    for name in BENCHES:
        binary = find_binary(args.build_dir, name)
        print(f"[run_benches] running {name} ...", flush=True)
        result = run_bench(binary, args.timeout)
        bench_key = result.get("bench", name)
        metrics = {k: v for k, v in result.items() if k != "bench"}
        if not metrics:
            raise RuntimeError(f"{name} emitted an empty metrics object")
        merged[bench_key] = metrics
        print(f"[run_benches]   {len(metrics)} metrics", flush=True)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"[run_benches] wrote {args.out} ({len(merged)} benches)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (FileNotFoundError, RuntimeError, subprocess.TimeoutExpired) as err:
        sys.stderr.write(f"[run_benches] error: {err}\n")
        sys.exit(1)
