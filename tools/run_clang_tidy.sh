#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy) over every corona source file, using
# the compile_commands.json of an existing build tree.
#
#   usage: tools/run_clang_tidy.sh [build-dir]
#
# With no argument the script looks for a build tree that already exported
# compile_commands.json (build/release, build/debug, then flat build/) and,
# finding none, configures build/tidy itself.  Exits 0 with a notice when no
# clang-tidy binary is installed, so the script is safe to call from
# environments that lack LLVM; CI installs clang-tidy and fails on findings.
set -eu

repo="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [ -z "$tidy" ]; then
  echo "run_clang_tidy: no clang-tidy binary found; skipping (install" \
       "clang-tidy or set CLANG_TIDY to enforce)." >&2
  exit 0
fi

build="${1:-}"
if [ -z "$build" ]; then
  for candidate in "$repo/build/release" "$repo/build/debug" "$repo/build"; do
    if [ -f "$candidate/compile_commands.json" ]; then
      build="$candidate"
      break
    fi
  done
fi
if [ -z "$build" ]; then
  build="$repo/build/tidy"
  echo "run_clang_tidy: no compile_commands.json found; configuring $build"
  cmake -S "$repo" -B "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_clang_tidy: $build has no compile_commands.json" >&2
  exit 2
fi

# Sources only — headers are pulled in through HeaderFilterRegex.
files=$(find "$repo/src" -name '*.cc' | LC_ALL=C sort)

echo "run_clang_tidy: $tidy over $(echo "$files" | wc -l) files," \
     "database $build"
# shellcheck disable=SC2086  # word-splitting the file list is intended
exec "$tidy" -p "$build" --quiet $files
