#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy) over every corona source file and
# gates the findings against the checked-in baseline, making the job
# blocking: any finding not in tools/tidy/baseline.txt fails the run.
#
#   usage: tools/run_clang_tidy.sh [--update-baseline] [build-dir]
#
# With no build-dir the script looks for a build tree that already exported
# compile_commands.json (build/release, build/debug, then flat build/) and,
# finding none, configures build/tidy itself.
#
# The enforced clang-tidy major version is pinned (CI installs exactly that
# package).  Elsewhere a version mismatch is a warning, a missing binary a
# notice + exit 0, so the script stays safe to call from environments that
# lack LLVM; set CLANG_TIDY_STRICT=1 (as CI does) to turn both into errors.
set -eu

PINNED_MAJOR=18

repo="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
baseline="$repo/tools/tidy/baseline.txt"
update=0
build=""

for arg in "$@"; do
  case "$arg" in
    --update-baseline) update=1 ;;
    *) build="$arg" ;;
  esac
done

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for candidate in "clang-tidy-$PINNED_MAJOR" clang-tidy; do
    if command -v "$candidate" >/dev/null 2>&1; then
      tidy="$candidate"
      break
    fi
  done
fi
if [ -z "$tidy" ]; then
  if [ "${CLANG_TIDY_STRICT:-0}" = "1" ]; then
    echo "run_clang_tidy: no clang-tidy binary found (strict mode)" >&2
    exit 2
  fi
  echo "run_clang_tidy: no clang-tidy binary found; skipping (install" \
       "clang-tidy-$PINNED_MAJOR or set CLANG_TIDY to enforce)." >&2
  exit 0
fi

major="$("$tidy" --version | sed -n 's/.*version \([0-9][0-9]*\)\..*/\1/p' \
         | head -n 1)"
if [ "$major" != "$PINNED_MAJOR" ]; then
  if [ "${CLANG_TIDY_STRICT:-0}" = "1" ]; then
    echo "run_clang_tidy: $tidy is version ${major:-unknown}, pinned" \
         "$PINNED_MAJOR" >&2
    exit 2
  fi
  echo "run_clang_tidy: warning: $tidy is version ${major:-unknown}," \
       "baseline is pinned to $PINNED_MAJOR; findings may differ." >&2
fi

if [ -z "$build" ]; then
  # build/thread-safety is a clang database — preferable for clang-tidy
  # when present (matching driver flags), tried after the common trees.
  for candidate in "$repo/build/release" "$repo/build/debug" \
                   "$repo/build/thread-safety" "$repo/build"; do
    if [ -f "$candidate/compile_commands.json" ]; then
      build="$candidate"
      break
    fi
  done
fi
if [ -z "$build" ]; then
  build="$repo/build/tidy"
  echo "run_clang_tidy: no compile_commands.json found; configuring $build"
  cmake -S "$repo" -B "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_clang_tidy: $build has no compile_commands.json" >&2
  exit 2
fi

# Sources only — headers are pulled in through HeaderFilterRegex.
files=$(find "$repo/src" -name '*.cc' | LC_ALL=C sort)

echo "run_clang_tidy: $tidy over $(echo "$files" | wc -l) files," \
     "database $build"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
# --warnings-as-errors='-*' keeps clang-tidy's own exit code reserved for
# hard errors; fix-or-waive enforcement is the baseline gate's job below.
# shellcheck disable=SC2086  # word-splitting the file list is intended
"$tidy" -p "$build" --quiet --warnings-as-errors='-*' $files \
    > "$out" 2>/dev/null || {
  status=$?
  cat "$out"
  echo "run_clang_tidy: $tidy failed (exit $status)" >&2
  exit "$status"
}
cat "$out"

if [ "$update" = "1" ]; then
  python3 "$repo/tools/tidy/check_findings.py" \
      --baseline "$baseline" --repo "$repo" --update < "$out"
else
  python3 "$repo/tools/tidy/check_findings.py" \
      --baseline "$baseline" --repo "$repo" < "$out"
fi
