#!/usr/bin/env python3
"""Self-test for corona_reach.py: every planted fixture violation — one per
rule, plus the indirection shapes (virtual dispatch, lambda, function
pointer, recursion) — must be caught, every sanctioned counter-case must
stay silent, and the baseline gate must enforce written rationales."""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)
import corona_reach  # noqa: E402

FIXTURES = os.path.join(HERE, "fixtures")


def run(argv: list[str]) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = corona_reach.main(argv)
    return code, out.getvalue(), err.getvalue()


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def run_fixture(name: str) -> tuple[int, str, str]:
    return run(["--frontend", "textual", "--no-baseline", fixture(name)])


class BlockingInLoopContext(unittest.TestCase):
    def test_virtual_dispatch_widens_to_the_override(self) -> None:
        code, out, _ = run_fixture("fixture_virtual.cc")
        self.assertEqual(code, 1)
        self.assertIn("[blocking-in-loop-context]", out)
        self.assertIn("DurablePoller::on_poll", out)
        self.assertIn("fsync", out)
        # The via chain walks the helpers, not just the endpoint.
        self.assertIn("DurablePoller::persist", out)

    def test_lambda_body_attributes_to_the_defining_function(self) -> None:
        code, out, _ = run_fixture("fixture_lambda.cc")
        self.assertEqual(code, 1)
        self.assertIn("TailFlusher::on_drain", out)
        self.assertIn("TailFlusher::flush_tail", out)

    def test_address_taken_function_counts_as_called(self) -> None:
        code, out, _ = run_fixture("fixture_fnptr.cc")
        self.assertEqual(code, 1)
        self.assertIn("RetryScheduler::on_retry_tick", out)
        self.assertIn("slow_retry", out)
        self.assertIn("sleep", out)

    def test_recursive_cycle_terminates_and_reports(self) -> None:
        code, out, _ = run_fixture("fixture_recursive.cc")
        self.assertEqual(code, 1)
        self.assertIn("Redialer::on_peer_lost", out)
        self.assertIn("connect", out)


class BlockingWhileLocked(unittest.TestCase):
    def test_blocking_behind_a_helper_under_lock_is_caught(self) -> None:
        code, out, _ = run_fixture("fixture_locked.cc")
        self.assertEqual(code, 1)
        self.assertIn("[blocking-while-locked]", out)
        self.assertIn("JournalGate::commit[mu_]", out)
        self.assertIn("fsync", out)

    def test_condvar_wait_under_lock_is_sanctioned(self) -> None:
        _, out, _ = run_fixture("fixture_locked.cc")
        self.assertNotIn("park_until_signalled", out)
        self.assertNotIn("condvar-wait", out)


class UncheckedFallible(unittest.TestCase):
    def test_dropped_nodiscard_result_is_caught(self) -> None:
        code, out, _ = run_fixture("fixture_nodiscard.cc")
        self.assertEqual(code, 1)
        self.assertIn("[unchecked-fallible]", out)
        self.assertIn("SettingsFile::on_apply", out)
        self.assertIn("save_settings", out)

    def test_void_cast_acknowledges_the_drop(self) -> None:
        _, out, _ = run_fixture("fixture_nodiscard.cc")
        self.assertNotIn("on_discard", out)


class SimPurity(unittest.TestCase):
    def test_wall_clock_behind_a_helper_is_caught(self) -> None:
        code, out, _ = run_fixture("fixture_simpure.cc")
        self.assertEqual(code, 1)
        self.assertIn("[sim-purity]", out)
        self.assertIn("wall_nanos", out)
        self.assertIn("wall-clock", out)


class Waivers(unittest.TestCase):
    def test_waived_planted_violation_is_suppressed(self) -> None:
        code, out, err = run_fixture("fixture_waived.cc")
        self.assertEqual(code, 0, out + err)

    def test_clean_fixture_is_clean(self) -> None:
        code, out, err = run_fixture("fixture_clean.cc")
        self.assertEqual(code, 0, out + err)

    def test_whole_fixture_dir_plants_exactly_seven_findings(self) -> None:
        # virtual + lambda + fnptr + recursive (rule 1), locked (rule 2),
        # nodiscard (rule 3), simpure (rule 4); waived + clean contribute
        # nothing.
        code, out, _ = run(["--frontend", "textual", "--no-baseline",
                            FIXTURES])
        self.assertEqual(code, 1)
        self.assertEqual(len([ln for ln in out.splitlines()
                              if "] " in ln and " reaches " in ln]), 7)


class Baseline(unittest.TestCase):
    def test_baseline_requires_a_written_rationale(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            code, _, err = run(["--frontend", "textual",
                                "--write-baseline", base,
                                fixture("fixture_virtual.cc")])
            self.assertEqual(code, 0, err)

            # Freshly written entries have empty rationales: still a gate
            # failure, with a message pointing at the baseline.
            code, out, _ = run(["--frontend", "textual", "--baseline", base,
                                fixture("fixture_virtual.cc")])
            self.assertEqual(code, 1)
            self.assertIn("WITHOUT a rationale", out)

            with open(base, encoding="utf-8") as f:
                payload = json.load(f)
            self.assertEqual(len(payload["findings"]), 1)
            for entry in payload["findings"]:
                entry["rationale"] = "reviewed: fixture"
            with open(base, "w", encoding="utf-8") as f:
                json.dump(payload, f)

            code, out, err = run(["--frontend", "textual",
                                  "--baseline", base,
                                  fixture("fixture_virtual.cc")])
            self.assertEqual(code, 0, out + err)

    def test_rewrite_preserves_existing_rationales(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            run(["--frontend", "textual", "--write-baseline", base,
                 fixture("fixture_virtual.cc")])
            with open(base, encoding="utf-8") as f:
                payload = json.load(f)
            payload["findings"][0]["rationale"] = "kept across rewrites"
            with open(base, "w", encoding="utf-8") as f:
                json.dump(payload, f)

            run(["--frontend", "textual", "--write-baseline", base,
                 fixture("fixture_virtual.cc")])
            with open(base, encoding="utf-8") as f:
                payload = json.load(f)
            self.assertEqual(payload["findings"][0]["rationale"],
                             "kept across rewrites")

    def test_new_finding_fails_against_a_clean_baseline(self) -> None:
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.join(tmp, "baseline.json")
            run(["--frontend", "textual", "--write-baseline", base,
                 fixture("fixture_clean.cc")])
            code, out, _ = run(["--frontend", "textual", "--baseline", base,
                                fixture("fixture_locked.cc")])
            self.assertEqual(code, 1)
            self.assertIn("blocking-while-locked", out)


class Frontends(unittest.TestCase):
    def test_require_libclang_fails_loudly_when_absent(self) -> None:
        if corona_reach._load_cindex() is not None:
            self.skipTest("libclang present; fallback path not reachable")
        code, _, err = run(["--frontend", "libclang", "--require-libclang",
                            fixture("fixture_clean.cc")])
        self.assertEqual(code, 2)
        self.assertIn("libclang", err)

    def test_auto_falls_back_to_textual_with_a_notice(self) -> None:
        if corona_reach._load_cindex() is not None:
            self.skipTest("libclang present; fallback path not reachable")
        code, _, err = run([fixture("fixture_clean.cc")])
        self.assertEqual(code, 0)

    def test_compile_commands_positional_is_accepted(self) -> None:
        # The acceptance-command shape: a .json db first, sources after.
        # Without libclang the db is ignored and textual runs.
        with tempfile.TemporaryDirectory() as tmp:
            db = os.path.join(tmp, "compile_commands.json")
            with open(db, "w", encoding="utf-8") as f:
                f.write("[]")
            code, out, err = run([db, fixture("fixture_clean.cc"),
                                  "--no-baseline"])
            self.assertEqual(code, 0, out + err)


if __name__ == "__main__":
    unittest.main(verbosity=2)
