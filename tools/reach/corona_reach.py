#!/usr/bin/env python3
"""corona-reach: interprocedural call-graph lint for blocking-call and
execution-context discipline.

Every other gate in the tree is file-local: corona-lint is regex-per-line,
lock_order.py tracks held sets inside one file, clang -Wthread-safety proves
per-access guarding.  None of them can see that
`CoronaServer::on_timer -> flush_now -> GroupStore::flush -> fdatasync`
parks the SocketRuntime epoll loop thread — three calls separate the entry
from the syscall.  This tool enforces four interprocedural rules over the
whole-program call graph built by the shared tools/analysis/ engine (which
corona-heat also drives; see tools/analysis/callgraph.py for the frontends,
the conservative CHA, and the waiver/baseline machinery):

  blocking-in-loop-context   A blocking leaf (fsync/fdatasync, blocking
                             connect/sendmsg, sleep, CondVar::wait, file
                             open/read/write) is reachable from a
                             CORONA_LOOP_CONTEXT entry — the SocketRuntime
                             epoll loop and every Node callback it
                             dispatches (on_start/on_message/on_timer,
                             widened to all overrides by CHA).
  blocking-while-locked      A blocking leaf is reachable from a call made
                             inside a MutexLock scope or from a
                             CORONA_REQUIRES function — the interprocedural
                             upgrade of lock_order.py's held-set tracking.
                             CondVar::wait is exempt here: waiting with the
                             lock held is its contract.
  unchecked-fallible         The result of a [[nodiscard]] fallible API
                             (or any Status/Result-returning function) is
                             dropped on the floor.
  sim-purity                 A nondeterministic leaf (wall clock, rand,
                             thread id) is reachable from sim-driven code —
                             the interprocedural upgrade of corona-lint's
                             wall-clock/raw-random rules.

Annotations come from src/util/context.h (CORONA_BLOCKING /
CORONA_NONBLOCKING / CORONA_LOOP_CONTEXT).  A CORONA_NONBLOCKING function
is a reviewed claim ("my syscalls are on non-blocking fds") and is not
descended into; a CORONA_BLOCKING function is a traversal leaf.

Waivers: `// reach: waive <rule> -- reason` on (or directly above) a
function definition removes that function from the rule; on a call line it
waives that site.  Findings that survive waivers must appear in the
committed baseline (tools/reach/reach_baseline.json) WITH a non-empty
rationale; a new finding or an un-rationalized baseline hit fails the gate,
exactly like a new lock-order edge.

Exit status: 0 clean, 1 violations, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "analysis"))
import callgraph as cg  # noqa: E402
from callgraph import (  # noqa: E402,F401 - re-exported for clients/tests
    CXX_EXTENSIONS,
    CallgraphConfig,
    Call,
    Finding,
    Function,
    Graph,
    annotated_entries,
    gather_files,
    src_relative,
)

RULES = (
    "blocking-in-loop-context",
    "blocking-while-locked",
    "unchecked-fallible",
    "sim-purity",
)

# ---------------------------------------------------------------------------
# Leaf models
# ---------------------------------------------------------------------------

# Syscalls / std calls that can park the thread.  epoll_wait is deliberately
# absent: blocking there IS the event loop.  ::send/::recv/::write/::read on
# the runtime's non-blocking fds live inside CORONA_NONBLOCKING functions,
# which the traversal does not enter.
BLOCKING_BUILTINS = [
    ("fsync", re.compile(r"\bf(?:data)?sync\s*\(")),
    ("connect", re.compile(r"::connect\s*\(")),
    ("sendmsg", re.compile(r"::(?:send|recv)msg\s*\(")),
    ("sleep", re.compile(
        r"\b(?:sleep|usleep|nanosleep)\s*\("
        r"|std::this_thread::sleep_(?:for|until)")),
    ("condvar-wait", re.compile(
        r"\b\w*(?:cv|cond)\w*\s*\.\s*wait(?:_for|_until)?\s*\(")),
    ("file-io", re.compile(
        r"::open\s*\(|::openat\s*\(|\bfopen\s*\(|\bfread\s*\(|\bfwrite\s*\("
        r"|::read\s*\(|::write\s*\(|::pread\s*\(|::pwrite\s*\("
        r"|::ftruncate\s*\(|::rename\s*\(|::unlink\s*\(|::mkdir\s*\("
        r"|\b[io]fstream\b")),
]

# Sources of nondeterminism sim-driven code must never touch (corona-lint
# catches direct uses file-locally; this rule follows calls).
NONDET_BUILTINS = [
    ("wall-clock", re.compile(
        r"std::chrono::(?:system|steady|high_resolution)_clock"
        r"|\b(?:system|steady|high_resolution)_clock::"
        r"|\btime\s*\(\s*(?:NULL|nullptr|0|&|\))"
        r"|\bgettimeofday\b|\bclock_gettime\b|\blocaltime\b|\bgmtime\b")),
    ("raw-random", re.compile(
        r"\b(?:s?rand)\s*\(|\bd?rand48\b|std::random_device"
        r"|\brandom_device\b")),
    ("thread-id", re.compile(r"std::this_thread::get_id")),
]

CONFIG = CallgraphConfig(
    tool="reach",
    rules=RULES,
    leaf_models={"blocking": BLOCKING_BUILTINS, "nondet": NONDET_BUILTINS},
)

# Modules whose code runs under the deterministic simulator (rule 4 entry
# set).  net/ and runtime/ are engine land: calls into them from sim-pure
# code happen through Runtime virtual dispatch, which binds to SimRuntime in
# sim worlds — following the CHA edges there would be false by construction.
SIM_PURE_PREFIXES = ("core/", "replica/", "serial/", "sim/", "check/",
                     "util/", "storage/")
SIM_EXEMPT_PREFIXES = ("net/", "runtime/")


def sim_pure(rel: str) -> bool:
    if not rel:  # outside src/ (fixtures): treated as sim-pure
        return True
    return rel.startswith(SIM_PURE_PREFIXES) and not rel.startswith(
        "storage/disk/")


def sim_traversable(rel: str) -> bool:
    return not rel or not rel.startswith(SIM_EXEMPT_PREFIXES)


# ---------------------------------------------------------------------------
# Engine entry points, bound to this tool's config
# ---------------------------------------------------------------------------

_load_cindex = cg.load_cindex


def build_graph_textual(files: list) -> Graph:
    return cg.build_graph_textual(files, CONFIG)


def build_graph_libclang(db_dir: str, files: list) -> Graph | None:
    return cg.build_graph_libclang(db_dir, files, CONFIG)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def handler_entries(graph: Graph) -> set:
    """Loop-context entry set: annotated functions plus CHA name-widening
    (every override of an annotated virtual shares its simple name)."""
    return annotated_entries(graph, "loop_context")


def _bfs_blocking(graph: Graph, roots: list, rule: str,
                  skip_condvar: bool, no_descend: frozenset) -> list:
    """From each (already-resolved) root qname, finds blocking leaves.
    Returns [(leaf, via_path, path, line)].  `no_descend` holds the handler
    entries: every runtime dispatches into on_message/on_timer, so
    traversing THROUGH a handler-invocation edge would make each handler's
    body reachable from everywhere — but handlers are analyzed as roots in
    their own right, so the edge is a dispatch boundary, not a call."""
    out = []
    seen = set()
    queue = [(r, (r,)) for r in roots]
    while queue:
        qname, via = queue.pop(0)
        if qname in seen:
            continue
        seen.add(qname)
        fn = graph.functions.get(qname)
        if fn is None:
            continue
        if rule in fn.waived:
            continue
        if "nonblocking" in fn.annotations:
            continue
        if "blocking" in fn.annotations and len(via) > 1:
            out.append((qname, via, fn.path, fn.line))
            continue  # stop at the annotated boundary
        if skip_condvar and fn.qname.startswith("CondVar::"):
            continue
        for leaf, line, _locked, waive in fn.hits("blocking"):
            if rule in waive:
                continue
            if skip_condvar and leaf == "condvar-wait":
                continue
            out.append((f"{leaf}()", via, fn.path, line))
        for call in fn.calls:
            if rule in call.waived:
                continue
            for callee in graph.resolve(call):
                if callee not in seen and callee not in no_descend:
                    queue.append((callee, via + (callee,)))
    return out


def rule_loop_context(graph: Graph) -> list:
    rule = "blocking-in-loop-context"
    entries = handler_entries(graph)
    findings = []
    for entry in sorted(entries):
        fn = graph.functions.get(entry)
        if fn is None or rule in fn.waived:
            continue
        boundary = frozenset(entries - {entry})
        for leaf, via, path, line in _bfs_blocking(
                graph, [entry], rule, skip_condvar=False,
                no_descend=boundary):
            findings.append(Finding(rule, entry, leaf,
                                    src_relative(path) or path, line,
                                    " -> ".join(via)))
    return findings


def rule_while_locked(graph: Graph) -> list:
    rule = "blocking-while-locked"
    boundary = frozenset(handler_entries(graph))
    findings = []
    for fn in graph.functions.values():
        if rule in fn.waived:
            continue
        for leaf, line, locked, waive in fn.hits("blocking"):
            if locked is None or rule in waive or leaf == "condvar-wait":
                continue
            findings.append(Finding(
                rule, f"{fn.qname}[{locked}]", f"{leaf}()",
                fn.rel or fn.path, line, fn.qname))
        for call in fn.calls:
            if call.locked is None or rule in call.waived:
                continue
            roots = [r for r in graph.resolve(call) if r not in boundary]
            for leaf, via, path, line in _bfs_blocking(
                    graph, roots, rule, skip_condvar=True,
                    no_descend=boundary):
                findings.append(Finding(
                    rule, f"{fn.qname}[{call.locked}]", leaf,
                    src_relative(path) or path, line,
                    " -> ".join((fn.qname,) + via)))
    return findings


def rule_unchecked(graph: Graph) -> list:
    rule = "unchecked-fallible"
    findings = []
    for rel, line, enclosing, callee, waive in graph.stmt_calls:
        if rule in waive:
            continue
        if not graph.tracked_nodiscard(callee):
            continue
        findings.append(Finding(rule, f"{enclosing}", f"{callee}()",
                                rel, line, f"{enclosing} drops {callee}()"))
    return findings


def rule_sim_purity(graph: Graph) -> list:
    rule = "sim-purity"
    # Reachable set from sim-pure functions, never crossing into engine
    # modules (net/, runtime/) where Runtime dispatch binds per-world, and
    # never through a handler-dispatch edge (handlers seed themselves).
    boundary = handler_entries(graph)
    reachable = {}
    queue = []
    for fn in graph.functions.values():
        if sim_pure(fn.rel) and rule not in fn.waived:
            reachable[fn.qname] = (fn.qname,)
            queue.append(fn.qname)
    while queue:
        qname = queue.pop(0)
        fn = graph.functions.get(qname)
        if fn is None:
            continue
        for call in fn.calls:
            if rule in call.waived:
                continue
            for callee in graph.resolve(call):
                cf = graph.functions.get(callee)
                if cf is None or callee in reachable:
                    continue
                if not sim_traversable(cf.rel) or rule in cf.waived:
                    continue
                if callee in boundary:
                    continue
                reachable[callee] = reachable[qname] + (callee,)
                queue.append(callee)
    findings = []
    for qname, via in sorted(reachable.items()):
        fn = graph.functions[qname]
        for leaf, line, _locked, waive in fn.hits("nondet"):
            if rule in waive:
                continue
            findings.append(Finding(rule, qname, leaf, fn.rel or fn.path,
                                    line, " -> ".join(via)))
    return findings


def run_rules(graph: Graph) -> list:
    findings = (rule_loop_context(graph) + rule_while_locked(graph)
                + rule_unchecked(graph) + rule_sim_purity(graph))
    uniq = {}
    for f in findings:
        uniq.setdefault(f.key, f)
    return [uniq[k] for k in sorted(uniq)]


# ---------------------------------------------------------------------------
# Baseline + CLI
# ---------------------------------------------------------------------------

DEFAULT_BASELINE = os.path.join(HERE, "reach_baseline.json")

BASELINE_COMMENT = (
    "corona-reach finding baseline.  Every entry is a reviewed, "
    "rationalized exception; a finding not listed here (or listed without "
    "a rationale) fails the gate.  Refresh with --write-baseline after "
    "review — existing rationales are preserved.")


def load_baseline(path: str) -> dict:
    return cg.load_baseline(path, "reach")


def write_baseline(path: str, findings: list, old: dict) -> None:
    cg.write_baseline(path, findings, old, "reach", BASELINE_COMMENT)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="corona-reach",
        description="interprocedural blocking-call / execution-context lint",
    )
    parser.add_argument("inputs", nargs="+",
                        help="optional compile_commands.json followed by "
                             "source files/directories")
    parser.add_argument("--frontend", choices=("auto", "textual", "libclang"),
                        default="auto")
    parser.add_argument("--require-libclang", action="store_true",
                        help="fail (exit 2) instead of falling back to the "
                             "textual frontend when libclang is unavailable")
    parser.add_argument("--baseline", metavar="FILE",
                        help="findings baseline (default: committed "
                             "reach_baseline.json when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding; ignore any baseline")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the observed findings (preserving "
                             "existing rationales) and exit")
    parser.add_argument("--print-graph", action="store_true",
                        help="dump every call edge")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    db_path = None
    paths = []
    for inp in args.inputs:
        if inp.endswith(".json"):
            db_path = inp
        else:
            paths.append(inp)
    if not paths:
        print("reach: no source paths given", file=sys.stderr)
        return 2

    files = [f for f in gather_files(paths)
             if os.path.splitext(f)[1] in CXX_EXTENSIONS]

    graph = None
    frontend = args.frontend
    if frontend in ("auto", "libclang"):
        if db_path and os.path.isfile(db_path):
            graph = build_graph_libclang(os.path.dirname(
                os.path.abspath(db_path)) or ".", files)
        if graph is None:
            msg = ("reach: libclang frontend unavailable "
                   "(no python clang bindings or no compile_commands.json)")
            if args.require_libclang or frontend == "libclang":
                print(f"{msg}; --require-libclang set, failing",
                      file=sys.stderr)
                return 2
            if not args.quiet:
                print(f"{msg}; falling back to the textual frontend",
                      file=sys.stderr)
    if graph is None:
        graph = build_graph_textual(files)

    findings = run_rules(graph)

    if args.print_graph:
        for qname in sorted(graph.functions):
            fn = graph.functions[qname]
            tags = ",".join(sorted(fn.annotations)) or "-"
            print(f"fn {qname} [{tags}] ({fn.rel or fn.path}:{fn.line})")
            for call in fn.calls:
                lock = f" [locked:{call.locked}]" if call.locked else ""
                print(f"  -> {call.qualified or call.simple}{lock}")

    if args.write_baseline:
        old = (load_baseline(args.write_baseline)
               if os.path.isfile(args.write_baseline) else {})
        write_baseline(args.write_baseline, findings, old)
        return 0

    baseline = {}
    baseline_path = args.baseline
    if not args.no_baseline and not baseline_path and \
            os.path.isfile(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if not args.no_baseline and baseline_path:
        baseline = load_baseline(baseline_path)

    failures = 0
    matched = set()
    for f in findings:
        rationale = baseline.get(f.key)
        if rationale:
            matched.add(f.key)
            continue
        failures += 1
        if rationale == "":
            print(f"{f.path}:{f.line}: [{f.rule}] {f.subject} reaches "
                  f"{f.leaf} — baselined WITHOUT a rationale; justify it "
                  f"in {baseline_path}")
        else:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.subject} reaches "
                  f"{f.leaf}")
        print(f"    via {f.via}")
    for key in sorted(set(baseline) - matched):
        print(f"reach: note: stale baseline entry {key} no longer observed",
              file=sys.stderr)

    if not args.quiet:
        print(f"reach: {len(files)} files, {len(graph.functions)} "
              f"function(s), {len(findings)} finding(s), "
              f"{len(matched)} baselined, {failures} violation(s)",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
