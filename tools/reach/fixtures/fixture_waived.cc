// reach fixture: a planted violation carrying a waiver.  The waiver (with
// its rationale) must suppress the finding entirely.
#include <unistd.h>

#define CORONA_LOOP_CONTEXT

class WaivedSyncer {
 public:
  // reach: waive blocking-in-loop-context -- fixture: reviewed, the fd is
  // a ramdisk file and the sync returns immediately.
  CORONA_LOOP_CONTEXT void on_flush_tick() { fsync(fd_); }

 private:
  int fd_ = -1;
};
