// reach fixture: mutually recursive cycle ending at a blocking connect.
// The BFS must terminate on the a <-> b cycle and still report the leaf.
#include <sys/socket.h>

#define CORONA_LOOP_CONTEXT

namespace {

void dial_peer(int fd, const sockaddr* addr, unsigned len);
void retry_dial(int fd, const sockaddr* addr, unsigned len);

void dial_peer(int fd, const sockaddr* addr, unsigned len) {
  if (::connect(fd, addr, len) != 0) {  // planted: blocking-in-loop-context
    retry_dial(fd, addr, len);
  }
}

void retry_dial(int fd, const sockaddr* addr, unsigned len) {
  dial_peer(fd, addr, len);  // cycle back
}

}  // namespace

class Redialer {
 public:
  CORONA_LOOP_CONTEXT void on_peer_lost() { dial_peer(fd_, nullptr, 0); }

 private:
  int fd_ = -1;
};
