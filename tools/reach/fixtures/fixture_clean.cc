// reach fixture: entirely clean code.  Loop-context work that stays in
// memory, a checked fallible call, and deterministic time handling — the
// tool must report nothing here.
#include <cstdint>
#include <vector>

#define CORONA_LOOP_CONTEXT

struct Verdict {
  static Verdict ok();
  bool accepted;
};

class QuietCounter {
 public:
  CORONA_LOOP_CONTEXT void on_count(std::uint64_t n) {
    total_ += n;
    samples_.push_back(n);
  }

  [[nodiscard]] Verdict admit(std::uint64_t n) {
    return n < 100 ? Verdict::ok() : Verdict{false};
  }

  void apply(std::uint64_t n) {
    const Verdict v = admit(n);
    if (v.accepted) total_ += n;
  }

 private:
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> samples_;
};
