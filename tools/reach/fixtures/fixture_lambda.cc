// reach fixture: lambda indirection.  The blocking call sits inside a
// lambda body; the scanner attributes lambda bodies to the defining
// function, so the chain on_drain -> flush_tail -> fdatasync must surface.
#include <unistd.h>

#define CORONA_LOOP_CONTEXT

class TailFlusher {
 public:
  CORONA_LOOP_CONTEXT void on_drain() {
    auto commit = [this] { flush_tail(); };
    commit();
  }

 private:
  void flush_tail() { fdatasync(fd_); }  // planted: blocking-in-loop-context
  int fd_ = -1;
};
