// reach fixture: function-pointer indirection.  Taking &slow_retry is the
// only link between the handler and the sleeping helper; the address-take
// must count as a call edge from the taker.
#include <unistd.h>

#define CORONA_LOOP_CONTEXT

void slow_retry() {
  sleep(1);  // planted: blocking-in-loop-context (via address-take)
}

class RetryScheduler {
 public:
  CORONA_LOOP_CONTEXT void on_retry_tick() {
    void (*hook)() = &slow_retry;
    hook();
  }
};
