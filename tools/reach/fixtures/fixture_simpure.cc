// reach fixture: sim-purity.  Fixture files are treated as sim-pure
// modules; stamp_event() only becomes nondeterministic through the helper
// it calls, so the finding requires interprocedural reachability.
#include <chrono>
#include <cstdint>

namespace {

std::uint64_t wall_nanos() {
  // planted: sim-purity (wall-clock leaf)
  return static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
}

}  // namespace

class EventStamper {
 public:
  void stamp_event() { last_stamp_ = wall_nanos(); }

 private:
  std::uint64_t last_stamp_ = 0;
};
