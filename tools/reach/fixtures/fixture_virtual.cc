// reach fixture: virtual dispatch.  The base declares the loop-context
// callback; the override reaches fsync two calls deep.  Name-based CHA must
// widen the annotation to the override and flag it.
#include <unistd.h>

#define CORONA_LOOP_CONTEXT

class PollerBase {
 public:
  CORONA_LOOP_CONTEXT virtual void on_poll() = 0;
  virtual ~PollerBase() = default;
};

class DurablePoller : public PollerBase {
 public:
  void on_poll() override { persist(); }

 private:
  void persist() { sync_segment(); }
  void sync_segment() { fsync(fd_); }  // planted: blocking-in-loop-context
  int fd_ = -1;
};
