// reach fixture: dropped [[nodiscard]] result.  save() is fallible and
// every declaration says so; the bare statement call must fire
// unchecked-fallible while the (void)-acknowledged one must not.
struct Status {
  static Status ok();
  bool is_ok() const;
};

class SettingsFile {
 public:
  [[nodiscard]] Status save_settings();

  void on_apply() {
    save_settings();  // planted: unchecked-fallible
  }

  void on_discard() {
    (void)save_settings();  // acknowledged drop: no finding
  }
};

Status SettingsFile::save_settings() { return Status::ok(); }
