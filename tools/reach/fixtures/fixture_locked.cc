// reach fixture: blocking under a held MutexLock, two calls away.  Also the
// sanctioned counter-case: CondVar::wait with the lock held is the intended
// use and must NOT fire blocking-while-locked.
#include <unistd.h>

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
struct CondVar {
  void wait(MutexLock& lk);
};

class JournalGate {
 public:
  void commit() {
    MutexLock lock(mu_);
    write_journal();  // planted: blocking-while-locked via helper
  }

  void park_until_signalled() {
    MutexLock lock(mu_);
    cv_.wait(lock);  // sanctioned: waiting with the lock held is the point
  }

 private:
  void write_journal() { fsync(fd_); }

  Mutex mu_;
  CondVar cv_;
  int fd_ = -1;
};
