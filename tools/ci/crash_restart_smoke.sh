#!/usr/bin/env bash
# Daemon-level crash-restart gate (docs/ANALYSIS.md §11, docs/STORAGE.md).
#
# Drives the durable corona-serverd over real loopback TCP, SIGKILLs it
# mid-flight, restarts it with --recover on the same data directory, and
# asserts the recovery contract end to end:
#   * the restarted daemon reports the recovered group and >=1 log records;
#   * a fresh client joins the recovered group;
#   * sequencing RESUMES where the durable log left off (the post-crash
#     message gets seq 4 after three pre-crash messages — no reset, no gap);
#   * the data directory holds checkpoint and segment files.
#
# Usage: tools/ci/crash_restart_smoke.sh [build-dir] [port]
set -euo pipefail

BUILD_DIR=${1:-build}
PORT=${2:-7741}
SERVERD="$BUILD_DIR/examples/corona-serverd"
CLIENTD="$BUILD_DIR/examples/corona-clientd"
DATA_DIR=$(mktemp -d /tmp/corona_crash_smoke_data.XXXXXX)
LOG_DIR=$(mktemp -d /tmp/corona_crash_smoke_logs.XXXXXX)
SPID=""
S2PID=""

cleanup() {
  [[ -n "$SPID" ]] && kill -9 "$SPID" 2>/dev/null || true
  [[ -n "$S2PID" ]] && kill -9 "$S2PID" 2>/dev/null || true
  rm -rf "$DATA_DIR" "$LOG_DIR"
}
trap cleanup EXIT

fail() {
  echo "crash-restart: FAIL: $*" >&2
  for f in server1 server2 client1 client2; do
    if [[ -s "$LOG_DIR/$f.log" ]]; then
      echo "--- $f ---" >&2
      cat "$LOG_DIR/$f.log" >&2
    fi
  done
  exit 1
}

[[ -x "$SERVERD" && -x "$CLIENTD" ]] ||
  fail "daemons not built under $BUILD_DIR/examples"

# Life 1: durable server, one client creates a group and sends traffic.
"$SERVERD" --listen "127.0.0.1:$PORT" --data-dir "$DATA_DIR" \
  --flush-ms 20 --checkpoint-every 8 >"$LOG_DIR/server1.log" 2>&1 &
SPID=$!
sleep 1
{
  echo "create 7"; sleep 0.5
  echo "join 7"; sleep 0.5
  echo "send 7 1 pre-crash-one"
  echo "send 7 1 pre-crash-two"
  echo "send 7 2 pre-crash-three"
  sleep 1
} | timeout 60 "$CLIENTD" --server "127.0.0.1:$PORT" --node 100 \
  >"$LOG_DIR/client1.log" 2>&1 || fail "client 1 did not run to completion"
grep -q '\[deliver\] group 7 seq 3' "$LOG_DIR/client1.log" ||
  fail "pre-crash deliveries did not reach the client"

# Let the 20 ms async flush commit the tail, then kill without warning.
sleep 1
kill -9 "$SPID"
wait "$SPID" 2>/dev/null || true
SPID=""

# Life 2: restart on the same directory; a NEW client must find the group
# and the sequencer must resume at seq 4.
"$SERVERD" --listen "127.0.0.1:$PORT" --data-dir "$DATA_DIR" --recover \
  >"$LOG_DIR/server2.log" 2>&1 &
S2PID=$!
sleep 1
{
  echo "join 7"; sleep 0.5
  echo "send 7 1 post-crash"; sleep 1
  echo "quit"
} | timeout 60 "$CLIENTD" --server "127.0.0.1:$PORT" --node 101 \
  >"$LOG_DIR/client2.log" 2>&1 || fail "client 2 did not run to completion"
kill "$S2PID" 2>/dev/null || true
wait "$S2PID" 2>/dev/null || true
S2PID=""

grep -Eq 'recovered 1 group\(s\), [1-9][0-9]* log record\(s\)' \
  "$LOG_DIR/server2.log" || fail "restart did not recover the group's log"
grep -q '\[joined\] group 7: ok' "$LOG_DIR/client2.log" ||
  fail "fresh client could not join the recovered group"
grep -q '\[deliver\] group 7 seq 4 obj 1 from node 101: post-crash' \
  "$LOG_DIR/client2.log" ||
  fail "sequencing did not resume at seq 4 after recovery"
ls "$DATA_DIR"/ckpt/*.ckpt >/dev/null 2>&1 ||
  fail "no checkpoint files in the data directory"
ls "$DATA_DIR"/groups/7/seg-*.log >/dev/null 2>&1 ||
  fail "no log segments in the data directory"

echo "crash-restart: OK (recovered, rejoined, resumed at seq 4)"
