#!/usr/bin/env python3
"""Aggregate gcov coverage for a CORONA_COVERAGE build tree.

Usage:
  cmake --preset coverage && cmake --build --preset coverage -j
  ctest --preset coverage
  python3 tools/coverage/report.py --build build/coverage

Walks the build tree for .gcda counters, runs `gcov --json-format --stdout`
on each, merges the per-TU records (a header inlined into five TUs counts as
covered if ANY of them executed the line), and prints per-directory line and
branch coverage for files under --filter (default: src/).  No gcovr/llvm-cov
needed — plain gcov is enough.

The table is the triage companion for MUTATION_REPORT.json: a surviving
mutant on an uncovered line is a test-gap problem, not an oracle-strength
problem (docs/ANALYSIS.md §7).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build: str) -> list[str]:
    out = []
    for root, _, files in os.walk(build):
        for f in files:
            if f.endswith(".gcda"):
                out.append(os.path.join(root, f))
    return sorted(out)


def gcov_json(gcda: str, gcov: str = "gcov") -> list[dict]:
    """Runs gcov on one .gcda and yields the parsed JSON document(s)."""
    proc = subprocess.run(
        [gcov, "--json-format", "--stdout", "--branch-probabilities", gcda],
        cwd=os.path.dirname(gcda), capture_output=True, text=True)
    if proc.returncode != 0:
        return []
    docs = []
    for chunk in proc.stdout.splitlines():
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            docs.append(json.loads(chunk))
        except json.JSONDecodeError:
            continue
    if not docs and proc.stdout.strip():
        try:
            docs.append(json.loads(proc.stdout))
        except json.JSONDecodeError:
            pass
    return docs


class Merged:
    """Per-file merge across translation units."""

    def __init__(self) -> None:
        self.lines: dict[str, dict[int, int]] = {}
        self.branches: dict[str, dict[tuple[int, int], int]] = {}

    def add_file_record(self, rel: str, record: dict) -> None:
        lines = self.lines.setdefault(rel, {})
        branches = self.branches.setdefault(rel, {})
        for ln in record.get("lines", []):
            no = ln.get("line_number")
            if no is None:
                continue
            count = int(ln.get("count", 0))
            lines[no] = max(lines.get(no, 0), count)
            for idx, br in enumerate(ln.get("branches", [])):
                key = (no, idx)
                bcount = int(br.get("count", 0))
                branches[key] = max(branches.get(key, 0), bcount)


def collect(build: str, repo: str, filt: str, gcov: str) -> Merged:
    merged = Merged()
    for gcda in find_gcda(build):
        for doc in gcov_json(gcda, gcov):
            for record in doc.get("files", []):
                path = record.get("file", "")
                if not os.path.isabs(path):
                    path = os.path.normpath(
                        os.path.join(os.path.dirname(gcda), path))
                rel = os.path.relpath(path, repo).replace(os.sep, "/")
                if rel.startswith("..") or not rel.startswith(filt):
                    continue
                merged.add_file_record(rel, record)
    return merged


def rollup(merged: Merged) -> dict[str, dict[str, int]]:
    """Per-directory totals: {dir: {lines, lines_hit, branches,
    branches_hit}}, plus a 'total' row."""
    table: dict[str, dict[str, int]] = {}

    def bucket(rel: str) -> str:
        parts = rel.split("/")
        return "/".join(parts[:2]) if len(parts) > 2 else parts[0]

    for rel, lines in merged.lines.items():
        row = table.setdefault(
            bucket(rel),
            {"lines": 0, "lines_hit": 0, "branches": 0, "branches_hit": 0})
        row["lines"] += len(lines)
        row["lines_hit"] += sum(1 for c in lines.values() if c > 0)
        brs = merged.branches.get(rel, {})
        row["branches"] += len(brs)
        row["branches_hit"] += sum(1 for c in brs.values() if c > 0)

    total = {"lines": 0, "lines_hit": 0, "branches": 0, "branches_hit": 0}
    for row in table.values():
        for k in total:
            total[k] += row[k]
    table["total"] = total
    return table


def pct(hit: int, total: int) -> str:
    return f"{100.0 * hit / total:5.1f}%" if total else "   --"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build/coverage")
    ap.add_argument("--repo", default=".")
    ap.add_argument("--filter", default="src/",
                    help="only report files under this repo-relative prefix")
    ap.add_argument("--gcov", default="gcov")
    ap.add_argument("--json", metavar="PATH",
                    help="also dump the rollup as JSON")
    args = ap.parse_args(argv)

    repo = os.path.abspath(args.repo)
    build = os.path.abspath(args.build)
    if not os.path.isdir(build):
        print(f"coverage: no build tree at {build}", file=sys.stderr)
        return 2
    if not find_gcda(build):
        print(f"coverage: no .gcda counters under {build} — build with the "
              "coverage preset and run ctest first", file=sys.stderr)
        return 2

    merged = collect(build, repo, args.filter, args.gcov)
    table = rollup(merged)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(table, f, indent=1, sort_keys=True)

    print(f"{'directory':<16} {'lines':>12} {'line%':>7} "
          f"{'branches':>12} {'branch%':>8}")
    for name in sorted(k for k in table if k != "total") + ["total"]:
        row = table[name]
        print(f"{name:<16} {row['lines_hit']:>5}/{row['lines']:<6} "
              f"{pct(row['lines_hit'], row['lines']):>7} "
              f"{row['branches_hit']:>5}/{row['branches']:<6} "
              f"{pct(row['branches_hit'], row['branches']):>8}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
