#!/usr/bin/env python3
"""Shared whole-program call-graph engine for the interprocedural lints.

corona-reach (tools/reach/) and corona-heat (tools/heat/) answer different
questions — "can this entry point block?" vs "does this hot path allocate or
copy?" — over the SAME artifact: a conservative call graph of src/.  This
module is that artifact's single home: the graph IR, the two frontends that
build it, the annotation/waiver plumbing, and the rationalized-baseline
gate.  The tools keep only their rules and their CLIs.

Two frontends produce the same Graph IR:

  textual   a dependency-free parser over the sources, sharing corona_lint's
            line machinery.  Virtual calls resolve by conservative
            name-based class-hierarchy analysis: a call to `x->flush()`
            targets EVERY known `flush` — an over-approximation that is
            exactly what makes `Runtime*`-dispatched code visible.  Lambda
            bodies attribute to their defining function; address-taken
            functions (`&f`) count as called from the taker.
  libclang  precise AST extraction over compile_commands.json via
            clang.cindex (CI installs the pinned libclang; locally the
            tools report and fall back to textual unless --require-libclang
            is given).  Leaf-pattern scanning stays textual in both
            frontends so the builtin models cannot drift between them.

Each client passes a CallgraphConfig: its waiver tag (`// reach: waive ...`
vs `// heat: waive ...`), its rule-name set, and its leaf models — named
tables of (label, regex[, unless-regex]) patterns whose per-function hits
land in Function.leaf_hits for the client's rules to interpret.

Annotations come from src/util/context.h and are shared by every client:
CORONA_BLOCKING / CORONA_NONBLOCKING / CORONA_LOOP_CONTEXT /
CORONA_HOT_PATH.  Under clang they are __attribute__((annotate(...))) and
the libclang frontend reads them off the AST; the textual frontend
recognizes the macro tokens.
"""

from __future__ import annotations

import json
import os
import re
import sys
from dataclasses import dataclass, field

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "lint"))
from corona_lint import (  # noqa: E402
    CXX_EXTENSIONS,
    gather_files,
    logical_lines,
    src_relative,
)

__all__ = [
    "CXX_EXTENSIONS", "gather_files", "logical_lines", "src_relative",
    "ANNOTATION_TOKENS", "ANNOTATE_STRINGS", "CallgraphConfig",
    "Call", "Function", "Graph", "Finding",
    "build_graph_textual", "build_graph_libclang", "load_cindex",
    "annotated_entries", "load_baseline", "write_baseline",
]

# All execution-context annotations (src/util/context.h).  One superset map
# shared by every client: a tool simply ignores labels its rules do not use.
ANNOTATION_TOKENS = {
    "CORONA_BLOCKING": "blocking",
    "CORONA_NONBLOCKING": "nonblocking",
    "CORONA_LOOP_CONTEXT": "loop_context",
    "CORONA_HOT_PATH": "hot_path",
}
ANNOTATE_STRINGS = {
    "corona::blocking": "blocking",
    "corona::nonblocking": "nonblocking",
    "corona::loop_context": "loop_context",
    "corona::hot_path": "hot_path",
}


@dataclass(frozen=True)
class CallgraphConfig:
    """Per-tool engine parameters.

    tool        the waiver tag and message prefix ("reach", "heat"):
                waivers are spelled `// <tool>: waive <rule>[, <rule>] --
                reason`.
    rules       the tool's valid rule names (waiver parsing validates
                against these; `waive all` expands to them).
    leaf_models named pattern tables: model name -> list of
                (leaf_label, regex) or (leaf_label, regex, unless_regex)
                entries.  A body segment matching `regex` (and, when given,
                NOT matching `unless_regex`) records a
                (leaf_label, line, locked, waived) hit under
                Function.leaf_hits[model name].
    """
    tool: str
    rules: tuple
    leaf_models: dict

    def waive_re(self) -> re.Pattern:
        return re.compile(
            rf"{self.tool}:\s*waive\s+([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def waivers_for(raw: str, cfg: CallgraphConfig) -> frozenset:
    m = cfg.waive_re().search(raw)
    if not m:
        return frozenset()
    rules = {r.strip() for r in m.group(1).split(",")}
    if "all" in rules:
        return frozenset(cfg.rules)
    return frozenset(r for r in rules if r in cfg.rules)


# ---------------------------------------------------------------------------
# Graph IR (shared by both frontends)
# ---------------------------------------------------------------------------

@dataclass
class Call:
    simple: str            # callee's unqualified name
    qualified: str | None  # "Class::name" when the source spells it
    line: int
    locked: str | None     # lock expression held at the site, else None
    waived: frozenset = frozenset()


@dataclass
class Function:
    qname: str
    simple: str
    path: str
    rel: str
    line: int
    annotations: set = field(default_factory=set)
    waived: set = field(default_factory=set)   # rules waived on the def
    requires_lock: str | None = None           # CORONA_REQUIRES(...) text
    calls: list = field(default_factory=list)
    # model name -> [(leaf, line, locked, waived)] direct pattern hits
    leaf_hits: dict = field(default_factory=dict)
    # Raw header statement text (through the opening '{'), for clients that
    # analyze signatures (parameter passing, return types).
    header: str = ""
    # Identifiers this function passes to std::move — the sanctioned
    # value+move ownership transfer pattern.
    moves: set = field(default_factory=set)

    def hits(self, model: str) -> list:
        return self.leaf_hits.get(model, [])


@dataclass
class Graph:
    functions: dict = field(default_factory=dict)   # qname -> Function
    by_simple: dict = field(default_factory=dict)   # simple -> [qname]
    # simple name -> {True, False}: which declarations are nodiscard.  A
    # name is tracked only if EVERY declaration agrees (textual frontend
    # cannot type receivers; mixed names defer to the compiler's own
    # -Wunused-result, which is type-precise).
    nodiscard_votes: dict = field(default_factory=dict)
    # (rel, line, enclosing qname, callee simple, waived)
    stmt_calls: list = field(default_factory=list)

    def add(self, fn: Function) -> Function:
        existing = self.functions.get(fn.qname)
        if existing is None:
            self.functions[fn.qname] = fn
            self.by_simple.setdefault(fn.simple, []).append(fn.qname)
            return fn
        # Redefinition (template specializations, inline defs seen twice):
        # merge annotations, keep the richer body.
        existing.annotations |= fn.annotations
        existing.waived |= fn.waived
        if fn.calls or fn.leaf_hits:
            existing.calls += fn.calls
            for model, hits in fn.leaf_hits.items():
                existing.leaf_hits.setdefault(model, []).extend(hits)
        existing.moves |= fn.moves
        if fn.header and not existing.header:
            existing.header = fn.header
        if fn.requires_lock and not existing.requires_lock:
            existing.requires_lock = fn.requires_lock
        return existing

    def annotate(self, qname: str, simple: str, annots: set,
                 waived: frozenset = frozenset()) -> None:
        fn = self.functions.get(qname)
        if fn is None:
            fn = self.add(Function(qname, simple, "", "", 0))
        fn.annotations |= annots
        fn.waived |= set(waived)

    def resolve(self, call: Call) -> list:
        if call.qualified and call.qualified.startswith("::"):
            # Explicit global scope: a free function, never a method.
            return [q for q in self.by_simple.get(call.simple, [])
                    if "::" not in q]
        if call.qualified and call.qualified in self.functions:
            return [call.qualified]
        return self.by_simple.get(call.simple, [])

    def tracked_nodiscard(self, simple: str) -> bool:
        votes = self.nodiscard_votes.get(simple)
        return votes is not None and votes == {True}


def annotated_entries(graph: Graph, label: str) -> set:
    """Entry set for `label`: annotated functions plus CHA name-widening
    (every override of an annotated virtual shares its simple name)."""
    entry_simples = {fn.simple for fn in graph.functions.values()
                     if label in fn.annotations}
    return {fn.qname for fn in graph.functions.values()
            if fn.simple in entry_simples}


# ---------------------------------------------------------------------------
# Textual frontend
# ---------------------------------------------------------------------------

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "assert",
    "do", "else", "new", "delete", "case", "throw", "alignof", "decltype",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "static_assert", "defined", "noexcept", "typeid", "alignas", "co_await",
    "co_return", "co_yield", "template", "typename", "using", "operator",
}

# Ubiquitous std member names.  An unqualified call to one of these is far
# more likely `std::atomic::load` or `MutexLock::unlock` than a corona
# function that happens to share the name, and name-based CHA would fan a
# single `x.load()` out to every `load` in the tree.  Edges to them are
# dropped; explicit qualification (`DiskCheckpointStore::load(...)`) still
# resolves.  Deliberately NOT listed: the domain verbs the rules exist for
# (flush, sync, write, append, recover, open, close, send, connect, wait).
STD_MEMBER_NAMES = {
    "lock", "unlock", "try_lock", "load", "store", "exchange",
    "notify_one", "notify_all", "size", "empty", "begin", "end", "cbegin",
    "cend", "rbegin", "rend", "clear", "reset", "release", "get", "swap",
    "find", "count", "contains", "at", "data", "c_str", "str", "front",
    "back", "top", "push", "pop", "push_back", "pop_back", "push_front",
    "pop_front", "emplace", "emplace_back", "insert", "resize", "reserve",
    "substr", "length", "value", "has_value", "value_or", "emplace_front",
    "min", "max", "abs", "move", "forward", "to_string", "tie", "join",
    "detach", "first", "second", "lower_bound", "upper_bound",
}

CLASS_OPEN_RE = re.compile(
    r"\b(?:class|struct)\s+(?:\[\[[^\]]*\]\]\s+)?"
    r"(?:CORONA_\w+(?:\([^)]*\))?\s+)*([A-Za-z_]\w*)[^;{=()]*\{"
)
NAME_CALL_RE = re.compile(
    r"(?P<prefix>(?:->|\.|::)\s*)?(?P<name>[A-Za-z_]\w*)\s*\("
)
QUAL_BEFORE_RE = re.compile(r"((?:[A-Za-z_]\w*::)+)$")
MAKE_RE = re.compile(
    r"\bmake_(?:unique|shared)\s*<\s*((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)"
    r"|\bnew\s+((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\s*[({]"
)
ADDR_RE = re.compile(r"&\s*((?:[A-Za-z_]\w*::)*[A-Za-z_]\w*)\b(?!\s*\()")
FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*\("
)
LOCK_DECL_RE = re.compile(
    r"\b(?:corona::)?(MutexLock|RecursiveMutexLock)\b\s+([A-Za-z_]\w*)"
    r"\s*[({]\s*([^(){};]+?)\s*[)}]"
)
LOCK_METHOD_RE = re.compile(r"\b(\w+)\s*\.\s*(lock|unlock)\s*\(\s*\)")
REQUIRES_RE = re.compile(r"\bCORONA_REQUIRES\s*\(([^()]*)\)")
NODISCARD_RE = re.compile(r"\[\[\s*nodiscard\s*\]\]")
RESULT_TYPE_RE = re.compile(r"\b(?:corona::)?(?:Status\b|Result\s*<)")
STMT_CALL_RE = re.compile(
    r"^(?:\(\s*void\s*\)\s*)?(?P<recv>[\w:\]\[]+(?:\(\s*\))?(?:\.|->))?"
    r"(?P<q>(?:[A-Za-z_]\w*::)*)(?P<name>[A-Za-z_]\w*)\s*\(.*\)\s*;$"
)
MOVE_RE = re.compile(r"std\s*::\s*move\s*\(\s*([A-Za-z_]\w*)\s*\)")


def _parse_header(stmt: str):
    """Parses an accumulated statement ending at '{' as a function header.

    Returns (name, qualifier, annotations, nodiscard, requires) or None.
    The first identifier followed by '(' that is not a keyword is the
    function name (return types are never directly followed by '(').
    """
    annots = {label for token, label in ANNOTATION_TOKENS.items()
              if re.search(rf"\b{token}\b", stmt)}
    requires = None
    rm = REQUIRES_RE.search(stmt)
    if rm:
        requires = rm.group(1).strip()
    nodiscard = bool(NODISCARD_RE.search(stmt))
    head = stmt.split("(", 1)[0] if "(" in stmt else stmt
    if re.match(r"\s*(?:class|struct|enum|namespace|union)\b", head):
        return None
    for m in FUNC_NAME_RE.finditer(stmt):
        full = re.sub(r"\s+", "", m.group(1))
        name = full.rsplit("::", 1)[-1]
        if name in KEYWORDS or name.startswith("CORONA_"):
            continue
        if name == "requires_capability":
            continue
        qual = full[: -len(name)].rstrip(":") if "::" in full else ""
        return name, qual, annots, nodiscard, requires
    return None


class _FileScanner:
    """One pass over one file: function extents, annotations, calls,
    held-lock regions, direct leaf-pattern hits, unchecked-call
    statements."""

    def __init__(self, path: str, graph: Graph, cfg: CallgraphConfig):
        self.path = path
        self.rel = src_relative(path)
        self.graph = graph
        self.cfg = cfg
        self.depth = 0
        self.classes = []        # (name, body depth)
        self.stmt = ""           # statement text since last ; { }
        self.stmt_annots = set()
        self.fn = None           # current Function being filled
        self.fn_depth = 0        # depth of its body
        self.held = []           # (var or None, depth, expr)
        self.inactive = {}       # var -> (depth, expr)
        self.prev_waive = frozenset()

    # -- helpers ------------------------------------------------------------

    def _qualify(self, name: str, qual: str) -> str:
        if qual:
            return f"{qual}::{name}"
        if self.classes:
            return f"{self.classes[-1][0]}::{name}"
        return name

    def _record_decl(self, stmt: str, waive: frozenset = frozenset()) -> None:
        """A declaration statement (ended with ';'): harvest annotations,
        waivers and nodiscard votes."""
        parsed = _parse_header(stmt)
        if not parsed:
            return
        name, qual, annots, nodiscard, requires = parsed
        if "=" in stmt.split("(", 1)[0]:
            return  # assignment/initialization, not a declaration
        qname = self._qualify(name, qual)
        if annots or waive:
            # Header declarations carry annotations AND waivers: headers are
            # the natural home for both (and, here, stay out of the mutation
            # pipeline's source hashes).
            self.graph.annotate(qname, name, annots, waive)
        fn = self.graph.functions.get(qname)
        if fn is not None and not fn.header:
            fn.header = stmt
        # Only lines that LOOK like declarations vote on nodiscard: a bare
        # call statement `foo();` must not count as a non-nodiscard decl.
        head = stmt.split("(", 1)[0].strip()
        toks = head.replace("::", " ").split()
        looks_like_decl = len(toks) >= 2 or nodiscard or \
            RESULT_TYPE_RE.search(stmt.split("(", 1)[0] or "")
        if looks_like_decl and not head.endswith((".", "->")):
            is_nd = nodiscard or bool(
                RESULT_TYPE_RE.search(stmt.split("(", 1)[0]))
            self.graph.nodiscard_votes.setdefault(name, set()).add(is_nd)
        if requires and qname in self.graph.functions:
            self.graph.functions[qname].requires_lock = requires

    def _open_function(self, stmt: str, lineno: int, waive: frozenset) -> bool:
        parsed = _parse_header(stmt)
        if not parsed:
            return False
        name, qual, annots, nodiscard, requires = parsed
        qname = self._qualify(name, qual)
        fn = Function(qname, name, self.path, self.rel, lineno,
                      annotations=set(annots), waived=set(waive),
                      requires_lock=requires, header=stmt)
        self.fn = self.graph.add(fn)
        self.fn.waived |= set(waive)
        if not self.fn.header:
            self.fn.header = stmt
        if annots:
            self.graph.annotate(qname, name, annots)
        if nodiscard:
            self.graph.nodiscard_votes.setdefault(name, set()).add(True)
        self.fn_depth = self.depth  # depth BEFORE the body '{' increments
        return True

    def _locked_expr(self) -> str | None:
        if self.fn is not None and self.fn.requires_lock:
            return self.fn.requires_lock
        if self.held:
            return self.held[-1][2]
        return None

    def _scan_body_segment(self, code: str, lineno: int,
                           waive: frozenset) -> None:
        """Call/leaf extraction for body text of the current function."""
        fn = self.fn
        locked = self._locked_expr()
        for model, entries in self.cfg.leaf_models.items():
            for entry in entries:
                leaf, rx = entry[0], entry[1]
                unless = entry[2] if len(entry) > 2 else None
                if unless and unless.search(code):
                    continue
                labels = set()
                for m in rx.finditer(code):
                    # A capturing group refines the leaf label with the
                    # matched operand (`copy-push(out)`), letting clients
                    # reason about WHAT was hit, not just that it was.
                    groups = [g for g in m.groups() if g]
                    label = f"{leaf}({groups[0]})" if groups else leaf
                    if label in labels:
                        continue
                    labels.add(label)
                    fn.leaf_hits.setdefault(model, []).append(
                        (label, lineno, locked, waive))
        for m in MOVE_RE.finditer(code):
            fn.moves.add(m.group(1))
        seen = set()
        for m in NAME_CALL_RE.finditer(code):
            name = m.group("name")
            if name in KEYWORDS or name.startswith("CORONA_"):
                continue
            qualified = None
            before = code[: m.start()]
            qm = QUAL_BEFORE_RE.search(before.rstrip())
            prefix = m.group("prefix") or ""
            if prefix.strip() == "::" or qm:
                chain = (qm.group(1) if qm else "") + name
                parts = [p for p in chain.split("::") if p]
                if parts and parts[0] == "std":
                    continue  # std:: calls are never graph edges
                if len(parts) >= 2:
                    qualified = "::".join(parts[-2:])
                elif prefix.strip() == "::":
                    qualified = f"::{name}"  # global scope: free fn only
            if qualified is None and name in STD_MEMBER_NAMES:
                continue
            if (name, qualified) in seen:
                continue
            seen.add((name, qualified))
            fn.calls.append(Call(name, qualified, lineno, locked, waive))
        for m in MAKE_RE.finditer(code):
            cls = (m.group(1) or m.group(2)).split("::")[-1]
            if cls not in KEYWORDS:
                fn.calls.append(Call(cls, f"{cls}::{cls}", lineno, locked,
                                     waive))
        for m in ADDR_RE.finditer(code):
            target = m.group(1).split("::")[-1]
            if target in self.graph.by_simple or True:
                # Address taken: conservatively a call from the taker.  Only
                # kept if it resolves to a known function at rule time.
                fn.calls.append(Call(target, None, lineno, locked, waive))

    def _scan_stmt_call(self, code: str, lineno: int,
                        waive: frozenset) -> None:
        stripped = code.strip()
        m = STMT_CALL_RE.match(stripped)
        if not m or stripped.startswith("(void)"):
            return
        if "=" in stripped.split("(", 1)[0]:
            return
        if re.match(r"^(?:if|for|while|switch|return|delete|throw)\b",
                    stripped):
            return
        name = m.group("name")
        if name in KEYWORDS or name.startswith("CORONA_"):
            return
        # Declarations (`void f();`) have type tokens before the name with
        # whitespace; the statement regex already excludes those because the
        # receiver group cannot contain spaces.
        enclosing = self.fn.qname if self.fn else f"<file:{self.rel}>"
        self.graph.stmt_calls.append(
            (self.rel or self.path, lineno, enclosing, name, waive))

    # -- the pass -----------------------------------------------------------

    def run(self, text: str) -> None:
        in_directive = False
        for lineno, raw, code in logical_lines(text):
            # Preprocessor directives (and their backslash continuations)
            # are not code: `#if __has_attribute(annotate)` must not mint a
            # function named __has_attribute.
            if in_directive or code.lstrip().startswith("#"):
                in_directive = raw.rstrip().endswith("\\")
                continue
            waive = waivers_for(raw, self.cfg) | self.prev_waive
            # A waiver carries over a whole comment block onto the next code
            # line (the rationale usually takes several comment lines).
            self.prev_waive = waive if not code.strip() else frozenset()

            if self.fn is not None and code.strip():
                self._scan_stmt_call(code, lineno, waive)

            opens = {m.end() - 1: m.group(1)
                     for m in CLASS_OPEN_RE.finditer(code)}
            # Lock events, processed positionally below.
            lock_events = []
            if self.fn is not None:
                for m in LOCK_DECL_RE.finditer(code):
                    lock_events.append((m.start(), "decl",
                                        (m.group(2), m.group(3))))
                for m in LOCK_METHOD_RE.finditer(code):
                    lock_events.append((m.start(), m.group(2),
                                        (m.group(1),)))
                lock_events.sort()
            ei = 0
            seg_start = 0

            for pos, ch in enumerate(code + "\n"):
                while (ei < len(lock_events)
                       and lock_events[ei][0] <= pos):
                    _, kind, args = lock_events[ei]
                    ei += 1
                    if kind == "decl":
                        var, expr = args
                        self.inactive.pop(var, None)
                        self.held.append((var, self.depth, expr.strip()))
                    elif kind == "unlock":
                        (var,) = args
                        for i, h in enumerate(self.held):
                            if h[0] == var:
                                self.inactive[var] = self.held.pop(i)
                                break
                    elif kind == "lock":
                        (var,) = args
                        h = self.inactive.pop(var, None)
                        if h is not None:
                            self.held.append((var, self.depth, h[2]))
                if ch in ";{}":
                    segment = code[seg_start:pos]
                    if self.fn is not None:
                        self._scan_body_segment(segment, lineno, waive)
                    if ch == ";":
                        if self.fn is None:
                            self._record_decl(self.stmt + segment, waive)
                        self.stmt = ""
                    elif ch == "{":
                        header = self.stmt + segment
                        if self.fn is None:
                            if not self._open_function(header, lineno,
                                                       waive):
                                pass
                        self.stmt = ""
                        self.depth += 1
                        if pos in opens:
                            self.classes.append((opens[pos], self.depth))
                    elif ch == "}":
                        if self.classes and self.classes[-1][1] == self.depth:
                            self.classes.pop()
                        self.depth -= 1
                        while self.held and self.held[-1][1] >= self.depth:
                            dead = self.held.pop()
                            if dead[0] is not None:
                                self.inactive.pop(dead[0], None)
                        self.inactive = {
                            v: h for v, h in self.inactive.items()
                            if h[1] < self.depth}
                        if self.fn is not None and self.depth <= self.fn_depth:
                            self.fn = None
                            self.held = []
                            self.inactive = {}
                        self.stmt = ""
                    seg_start = pos + 1
            tail = code[seg_start:]
            if tail.strip():
                if self.fn is not None:
                    self._scan_body_segment(tail, lineno, waive)
                self.stmt += tail + " "


def build_graph_textual(files: list, cfg: CallgraphConfig) -> Graph:
    graph = Graph()
    for path in sorted(files):
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"{cfg.tool}: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        _FileScanner(path, graph, cfg).run(text)
    return graph


# ---------------------------------------------------------------------------
# libclang frontend
# ---------------------------------------------------------------------------

def load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    if not cindex.Config.loaded:
        for lib in (os.environ.get("CORONA_LIBCLANG"),
                    "libclang-14.so.1", "libclang.so.14", "libclang.so"):
            if not lib:
                continue
            try:
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                return cindex
            except Exception:  # noqa: BLE001 - probe the next candidate
                cindex.Config.loaded = False
                continue
        try:
            cindex.Index.create()
        except Exception:  # noqa: BLE001
            return None
    return cindex


def build_graph_libclang(db_dir: str, files: list,
                         cfg: CallgraphConfig) -> Graph | None:
    """AST-precise graph extraction.  Returns None if libclang is missing."""
    cindex = load_cindex()
    if cindex is None:
        return None
    CursorKind = cindex.CursorKind
    try:
        db = cindex.CompilationDatabase.fromDirectory(db_dir)
    except cindex.CompilationDatabaseError:
        print(f"{cfg.tool}: no compilation database in {db_dir}",
              file=sys.stderr)
        return None
    index = cindex.Index.create()
    graph = Graph()
    wanted = {os.path.abspath(f) for f in files}
    waiver_map = _collect_waivers(files, cfg)
    parsed_headers = set()

    def qname_of(cur) -> tuple:
        name = cur.spelling or "<anon>"
        parent = cur.semantic_parent
        if parent is not None and parent.kind in (
                CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                CursorKind.CLASS_TEMPLATE):
            return f"{parent.spelling}::{name}", name
        return name, name

    def annots_of(cur) -> set:
        out = set()
        for ch in cur.get_children():
            if ch.kind == CursorKind.ANNOTATE_ATTR:
                label = ANNOTATE_STRINGS.get(ch.spelling)
                if label:
                    out.add(label)
        return out

    def is_nodiscard(cur) -> bool:
        if any(ch.kind == CursorKind.WARN_UNUSED_RESULT_ATTR
               for ch in cur.get_children()):
            return True
        rt = cur.result_type.spelling if cur.result_type else ""
        return bool(RESULT_TYPE_RE.search(rt))

    def _textual_body_leaves(fn: Function, wmap) -> None:
        try:
            with open(fn.path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            return
        # Delegate to the textual scanner for this one file if we have not
        # already; cheap and keeps leaf semantics in one place.
        if getattr(graph, "_leafscanned", None) is None:
            graph._leafscanned = set()
        if fn.path in graph._leafscanned:
            return
        graph._leafscanned.add(fn.path)
        shadow = Graph()
        _FileScanner(fn.path, shadow, cfg).run(text)
        for q, sfn in shadow.functions.items():
            target = graph.functions.get(q)
            if target is not None:
                for model, hits in sfn.leaf_hits.items():
                    target.leaf_hits.setdefault(model, []).extend(hits)
                target.moves |= sfn.moves
                if sfn.header and not target.header:
                    target.header = sfn.header
                target.requires_lock = (target.requires_lock
                                        or sfn.requires_lock)
                if not target.calls:
                    target.calls += sfn.calls
        graph.stmt_calls.extend(shadow.stmt_calls)

    def handle_function(cur) -> None:
        loc_file = cur.location.file
        path = loc_file.name if loc_file else ""
        key = (path, cur.location.line)
        qname, simple = qname_of(cur)
        annots = annots_of(cur)
        if not cur.is_definition():
            if annots:
                graph.annotate(qname, simple, annots)
            graph.nodiscard_votes.setdefault(simple, set()).add(
                is_nodiscard(cur))
            return
        if key in parsed_headers:
            return
        parsed_headers.add(key)
        rel = src_relative(path)
        fn = graph.add(Function(qname, simple, path, rel,
                                cur.location.line, annotations=annots))
        fw = waiver_map.get((path, cur.location.line), frozenset()) | \
            waiver_map.get((path, cur.location.line - 1), frozenset())
        fn.waived |= set(fw)
        graph.nodiscard_votes.setdefault(simple, set()).add(
            is_nodiscard(cur))
        lock_lines = []  # lines where a MutexLock scope opens

        def walk(node):
            for ch in node.get_children():
                line = ch.location.line
                cw = waiver_map.get((path, line), frozenset()) | \
                    waiver_map.get((path, line - 1), frozenset())
                locked = "lock" if any(
                    ln <= line for ln in lock_lines) else None
                if ch.kind == CursorKind.VAR_DECL and \
                        "MutexLock" in (ch.type.spelling or ""):
                    lock_lines.append(line)
                elif ch.kind == CursorKind.CALL_EXPR:
                    ref = ch.referenced
                    if ref is not None and ref.spelling:
                        cq, cs = qname_of(ref)
                        virtual = getattr(ref, "is_virtual_method",
                                          lambda: False)()
                        fn.calls.append(Call(
                            cs, None if virtual else cq, line, locked, cw))
                walk(ch)

        walk(cur)
        # Builtin leaves + statement calls come from the shared textual
        # machinery over the definition's source extent (identical model,
        # and robust against libclang token quirks).
        _textual_body_leaves(fn, waiver_map)

    for path in sorted(wanted):
        if os.path.splitext(path)[1] not in {".cc", ".cpp", ".cxx"}:
            continue
        cmds = db.getCompileCommands(path)
        args = []
        if cmds:
            args = [a for a in list(cmds[0].arguments)[1:]
                    if a not in ("-c", "-o", path)
                    and not a.endswith(".o")]
        try:
            tu = index.parse(path, args=args)
        except cindex.TranslationUnitLoadError as e:
            print(f"{cfg.tool}: libclang failed on {path}: {e}",
                  file=sys.stderr)
            continue
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
                            CursorKind.CONSTRUCTOR, CursorKind.DESTRUCTOR):
                f = cur.location.file
                if f and (os.path.abspath(f.name) in wanted):
                    handle_function(cur)
    return graph


def _collect_waivers(files: list, cfg: CallgraphConfig) -> dict:
    wmap = {}
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                for lineno, raw in enumerate(f, start=1):
                    w = waivers_for(raw, cfg)
                    if w:
                        wmap[(path, lineno)] = w
        except OSError:
            continue
    return wmap


# ---------------------------------------------------------------------------
# Findings + rationalized baseline
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Finding:
    rule: str
    subject: str   # entry / locked function / calling function
    leaf: str      # blocking function qname, builtin leaf, or callee name
    path: str
    line: int
    via: str

    @property
    def key(self) -> tuple:
        return (self.rule, self.subject, self.leaf)


def load_baseline(path: str, tool: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{tool}: cannot read baseline {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in payload.get("findings", []):
        key = (entry.get("rule", ""), entry.get("subject", ""),
               entry.get("leaf", ""))
        out[key] = entry.get("rationale", "")
    return out


def write_baseline(path: str, findings: list, old: dict, tool: str,
                   comment: str) -> None:
    payload = {
        "comment": comment,
        "findings": [
            {"rule": f.rule, "subject": f.subject, "leaf": f.leaf,
             "rationale": old.get(f.key, "")}
            for f in findings
        ],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"{tool}: wrote {len(findings)} finding(s) to {path}",
          file=sys.stderr)
