// Draw tool / shared whiteboard (paper §5.1): "similar both to a shared
// notebook and a whiteboard in its functionality, the draw tool provides a
// canvas for drawing, taking notes, and importing images."
//
// The canvas is one shared object whose byte stream is a sequence of
// fixed-size stroke records (client-defined semantics — the service never
// parses them, §3.1).  Strokes are bcastUpdates; "clear canvas" is a
// bcastState that replaces the stream; object locks (§3.2) serialize a
// two-handed gesture; log reduction keeps the server history bounded during
// a long session.
//
// Run: ./build/examples/whiteboard
#include <cstdio>
#include <iostream>

#include "core/client.h"
#include "core/server.h"
#include "runtime/sim_runtime.h"

using namespace corona;

namespace {

const GroupId kBoard{9};
const ObjectId kCanvas{1};

// Application-level encoding of one stroke: "x0,y0->x1,y1;".
Bytes stroke(int x0, int y0, int x1, int y1) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%d,%d->%d,%d;", x0, y0, x1, y1);
  return to_bytes(buf);
}

std::size_t stroke_count(const CoronaClient& c) {
  const SharedState* st = c.group_state(kBoard);
  if (st == nullptr || !st->has_object(kCanvas)) return 0;
  const Bytes& canvas = *st->object(kCanvas);
  return static_cast<std::size_t>(
      std::count(canvas.begin(), canvas.end(), ';'));
}

}  // namespace

int main() {
  SimRuntime rt;
  const NodeId server_id{1};
  GroupStore disk;
  // A windowed reduction policy keeps the stroke history bounded: the
  // consolidated canvas replaces old stroke records (§3.2 log reduction).
  ServerConfig cfg;
  cfg.reduction_factory = [] { return make_window(50); };
  CoronaServer server(std::move(cfg), &disk);
  rt.add_node(server_id, &server, rt.network().add_host(HostProfile{}));

  bool pia_has_lock = false;
  CoronaClient::Callbacks pia_cb;
  pia_cb.on_lock_granted = [&](GroupId, ObjectId) { pia_has_lock = true; };
  CoronaClient pia(server_id, pia_cb);
  CoronaClient sam(server_id);
  rt.add_node(NodeId{100}, &pia, rt.network().add_host(HostProfile{}));
  rt.add_node(NodeId{101}, &sam, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);

  pia.create_group(kBoard, "whiteboard", /*persistent=*/true);
  rt.run_for(50 * kMillisecond);
  pia.join(kBoard);
  sam.join(kBoard);
  rt.run_for(100 * kMillisecond);

  std::cout << "1. Concurrent free-hand drawing (every stroke multicast)\n";
  for (int i = 0; i < 60; ++i) {
    pia.bcast_update(kBoard, kCanvas, stroke(i, 0, i + 1, 1));
    sam.bcast_update(kBoard, kCanvas, stroke(0, i, 1, i + 1));
    if (i % 10 == 9) rt.run_for(100 * kMillisecond);
  }
  rt.run_for(500 * kMillisecond);
  std::cout << "   strokes on pia's canvas: " << stroke_count(pia)
            << ", sam's canvas: " << stroke_count(sam) << " (identical)\n";
  std::cout << "   server history records after windowed reduction: "
            << server.group(kBoard)->state().history_size()
            << " (reductions so far: " << server.stats().reductions << ")\n";

  std::cout << "2. Pia grabs the canvas lock for a precise figure\n";
  pia.lock(kBoard, kCanvas);
  rt.run_for(50 * kMillisecond);
  std::cout << "   lock granted: " << (pia_has_lock ? "yes" : "no") << "\n";
  for (int i = 0; i < 4; ++i) {
    pia.bcast_update(kBoard, kCanvas, stroke(10 * i, 10 * i, 10 * i + 5, 10 * i));
  }
  pia.unlock(kBoard, kCanvas);
  rt.run_for(200 * kMillisecond);

  std::cout << "3. A late reviewer joins with the consolidated canvas only\n";
  CoronaClient reviewer(server_id);
  rt.add_node(NodeId{102}, &reviewer, rt.network().add_host(HostProfile{}));
  rt.start();  // idempotent: only the newly added node is started
  rt.run_for(50 * kMillisecond);
  reviewer.join(kBoard, TransferPolicySpec::objects_only({kCanvas}));
  rt.run_for(200 * kMillisecond);
  std::cout << "   reviewer sees " << stroke_count(reviewer)
            << " strokes without replaying the stroke-by-stroke history\n";

  std::cout << "4. Sam clears the canvas (bcastState replaces the stream)\n";
  sam.bcast_state(kBoard, kCanvas, Bytes{});
  rt.run_for(200 * kMillisecond);
  std::cout << "   strokes after clear — pia: " << stroke_count(pia)
            << ", sam: " << stroke_count(sam)
            << ", reviewer: " << stroke_count(reviewer) << "\n";

  std::cout << "\nThe service never parsed a stroke: all canvas semantics "
               "live in this file (§3.1 client-based semantics).\n";
  return 0;
}
