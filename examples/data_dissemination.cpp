// Reliable data dissemination over the replicated service (paper Figure 1):
// publishers push instrument readings into a persistent group; permanent
// subscribers receive each reading as it is sequenced (push mode); an
// asynchronous subscriber connects occasionally and pulls whatever
// accumulated while it was away (pull mode) — "the data dissemination
// service has to keep the data long time after it has received it from its
// publisher" (§1).
//
// The substrate is the replicated Corona service of §4: a coordinator and
// two leaf servers, so publishers and subscribers sit on different servers
// and the state copies provide a hot standby.
//
// Run: ./build/examples/data_dissemination
#include <cstdio>
#include <iostream>

#include "core/client.h"
#include "replica/replica_server.h"
#include "runtime/sim_runtime.h"

using namespace corona;

namespace {

const GroupId kFeed{11};
const ObjectId kRadar{1}, kMagnetometer{2};

Bytes reading(const char* instrument, int t, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s t=%d v=%.2f\n", instrument, t, value);
  return to_bytes(buf);
}

}  // namespace

int main() {
  SimRuntime rt;
  const std::vector<NodeId> servers{NodeId{1}, NodeId{2}, NodeId{3}};
  ReplicaConfig rcfg;
  ReplicaServer coordinator(rcfg, servers);
  ReplicaServer leaf_a(rcfg, servers);
  ReplicaServer leaf_b(rcfg, servers);
  rt.add_node(servers[0], &coordinator, rt.network().add_host(HostProfile{}));
  rt.add_node(servers[1], &leaf_a, rt.network().add_host(HostProfile{}));
  rt.add_node(servers[2], &leaf_b, rt.network().add_host(HostProfile{}));

  // Publisher on leaf A.
  CoronaClient publisher(servers[1]);
  rt.add_node(NodeId{100}, &publisher, rt.network().add_host(HostProfile{}));

  // Permanent subscriber on leaf B: push delivery of every reading.
  int pushed = 0;
  CoronaClient::Callbacks push_cb;
  push_cb.on_deliver = [&](GroupId, const UpdateRecord& rec) {
    ++pushed;
    std::cout << "  [push] " << to_string(rec.data);
  };
  CoronaClient permanent(servers[2], push_cb);
  rt.add_node(NodeId{101}, &permanent, rt.network().add_host(HostProfile{}));

  // Asynchronous subscriber, also via leaf B, but mostly offline.
  CoronaClient roaming(servers[2]);
  rt.add_node(NodeId{102}, &roaming, rt.network().add_host(HostProfile{}));

  rt.start();
  rt.run_for(500 * kMillisecond);

  publisher.create_group(kFeed, "instrument-feed", /*persistent=*/true);
  rt.run_for(500 * kMillisecond);
  publisher.join(kFeed, TransferPolicySpec::nothing());
  permanent.join(kFeed, TransferPolicySpec::nothing());
  rt.run_for(500 * kMillisecond);

  std::cout << "== campaign day 1: publisher pushes, permanent subscriber "
               "receives ==\n";
  for (int t = 0; t < 4; ++t) {
    publisher.bcast_update(kFeed, kRadar, reading("radar", t, 3.1 + t));
    publisher.bcast_update(kFeed, kMagnetometer,
                           reading("mag", t, 47.0 - t));
    rt.run_for(200 * kMillisecond);
  }
  std::cout << "  permanent subscriber received " << pushed
            << " readings in publication order\n";

  std::cout << "\n== day 2: the roaming subscriber connects and pulls only "
               "the radar series ==\n";
  roaming.join(kFeed, TransferPolicySpec::objects_only({kRadar}),
               MemberRole::kObserver);
  rt.run_for(500 * kMillisecond);
  const SharedState* st = roaming.group_state(kFeed);
  std::cout << to_string(*st->object(kRadar));
  std::cout << "  (magnetometer stream intentionally not transferred: "
            << (st->has_object(kMagnetometer) ? "present!?" : "absent")
            << ")\n";
  roaming.leave(kFeed);
  rt.run_for(200 * kMillisecond);

  std::cout << "\n== the feed survives a publisher disconnect: data lives at "
               "the service, not at clients ==\n";
  publisher.leave(kFeed);
  rt.run_for(500 * kMillisecond);
  CoronaClient archivist(servers[1]);
  rt.add_node(NodeId{103}, &archivist, rt.network().add_host(HostProfile{}));
  rt.start();  // idempotent: only the newly added node is started
  rt.run_for(100 * kMillisecond);
  archivist.join(kFeed);  // full pull of everything ever published
  rt.run_for(500 * kMillisecond);
  const SharedState* all = archivist.group_state(kFeed);
  const std::size_t radar_lines = std::count(
      all->object(kRadar)->begin(), all->object(kRadar)->end(), '\n');
  const std::size_t mag_lines =
      std::count(all->object(kMagnetometer)->begin(),
                 all->object(kMagnetometer)->end(), '\n');
  std::cout << "  archivist pulled " << radar_lines << " radar + "
            << mag_lines << " magnetometer readings from the service\n";

  std::cout << "\nState copies currently held by the service for the feed: "
            << coordinator.coord_holders(kFeed).size()
            << " leaf copies (hot standby, §4.1) plus the coordinator.\n";
  return 0;
}
