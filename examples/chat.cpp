// Chat box (paper §5.1): "an edit area for composing messages and a
// scrollable area for displaying a list of received messages."
//
// Each chat line is a bcastUpdate appended to one shared object — the
// scrollback IS the object's byte stream, and the service's update history
// lets late joiners ask for just "the latest n messages" instead of the
// whole transcript (§3.2 customized state transfer).  Membership awareness
// (§3.1's "important social aspect") comes from the membership notices.
//
// Run: ./build/examples/chat
#include <iostream>
#include <map>
#include <string>

#include "core/client.h"
#include "core/server.h"
#include "runtime/sim_runtime.h"

using namespace corona;

namespace {

const GroupId kRoom{7};
const ObjectId kScrollback{1};

// A terminal chat participant: prints deliveries as chat lines and
// membership notices as presence events.
class ChatUser {
 public:
  ChatUser(std::string name, NodeId server)
      : name_(std::move(name)), client_(server, callbacks()) {}

  CoronaClient& client() { return client_; }
  const std::string& name() const { return name_; }

  void say(const std::string& text) {
    client_.bcast_update(kRoom, kScrollback,
                         to_bytes(name_ + ": " + text + "\n"));
  }

  void show_scrollback() const {
    const SharedState* st = client_.group_state(kRoom);
    std::cout << "--- " << name_ << "'s window ---\n";
    if (st != nullptr && st->has_object(kScrollback)) {
      std::cout << to_string(*st->object(kScrollback));
    }
    std::cout << "----------------------\n";
  }

 private:
  CoronaClient::Callbacks callbacks() {
    CoronaClient::Callbacks cb;
    cb.on_membership_change = [this](GroupId, NodeId who, MemberRole,
                                     bool joined) {
      std::cout << "  (" << name_ << " sees node " << who.value
                << (joined ? " enter" : " leave") << " the room)\n";
    };
    return cb;
  }

  std::string name_;
  CoronaClient client_;
};

}  // namespace

int main() {
  SimRuntime rt;
  const NodeId server_id{1};
  GroupStore disk;
  CoronaServer server(ServerConfig{}, &disk);
  rt.add_node(server_id, &server, rt.network().add_host(HostProfile{}));

  ChatUser ann("ann", server_id), raj("raj", server_id),
      lee("lee", server_id);
  rt.add_node(NodeId{100}, &ann.client(), rt.network().add_host(HostProfile{}));
  rt.add_node(NodeId{101}, &raj.client(), rt.network().add_host(HostProfile{}));
  rt.add_node(NodeId{102}, &lee.client(), rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);

  ann.client().create_group(kRoom, "campaign-chat", /*persistent=*/true);
  rt.run_for(50 * kMillisecond);
  ann.client().join(kRoom);
  raj.client().join(kRoom);
  rt.run_for(100 * kMillisecond);

  std::cout << "== conversation ==\n";
  ann.say("instrument 3 is showing aurora activity");
  raj.say("confirming on my display");
  ann.say("logging the event window now");
  raj.say("radar data uploaded");
  rt.run_for(300 * kMillisecond);
  ann.show_scrollback();

  std::cout << "\n== lee joins late, asking only for the last 2 lines ==\n";
  lee.client().join(kRoom, TransferPolicySpec::last_n_updates(2));
  rt.run_for(200 * kMillisecond);
  lee.show_scrollback();

  std::cout << "\n== the room keeps total order for concurrent chatter ==\n";
  ann.say("who is archiving?");
  raj.say("I can take it");
  lee.say("I'll verify checksums");
  rt.run_for(300 * kMillisecond);
  ann.show_scrollback();
  lee.show_scrollback();

  std::cout << "\nEvery window shows the same interleaving: the server's\n"
               "sequencer imposes one total order on the room.\n";
  return 0;
}
