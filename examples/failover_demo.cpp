// Failover demo: the replicated service of paper §4 surviving a coordinator
// crash in front of your eyes.
//
//   * a coordinator and three leaf servers start from the configuration list
//   * two clients on different leaves collaborate on a shared counter
//   * the coordinator is crashed mid-session
//   * the first surviving server in the list claims the coordinatorship
//     (staged timeouts + half+1 acks, §4.2), pulls the freshest state copy,
//     and the session continues without the clients reconnecting anywhere
//
// Run: ./build/examples/failover_demo
#include <iostream>

#include "core/client.h"
#include "replica/replica_server.h"
#include "runtime/sim_runtime.h"

using namespace corona;

namespace {

const GroupId kG{1};
const ObjectId kCounter{1};

void show(const char* tag, SimRuntime& rt, const CoronaClient& c) {
  const SharedState* st = c.group_state(kG);
  std::cout << "  t=" << to_ms(rt.now()) / 1000 << "s " << tag << ": \""
            << (st && st->has_object(kCounter)
                    ? to_string(*st->object(kCounter))
                    : std::string("<none>"))
            << "\"\n";
}

}  // namespace

int main() {
  SimRuntime rt;
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  ReplicaConfig cfg;
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (NodeId id : ids) {
    servers.push_back(std::make_unique<ReplicaServer>(cfg, ids));
    rt.add_node(id, servers.back().get(),
                rt.network().add_host(HostProfile::ultrasparc()));
  }

  CoronaClient ann(ids[1]);  // leaf 2
  CoronaClient bob(ids[2]);  // leaf 3
  rt.add_node(NodeId{100}, &ann, rt.network().add_host(HostProfile{}));
  rt.add_node(NodeId{101}, &bob, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(500 * kMillisecond);

  std::cout << "1. Coordinator is server " << ids[0].value
            << "; ann is on leaf 2, bob on leaf 3\n";
  ann.create_group(kG, "counter", /*persistent=*/true);
  rt.run_for(500 * kMillisecond);
  ann.join(kG);
  bob.join(kG);
  rt.run_for(500 * kMillisecond);

  std::cout << "2. Collaboration through the coordinator's sequencer\n";
  ann.bcast_update(kG, kCounter, to_bytes("a1 "));
  bob.bcast_update(kG, kCounter, to_bytes("b1 "));
  rt.run_for(500 * kMillisecond);
  show("ann", rt, ann);
  show("bob", rt, bob);

  std::cout << "3. The coordinator crashes\n";
  rt.crash(ids[0]);
  // Sends during the outage are lost with the coordinator (fail-stop), but
  // the clients keep them in their resend buffers.
  ann.bcast_update(kG, kCounter, to_bytes("lost? "));
  rt.run_for(6 * kSecond);

  const ReplicaServer* new_coord = nullptr;
  for (std::size_t i = 1; i < servers.size(); ++i) {
    if (servers[i]->is_coordinator()) new_coord = servers[i].get();
  }
  std::cout << "4. Election done: server "
            << (new_coord ? new_coord->id().value : 0)
            << " is the new coordinator (term "
            << (new_coord ? new_coord->term() : 0) << ")\n";

  std::cout << "5. The clients' leaves re-registered them; the session "
               "continues\n";
  ann.resend_recent(kG);  // §6: re-submit updates lost with the crash
  rt.run_for(1 * kSecond);
  ann.bcast_update(kG, kCounter, to_bytes("a2 "));
  bob.bcast_update(kG, kCounter, to_bytes("b2 "));
  rt.run_for(2 * kSecond);
  show("ann", rt, ann);
  show("bob", rt, bob);

  std::cout << "\nNo client ever reconnected or rejoined: the leaves "
               "re-registered membership\nwith the elected coordinator and "
               "the freshest state copy was pulled from a\nsurviving holder "
               "(paper §4.2 takeover).\n";
  return 0;
}
