// corona-serverd — a deployable stateful Corona server over real TCP.
//
// Hosts one CoronaServer (or the stateless baseline) on a SocketRuntime and
// serves any client that connects.  Pairs with corona-clientd; see the
// README quickstart for a two-terminal localhost session.
//
//   corona-serverd --listen 127.0.0.1:7700 [--node 1] [--stateless]
//                  [--data-dir PATH] [--recover] [--checkpoint-every N]
//                  [--flush-ms N] [--sync] [--segment-bytes N]
//                  [--client-timeout-ms N] [--keepalive-ms N]
//
// With --data-dir the server runs on the durable backend (storage/disk/):
// every sequenced update is logged to segmented files, checkpoints are
// written atomically, and a restart with the same --data-dir recovers all
// persistent group state — kill -9 included (see docs/STORAGE.md).
//
// lint-file: clock-ok thread-ok — deployable daemon: wall-clock signal
// handling and the blocking main thread live here, outside the protocol
// layers.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/log_reduction.h"
#include "core/server.h"
#include "core/stateless_server.h"
#include "net/socket_runtime.h"
#include "storage/disk/disk_env.h"
#include "storage/group_store.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --listen host:port [--node ID] [--stateless]\n"
      "          [--data-dir PATH] [--recover] [--checkpoint-every N]\n"
      "          [--flush-ms N] [--sync] [--segment-bytes N]\n"
      "          [--client-timeout-ms N] [--keepalive-ms N]\n"
      "  --listen host:port      address to accept clients on (required)\n"
      "  --node ID               this server's node id (default 1)\n"
      "  --stateless             run the sequencer-only baseline server\n"
      "  --data-dir PATH         durable storage directory (default: RAM)\n"
      "  --recover               require PATH to exist (restart after a\n"
      "                          crash); without it a fresh dir is created\n"
      "  --checkpoint-every N    checkpoint + reduce a group's log every N\n"
      "                          logged updates (default 1024; 0 = never)\n"
      "  --flush-ms N            async flush period (default 100)\n"
      "  --sync                  flush synchronously on every sequencing\n"
      "  --segment-bytes N       log segment rotation size (default 1 MiB)\n"
      "  --client-timeout-ms N   treat members silent for N ms as crashed\n"
      "  --keepalive-ms N        transport pings on idle connections\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace corona;
  using namespace corona::net;

  std::string listen_at;
  std::string data_dir;
  bool recover_required = false;
  std::uint64_t node_id = 1;
  bool stateless = false;
  bool sync_flush = false;
  std::uint64_t checkpoint_every = 1024;
  long flush_ms = 0;
  std::uint64_t segment_bytes = 1u << 20;
  long client_timeout_ms = 0;
  long keepalive_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      listen_at = next();
    } else if (arg == "--node") {
      node_id = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stateless") {
      stateless = true;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--recover") {
      recover_required = true;
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--flush-ms") {
      flush_ms = std::strtol(next(), nullptr, 10);
    } else if (arg == "--sync") {
      sync_flush = true;
    } else if (arg == "--segment-bytes") {
      segment_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--client-timeout-ms") {
      client_timeout_ms = std::strtol(next(), nullptr, 10);
    } else if (arg == "--keepalive-ms") {
      keepalive_ms = std::strtol(next(), nullptr, 10);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (listen_at.empty()) {
    usage(argv[0]);
    return 2;
  }
  auto ep = parse_endpoint(listen_at);
  if (!ep.is_ok()) {
    std::fprintf(stderr, "corona-serverd: %s\n",
                 ep.status().to_string().c_str());
    return 2;
  }
  if (recover_required && data_dir.empty()) {
    std::fprintf(stderr, "corona-serverd: --recover requires --data-dir\n");
    return 2;
  }

  SocketRuntimeConfig cfg;
  if (keepalive_ms > 0) cfg.keepalive_interval = keepalive_ms * kMillisecond;
  SocketRuntime rt(cfg);

  // Storage: in-memory by default; durable (storage/disk/) with --data-dir.
  // Constructing the GroupStore over a reopened DiskEnv performs recovery.
  std::unique_ptr<disk::DiskEnv> disk_env;
  std::unique_ptr<GroupStore> store;
  if (!data_dir.empty()) {
    if (recover_required && !disk::dir_exists(data_dir)) {
      std::fprintf(stderr,
                   "corona-serverd: --recover: no data directory at %s\n",
                   data_dir.c_str());
      return 1;
    }
    disk_env = std::make_unique<disk::DiskEnv>(
        disk::DiskEnvConfig{data_dir, segment_bytes});
    store = std::make_unique<GroupStore>(disk_env.get());
    const std::size_t recovered = store->recover().size();
    std::printf("corona-serverd: durable at %s; recovered %zu group(s), "
                "%llu log record(s)\n",
                data_dir.c_str(), recovered,
                static_cast<unsigned long long>(
                    disk_env->stats().recovered_records));
  } else {
    store = std::make_unique<GroupStore>();
  }

  ServerConfig server_cfg;
  if (client_timeout_ms > 0) {
    server_cfg.client_timeout = client_timeout_ms * kMillisecond;
  }
  if (sync_flush) server_cfg.flush = FlushPolicy::kSync;
  if (flush_ms > 0) server_cfg.flush_interval = flush_ms * kMillisecond;
  if (checkpoint_every > 0) {
    server_cfg.reduction_factory = [checkpoint_every] {
      return make_count_threshold(checkpoint_every);
    };
  }
  CoronaServer stateful_server(server_cfg, store.get());
  StatelessServer stateless_server;
  if (stateless) {
    rt.add_node(NodeId{node_id}, &stateless_server);
  } else {
    rt.add_node(NodeId{node_id}, &stateful_server);
  }

  auto port = rt.listen(ep.value().host, ep.value().port);
  if (!port.is_ok()) {
    std::fprintf(stderr, "corona-serverd: %s\n",
                 port.status().to_string().c_str());
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  rt.start();
  std::printf("corona-serverd: node %llu (%s%s) listening on %s:%u\n",
              static_cast<unsigned long long>(node_id),
              stateless ? "stateless" : "stateful",
              data_dir.empty() ? "" : ", durable", ep.value().host.c_str(),
              port.value());
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  rt.stop();
  const auto s = rt.stats();
  std::printf(
      "corona-serverd: shut down; accepts=%llu frames_rx=%llu frames_tx=%llu\n",
      static_cast<unsigned long long>(s.accepts),
      static_cast<unsigned long long>(s.frames_received),
      static_cast<unsigned long long>(s.frames_sent));
  if (disk_env != nullptr) {
    // Final flush so a clean shutdown loses nothing, then the disk ledger.
    (void)store->flush();
    const disk::DiskCounters& d = disk_env->stats();
    std::printf(
        "corona-serverd: disk fsyncs=%llu bytes=%llu segments=+%llu/-%llu "
        "checkpoints=%llu ckpt_bytes=%llu recovered=%llu truncated=%llu "
        "dropped=%llu\n",
        static_cast<unsigned long long>(d.fsyncs),
        static_cast<unsigned long long>(d.bytes_written),
        static_cast<unsigned long long>(d.segments_created),
        static_cast<unsigned long long>(d.segments_deleted),
        static_cast<unsigned long long>(d.checkpoints_written),
        static_cast<unsigned long long>(d.checkpoint_bytes),
        static_cast<unsigned long long>(d.recovered_records),
        static_cast<unsigned long long>(d.truncated_bytes),
        static_cast<unsigned long long>(d.corrupt_files_dropped));
  }
  return 0;
}
