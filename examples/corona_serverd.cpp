// corona-serverd — a deployable stateful Corona server over real TCP.
//
// Hosts one CoronaServer (or the stateless baseline) on a SocketRuntime and
// serves any client that connects.  Pairs with corona-clientd; see the
// README quickstart for a two-terminal localhost session.
//
//   corona-serverd --listen 127.0.0.1:7700 [--node 1] [--stateless]
//                  [--client-timeout-ms N] [--keepalive-ms N]
//
// lint-file: clock-ok thread-ok — deployable daemon: wall-clock signal
// handling and the blocking main thread live here, outside the protocol
// layers.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/server.h"
#include "core/stateless_server.h"
#include "net/socket_runtime.h"
#include "storage/group_store.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --listen host:port [--node ID] [--stateless]\n"
      "          [--client-timeout-ms N] [--keepalive-ms N]\n"
      "  --listen host:port      address to accept clients on (required)\n"
      "  --node ID               this server's node id (default 1)\n"
      "  --stateless             run the sequencer-only baseline server\n"
      "  --client-timeout-ms N   treat members silent for N ms as crashed\n"
      "  --keepalive-ms N        transport pings on idle connections\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace corona;
  using namespace corona::net;

  std::string listen_at;
  std::uint64_t node_id = 1;
  bool stateless = false;
  long client_timeout_ms = 0;
  long keepalive_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      listen_at = next();
    } else if (arg == "--node") {
      node_id = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--stateless") {
      stateless = true;
    } else if (arg == "--client-timeout-ms") {
      client_timeout_ms = std::strtol(next(), nullptr, 10);
    } else if (arg == "--keepalive-ms") {
      keepalive_ms = std::strtol(next(), nullptr, 10);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (listen_at.empty()) {
    usage(argv[0]);
    return 2;
  }
  auto ep = parse_endpoint(listen_at);
  if (!ep.is_ok()) {
    std::fprintf(stderr, "corona-serverd: %s\n",
                 ep.status().to_string().c_str());
    return 2;
  }

  SocketRuntimeConfig cfg;
  if (keepalive_ms > 0) cfg.keepalive_interval = keepalive_ms * kMillisecond;
  SocketRuntime rt(cfg);

  GroupStore store;
  ServerConfig server_cfg;
  if (client_timeout_ms > 0) {
    server_cfg.client_timeout = client_timeout_ms * kMillisecond;
  }
  CoronaServer stateful_server(server_cfg, &store);
  StatelessServer stateless_server;
  if (stateless) {
    rt.add_node(NodeId{node_id}, &stateless_server);
  } else {
    rt.add_node(NodeId{node_id}, &stateful_server);
  }

  auto port = rt.listen(ep.value().host, ep.value().port);
  if (!port.is_ok()) {
    std::fprintf(stderr, "corona-serverd: %s\n",
                 port.status().to_string().c_str());
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  rt.start();
  std::printf("corona-serverd: node %llu (%s) listening on %s:%u\n",
              static_cast<unsigned long long>(node_id),
              stateless ? "stateless" : "stateful", ep.value().host.c_str(),
              port.value());
  std::fflush(stdout);

  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  rt.stop();
  const auto s = rt.stats();
  std::printf(
      "corona-serverd: shut down; accepts=%llu frames_rx=%llu frames_tx=%llu\n",
      static_cast<unsigned long long>(s.accepts),
      static_cast<unsigned long long>(s.frames_received),
      static_cast<unsigned long long>(s.frames_sent));
  return 0;
}
