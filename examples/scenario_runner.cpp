// Scenario runner: drive a replicated Corona deployment from a small
// line-oriented script — a workbench for exploring the protocol without
// writing C++.
//
// Usage:
//   ./build/examples/scenario_runner               # runs the built-in demo
//   ./build/examples/scenario_runner script.corona # runs your script
//
// Script language (one command per line, '#' comments):
//   servers N                  topology: coordinator + N-1 leaves
//   client NAME LEAF           client NAME attached to server index LEAF
//   create NAME GROUP [persistent|transient]
//   join NAME GROUP [full|last:N|nothing]
//   leave NAME GROUP
//   send NAME GROUP OBJ TEXT...      bcastUpdate (appends)
//   set  NAME GROUP OBJ TEXT...      bcastState (replaces)
//   lock NAME GROUP OBJ / unlock NAME GROUP OBJ
//   reduce NAME GROUP
//   resend NAME GROUP          client crash-recovery resend
//   run DURATION               advance virtual time (e.g. 500ms, 3s)
//   crash-server I / restart-server I
//   crash-client NAME
//   rehome NAME LEAF           point NAME's client at another server
//   show NAME GROUP OBJ        print NAME's replica of the object
//   members NAME GROUP         print NAME's membership view
//   coordinator                print who is coordinator
//   expect NAME GROUP OBJ TEXT...    assert a replica's content (exits 1)
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/client.h"
#include "replica/replica_server.h"
#include "runtime/sim_runtime.h"

using namespace corona;

namespace {

const char* kDemoScript = R"(# Built-in demo: failover in a dozen commands.
# Operations are asynchronous: `run` advances virtual time between steps.
servers 4
client ann 1
client bob 2
create ann 1 persistent
run 200ms
join ann 1
join bob 1
run 500ms
send ann 1 1 hello from ann;
run 200ms
send bob 1 1 hello from bob;
run 500ms
show ann 1 1
coordinator
crash-server 0
run 6s
coordinator
send bob 1 1 still alive;
run 2s
show ann 1 1
expect ann 1 1 hello from ann;hello from bob;still alive;
expect bob 1 1 hello from ann;hello from bob;still alive;
)";

Duration parse_duration(const std::string& s) {
  std::size_t pos = 0;
  const long long v = std::stoll(s, &pos);
  const std::string unit = s.substr(pos);
  if (unit == "ms") return v * kMillisecond;
  if (unit == "s") return v * kSecond;
  if (unit == "us" || unit.empty()) return v;
  throw std::runtime_error("bad duration: " + s);
}

class Scenario {
 public:
  int run(std::istream& in) {
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream tok(line);
      std::string cmd;
      if (!(tok >> cmd)) continue;
      try {
        if (!dispatch(cmd, tok)) {
          std::cerr << "line " << lineno << ": unknown command '" << cmd
                    << "'\n";
          return 1;
        }
      } catch (const std::exception& e) {
        std::cerr << "line " << lineno << ": " << e.what() << "\n";
        return 1;
      }
      if (failed_) return 1;
    }
    std::cout << "scenario complete at t=" << to_ms(rt_.now()) << " ms\n";
    return 0;
  }

 private:
  bool dispatch(const std::string& cmd, std::istringstream& tok) {
    if (cmd == "servers") return cmd_servers(tok);
    if (cmd == "client") return cmd_client(tok);
    if (cmd == "create") return cmd_create(tok);
    if (cmd == "join") return cmd_join(tok);
    if (cmd == "leave") return cmd_simple(tok, [](CoronaClient& c, GroupId g) {
      c.leave(g);
    });
    if (cmd == "send") return cmd_payload(tok, PayloadKind::kUpdate);
    if (cmd == "set") return cmd_payload(tok, PayloadKind::kState);
    if (cmd == "lock") return cmd_lockish(tok, true);
    if (cmd == "unlock") return cmd_lockish(tok, false);
    if (cmd == "reduce") return cmd_simple(tok, [](CoronaClient& c, GroupId g) {
      c.reduce_log(g);
    });
    if (cmd == "resend") return cmd_simple(tok, [](CoronaClient& c, GroupId g) {
      c.resend_recent(g);
    });
    if (cmd == "run") return cmd_run(tok);
    if (cmd == "crash-server") return cmd_crash_server(tok, true);
    if (cmd == "restart-server") return cmd_crash_server(tok, false);
    if (cmd == "crash-client") return cmd_crash_client(tok);
    if (cmd == "rehome") return cmd_rehome(tok);
    if (cmd == "show") return cmd_show(tok, false);
    if (cmd == "expect") return cmd_show(tok, true);
    if (cmd == "members") return cmd_members(tok);
    if (cmd == "coordinator") return cmd_coordinator();
    return false;
  }

  bool cmd_servers(std::istringstream& tok) {
    std::size_t n = 0;
    tok >> n;
    if (n == 0) throw std::runtime_error("servers needs a count >= 1");
    for (std::size_t i = 0; i < n; ++i) {
      server_ids_.push_back(NodeId{1 + i});
    }
    for (std::size_t i = 0; i < n; ++i) {
      servers_.push_back(
          std::make_unique<ReplicaServer>(ReplicaConfig{}, server_ids_));
      rt_.add_node(server_ids_[i], servers_.back().get(),
                   rt_.network().add_host(HostProfile::ultrasparc()));
    }
    rt_.start();
    rt_.run_for(500 * kMillisecond);
    std::cout << "started " << n << " servers (coordinator = server 0)\n";
    return true;
  }

  bool cmd_client(std::istringstream& tok) {
    std::string name;
    std::size_t leaf = 0;
    tok >> name >> leaf;
    require_server(leaf);
    const NodeId id{100 + clients_.size()};
    auto client = std::make_unique<CoronaClient>(server_ids_[leaf]);
    rt_.add_node(id, client.get(), rt_.network().add_host(HostProfile{}));
    rt_.start();
    client_ids_[name] = id;
    clients_[name] = std::move(client);
    rt_.run_for(50 * kMillisecond);
    std::cout << "client " << name << " (node " << id.value
              << ") attached to server " << leaf << "\n";
    return true;
  }

  bool cmd_create(std::istringstream& tok) {
    std::string name, flag;
    std::uint64_t g = 0;
    tok >> name >> g >> flag;
    client(name).create_group(GroupId{g}, "group-" + std::to_string(g),
                              flag != "transient");
    return true;
  }

  bool cmd_join(std::istringstream& tok) {
    std::string name, policy;
    std::uint64_t g = 0;
    tok >> name >> g >> policy;
    TransferPolicySpec spec = TransferPolicySpec::full();
    if (policy == "nothing") {
      spec = TransferPolicySpec::nothing();
    } else if (policy.rfind("last:", 0) == 0) {
      spec = TransferPolicySpec::last_n_updates(
          static_cast<std::uint32_t>(std::stoul(policy.substr(5))));
    }
    client(name).join(GroupId{g}, spec);
    return true;
  }

  template <typename Fn>
  bool cmd_simple(std::istringstream& tok, Fn fn) {
    std::string name;
    std::uint64_t g = 0;
    tok >> name >> g;
    fn(client(name), GroupId{g});
    return true;
  }

  bool cmd_payload(std::istringstream& tok, PayloadKind kind) {
    std::string name;
    std::uint64_t g = 0, obj = 0;
    tok >> name >> g >> obj;
    std::string text;
    std::getline(tok, text);
    if (!text.empty() && text.front() == ' ') text.erase(0, 1);
    if (kind == PayloadKind::kUpdate) {
      client(name).bcast_update(GroupId{g}, ObjectId{obj}, to_bytes(text));
    } else {
      client(name).bcast_state(GroupId{g}, ObjectId{obj}, to_bytes(text));
    }
    return true;
  }

  bool cmd_lockish(std::istringstream& tok, bool acquire) {
    std::string name;
    std::uint64_t g = 0, obj = 0;
    tok >> name >> g >> obj;
    if (acquire) {
      client(name).lock(GroupId{g}, ObjectId{obj});
    } else {
      client(name).unlock(GroupId{g}, ObjectId{obj});
    }
    return true;
  }

  bool cmd_run(std::istringstream& tok) {
    std::string d;
    tok >> d;
    rt_.run_for(parse_duration(d));
    return true;
  }

  bool cmd_crash_server(std::istringstream& tok, bool crash) {
    std::size_t i = 0;
    tok >> i;
    require_server(i);
    if (crash) {
      rt_.crash(server_ids_[i]);
      std::cout << "server " << i << " crashed\n";
    } else {
      auto fresh =
          std::make_unique<ReplicaServer>(ReplicaConfig{}, server_ids_);
      rt_.restart(server_ids_[i], fresh.get());
      servers_[i] = std::move(fresh);
      std::cout << "server " << i << " restarted\n";
    }
    return true;
  }

  bool cmd_crash_client(std::istringstream& tok) {
    std::string name;
    tok >> name;
    rt_.crash(client_ids_.at(name));
    std::cout << "client " << name << " crashed\n";
    return true;
  }

  bool cmd_rehome(std::istringstream& tok) {
    std::string name;
    std::size_t leaf = 0;
    tok >> name >> leaf;
    require_server(leaf);
    client(name).set_server(server_ids_[leaf]);
    std::cout << "client " << name << " rehomed to server " << leaf << "\n";
    return true;
  }

  bool cmd_show(std::istringstream& tok, bool expect) {
    std::string name;
    std::uint64_t g = 0, obj = 0;
    tok >> name >> g >> obj;
    std::string want;
    std::getline(tok, want);
    if (!want.empty() && want.front() == ' ') want.erase(0, 1);
    const SharedState* st = client(name).group_state(GroupId{g});
    const std::string got =
        st != nullptr && st->has_object(ObjectId{obj})
            ? to_string(*st->object(ObjectId{obj}))
            : std::string("<none>");
    if (expect) {
      if (got != want) {
        std::cerr << "EXPECT FAILED for " << name << " group " << g
                  << " obj " << obj << ":\n  want \"" << want
                  << "\"\n  got  \"" << got << "\"\n";
        failed_ = true;
      } else {
        std::cout << "expect ok (" << name << " obj " << obj << ")\n";
      }
    } else {
      std::cout << name << " group " << g << " obj " << obj << ": \"" << got
                << "\"\n";
    }
    return true;
  }

  bool cmd_members(std::istringstream& tok) {
    std::string name;
    std::uint64_t g = 0;
    tok >> name >> g;
    std::cout << name << " sees members of group " << g << ":";
    for (const MemberInfo& m : client(name).known_members(GroupId{g})) {
      std::cout << " " << m.node.value
                << (m.role == MemberRole::kObserver ? "(obs)" : "");
    }
    std::cout << "\n";
    return true;
  }

  bool cmd_coordinator() {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      if (!rt_.is_crashed(server_ids_[i]) && servers_[i]->is_coordinator()) {
        std::cout << "coordinator: server " << i << " (term "
                  << servers_[i]->term() << ")\n";
        return true;
      }
    }
    std::cout << "coordinator: none elected\n";
    return true;
  }

  CoronaClient& client(const std::string& name) {
    auto it = clients_.find(name);
    if (it == clients_.end()) {
      throw std::runtime_error("unknown client: " + name);
    }
    return *it->second;
  }

  void require_server(std::size_t i) const {
    if (i >= server_ids_.size()) {
      throw std::runtime_error("no such server index");
    }
  }

  SimRuntime rt_;
  std::vector<NodeId> server_ids_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
  std::map<std::string, std::unique_ptr<CoronaClient>> clients_;
  std::map<std::string, NodeId> client_ids_;
  bool failed_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  Scenario scenario;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    return scenario.run(file);
  }
  std::istringstream demo(kDemoScript);
  std::cout << "(running the built-in demo script; pass a file to run your "
               "own)\n\n";
  return scenario.run(demo);
}
