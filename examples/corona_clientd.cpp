// corona-clientd — an interactive Corona client over real TCP.
//
// Hosts one CoronaClient on a SocketRuntime, dials the server from an
// address book (a --server flag or a book file), and drives the full
// service suite from a line-oriented stdin console — usable by a human in a
// terminal or scripted through a pipe.  See the README quickstart.
//
//   corona-clientd --server 127.0.0.1:7700 --node 100 [--server-node 1]
//   corona-clientd --book mesh.txt --node 100 [--server-node 1]
//
// Commands (one per line):
//   create <group>            create a persistent group
//   join <group> [last <n>]   join, full transfer or the last n updates
//   leave <group>
//   send <group> <obj> <text> sequenced multicast to the group
//   lock <group> <obj>  /  unlock <group> <obj>
//   members <group>
//   quit
//
// lint-file: clock-ok thread-ok — deployable daemon: the blocking stdin
// console lives here, outside the protocol layers.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "core/client.h"
#include "net/socket_runtime.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--server host:port | --book FILE) --node ID\n"
      "          [--server-node ID] [--heartbeat-ms N]\n"
      "  --server host:port   the server to dial\n"
      "  --book FILE          address book file (id=host:port per line)\n"
      "  --node ID            this client's node id (must be unique)\n"
      "  --server-node ID     the server's node id (default 1)\n"
      "  --heartbeat-ms N     protocol keepalive for server liveness sweeps\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace corona;
  using namespace corona::net;

  std::string server_at;
  std::string book_path;
  std::uint64_t node_id = 0;
  std::uint64_t server_node = 1;
  long heartbeat_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--server") {
      server_at = next();
    } else if (arg == "--book") {
      book_path = next();
    } else if (arg == "--node") {
      node_id = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--server-node") {
      server_node = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--heartbeat-ms") {
      heartbeat_ms = std::strtol(next(), nullptr, 10);
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (node_id == 0 || (server_at.empty() == book_path.empty())) {
    usage(argv[0]);
    return 2;
  }

  AddressBook book;
  if (!server_at.empty()) {
    auto ep = parse_endpoint(server_at);
    if (!ep.is_ok()) {
      std::fprintf(stderr, "corona-clientd: %s\n",
                   ep.status().to_string().c_str());
      return 2;
    }
    book.emplace(NodeId{server_node}, ep.value());
  } else {
    auto loaded = load_address_book_file(book_path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "corona-clientd: %s\n",
                   loaded.status().to_string().c_str());
      return 2;
    }
    book = std::move(loaded.value());
  }

  SocketRuntime rt;
  rt.set_address_book(book);

  CoronaClient::Callbacks cb;
  cb.on_deliver = [](GroupId g, const UpdateRecord& rec) {
    std::string text(rec.data.begin(), rec.data.end());
    std::printf("[deliver] group %llu seq %llu obj %llu from node %llu: %s\n",
                static_cast<unsigned long long>(g.value),
                static_cast<unsigned long long>(rec.seq),
                static_cast<unsigned long long>(rec.object.value),
                static_cast<unsigned long long>(rec.sender.value),
                text.c_str());
  };
  cb.on_joined = [](GroupId g, Status s) {
    std::printf("[joined] group %llu: %s\n",
                static_cast<unsigned long long>(g.value),
                s.to_string().c_str());
  };
  cb.on_lock_granted = [](GroupId g, ObjectId o) {
    std::printf("[lock] group %llu obj %llu granted\n",
                static_cast<unsigned long long>(g.value),
                static_cast<unsigned long long>(o.value));
  };
  cb.on_membership_change = [](GroupId g, NodeId who, MemberRole, bool in) {
    std::printf("[membership] group %llu node %llu %s\n",
                static_cast<unsigned long long>(g.value),
                static_cast<unsigned long long>(who.value),
                in ? "joined" : "left");
  };
  cb.on_membership_info = [](GroupId g,
                             const std::vector<MemberInfo>& members) {
    std::printf("[members] group %llu:",
                static_cast<unsigned long long>(g.value));
    for (const MemberInfo& m : members) {
      std::printf(" %llu", static_cast<unsigned long long>(m.node.value));
    }
    std::printf("\n");
  };
  cb.on_reply = [](RequestId rid, Status s) {
    if (!s.is_ok()) {
      std::printf("[error] request %llu: %s\n",
                  static_cast<unsigned long long>(rid),
                  s.to_string().c_str());
    }
  };

  CoronaClient::Config client_cfg;
  if (heartbeat_ms > 0) {
    client_cfg.heartbeat_interval = heartbeat_ms * kMillisecond;
  }
  CoronaClient client(NodeId{server_node}, cb, client_cfg);
  rt.add_node(NodeId{node_id}, &client);
  rt.start();
  std::printf("corona-clientd: node %llu dialing %s\n",
              static_cast<unsigned long long>(node_id),
              book.at(NodeId{server_node}).to_string().c_str());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    std::uint64_t g = 0, obj = 0;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "create" && in >> g) {
      client.create_group(GroupId{g}, "group-" + std::to_string(g), true);
    } else if (cmd == "join" && in >> g) {
      std::string mode;
      std::uint32_t n = 0;
      if (in >> mode && mode == "last" && in >> n) {
        client.join(GroupId{g}, TransferPolicySpec::last_n_updates(n));
      } else {
        client.join(GroupId{g});
      }
    } else if (cmd == "leave" && in >> g) {
      client.leave(GroupId{g});
    } else if (cmd == "send" && in >> g >> obj) {
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text.front() == ' ') text.erase(0, 1);
      client.bcast_update(GroupId{g}, ObjectId{obj},
                          Bytes(text.begin(), text.end()));
    } else if (cmd == "lock" && in >> g >> obj) {
      client.lock(GroupId{g}, ObjectId{obj});
    } else if (cmd == "unlock" && in >> g >> obj) {
      client.unlock(GroupId{g}, ObjectId{obj});
    } else if (cmd == "members" && in >> g) {
      client.get_membership(GroupId{g});
    } else {
      std::printf("commands: create/join/leave/send/lock/unlock/members/quit\n");
    }
  }
  rt.stop();
  return 0;
}
