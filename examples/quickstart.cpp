// Quickstart: the core Corona workflow in one file.
//
//   1. spin up a stateful server and two clients on the deterministic engine
//   2. create a persistent group with initial shared state
//   3. join, multicast (bcastState vs bcastUpdate), observe total order
//   4. leave until the group has no members — the state persists
//   5. rejoin later and receive the full state from the service
//
// Run: ./build/examples/quickstart
#include <iostream>

#include "core/client.h"
#include "core/server.h"
#include "runtime/sim_runtime.h"

using namespace corona;

int main() {
  SimRuntime rt;

  // One server machine and two client machines on a LAN.
  const NodeId server_id{1}, alice_id{100}, bob_id{101};
  GroupStore disk;  // the server's stable storage
  CoronaServer server(ServerConfig{}, &disk);
  rt.add_node(server_id, &server, rt.network().add_host(HostProfile{}));

  // Alice prints every delivery; deliveries arrive in the group's total
  // order, already applied to her local replica of the shared state.
  CoronaClient::Callbacks alice_cb;
  alice_cb.on_deliver = [&](GroupId g, const UpdateRecord& rec) {
    std::cout << "  [alice] seq=" << rec.seq << " from node "
              << rec.sender.value << " object " << rec.object.value << ": \""
              << to_string(rec.data) << "\" (group " << g.value << ")\n";
  };
  CoronaClient alice(server_id, alice_cb);
  CoronaClient bob(server_id);
  rt.add_node(alice_id, &alice, rt.network().add_host(HostProfile{}));
  rt.add_node(bob_id, &bob, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);

  const GroupId room{42};
  const ObjectId topic{1}, minutes{2};

  std::cout << "1. Alice creates persistent group 42 with an initial topic\n";
  alice.create_group(room, "standup", /*persistent=*/true,
                     {StateEntry{topic, to_bytes("daily standup")}});
  rt.run_for(100 * kMillisecond);

  std::cout << "2. Alice and Bob join (full state transfer)\n";
  alice.join(room);
  bob.join(room);
  rt.run_for(100 * kMillisecond);

  std::cout << "3. Multicasts: bcastUpdate appends, bcastState replaces\n";
  bob.bcast_update(room, minutes, to_bytes("bob: shipped the codec; "));
  alice.bcast_update(room, minutes, to_bytes("alice: reviewing; "));
  bob.bcast_state(room, topic, to_bytes("retrospective"));
  rt.run_for(200 * kMillisecond);

  const SharedState* st = bob.group_state(room);
  std::cout << "   bob's replica: topic=\"" << to_string(*st->object(topic))
            << "\" minutes=\"" << to_string(*st->object(minutes)) << "\"\n";

  std::cout << "4. Everyone leaves; the persistent group outlives them\n";
  alice.leave(room);
  bob.leave(room);
  rt.run_for(100 * kMillisecond);
  std::cout << "   server still has the group: "
            << (server.has_group(room) ? "yes" : "no") << "\n";

  std::cout << "5. Bob rejoins later and receives the persisted state\n";
  bob.join(room);
  rt.run_for(100 * kMillisecond);
  st = bob.group_state(room);
  std::cout << "   after rejoin: topic=\"" << to_string(*st->object(topic))
            << "\" minutes=\"" << to_string(*st->object(minutes)) << "\"\n";

  std::cout << "\nDone: stateful join/leave with service-side persistence, "
               "no peer client involved.\n";
  return 0;
}
