file(REMOVE_RECURSE
  "CMakeFiles/data_dissemination.dir/data_dissemination.cpp.o"
  "CMakeFiles/data_dissemination.dir/data_dissemination.cpp.o.d"
  "data_dissemination"
  "data_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
