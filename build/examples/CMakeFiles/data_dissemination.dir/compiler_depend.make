# Empty compiler generated dependencies file for data_dissemination.
# This may be replaced when dependencies are built.
