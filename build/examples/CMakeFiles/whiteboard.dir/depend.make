# Empty dependencies file for whiteboard.
# This may be replaced when dependencies are built.
