file(REMOVE_RECURSE
  "CMakeFiles/whiteboard.dir/whiteboard.cpp.o"
  "CMakeFiles/whiteboard.dir/whiteboard.cpp.o.d"
  "whiteboard"
  "whiteboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whiteboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
