# Empty dependencies file for chat.
# This may be replaced when dependencies are built.
