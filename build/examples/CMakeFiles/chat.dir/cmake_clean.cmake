file(REMOVE_RECURSE
  "CMakeFiles/chat.dir/chat.cpp.o"
  "CMakeFiles/chat.dir/chat.cpp.o.d"
  "chat"
  "chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
