
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/CMakeFiles/corona.dir/core/client.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/client.cc.o.d"
  "/root/repo/src/core/group.cc" "src/CMakeFiles/corona.dir/core/group.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/group.cc.o.d"
  "/root/repo/src/core/locks.cc" "src/CMakeFiles/corona.dir/core/locks.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/locks.cc.o.d"
  "/root/repo/src/core/log_reduction.cc" "src/CMakeFiles/corona.dir/core/log_reduction.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/log_reduction.cc.o.d"
  "/root/repo/src/core/qos_scheduler.cc" "src/CMakeFiles/corona.dir/core/qos_scheduler.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/qos_scheduler.cc.o.d"
  "/root/repo/src/core/server.cc" "src/CMakeFiles/corona.dir/core/server.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/server.cc.o.d"
  "/root/repo/src/core/session_manager.cc" "src/CMakeFiles/corona.dir/core/session_manager.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/session_manager.cc.o.d"
  "/root/repo/src/core/shared_state.cc" "src/CMakeFiles/corona.dir/core/shared_state.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/shared_state.cc.o.d"
  "/root/repo/src/core/state_transfer.cc" "src/CMakeFiles/corona.dir/core/state_transfer.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/state_transfer.cc.o.d"
  "/root/repo/src/core/stateless_server.cc" "src/CMakeFiles/corona.dir/core/stateless_server.cc.o" "gcc" "src/CMakeFiles/corona.dir/core/stateless_server.cc.o.d"
  "/root/repo/src/replica/coordinator.cc" "src/CMakeFiles/corona.dir/replica/coordinator.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/coordinator.cc.o.d"
  "/root/repo/src/replica/election.cc" "src/CMakeFiles/corona.dir/replica/election.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/election.cc.o.d"
  "/root/repo/src/replica/failure_detector.cc" "src/CMakeFiles/corona.dir/replica/failure_detector.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/failure_detector.cc.o.d"
  "/root/repo/src/replica/partition.cc" "src/CMakeFiles/corona.dir/replica/partition.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/partition.cc.o.d"
  "/root/repo/src/replica/recovery.cc" "src/CMakeFiles/corona.dir/replica/recovery.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/recovery.cc.o.d"
  "/root/repo/src/replica/registry.cc" "src/CMakeFiles/corona.dir/replica/registry.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/registry.cc.o.d"
  "/root/repo/src/replica/replica_server.cc" "src/CMakeFiles/corona.dir/replica/replica_server.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/replica_server.cc.o.d"
  "/root/repo/src/replica/replication_manager.cc" "src/CMakeFiles/corona.dir/replica/replication_manager.cc.o" "gcc" "src/CMakeFiles/corona.dir/replica/replication_manager.cc.o.d"
  "/root/repo/src/runtime/sim_runtime.cc" "src/CMakeFiles/corona.dir/runtime/sim_runtime.cc.o" "gcc" "src/CMakeFiles/corona.dir/runtime/sim_runtime.cc.o.d"
  "/root/repo/src/runtime/thread_runtime.cc" "src/CMakeFiles/corona.dir/runtime/thread_runtime.cc.o" "gcc" "src/CMakeFiles/corona.dir/runtime/thread_runtime.cc.o.d"
  "/root/repo/src/serial/message.cc" "src/CMakeFiles/corona.dir/serial/message.cc.o" "gcc" "src/CMakeFiles/corona.dir/serial/message.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/corona.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/corona.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/sim_disk.cc" "src/CMakeFiles/corona.dir/sim/sim_disk.cc.o" "gcc" "src/CMakeFiles/corona.dir/sim/sim_disk.cc.o.d"
  "/root/repo/src/sim/sim_network.cc" "src/CMakeFiles/corona.dir/sim/sim_network.cc.o" "gcc" "src/CMakeFiles/corona.dir/sim/sim_network.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/corona.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/corona.dir/sim/simulator.cc.o.d"
  "/root/repo/src/storage/checkpoint_store.cc" "src/CMakeFiles/corona.dir/storage/checkpoint_store.cc.o" "gcc" "src/CMakeFiles/corona.dir/storage/checkpoint_store.cc.o.d"
  "/root/repo/src/storage/group_store.cc" "src/CMakeFiles/corona.dir/storage/group_store.cc.o" "gcc" "src/CMakeFiles/corona.dir/storage/group_store.cc.o.d"
  "/root/repo/src/storage/stable_log.cc" "src/CMakeFiles/corona.dir/storage/stable_log.cc.o" "gcc" "src/CMakeFiles/corona.dir/storage/stable_log.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/corona.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/corona.dir/util/logging.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/corona.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/corona.dir/util/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
