file(REMOVE_RECURSE
  "libcorona.a"
)
