# Empty compiler generated dependencies file for corona.
# This may be replaced when dependencies are built.
