file(REMOVE_RECURSE
  "CMakeFiles/fig3_roundtrip.dir/fig3_roundtrip.cc.o"
  "CMakeFiles/fig3_roundtrip.dir/fig3_roundtrip.cc.o.d"
  "fig3_roundtrip"
  "fig3_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
