# Empty dependencies file for fig3_roundtrip.
# This may be replaced when dependencies are built.
