file(REMOVE_RECURSE
  "CMakeFiles/ablation_logging.dir/ablation_logging.cc.o"
  "CMakeFiles/ablation_logging.dir/ablation_logging.cc.o.d"
  "ablation_logging"
  "ablation_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
