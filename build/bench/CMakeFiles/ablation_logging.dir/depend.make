# Empty dependencies file for ablation_logging.
# This may be replaced when dependencies are built.
