file(REMOVE_RECURSE
  "CMakeFiles/micro_shared_state.dir/micro_shared_state.cc.o"
  "CMakeFiles/micro_shared_state.dir/micro_shared_state.cc.o.d"
  "micro_shared_state"
  "micro_shared_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_shared_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
