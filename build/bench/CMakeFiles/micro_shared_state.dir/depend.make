# Empty dependencies file for micro_shared_state.
# This may be replaced when dependencies are built.
