# Empty compiler generated dependencies file for ablation_state_transfer.
# This may be replaced when dependencies are built.
