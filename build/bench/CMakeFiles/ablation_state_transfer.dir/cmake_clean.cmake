file(REMOVE_RECURSE
  "CMakeFiles/ablation_state_transfer.dir/ablation_state_transfer.cc.o"
  "CMakeFiles/ablation_state_transfer.dir/ablation_state_transfer.cc.o.d"
  "ablation_state_transfer"
  "ablation_state_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_state_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
