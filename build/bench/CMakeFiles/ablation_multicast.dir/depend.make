# Empty dependencies file for ablation_multicast.
# This may be replaced when dependencies are built.
