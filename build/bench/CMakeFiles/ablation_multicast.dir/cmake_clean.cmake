file(REMOVE_RECURSE
  "CMakeFiles/ablation_multicast.dir/ablation_multicast.cc.o"
  "CMakeFiles/ablation_multicast.dir/ablation_multicast.cc.o.d"
  "ablation_multicast"
  "ablation_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
