# Empty dependencies file for ablation_join_churn.
# This may be replaced when dependencies are built.
