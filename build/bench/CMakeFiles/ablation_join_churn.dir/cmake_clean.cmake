file(REMOVE_RECURSE
  "CMakeFiles/ablation_join_churn.dir/ablation_join_churn.cc.o"
  "CMakeFiles/ablation_join_churn.dir/ablation_join_churn.cc.o.d"
  "ablation_join_churn"
  "ablation_join_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_join_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
