# Empty compiler generated dependencies file for table2_replicated.
# This may be replaced when dependencies are built.
