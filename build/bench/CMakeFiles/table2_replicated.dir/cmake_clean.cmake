file(REMOVE_RECURSE
  "CMakeFiles/table2_replicated.dir/table2_replicated.cc.o"
  "CMakeFiles/table2_replicated.dir/table2_replicated.cc.o.d"
  "table2_replicated"
  "table2_replicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_replicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
