file(REMOVE_RECURSE
  "CMakeFiles/ablation_failover.dir/ablation_failover.cc.o"
  "CMakeFiles/ablation_failover.dir/ablation_failover.cc.o.d"
  "ablation_failover"
  "ablation_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
