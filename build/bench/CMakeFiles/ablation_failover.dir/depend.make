# Empty dependencies file for ablation_failover.
# This may be replaced when dependencies are built.
