# Empty compiler generated dependencies file for ablation_peer_join.
# This may be replaced when dependencies are built.
