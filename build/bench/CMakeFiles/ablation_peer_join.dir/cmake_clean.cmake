file(REMOVE_RECURSE
  "CMakeFiles/ablation_peer_join.dir/ablation_peer_join.cc.o"
  "CMakeFiles/ablation_peer_join.dir/ablation_peer_join.cc.o.d"
  "ablation_peer_join"
  "ablation_peer_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_peer_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
