file(REMOVE_RECURSE
  "CMakeFiles/msg_size_sweep.dir/msg_size_sweep.cc.o"
  "CMakeFiles/msg_size_sweep.dir/msg_size_sweep.cc.o.d"
  "msg_size_sweep"
  "msg_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
