# Empty compiler generated dependencies file for msg_size_sweep.
# This may be replaced when dependencies are built.
