# Empty compiler generated dependencies file for ablation_log_reduction.
# This may be replaced when dependencies are built.
