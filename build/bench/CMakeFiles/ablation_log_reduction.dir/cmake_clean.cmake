file(REMOVE_RECURSE
  "CMakeFiles/ablation_log_reduction.dir/ablation_log_reduction.cc.o"
  "CMakeFiles/ablation_log_reduction.dir/ablation_log_reduction.cc.o.d"
  "ablation_log_reduction"
  "ablation_log_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_log_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
