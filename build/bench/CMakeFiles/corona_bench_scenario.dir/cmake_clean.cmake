file(REMOVE_RECURSE
  "../lib/libcorona_bench_scenario.a"
  "../lib/libcorona_bench_scenario.pdb"
  "CMakeFiles/corona_bench_scenario.dir/scenario.cc.o"
  "CMakeFiles/corona_bench_scenario.dir/scenario.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corona_bench_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
