file(REMOVE_RECURSE
  "../lib/libcorona_bench_scenario.a"
)
