# Empty compiler generated dependencies file for corona_bench_scenario.
# This may be replaced when dependencies are built.
