# Empty dependencies file for table1_throughput.
# This may be replaced when dependencies are built.
