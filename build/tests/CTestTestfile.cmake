# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/serial_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/shared_state_test[1]_include.cmake")
include("/root/repo/build/tests/core_components_test[1]_include.cmake")
include("/root/repo/build/tests/replica_components_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/server_client_test[1]_include.cmake")
include("/root/repo/build/tests/replica_integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/thread_integration_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/client_failure_test[1]_include.cmake")
include("/root/repo/build/tests/replica_edge_test[1]_include.cmake")
include("/root/repo/build/tests/replica_chaos_test[1]_include.cmake")
include("/root/repo/build/tests/peer_join_test[1]_include.cmake")
include("/root/repo/build/tests/thread_replica_test[1]_include.cmake")
include("/root/repo/build/tests/client_api_test[1]_include.cmake")
include("/root/repo/build/tests/replica_cold_restart_test[1]_include.cmake")
