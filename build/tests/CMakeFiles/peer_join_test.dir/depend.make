# Empty dependencies file for peer_join_test.
# This may be replaced when dependencies are built.
