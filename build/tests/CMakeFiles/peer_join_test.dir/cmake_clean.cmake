file(REMOVE_RECURSE
  "CMakeFiles/peer_join_test.dir/peer_join_test.cc.o"
  "CMakeFiles/peer_join_test.dir/peer_join_test.cc.o.d"
  "peer_join_test"
  "peer_join_test.pdb"
  "peer_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peer_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
