file(REMOVE_RECURSE
  "CMakeFiles/replica_components_test.dir/replica_components_test.cc.o"
  "CMakeFiles/replica_components_test.dir/replica_components_test.cc.o.d"
  "replica_components_test"
  "replica_components_test.pdb"
  "replica_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
