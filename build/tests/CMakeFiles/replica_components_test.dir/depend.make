# Empty dependencies file for replica_components_test.
# This may be replaced when dependencies are built.
