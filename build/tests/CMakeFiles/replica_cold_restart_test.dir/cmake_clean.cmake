file(REMOVE_RECURSE
  "CMakeFiles/replica_cold_restart_test.dir/replica_cold_restart_test.cc.o"
  "CMakeFiles/replica_cold_restart_test.dir/replica_cold_restart_test.cc.o.d"
  "replica_cold_restart_test"
  "replica_cold_restart_test.pdb"
  "replica_cold_restart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_cold_restart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
