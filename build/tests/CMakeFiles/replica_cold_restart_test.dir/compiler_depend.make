# Empty compiler generated dependencies file for replica_cold_restart_test.
# This may be replaced when dependencies are built.
