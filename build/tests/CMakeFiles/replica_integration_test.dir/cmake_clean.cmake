file(REMOVE_RECURSE
  "CMakeFiles/replica_integration_test.dir/replica_integration_test.cc.o"
  "CMakeFiles/replica_integration_test.dir/replica_integration_test.cc.o.d"
  "replica_integration_test"
  "replica_integration_test.pdb"
  "replica_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
