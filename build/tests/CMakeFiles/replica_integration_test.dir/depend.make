# Empty dependencies file for replica_integration_test.
# This may be replaced when dependencies are built.
