# Empty dependencies file for client_api_test.
# This may be replaced when dependencies are built.
