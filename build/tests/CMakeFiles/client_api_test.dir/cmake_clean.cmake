file(REMOVE_RECURSE
  "CMakeFiles/client_api_test.dir/client_api_test.cc.o"
  "CMakeFiles/client_api_test.dir/client_api_test.cc.o.d"
  "client_api_test"
  "client_api_test.pdb"
  "client_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
