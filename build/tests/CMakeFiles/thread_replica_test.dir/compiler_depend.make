# Empty compiler generated dependencies file for thread_replica_test.
# This may be replaced when dependencies are built.
