file(REMOVE_RECURSE
  "CMakeFiles/thread_replica_test.dir/thread_replica_test.cc.o"
  "CMakeFiles/thread_replica_test.dir/thread_replica_test.cc.o.d"
  "thread_replica_test"
  "thread_replica_test.pdb"
  "thread_replica_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
