file(REMOVE_RECURSE
  "CMakeFiles/thread_integration_test.dir/thread_integration_test.cc.o"
  "CMakeFiles/thread_integration_test.dir/thread_integration_test.cc.o.d"
  "thread_integration_test"
  "thread_integration_test.pdb"
  "thread_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
