# Empty dependencies file for thread_integration_test.
# This may be replaced when dependencies are built.
