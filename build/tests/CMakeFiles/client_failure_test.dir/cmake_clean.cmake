file(REMOVE_RECURSE
  "CMakeFiles/client_failure_test.dir/client_failure_test.cc.o"
  "CMakeFiles/client_failure_test.dir/client_failure_test.cc.o.d"
  "client_failure_test"
  "client_failure_test.pdb"
  "client_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
