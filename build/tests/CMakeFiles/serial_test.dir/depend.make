# Empty dependencies file for serial_test.
# This may be replaced when dependencies are built.
