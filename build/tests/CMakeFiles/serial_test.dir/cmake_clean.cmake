file(REMOVE_RECURSE
  "CMakeFiles/serial_test.dir/serial_test.cc.o"
  "CMakeFiles/serial_test.dir/serial_test.cc.o.d"
  "serial_test"
  "serial_test.pdb"
  "serial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
