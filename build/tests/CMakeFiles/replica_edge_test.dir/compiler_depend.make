# Empty compiler generated dependencies file for replica_edge_test.
# This may be replaced when dependencies are built.
