file(REMOVE_RECURSE
  "CMakeFiles/replica_edge_test.dir/replica_edge_test.cc.o"
  "CMakeFiles/replica_edge_test.dir/replica_edge_test.cc.o.d"
  "replica_edge_test"
  "replica_edge_test.pdb"
  "replica_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
