file(REMOVE_RECURSE
  "CMakeFiles/server_client_test.dir/server_client_test.cc.o"
  "CMakeFiles/server_client_test.dir/server_client_test.cc.o.d"
  "server_client_test"
  "server_client_test.pdb"
  "server_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
