file(REMOVE_RECURSE
  "CMakeFiles/shared_state_test.dir/shared_state_test.cc.o"
  "CMakeFiles/shared_state_test.dir/shared_state_test.cc.o.d"
  "shared_state_test"
  "shared_state_test.pdb"
  "shared_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
