# Empty dependencies file for shared_state_test.
# This may be replaced when dependencies are built.
