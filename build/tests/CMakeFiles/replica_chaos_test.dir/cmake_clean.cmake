file(REMOVE_RECURSE
  "CMakeFiles/replica_chaos_test.dir/replica_chaos_test.cc.o"
  "CMakeFiles/replica_chaos_test.dir/replica_chaos_test.cc.o.d"
  "replica_chaos_test"
  "replica_chaos_test.pdb"
  "replica_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
