// The durable backend (src/storage/disk/) against its contracts: the
// StableLog/CheckpointStore semantics it must reproduce, the on-disk formats,
// recovery across reopen (the unit-level stand-in for kill -9), and the
// backend-equivalence property — a randomized op sequence driven into a
// DiskEnv GroupStore and an in-memory GroupStore must recover identical
// durable views from any crash point.  (Real SIGKILL mid-flush is covered by
// tests/crash_restart_test.cc.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/disk/crc32c.h"
#include "storage/disk/disk_checkpoint.h"
#include "storage/disk/disk_env.h"
#include "storage/disk/disk_format.h"
#include "storage/disk/disk_io.h"
#include "storage/disk/disk_log.h"
#include "storage/group_store.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace corona {
namespace {

using disk::DiskCounters;
using disk::DiskEnv;
using disk::DiskEnvConfig;

// A scratch directory removed on scope exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/corona_disk_test_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p != nullptr ? p : "";
  }
  ~TempDir() {
    if (!path_.empty()) disk::remove_tree(path_);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // The standard CRC-32C check value for "123456789".
  const Bytes check = to_bytes("123456789");
  EXPECT_EQ(disk::crc32c(check), 0xe3069283u);
  EXPECT_EQ(disk::crc32c(BytesView{}), 0u);
}

TEST(Crc32c, DetectsSingleBitFlip) {
  Bytes data = filler_bytes(64);
  const std::uint32_t clean = disk::crc32c(data);
  data[17] ^= 0x10;
  EXPECT_NE(disk::crc32c(data), clean);
}

// ---------------------------------------------------------------------------
// Buffer-level formats
// ---------------------------------------------------------------------------

Bytes build_segment(std::uint64_t base, const std::vector<Bytes>& records) {
  Bytes buf;
  disk::append_segment_header(buf, base);
  for (const Bytes& r : records) disk::append_record(buf, r);
  return buf;
}

TEST(DiskFormat, SegmentRoundTrip) {
  const std::vector<Bytes> records = {to_bytes("a"), to_bytes("bb"), {}};
  const Bytes buf = build_segment(42, records);
  const disk::SegmentScan scan = disk::scan_segment(buf);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.base_index, 42u);
  EXPECT_EQ(scan.records, records);
  EXPECT_EQ(scan.valid_bytes, buf.size());
  EXPECT_FALSE(scan.truncated);
}

TEST(DiskFormat, TornTailTruncatesToLongestValidPrefix) {
  const std::vector<Bytes> records = {to_bytes("one"), to_bytes("two")};
  Bytes buf = build_segment(0, records);
  const std::size_t full = buf.size();
  // Cut the last record's payload short: the scan must keep record 0 only.
  buf.resize(full - 1);
  const disk::SegmentScan scan = disk::scan_segment(buf);
  EXPECT_TRUE(scan.header_ok);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], records[0]);
  EXPECT_TRUE(scan.truncated);
  EXPECT_LT(scan.valid_bytes, buf.size());
}

TEST(DiskFormat, PayloadBitFlipKillsRecordAndEverythingAfter) {
  Bytes buf =
      build_segment(0, {to_bytes("aaaa"), to_bytes("bbbb"), to_bytes("cccc")});
  // Flip one bit inside the second record's payload.
  const std::size_t second_payload = disk::kSegmentHeaderBytes +
                                     disk::record_size_on_disk(4) +
                                     disk::kRecordHeaderBytes;
  buf[second_payload] ^= 0x01;
  const disk::SegmentScan scan = disk::scan_segment(buf);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], to_bytes("aaaa"));
  EXPECT_TRUE(scan.truncated);
}

TEST(DiskFormat, BadHeaderContributesNothing) {
  Bytes buf = build_segment(7, {to_bytes("x")});
  buf[1] ^= 0xff;  // corrupt the magic
  const disk::SegmentScan scan = disk::scan_segment(buf);
  EXPECT_FALSE(scan.header_ok);
  EXPECT_TRUE(scan.records.empty());
}

TEST(DiskFormat, GarbageLengthStopsScan) {
  Bytes buf = build_segment(0, {to_bytes("ok")});
  // Append a record header claiming a payload far past the sanity ceiling.
  for (const std::uint8_t b : {0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) {
    buf.push_back(b);
  }
  const disk::SegmentScan scan = disk::scan_segment(buf);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated);
}

TEST(DiskFormat, CheckpointFileRoundTripAndRejection) {
  const Bytes blob = filler_bytes(100);
  Bytes file = disk::encode_checkpoint_file("group/7", blob);
  const auto decoded = disk::decode_checkpoint_file(file);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, "group/7");
  EXPECT_EQ(decoded->blob, blob);

  Bytes flipped = file;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(disk::decode_checkpoint_file(flipped).has_value());
  file.resize(file.size() - 3);  // torn rename target cannot happen, but
  EXPECT_FALSE(disk::decode_checkpoint_file(file).has_value());
}

TEST(DiskFormat, LogMetaRoundTripAndRejection) {
  Bytes meta = disk::encode_log_meta(123456789u);
  ASSERT_EQ(meta.size(), disk::kMetaFileBytes);
  EXPECT_EQ(disk::decode_log_meta(meta), 123456789u);
  meta[6] ^= 0x02;
  EXPECT_FALSE(disk::decode_log_meta(meta).has_value());
}

// ---------------------------------------------------------------------------
// DiskLog
// ---------------------------------------------------------------------------

constexpr std::size_t kSmallSegment = 128;  // force rotation in tests

TEST(DiskLog, ContractMatchesStableLog) {
  TempDir dir;
  DiskCounters counters;
  disk::DiskLog log(dir.path() + "/log", kSmallSegment, &counters);
  log.append(to_bytes("a"));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.durable_size(), 0u);
  EXPECT_GT(log.pending_bytes(), 0u);
  EXPECT_EQ(log.flush(), 1u);
  EXPECT_EQ(log.durable_size(), 1u);
  EXPECT_EQ(log.pending_bytes(), 0u);
  log.append(to_bytes("b"));
  log.append(to_bytes("c"));
  EXPECT_EQ(log.flush(), 2u);  // commit group of 2
  EXPECT_EQ(log.commits(), 2u);
  EXPECT_EQ(log.max_commit_records(), 2u);
  log.append(to_bytes("lost"));
  log.crash();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(to_string(log.record(2)), "c");
}

TEST(DiskLog, ReopenRecoversFlushedDropsUnflushed) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/log";
  {
    disk::DiskLog log(path, kSmallSegment, &counters);
    log.append(to_bytes("durable1"));
    log.append(to_bytes("durable2"));
    log.flush();
    log.append(to_bytes("unflushed"));
    // Destructor: process death with a dirty tail.
  }
  disk::DiskLog log(path, kSmallSegment, &counters);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.durable_size(), 2u);
  EXPECT_EQ(to_string(log.record(0)), "durable1");
  EXPECT_EQ(to_string(log.record(1)), "durable2");
  EXPECT_EQ(counters.recovered_records, 2u);
}

TEST(DiskLog, RotatesSegmentsAndRecoversAcrossThem) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/log";
  {
    disk::DiskLog log(path, kSmallSegment, &counters);
    for (int i = 0; i < 20; ++i) {
      log.append(filler_bytes(32, static_cast<std::uint8_t>(i)));
      log.flush();
    }
    EXPECT_GT(log.segment_count(), 1u);
  }
  disk::DiskLog log(path, kSmallSegment, &counters);
  ASSERT_EQ(log.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(log.record(static_cast<std::size_t>(i)),
              filler_bytes(32, static_cast<std::uint8_t>(i)));
  }
}

TEST(DiskLog, DropPrefixDeletesCoveredSegmentsAndSurvivesReopen) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/log";
  {
    disk::DiskLog log(path, kSmallSegment, &counters);
    for (int i = 0; i < 20; ++i) {
      log.append(filler_bytes(32, static_cast<std::uint8_t>(i)));
      log.flush();
    }
    const std::size_t before = log.segment_count();
    log.drop_prefix(15);
    EXPECT_LT(log.segment_count(), before);
    EXPECT_GT(counters.segments_deleted, 0u);
    ASSERT_EQ(log.size(), 5u);
    EXPECT_EQ(log.record(0), filler_bytes(32, 15));
    EXPECT_EQ(log.start_index(), 15u);
  }
  disk::DiskLog log(path, kSmallSegment, &counters);
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.start_index(), 15u);
  EXPECT_EQ(log.record(0), filler_bytes(32, 15));
  EXPECT_EQ(log.record(4), filler_bytes(32, 19));
}

TEST(DiskLog, AppendsKeepWorkingAfterDropPrefixCoversEverything) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/log";
  {
    disk::DiskLog log(path, kSmallSegment, &counters);
    for (int i = 0; i < 4; ++i) log.append(to_bytes("x"));
    log.flush();
    log.drop_prefix(4);  // covers the whole durable log
    EXPECT_EQ(log.size(), 0u);
    log.append(to_bytes("after"));
    log.flush();
  }
  disk::DiskLog log(path, kSmallSegment, &counters);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(to_string(log.record(0)), "after");
  EXPECT_EQ(log.start_index(), 4u);
}

TEST(DiskLog, TornTailIsTruncatedOnReopen) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/log";
  {
    disk::DiskLog log(path, 1u << 20, &counters);
    log.append(to_bytes("keep1"));
    log.append(to_bytes("keep2"));
    log.flush();
  }
  // Simulate a torn write: garbage appended past the last durable record.
  const std::vector<std::string> files = disk::list_files(path);
  std::string seg;
  for (const std::string& f : files) {
    if (f.starts_with("seg-")) seg = path + "/" + f;
  }
  ASSERT_FALSE(seg.empty());
  {
    disk::AppendFile torn = disk::AppendFile::open(seg, &counters);
    const Bytes garbage = {0x13, 0x37, 0x00, 0x00, 0xde, 0xad};
    torn.write(garbage);
    torn.sync();
  }
  {
    disk::DiskLog log(path, 1u << 20, &counters);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(to_string(log.record(0)), "keep1");
    EXPECT_GT(counters.truncated_bytes, 0u);
    // The torn bytes were physically cut; appending must chain cleanly.
    log.append(to_bytes("after"));
    log.flush();
  }
  disk::DiskLog log(path, 1u << 20, &counters);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(to_string(log.record(2)), "after");
}

TEST(DiskLog, FlushSpanningRotationSyncsEverySegmentTouched) {
  TempDir dir;
  DiskCounters counters;
  disk::DiskLog log(dir.path() + "/log", kSmallSegment, &counters);
  for (int i = 0; i < 12; ++i) {
    log.append(filler_bytes(32, static_cast<std::uint8_t>(i)));
  }
  const std::uint64_t before = counters.fsyncs;
  ASSERT_EQ(log.flush(), 12u);
  ASSERT_GT(log.segment_count(), 2u);
  // Every segment the commit group touched must be synced before flush()
  // returns, not just the final active one: one data sync per rotation
  // hand-off plus the end-of-flush sync (segment creation contributes one
  // directory sync each).  Syncing only the last segment would acknowledge
  // records that a power loss can tear out of the rotated-out segments.
  EXPECT_GE(counters.fsyncs - before, 2u * log.segment_count() - 1);
}

TEST(DiskLog, RecoveryDroppingSegmentsSyncsTheDirectory) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/log";
  {
    disk::DiskLog log(path, kSmallSegment, &counters);
    for (int i = 0; i < 20; ++i) {
      log.append(filler_bytes(32, static_cast<std::uint8_t>(i)));
      log.flush();
    }
  }
  // Corrupt the SECOND segment's header: recovery keeps segment one, then
  // unlinks the corrupt segment and everything after it (chain break) —
  // removals only, no truncation.
  std::vector<std::string> segs;
  for (const std::string& f : disk::list_files(path)) {
    if (f.starts_with("seg-")) segs.push_back(path + "/" + f);
  }
  ASSERT_GT(segs.size(), 2u);
  Bytes content = *disk::read_file(segs[1]);
  content[1] ^= 0xff;  // break the magic
  disk::atomic_write_file(segs[1], content, &counters);

  const std::uint64_t before = counters.fsyncs;
  disk::DiskLog log(path, kSmallSegment, &counters);
  EXPECT_GT(counters.corrupt_files_dropped, 0u);
  // The unlinks are dirty directory pages until the directory itself is
  // synced; without it a later power loss can resurrect a dropped-but-valid
  // stale segment that chains onto the rebuilt log.
  EXPECT_GT(counters.fsyncs, before);
}

TEST(DiskLog, CorruptionInEarlySegmentDropsLaterSegments) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/log";
  {
    disk::DiskLog log(path, kSmallSegment, &counters);
    for (int i = 0; i < 20; ++i) {
      log.append(filler_bytes(32, static_cast<std::uint8_t>(i)));
      log.flush();
    }
    EXPECT_GT(log.segment_count(), 2u);
  }
  // Flip a byte in the middle of the FIRST segment's record area.
  const std::vector<std::string> files = disk::list_files(path);
  std::string first_seg;
  for (const std::string& f : files) {
    if (f.starts_with("seg-")) {
      first_seg = path + "/" + f;
      break;
    }
  }
  ASSERT_FALSE(first_seg.empty());
  Bytes content = *disk::read_file(first_seg);
  content[disk::kSegmentHeaderBytes + disk::kRecordHeaderBytes + 5] ^= 0x80;
  disk::atomic_write_file(first_seg, content, &counters);

  disk::DiskLog log(path, kSmallSegment, &counters);
  // Strict truncation: nothing at or after the flipped record survives,
  // including the (intact) later segments.
  EXPECT_EQ(log.size(), 0u);
  EXPECT_GT(counters.corrupt_files_dropped, 0u);
  // And the log must still accept new writes and recover them.
  log.append(to_bytes("fresh"));
  log.flush();
  disk::DiskLog reopened(path, kSmallSegment, &counters);
  ASSERT_EQ(reopened.size(), 1u);
  EXPECT_EQ(to_string(reopened.record(0)), "fresh");
}

// ---------------------------------------------------------------------------
// DiskCheckpointStore
// ---------------------------------------------------------------------------

TEST(DiskCheckpoint, StagedPutDurableAfterFlushAcrossReopen) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/ckpt";
  {
    disk::DiskCheckpointStore cs(path, &counters);
    cs.put("group/1", to_bytes("v1"));
    EXPECT_TRUE(cs.get("group/1").has_value());
    EXPECT_FALSE(cs.get_durable("group/1").has_value());
    cs.flush();
    cs.put("group/1", to_bytes("v2-staged-then-lost"));
    cs.put("group/2", to_bytes("never-flushed"));
  }
  disk::DiskCheckpointStore cs(path, &counters);
  ASSERT_TRUE(cs.get_durable("group/1").has_value());
  EXPECT_EQ(to_string(*cs.get_durable("group/1")), "v1");
  EXPECT_FALSE(cs.get_durable("group/2").has_value());
  EXPECT_EQ(cs.durable_keys(), (std::vector<std::string>{"group/1"}));
}

TEST(DiskCheckpoint, EraseDurableAfterFlush) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/ckpt";
  {
    disk::DiskCheckpointStore cs(path, &counters);
    cs.put("a", to_bytes("1"));
    cs.put("b", to_bytes("2"));
    cs.flush();
    cs.erase("a");
    cs.flush();
  }
  disk::DiskCheckpointStore cs(path, &counters);
  EXPECT_EQ(cs.durable_keys(), (std::vector<std::string>{"b"}));
}

TEST(DiskCheckpoint, CorruptFileDroppedWholeOnOpen) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/ckpt";
  {
    disk::DiskCheckpointStore cs(path, &counters);
    cs.put("good", to_bytes("keep"));
    cs.put("bad", to_bytes("will-rot"));
    cs.flush();
  }
  for (const std::string& name : disk::list_files(path)) {
    Bytes content = *disk::read_file(path + "/" + name);
    const auto file = disk::decode_checkpoint_file(content);
    if (file.has_value() && file->key == "bad") {
      content[content.size() - 1] ^= 0x01;
      disk::atomic_write_file(path + "/" + name, content, &counters);
    }
  }
  disk::DiskCheckpointStore cs(path, &counters);
  EXPECT_EQ(cs.durable_keys(), (std::vector<std::string>{"good"}));
  EXPECT_GT(counters.corrupt_files_dropped, 0u);
}

// ---------------------------------------------------------------------------
// DiskEnv + GroupStore end-to-end
// ---------------------------------------------------------------------------

UpdateRecord mk_update(SeqNo seq, ObjectId obj, const Bytes& data,
                       NodeId sender = NodeId{100}) {
  UpdateRecord u;
  u.seq = seq;
  u.kind = PayloadKind::kUpdate;
  u.object = obj;
  u.data = data;
  u.sender = sender;
  u.request_id = seq;
  return u;
}

void expect_same_recovery(const std::vector<RecoveredGroup>& a,
                          const std::vector<RecoveredGroup>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].meta, b[i].meta);
    EXPECT_EQ(a[i].base_seq, b[i].base_seq);
    EXPECT_EQ(a[i].snapshot, b[i].snapshot);
    EXPECT_EQ(a[i].updates, b[i].updates);
  }
}

TEST(DiskGroupStore, RecoverAcrossReopenMatchesPreCrashDurableView) {
  TempDir dir;
  std::vector<RecoveredGroup> durable_view;
  {
    DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
    GroupStore gs(&env);
    gs.create_group(GroupMeta{GroupId{1}, "g1", true},
                    {StateEntry{ObjectId{1}, to_bytes("init")}});
    gs.create_group(GroupMeta{GroupId{2}, "g2", false}, {});
    for (SeqNo s = 1; s <= 8; ++s) {
      gs.append_update(GroupId{1}, mk_update(s, ObjectId{1}, filler_bytes(20)));
    }
    gs.append_update(GroupId{2}, mk_update(1, ObjectId{9}, to_bytes("two")));
    (void)gs.flush();
    gs.install_checkpoint(GroupId{1}, 5,
                          {StateEntry{ObjectId{1}, to_bytes("as-of-5")}});
    (void)gs.flush();
    gs.append_update(GroupId{1},
                     mk_update(9, ObjectId{1}, to_bytes("unflushed")));
    gs.crash();  // in-process model of the kill
    durable_view = gs.recover();
  }
  DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
  GroupStore gs(&env);
  expect_same_recovery(gs.recover(), durable_view);
}

TEST(DiskGroupStore, OrphanLogOfNeverFlushedGroupIsReaped) {
  TempDir dir;
  {
    DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
    GroupStore gs(&env);
    gs.create_group(GroupMeta{GroupId{5}, "flushed", true}, {});
    (void)gs.flush();
    gs.create_group(GroupMeta{GroupId{6}, "orphan", true}, {});
    // No flush: group 6 has a log directory but no durable checkpoint.
  }
  DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
  GroupStore gs(&env);  // construction reaps group 6's orphan log
  EXPECT_EQ(env.list_logs(), (std::vector<GroupId>{GroupId{5}}));
  const auto recovered = gs.recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].meta.id, GroupId{5});
}

TEST(DiskGroupStore, RemovedGroupStaysGoneAfterReopen) {
  TempDir dir;
  {
    DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
    GroupStore gs(&env);
    gs.create_group(GroupMeta{GroupId{1}, "g", true}, {});
    gs.append_update(GroupId{1}, mk_update(1, ObjectId{1}, to_bytes("x")));
    (void)gs.flush();
    gs.remove_group(GroupId{1});
    (void)gs.flush();
  }
  DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
  GroupStore gs(&env);
  EXPECT_TRUE(gs.recover().empty());
  EXPECT_TRUE(env.list_logs().empty());
}

TEST(DiskGroupStore, RemoveGroupIsDurableBeforeLogStorageIsReclaimed) {
  TempDir dir;
  {
    DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
    GroupStore gs(&env);
    gs.create_group(GroupMeta{GroupId{1}, "g", true}, {});
    gs.append_update(GroupId{1}, mk_update(1, ObjectId{1}, to_bytes("x")));
    (void)gs.flush();
    gs.remove_group(GroupId{1});
    // NO flush: the process dies right after remove_group returns.  The
    // checkpoint erase must already be durable when the log storage goes —
    // otherwise restart finds a durable checkpoint with its log destroyed
    // and resurrects the group at base_seq with every flushed update lost.
  }
  DiskEnv env(DiskEnvConfig{dir.path() + "/data", 256});
  GroupStore gs(&env);
  EXPECT_TRUE(gs.recover().empty());
  EXPECT_TRUE(env.list_logs().empty());
}

TEST(DiskGroupStore, CheckpointCoveredRecordsDoNotResurrect) {
  TempDir dir;
  {
    // Tiny segments: the checkpoint boundary lands mid-segment, so covered
    // records still share a file with live ones — the meta floor must hide
    // them across the reopen.
    DiskEnv env(DiskEnvConfig{dir.path() + "/data", 64});
    GroupStore gs(&env);
    gs.create_group(GroupMeta{GroupId{1}, "g", true}, {});
    for (SeqNo s = 1; s <= 7; ++s) {
      gs.append_update(GroupId{1}, mk_update(s, ObjectId{1}, to_bytes("u")));
    }
    (void)gs.flush();
    gs.install_checkpoint(GroupId{1}, 4,
                          {StateEntry{ObjectId{1}, to_bytes("uuuu")}});
    (void)gs.flush();
  }
  DiskEnv env(DiskEnvConfig{dir.path() + "/data", 64});
  GroupStore gs(&env);
  const auto recovered = gs.recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].base_seq, 4u);
  ASSERT_EQ(recovered[0].updates.size(), 3u);
  EXPECT_EQ(recovered[0].updates[0].seq, 5u);
}

// ---------------------------------------------------------------------------
// Backend-equivalence property: randomized ops + crash points
// ---------------------------------------------------------------------------

// Drives the same randomized op sequence into a disk-backed GroupStore and
// the in-memory reference, crashes both at the same random point, recovers
// the disk store through a REAL reopen, and requires identical views.
TEST(DiskGroupStore, RandomizedCrashPointEquivalenceProperty) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    TempDir dir;
    Rng rng(seed * 0x9e3779b9u);
    std::vector<RecoveredGroup> expected;
    {
      DiskEnv env(DiskEnvConfig{dir.path() + "/data", 200});
      GroupStore disk_gs(&env);
      GroupStore mem_gs;  // reference model

      std::vector<GroupId> live;
      std::unordered_map<std::uint64_t, SeqNo> next_seq;
      std::uint64_t next_id = 1;
      const int ops = 60 + static_cast<int>(rng.next_below(60));
      for (int op = 0; op < ops; ++op) {
        const std::uint64_t pick = rng.next_below(100);
        if (live.empty() || pick < 10) {
          const GroupMeta meta{GroupId{next_id}, "g" + std::to_string(next_id),
                               rng.next_bool(0.5)};
          const std::vector<StateEntry> init = {
              StateEntry{ObjectId{1}, filler_bytes(rng.next_below(40))}};
          disk_gs.create_group(meta, init);
          mem_gs.create_group(meta, init);
          live.push_back(meta.id);
          next_seq[next_id] = 1;
          ++next_id;
        } else if (pick < 60) {
          const GroupId g = live[rng.next_below(live.size())];
          const SeqNo s = next_seq[g.value]++;
          const UpdateRecord u = mk_update(
              s, ObjectId{rng.next_below(4)},
              filler_bytes(rng.next_below(50),
                           static_cast<std::uint8_t>(rng.next_u64())));
          disk_gs.append_update(g, u);
          mem_gs.append_update(g, u);
        } else if (pick < 75) {
          (void)disk_gs.flush();
          (void)mem_gs.flush();
        } else if (pick < 90) {
          const GroupId g = live[rng.next_below(live.size())];
          const SeqNo base = next_seq[g.value] - 1;
          const std::vector<StateEntry> snap = {
              StateEntry{ObjectId{1}, filler_bytes(base % 30)}};
          disk_gs.install_checkpoint(g, base, snap);
          mem_gs.install_checkpoint(g, base, snap);
        } else if (live.size() > 1) {
          const std::size_t idx = rng.next_below(live.size());
          disk_gs.remove_group(live[idx]);
          mem_gs.remove_group(live[idx]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
      }
      // Crash both models at the same (random) point.
      mem_gs.crash();
      expected = mem_gs.recover();
    }
    // Disk recovery goes through a REAL reopen of the directory.
    DiskEnv env(DiskEnvConfig{dir.path() + "/data", 200});
    GroupStore recovered(&env);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    expect_same_recovery(recovered.recover(), expected);
  }
}

}  // namespace
}  // namespace corona
