// Full client/server protocol under the concurrent ThreadRuntime: the exact
// same CoronaServer/CoronaClient code as the simulator tests, but with one
// OS thread per node and real message races.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "core/client.h"
#include "core/server.h"
#include "core/stateless_server.h"
#include "runtime/thread_runtime.h"

namespace corona {
namespace {

const NodeId kServer{1};
const GroupId kG{1};
const ObjectId kObj{1};

class ThreadedWorld : public ::testing::Test {
 protected:
  ThreadRuntime rt;
  GroupStore store;
  std::unique_ptr<CoronaServer> server;

  void SetUp() override {
    server = std::make_unique<CoronaServer>(ServerConfig{}, &store);
    rt.add_node(kServer, server.get());
  }

  void TearDown() override { rt.stop(); }

  static void settle(ThreadRuntime& rt) {
    ASSERT_TRUE(rt.wait_quiescent(10 * kSecond));
  }
};

TEST_F(ThreadedWorld, CreateJoinBcastDeliver) {
  std::atomic<int> delivered{0};
  CoronaClient::Callbacks cb;
  cb.on_deliver = [&](GroupId, const UpdateRecord&) { delivered.fetch_add(1); };
  CoronaClient c0(kServer, cb);
  CoronaClient c1(kServer, cb);
  rt.add_node(NodeId{100}, &c0);
  rt.add_node(NodeId{101}, &c1);
  rt.start();
  settle(rt);

  c0.create_group(kG, "g", true);
  settle(rt);
  c0.join(kG);
  c1.join(kG);
  settle(rt);
  c0.bcast_update(kG, kObj, to_bytes("threaded"));
  settle(rt);

  EXPECT_EQ(delivered.load(), 2);
  const SharedState* st = c1.group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(to_string(*st->object(kObj)), "threaded");
}

TEST_F(ThreadedWorld, TotalOrderUnderConcurrentSenders) {
  constexpr std::size_t kClients = 4;
  constexpr int kPerClient = 25;

  std::mutex mu;
  std::map<std::uint64_t, std::vector<SeqNo>> journals;
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    CoronaClient::Callbacks cb;
    const std::uint64_t idx = i;
    cb.on_deliver = [&mu, &journals, idx](GroupId, const UpdateRecord& rec) {
      std::lock_guard<std::mutex> lock(mu);
      journals[idx].push_back(rec.seq);
    };
    clients.push_back(std::make_unique<CoronaClient>(kServer, cb));
    rt.add_node(NodeId{100 + i}, clients.back().get());
  }
  rt.start();
  settle(rt);

  clients[0]->create_group(kG, "g", true);
  settle(rt);
  for (auto& c : clients) c->join(kG);
  settle(rt);

  // All clients blast concurrently from the test thread is NOT allowed
  // (client methods must run on the owning thread); instead drive sends via
  // timer-less message injection: each client enqueues its own sends through
  // the runtime by reacting to its own deliveries.  Seed one send per client
  // from here — the calls enqueue protocol messages through the runtime,
  // which is thread-safe.
  for (int round = 0; round < kPerClient; ++round) {
    for (auto& c : clients) {
      c->bcast_update(kG, kObj, to_bytes("x"));
    }
  }
  settle(rt);

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(journals.size(), kClients);
  const auto& ref = journals.begin()->second;
  EXPECT_EQ(ref.size(), kClients * kPerClient);
  for (std::size_t i = 1; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i - 1] + 1, ref[i]) << "total order gap";
  }
  for (const auto& [idx, journal] : journals) {
    EXPECT_EQ(journal, ref) << "client " << idx << " diverged";
  }
}

TEST_F(ThreadedWorld, LateJoinerGetsConsistentSnapshot) {
  CoronaClient c0(kServer);
  std::atomic<bool> joined{false};
  CoronaClient::Callbacks cb;
  cb.on_joined = [&](GroupId, Status s) { joined.store(s.is_ok()); };
  CoronaClient late(kServer, cb);
  rt.add_node(NodeId{100}, &c0);
  rt.add_node(NodeId{101}, &late);
  rt.start();
  settle(rt);

  c0.create_group(kG, "g", true);
  settle(rt);
  c0.join(kG);
  settle(rt);
  for (int i = 0; i < 50; ++i) {
    c0.bcast_update(kG, kObj, to_bytes("u"));
  }
  settle(rt);

  late.join(kG, TransferPolicySpec::full());
  settle(rt);
  ASSERT_TRUE(joined.load());
  const SharedState* st = late.group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->object(kObj)->size(), 50u);
}

// Arms one far-future timer at start; used by the shutdown-ordering tests.
class FarTimerNode final : public Node {
 public:
  std::atomic<bool> fired{false};
  std::atomic<TimerHandle> handle{0};

  void on_start() override { handle.store(set_timer(3600 * kSecond, 1)); }
  void on_message(NodeId, const Message&) override {}
  void on_timer(std::uint64_t) override { fired.store(true); }
};

TEST_F(ThreadedWorld, StopWhileMailboxesStillQueued) {
  // Shutdown-ordering: stop() with a burst of frames still sitting in the
  // mailboxes must drain and join without racing the worker threads (this
  // is a tsan-preset test; the interesting assertions are the ones tsan
  // makes).  stop() is documented idempotent — TearDown stops again.
  CoronaClient c0(kServer);
  rt.add_node(NodeId{100}, &c0);
  rt.start();
  settle(rt);
  c0.create_group(kG, "g", true);
  settle(rt);
  c0.join(kG);
  settle(rt);
  for (int i = 0; i < 200; ++i) {
    c0.bcast_update(kG, kObj, to_bytes("x"));
  }
  rt.stop();  // no settle: most of the burst is still queued
  rt.stop();
}

TEST_F(ThreadedWorld, StopWhileFarFutureTimerPending) {
  // A worker sleeping toward a timer an hour out must be woken by stop()
  // and join promptly — the pending timer neither fires nor blocks the
  // join.
  FarTimerNode n;
  rt.add_node(NodeId{100}, &n);
  rt.start();
  settle(rt);
  ASSERT_NE(n.handle.load(), 0u);
  rt.stop();
  EXPECT_FALSE(n.fired.load());
  // Cancelling after the join exercises the cancel path on a stopped
  // runtime; it must be a safe no-op.
  rt.cancel_timer(n.handle.load());
}

TEST_F(ThreadedWorld, LocksSerializeAcrossThreads) {
  std::atomic<int> grants{0};
  CoronaClient::Callbacks cb;
  cb.on_lock_granted = [&](GroupId, ObjectId) { grants.fetch_add(1); };
  CoronaClient c0(kServer, cb);
  CoronaClient c1(kServer, cb);
  rt.add_node(NodeId{100}, &c0);
  rt.add_node(NodeId{101}, &c1);
  rt.start();
  settle(rt);

  c0.create_group(kG, "g", true);
  settle(rt);
  c0.join(kG);
  c1.join(kG);
  settle(rt);

  c0.lock(kG, kObj);
  c1.lock(kG, kObj);
  settle(rt);
  EXPECT_EQ(grants.load(), 1);  // exactly one holder
  c0.unlock(kG, kObj);
  c1.unlock(kG, kObj);  // whichever holds releases; the other errors or frees
  settle(rt);
  EXPECT_GE(grants.load(), 1);
}

}  // namespace
}  // namespace corona
