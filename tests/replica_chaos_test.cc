// Chaos soak: a long randomized workload over the replicated service with
// leaf crashes, restarts, and client re-homing injected along the way.
// After quiescence, every surviving member's consolidated state must equal
// the coordinator's (the paper's whole premise: the *service*, not the
// clients, owns the state).
//
// The batched sweeps run the same soak with the coordinator/leaf fan-out
// outboxes on and crash leaves *mid-batch* (a short slice after a burst, so
// coalesced frames are still queued when the leaf dies).  Resynchronization
// must retransmit exactly the unacked suffix: every client's delivery seqs
// stay strictly increasing — a partially applied batch would surface as a
// duplicate or reorder after the client re-homes and catches up.
#include <gtest/gtest.h>

#include "harness.h"
#include "util/rng.h"

namespace corona {
namespace {

using testing::client_id;
using testing::server_id;

const GroupId kG{1};

struct ChaosParams {
  int seed;
  int rounds;
  double crash_prob;
  std::size_t batch = 1;  // > 1: batched fan-out + mid-batch leaf crashes
};

class ReplicaChaos : public ::testing::TestWithParam<ChaosParams> {};

TEST_P(ReplicaChaos, SurvivorsConvergeToCoordinatorState) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.seed) * 2654435761u + 1);

  constexpr std::size_t kServers = 4;  // coordinator + 3 leaves
  constexpr std::size_t kClients = 4;

  SimRuntime rt;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < kServers; ++i) ids.push_back(server_id(i));
  ReplicaConfig cfg;
  cfg.batch_max_msgs = p.batch;
  if (p.batch > 1) cfg.batch_max_delay = 10 * kMillisecond;
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  std::vector<bool> leaf_up(kServers, true);
  for (std::size_t i = 0; i < kServers; ++i) {
    servers.push_back(std::make_unique<ReplicaServer>(cfg, ids));
    rt.add_node(ids[i], servers[i].get(),
                rt.network().add_host(HostProfile{}));
  }
  testing::DeliveryLog log;
  std::vector<std::unique_ptr<CoronaClient>> clients;
  std::vector<std::size_t> homed_on(kClients);  // leaf index 1..3
  for (std::size_t i = 0; i < kClients; ++i) {
    homed_on[i] = 1 + i % (kServers - 1);
    clients.push_back(std::make_unique<CoronaClient>(ids[homed_on[i]]));
    clients.back()->set_callbacks(log.callbacks_for(client_id(i)));
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(500 * kMillisecond);

  clients[0]->create_group(kG, "chaos", true);
  rt.run_for(500 * kMillisecond);
  for (auto& c : clients) c->join(kG);
  rt.run_for(1 * kSecond);

  auto pick_live_leaf = [&]() -> std::size_t {
    for (int tries = 0; tries < 16; ++tries) {
      const std::size_t leaf = 1 + rng.next_below(kServers - 1);
      if (leaf_up[leaf]) return leaf;
    }
    return 0;  // give up: home on the coordinator
  };

  for (int round = 0; round < p.rounds; ++round) {
    // Random multicasts from random clients; batched sweeps send a small
    // back-to-back burst so the fan-out outboxes coalesce several records
    // per frame.
    const std::size_t burst = p.batch > 1 ? 3 : 1;
    for (std::size_t b = 0; b < burst; ++b) {
      const std::size_t sender = rng.next_below(kClients);
      clients[sender]->bcast_update(
          kG, ObjectId{1 + rng.next_below(3)},
          filler_bytes(1 + rng.next_below(48),
                       static_cast<std::uint8_t>(rng.next_u64())));
    }

    // Occasionally crash or restart a leaf.  Batched sweeps crash
    // *mid-batch*: run just long enough for the burst to reach the
    // coordinator and fill the outboxes, then kill the leaf before the
    // batch delay flushes them.
    const bool inject = rng.next_bool(p.crash_prob);
    rt.run_for(inject && p.batch > 1 ? 5 * kMillisecond : 50 * kMillisecond);
    if (inject) {
      const std::size_t leaf = 1 + rng.next_below(kServers - 1);
      if (leaf_up[leaf]) {
        rt.crash(ids[leaf]);
        leaf_up[leaf] = false;
        // Clients homed there migrate to a surviving leaf and rejoin.
        rt.run_for(3 * kSecond);  // let the coordinator notice
        for (std::size_t c = 0; c < kClients; ++c) {
          if (homed_on[c] == leaf) {
            homed_on[c] = pick_live_leaf();
            clients[c]->set_server(ids[homed_on[c]]);
            clients[c]->join(kG);
          }
        }
        rt.run_for(1 * kSecond);
      } else {
        auto fresh = std::make_unique<ReplicaServer>(cfg, ids);
        rt.restart(ids[leaf], fresh.get());
        servers[leaf] = std::move(fresh);
        leaf_up[leaf] = true;
        rt.run_for(1 * kSecond);
      }
    }
  }
  rt.run_for(5 * kSecond);

  // Convergence: coordinator state == every member's local replica.
  const SharedState* coord = servers[0]->coord_state(kG);
  ASSERT_NE(coord, nullptr);
  const auto reference = coord->snapshot();
  EXPECT_FALSE(reference.empty());
  for (std::size_t c = 0; c < kClients; ++c) {
    const SharedState* st = clients[c]->group_state(kG);
    ASSERT_NE(st, nullptr) << "client " << c;
    EXPECT_EQ(st->snapshot(), reference) << "client " << c;
    EXPECT_EQ(st->head_seq(), coord->head_seq()) << "client " << c;
  }
  // Every live leaf copy converged too.
  for (std::size_t leaf = 1; leaf < kServers; ++leaf) {
    if (!leaf_up[leaf]) continue;
    const SharedState* copy = servers[leaf]->local_state(kG);
    if (copy != nullptr) {
      EXPECT_EQ(copy->snapshot(), reference) << "leaf " << leaf;
    }
  }

  // No partial batch: every client's delivered seqs are strictly
  // increasing.  If a crash tore a coalesced frame and resync replayed
  // anything other than the exact unacked suffix, the journal would show a
  // duplicate or a reorder here.
  for (std::size_t c = 0; c < kClients; ++c) {
    const auto seqs = log.seqs_for(client_id(c));
    for (std::size_t i = 1; i < seqs.size(); ++i) {
      EXPECT_LT(seqs[i - 1], seqs[i])
          << "client " << c << " delivery " << i
          << " duplicated or reordered across a batch boundary";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, ReplicaChaos,
    ::testing::Values(ChaosParams{1, 40, 0.08}, ChaosParams{2, 60, 0.05},
                      ChaosParams{3, 40, 0.12}, ChaosParams{4, 80, 0.04},
                      ChaosParams{5, 50, 0.10}));

// Batched fan-out under the same chaos: coalesced kSeqMulticast and
// kDeliver frames are in flight when leaves die.
INSTANTIATE_TEST_SUITE_P(
    BatchedSweeps, ReplicaChaos,
    ::testing::Values(ChaosParams{11, 40, 0.10, 8},
                      ChaosParams{12, 60, 0.06, 8},
                      ChaosParams{13, 40, 0.12, 4}));

}  // namespace
}  // namespace corona
