// The CORONA_INVARIANT layer: corrupt each stateful core through its test
// access, assert the check_invariants() walk notices, and assert the macro
// checkpoints route failures through the installed handler.  The walks are
// compiled in every build mode; this binary additionally forces the
// checkpoints on (CORONA_FORCE_INVARIANTS in tests/CMakeLists.txt) so the
// handler path is exercised even in Release.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/group.h"
#include "core/locks.h"
#include "core/shared_state.h"
#include "replica/replication_manager.h"
#include "sim/event_queue.h"
#include "util/invariant.h"

namespace corona {

// The friend backdoors used to corrupt internals.
struct LockTableTestAccess {
  static std::map<ObjectId, LockTable::Entry>& locks(LockTable& t) {
    return t.locks_;
  }
};
struct SharedStateTestAccess {
  static std::deque<UpdateRecord>& history(SharedState& s) {
    return s.history_;
  }
  static std::uint64_t& history_bytes(SharedState& s) {
    return s.history_bytes_;
  }
  static SeqNo& head_seq(SharedState& s) { return s.head_seq_; }
  static SeqNo& base_seq(SharedState& s) { return s.base_seq_; }
};
struct GroupTestAccess {
  static SeqNo& next_seq(Group& g) { return g.next_seq_; }
};
struct ReplicationManagerTestAccess {
  static void force_both(ReplicationManager& r, GroupId g, NodeId server) {
    r.copies_[g].supporting.insert(server);
    r.copies_[g].backups.insert(server);
  }
};
struct EventQueueTestAccess {
  static TimePoint& now(EventQueue& q) { return q.now_; }
  static std::size_t& live_count(EventQueue& q) { return q.live_count_; }
  static std::vector<EventQueue::EventId>& cancelled(EventQueue& q) {
    return q.cancelled_;
  }
};

namespace {

UpdateRecord make_rec(SeqNo seq, std::size_t bytes) {
  UpdateRecord rec;
  rec.seq = seq;
  rec.object = ObjectId{1};
  rec.kind = PayloadKind::kUpdate;
  rec.data = Bytes(bytes, std::uint8_t{0xab});
  rec.sender = NodeId{100};
  rec.request_id = seq;
  return rec;
}

// ---------------------------------------------------------------------------
// LockTable
// ---------------------------------------------------------------------------

TEST(LockTableInvariants, CleanTablePasses) {
  LockTable t;
  EXPECT_EQ(t.acquire(ObjectId{7}, NodeId{1}), LockTable::AcquireOutcome::kGranted);
  EXPECT_EQ(t.acquire(ObjectId{7}, NodeId{2}), LockTable::AcquireOutcome::kQueued);
  EXPECT_TRUE(t.check_invariants().ok());
}

TEST(LockTableInvariants, HolderAlsoQueuedIsReported) {
  LockTable t;
  t.acquire(ObjectId{7}, NodeId{1});
  LockTableTestAccess::locks(t).at(ObjectId{7}).queue.push_back(NodeId{1});
  const InvariantReport rep = t.check_invariants();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("also queued"), std::string::npos);
}

TEST(LockTableInvariants, DuplicateWaiterIsReported) {
  LockTable t;
  t.acquire(ObjectId{7}, NodeId{1});
  t.acquire(ObjectId{7}, NodeId{2});
  LockTableTestAccess::locks(t).at(ObjectId{7}).queue.push_back(NodeId{2});
  const InvariantReport rep = t.check_invariants();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("queued twice"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SharedState
// ---------------------------------------------------------------------------

TEST(SharedStateInvariants, CleanStatePasses) {
  SharedState s;
  s.apply(make_rec(1, 16));
  s.apply(make_rec(2, 16));
  EXPECT_TRUE(s.check_invariants().ok());
}

TEST(SharedStateInvariants, ByteAccountingDriftIsReported) {
  SharedState s;
  s.apply(make_rec(1, 16));
  SharedStateTestAccess::history_bytes(s) += 5;
  const InvariantReport rep = s.check_invariants();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("history_bytes"), std::string::npos);
}

TEST(SharedStateInvariants, NonAscendingHistoryIsReported) {
  SharedState s;
  s.apply(make_rec(1, 8));
  s.apply(make_rec(2, 8));
  SharedStateTestAccess::history(s)[1].seq = 1;  // duplicate of the first
  EXPECT_FALSE(s.check_invariants().ok());
}

TEST(SharedStateInvariants, BasePastHeadIsReported) {
  SharedState s;
  s.apply(make_rec(1, 8));
  SharedStateTestAccess::base_seq(s) = 9;
  EXPECT_FALSE(s.check_invariants().ok());
}

// ---------------------------------------------------------------------------
// Group
// ---------------------------------------------------------------------------

TEST(GroupInvariants, CleanGroupPasses) {
  Group g(GroupMeta{GroupId{1}, "g", true});
  g.add_member(NodeId{100}, MemberRole::kPrincipal, false);
  g.locks().acquire(ObjectId{1}, NodeId{100});
  const SeqNo seq = g.allocate_seq();
  g.state().apply(make_rec(seq, 8));
  EXPECT_TRUE(g.check_invariants().ok());
}

TEST(GroupInvariants, NonMemberLockHolderIsReported) {
  Group g(GroupMeta{GroupId{1}, "g", true});
  g.add_member(NodeId{100}, MemberRole::kPrincipal, false);
  g.locks().acquire(ObjectId{1}, NodeId{200});  // bypasses membership guard
  const InvariantReport rep = g.check_invariants();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("not a member"), std::string::npos);
}

TEST(GroupInvariants, SequencerBehindAppliedHeadIsReported) {
  Group g(GroupMeta{GroupId{1}, "g", true});
  g.state().apply(make_rec(g.allocate_seq(), 8));
  GroupTestAccess::next_seq(g) = 1;  // would re-issue an applied seq
  EXPECT_FALSE(g.check_invariants().ok());
}

// ---------------------------------------------------------------------------
// ReplicationManager
// ---------------------------------------------------------------------------

TEST(ReplicationManagerInvariants, CleanPlacementPasses) {
  ReplicationManager r;
  r.add_supporting_server(GroupId{1}, NodeId{2});
  r.add_backup(GroupId{1}, NodeId{3});
  // Promoting the backup to supporting must drop the backup role.
  r.add_supporting_server(GroupId{1}, NodeId{3});
  EXPECT_TRUE(r.check_invariants().ok());
  EXPECT_EQ(r.copy_count(GroupId{1}), 2u);
}

TEST(ReplicationManagerInvariants, DoubleRoleIsReported) {
  ReplicationManager r;
  ReplicationManagerTestAccess::force_both(r, GroupId{1}, NodeId{2});
  const InvariantReport rep = r.check_invariants();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("both supporting and backup"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueueInvariants, CleanQueuePasses) {
  EventQueue q;
  q.schedule_after(10, [] {});
  const EventQueue::EventId id = q.schedule_after(20, [] {});
  q.cancel(id);
  EXPECT_TRUE(q.check_invariants().ok());
  EXPECT_TRUE(q.run_next());
  EXPECT_TRUE(q.check_invariants().ok());
}

TEST(EventQueueInvariants, EventBeforeNowIsReported) {
  EventQueue q;
  q.schedule_at(5, [] {});
  EventQueueTestAccess::now(q) = 50;  // virtual time jumped past the event
  const InvariantReport rep = q.check_invariants();
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.to_string().find("before now"), std::string::npos);
}

TEST(EventQueueInvariants, LiveCountDriftIsReported) {
  EventQueue q;
  q.schedule_after(10, [] {});
  EventQueueTestAccess::live_count(q) = 7;
  EXPECT_FALSE(q.check_invariants().ok());
}

TEST(EventQueueInvariants, StaleCancellationIsReported) {
  EventQueue q;
  q.schedule_after(10, [] {});
  EventQueueTestAccess::cancelled(q).push_back(999);  // never queued
  EXPECT_FALSE(q.check_invariants().ok());
}

// ---------------------------------------------------------------------------
// Checkpoint macros + handler plumbing
// ---------------------------------------------------------------------------

std::atomic<int> g_failures{0};
std::string g_last_message;  // single-threaded tests only

void recording_handler(const char*, int, const char*, const char* message) {
  ++g_failures;
  g_last_message = message;
}

class HandlerGuard {
 public:
  HandlerGuard() : previous_(set_invariant_handler(&recording_handler)) {
    g_failures = 0;
    g_last_message.clear();
  }
  ~HandlerGuard() { set_invariant_handler(previous_); }

 private:
  InvariantHandler previous_;
};

TEST(InvariantMacros, CheckpointsAreOnInThisBinary) {
  // tests/CMakeLists.txt defines CORONA_FORCE_INVARIANTS for this target, so
  // the macro layer must be active regardless of build type.
  EXPECT_EQ(CORONA_INVARIANTS_ENABLED, 1);
}

TEST(InvariantMacros, PassingCheckpointIsSilent) {
  HandlerGuard guard;
  CORONA_INVARIANT(1 + 1 == 2, "arithmetic holds");
  LockTable t;
  CORONA_CHECK_INVARIANTS(t);
  EXPECT_EQ(g_failures, 0);
}

TEST(InvariantMacros, FailingConditionCallsHandler) {
  HandlerGuard guard;
  CORONA_INVARIANT(false, "forced failure");
  EXPECT_EQ(g_failures, 1);
  EXPECT_EQ(g_last_message, "forced failure");
}

TEST(InvariantMacros, CorruptedComponentTripsCheckpoint) {
  HandlerGuard guard;
  LockTable t;
  t.acquire(ObjectId{7}, NodeId{1});
  LockTableTestAccess::locks(t).at(ObjectId{7}).queue.push_back(NodeId{1});
  CORONA_CHECK_INVARIANTS(t);
  EXPECT_EQ(g_failures, 1);
  EXPECT_NE(g_last_message.find("also queued"), std::string::npos);
}

TEST(InvariantMacros, MutatorCheckpointsFireOnCorruptedTable) {
  HandlerGuard guard;
  LockTable t;
  t.acquire(ObjectId{7}, NodeId{1});
  LockTableTestAccess::locks(t).at(ObjectId{7}).queue.push_back(NodeId{1});
  // acquire()'s queued path ends in CORONA_CHECK_INVARIANTS(*this); with the
  // library built with checkpoints on it must observe the corruption.  When
  // the library was built in Release the walk still exists but the inline
  // checkpoint is compiled out, so expect either 0 or 1 here — what must
  // never happen is an abort (the recording handler is installed).
  t.acquire(ObjectId{7}, NodeId{2});
  EXPECT_LE(g_failures.load(), 1);
}

TEST(InvariantReportTest, MergeAndToString) {
  InvariantReport a;
  a.fail("first");
  InvariantReport b;
  b.fail("second");
  a.merge(b);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.violations().size(), 2u);
  EXPECT_EQ(a.to_string(), "first; second");
  EXPECT_EQ(InvariantReport{}.to_string(), "");
}

}  // namespace
}  // namespace corona
