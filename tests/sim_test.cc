#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/sim_disk.h"
#include "sim/sim_network.h"
#include "sim/simulator.h"

namespace corona {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PastTimesClampToNow) {
  EventQueue q;
  q.schedule_at(50, [] {});
  q.run_next();
  bool ran = false;
  q.schedule_at(10, [&] { ran = true; });  // in the past
  q.run_next();
  EXPECT_TRUE(ran);
  EXPECT_EQ(q.now(), 50);  // time does not go backwards
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule_at(10, [&] { ran = true; });
  q.cancel(id);
  while (q.run_next()) {
  }
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_after(10, chain);
  };
  q.schedule_after(0, chain);
  while (q.run_next()) {
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 40);
}

// The tie-break audit corona-check's determinism rests on: events that share
// a timestamp pop in the order they were *scheduled*, even when scheduling
// interleaves with popping and with lazy cancellation.  (event_queue.h
// documents this contract next to the comparator.)
TEST(EventQueue, SameTimestampEventsPopInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(100, [&] { order.push_back(0); });
  const auto doomed = q.schedule_at(100, [&] { order.push_back(99); });
  q.schedule_at(100, [&] {
    order.push_back(1);
    // Scheduled mid-drain at the *same* instant: must still run after every
    // earlier-scheduled event at t=100.
    q.schedule_at(100, [&] { order.push_back(3); });
  });
  q.schedule_at(100, [&] { order.push_back(2); });
  q.cancel(doomed);
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
  EXPECT_TRUE(q.check_invariants().ok());
}

TEST(EventQueue, PendingEventsAreAscendingAndSkipCancelled) {
  EventQueue q;
  q.schedule_at(30, EventTag{EventKind::kTimer, 7, 1}, [] {});
  const auto dead = q.schedule_at(10, [] {});
  q.schedule_at(20, EventTag{EventKind::kArrival, 1, 2}, [] {});
  q.cancel(dead);
  const auto pending = q.pending_events();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].at, 20);
  EXPECT_EQ(pending[0].tag.kind, EventKind::kArrival);
  EXPECT_EQ(pending[0].tag.a, 1u);
  EXPECT_EQ(pending[0].tag.b, 2u);
  EXPECT_EQ(pending[1].at, 30);
  EXPECT_EQ(pending[1].tag.kind, EventKind::kTimer);
}

namespace {
// Picks the event the default policy would run *last*.
struct PickLast : Scheduler {
  std::uint64_t pick(const std::vector<EventDesc>& enabled) override {
    return enabled.back().id;
  }
};
}  // namespace

TEST(EventQueue, SchedulerControlsPopOrderAndClampsTime) {
  EventQueue q;
  std::vector<int> order;
  std::vector<TimePoint> times;
  for (int i = 0; i < 3; ++i) {
    q.schedule_at(10 * (i + 1), [&, i] {
      order.push_back(i);
      times.push_back(q.now());
    });
  }
  PickLast last;
  q.set_scheduler(&last);
  while (q.run_next()) {
  }
  // The scheduler reversed the pop order; bypassed events were clamped
  // forward to the chosen event's time, so virtual time never ran backwards.
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(times, (std::vector<TimePoint>{30, 30, 30}));
  EXPECT_TRUE(q.check_invariants().ok());
}

namespace {
// Picks the front (default policy) but injects one extra event on the first
// decision — the shape fault injection uses.
struct InjectOnce : Scheduler {
  EventQueue* queue = nullptr;
  std::vector<int>* order = nullptr;
  bool injected = false;
  std::uint64_t pick(const std::vector<EventDesc>& enabled) override {
    if (!injected) {
      injected = true;
      queue->schedule_at(15, [this] { order->push_back(42); });
    }
    return enabled.front().id;
  }
};
}  // namespace

TEST(EventQueue, SchedulerMayScheduleNewEventsDuringPick) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  InjectOnce inject;
  inject.queue = &q;
  inject.order = &order;
  q.set_scheduler(&inject);
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 42, 2}));
  EXPECT_TRUE(q.check_invariants().ok());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (TimePoint t : {10, 20, 30, 40}) {
    sim.queue().schedule_at(t, [&] { ++fired; });
  }
  sim.run_until(25);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 25);
  sim.run_until_idle();
  EXPECT_EQ(fired, 4);
}

TEST(Simulator, RunForAdvancesRelative) {
  Simulator sim;
  sim.run_until(100);
  int fired = 0;
  sim.queue().schedule_after(50, [&] { ++fired; });
  sim.run_for(49);
  EXPECT_EQ(fired, 0);
  sim.run_for(2);
  EXPECT_EQ(fired, 1);
}

class NetworkTest : public ::testing::Test {
 protected:
  SimNetwork net;
  HostId h1, h2;
  void SetUp() override {
    h1 = net.add_host(HostProfile{});
    h2 = net.add_host(HostProfile{});
    net.place(NodeId{1}, h1);
    net.place(NodeId{2}, h2);
    net.set_default_latency(300);
  }
};

TEST_F(NetworkTest, TransmitIncludesCpuWireAndLatency) {
  auto t = net.transmit(NodeId{1}, NodeId{2}, 1000, 0);
  ASSERT_TRUE(t.has_value());
  // Arrival = send cpu (50 + 0.02*1000 = 70) + wire (1000 B at 1.25 MB/s =
  // 800 us) + latency 300 = 1170; receive processing books separately.
  EXPECT_EQ(*t, 1170);
  EXPECT_EQ(net.book_receive(NodeId{2}, 1000, *t), 1170 + 70);
}

TEST_F(NetworkTest, ReceiversSerializeInArrivalOrder) {
  // Two messages arriving at overlapping times: the second waits for the
  // first's receive processing, regardless of the booking order.
  const TimePoint d1 = net.book_receive(NodeId{2}, 1000, 5000);
  EXPECT_EQ(d1, 5070);
  const TimePoint d2 = net.book_receive(NodeId{2}, 1000, 5010);
  EXPECT_EQ(d2, 5140);  // queued behind the first
  // An idle gap does not carry over.
  EXPECT_EQ(net.book_receive(NodeId{2}, 1000, 9000), 9070);
}

TEST_F(NetworkTest, SenderCpuSerializesSends) {
  const auto t1 = net.transmit(NodeId{1}, NodeId{2}, 1000, 0);
  const auto t2 = net.transmit(NodeId{1}, NodeId{2}, 1000, 0);
  ASSERT_TRUE(t1 && t2);
  // Second send waits for the first's CPU slot and the shared medium.
  EXPECT_GT(*t2, *t1);
}

TEST_F(NetworkTest, SharedMediumBoundsThroughput) {
  // 100 x 1000-byte messages over a 1.25 MB/s medium need >= 80 ms of wire
  // time regardless of CPU speed.
  net.set_shared_bandwidth(1.25e6);
  TimePoint last = 0;
  for (int i = 0; i < 100; ++i) {
    last = *net.transmit(NodeId{1}, NodeId{2}, 1000, 0);
  }
  EXPECT_GE(last, 80000);
}

TEST_F(NetworkTest, ZeroBandwidthDisablesMedium) {
  net.set_shared_bandwidth(0);
  auto t = net.transmit(NodeId{1}, NodeId{2}, 1000, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 70 + 300);  // no wire serialization term
}

TEST_F(NetworkTest, LoopbackSkipsMediumAndUsesLoopbackLatency) {
  net.place(NodeId{3}, h1);
  net.set_loopback_latency(5);
  auto t = net.transmit(NodeId{1}, NodeId{3}, 1000, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 70 + 5);
}

TEST_F(NetworkTest, PerPairLatencyOverride) {
  net.set_latency(h1, h2, 5000);
  auto t = net.transmit(NodeId{1}, NodeId{2}, 10, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 5000);
}

TEST_F(NetworkTest, CrashedNodeDropsTraffic) {
  net.crash_node(NodeId{2});
  EXPECT_FALSE(net.transmit(NodeId{1}, NodeId{2}, 10, 0).has_value());
  EXPECT_FALSE(net.transmit(NodeId{2}, NodeId{1}, 10, 0).has_value());
  net.restart_node(NodeId{2});
  EXPECT_TRUE(net.transmit(NodeId{1}, NodeId{2}, 10, 0).has_value());
}

TEST_F(NetworkTest, SenderStillPaysCpuForLostSend) {
  net.crash_node(NodeId{2});
  (void)net.transmit(NodeId{1}, NodeId{2}, 100000, 0);
  net.restart_node(NodeId{2});
  // The next send queues behind the wasted CPU time.
  auto t = net.transmit(NodeId{1}, NodeId{2}, 10, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_GT(*t, 2000);
}

TEST_F(NetworkTest, PartitionCutsCrossCellTraffic) {
  net.set_partition_cell(NodeId{1}, 0);
  net.set_partition_cell(NodeId{2}, 1);
  EXPECT_FALSE(net.transmit(NodeId{1}, NodeId{2}, 10, 0).has_value());
  net.heal_partitions();
  EXPECT_TRUE(net.transmit(NodeId{1}, NodeId{2}, 10, 0).has_value());
}

TEST_F(NetworkTest, AccountingCountsDeliveredBytes) {
  (void)net.transmit(NodeId{1}, NodeId{2}, 123, 0);
  net.crash_node(NodeId{2});
  (void)net.transmit(NodeId{1}, NodeId{2}, 999, 0);  // lost: not counted
  EXPECT_EQ(net.bytes_sent(), 123u);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(HostProfile, CalibratedProfilesOrdered) {
  // The NT quad Pentium II outperforms the UltraSparc (Table 1 ordering).
  const auto us = HostProfile::ultrasparc();
  const auto nt = HostProfile::pentium_ii_quad();
  EXPECT_LT(nt.send_cost(1000), us.send_cost(1000));
  EXPECT_LT(nt.recv_cost(10000), us.recv_cost(10000));
}

TEST(SimDisk, WritesSerializeAtDeviceSpeed) {
  SimDisk disk(DiskProfile::nineties_disk());  // 4 MB/s, 500us per op
  const TimePoint t1 = disk.write(4000, 0);    // 500 + 1000us
  EXPECT_EQ(t1, 1500);
  const TimePoint t2 = disk.write(4000, 0);  // queues behind the first
  EXPECT_EQ(t2, 3000);
  EXPECT_EQ(disk.bytes_written(), 8000u);
  EXPECT_EQ(disk.ops(), 2u);
}

TEST(SimDisk, FastRaidIsFaster) {
  SimDisk slow(DiskProfile::nineties_disk());
  SimDisk fast(DiskProfile::fast_raid());
  EXPECT_LT(fast.write(100000, 0), slow.write(100000, 0));
}

TEST(SimDisk, IdleDiskStartsAtNow) {
  SimDisk disk;
  const TimePoint t = disk.write(4000, 10000);
  EXPECT_GT(t, 10000);
}

}  // namespace
}  // namespace corona
