// Tests for the peer-transfer join baseline (paper §2's ISIS-style join,
// implemented as JoinTransferMode::kPeer for the comparative benches).
#include <gtest/gtest.h>

#include "harness.h"

namespace corona {
namespace {

using testing::client_id;
using testing::SingleServerWorld;

const GroupId kG{1};
const ObjectId kObj{1};

ServerConfig peer_cfg(Duration timeout = 500 * kMillisecond) {
  ServerConfig cfg;
  cfg.join_transfer = JoinTransferMode::kPeer;
  cfg.peer_timeout = timeout;
  return cfg;
}

TEST(PeerJoin, HealthyDonorSuppliesState) {
  SingleServerWorld w(2, peer_cfg());
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);  // first member: served by the service (no donor)
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("from-donor"));
  w.settle();

  w.client(1).join(kG);  // fetched from client 0's replica
  w.settle();
  ASSERT_TRUE(w.client(1).is_joined(kG));
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)),
            "from-donor");
  EXPECT_EQ(w.server->stats().peer_transfers, 1u);
  EXPECT_EQ(w.server->stats().peer_timeouts, 0u);
}

TEST(PeerJoin, CrashedDonorCostsTimeoutThenNextDonor) {
  SingleServerWorld w(3, peer_cfg(500 * kMillisecond));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(1).join(kG);  // peer transfer from client 0
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("survives"));
  w.settle();

  // The first donor (lowest id = client 0) dies silently; the join must
  // wait out the failure-detection timeout and retry client 1 (§2: "the
  // time to complete the join reflects the timeout for failure detection
  // and making an additional request to another client").
  w.rt.crash(client_id(0));
  const TimePoint before = w.rt.now();
  w.client(2).join(kG);
  w.rt.run_for(3 * kSecond);
  ASSERT_TRUE(w.client(2).is_joined(kG));
  EXPECT_EQ(to_string(*w.client(2).group_state(kG)->object(kObj)),
            "survives");
  EXPECT_GE(w.server->stats().peer_timeouts, 1u);
  (void)before;
}

TEST(PeerJoin, AllDonorsDeadFallsBackToService) {
  SingleServerWorld w(2, peer_cfg(300 * kMillisecond));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("service-kept"));
  w.settle();
  w.rt.crash(client_id(0));

  w.client(1).join(kG);
  w.rt.run_for(3 * kSecond);
  // The only donor is dead: after the timeout the stateful service answers
  // from its own copy — exactly the capability the paper adds.
  ASSERT_TRUE(w.client(1).is_joined(kG));
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)),
            "service-kept");
  EXPECT_GE(w.server->stats().peer_timeouts, 1u);
  EXPECT_EQ(w.server->stats().peer_transfers, 0u);
}

TEST(PeerJoin, DonorWithoutReplicaAnswersNotFoundAndFailsOver) {
  // Donor joined with TransferPolicySpec::nothing() then never received any
  // delivery for the group?  It still has a replica (possibly empty).  The
  // genuinely-unable case is a donor that already left: simulate by having
  // the donor leave between the join request and the query.  The server
  // skips it via the error reply, without waiting for the timeout.
  SingleServerWorld w(3, peer_cfg(10 * kSecond));  // timeout would be huge
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("x"));
  w.settle();

  // Client 0's replica disappears locally (it leaves) while the server
  // still lists it; its kNotFound reply must fail the transfer over
  // immediately rather than after the 10 s timeout.
  w.client(0).leave(kG);
  // The leave also removes it from membership, so client 1 is the donor:
  w.client(2).join(kG);
  w.settle();
  ASSERT_TRUE(w.client(2).is_joined(kG));
  EXPECT_EQ(to_string(*w.client(2).group_state(kG)->object(kObj)), "x");
}

TEST(PeerJoin, MembershipFinalizedOnlyAfterTransfer) {
  SingleServerWorld w(2, peer_cfg(500 * kMillisecond));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.rt.crash(client_id(0));  // donor dead: transfer will take ~timeout

  w.client(1).join(kG);
  w.rt.run_for(100 * kMillisecond);
  // Mid-transfer: not yet a member.
  EXPECT_FALSE(w.server->group(kG)->is_member(client_id(1)));
  w.rt.run_for(3 * kSecond);
  EXPECT_TRUE(w.server->group(kG)->is_member(client_id(1)));
}

}  // namespace
}  // namespace corona
