// Deterministic fuzz harness for the stream framing layer (net/frame.h).
//
// The FrameDecoder sits on the trust boundary of the TCP transport: it is
// fed raw bytes from the network and must never crash, hang, or buffer
// unboundedly, no matter how the stream is mangled.  Each case here derives
// a mutated stream from a fixed seed — truncation, bit flips, splices of
// two valid streams, corrupted length prefixes, and pure garbage — feeds it
// in randomly-sized chunks, and drives the decoder to quiescence.  The only
// acceptable outcomes per step are kFrame, kNeedMore, or a *sticky*
// kCorrupt; the decoder's buffered tail must stay below the frame ceiling.
//
// The same corpus logic is reusable as a libFuzzer target: see
// fuzz/frame_fuzz.cc (built behind -DCORONA_FUZZ=ON).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "net/frame.h"
#include "serial/message.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace corona::net {
namespace {

// A small but representative valid stream: hello, a few messages (including
// an empty-payload one), liveness probes.
Bytes valid_stream(Rng& rng) {
  Bytes out;
  auto append = [&out](const Bytes& frame) {
    out.insert(out.end(), frame.begin(), frame.end());
  };
  append(encode_hello_frame({NodeId{1}, NodeId{2 + rng.next_below(5)}}));
  const int messages = static_cast<int>(rng.next_range(1, 4));
  for (int i = 0; i < messages; ++i) {
    Message m;
    m.type = MsgType::kBcastUpdate;
    m.group = GroupId{rng.next_below(10)};
    m.object = ObjectId{rng.next_below(10)};
    m.request_id = rng.next_u64();
    m.payload = to_bytes("fuzz-payload");
    append(encode_message_frame(NodeId{100 + rng.next_below(3)}, NodeId{1},
                                m.encode()));
  }
  append(encode_ping_frame());
  append(encode_pong_frame());
  return out;
}

// Drives a decoder over `stream`, split into random chunks, and checks the
// structural contract.  Returns the number of complete frames decoded.
int drive(const Bytes& stream, Rng& rng, std::size_t max_frame_bytes) {
  FrameDecoder dec(max_frame_bytes);
  int frames = 0;
  std::size_t off = 0;
  bool corrupt_seen = false;
  while (off < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(stream.size() - off, rng.next_range(1, 97));
    dec.feed(stream.data() + off, chunk);
    off += chunk;
    for (;;) {
      Frame f;
      const auto r = dec.next(&f);
      if (r == FrameDecoder::Next::kFrame) {
        EXPECT_FALSE(corrupt_seen) << "frame after corruption";
        ++frames;
        continue;
      }
      if (r == FrameDecoder::Next::kCorrupt) {
        EXPECT_TRUE(dec.corrupt());
        corrupt_seen = true;
        // Corruption is terminal: more input must not revive the stream.
        Frame again;
        EXPECT_EQ(dec.next(&again), FrameDecoder::Next::kCorrupt);
      }
      break;
    }
    // The decoder may buffer at most one incomplete frame (plus its length
    // prefix); a garbage length cannot make it hoard the whole stream.
    EXPECT_LE(dec.buffered_bytes(),
              max_frame_bytes + kFrameLengthBytes + 96);
  }
  return frames;
}

constexpr std::size_t kCeiling = 1 << 20;

TEST(FrameFuzz, IntactStreamsDecodeFullyUnderAnyChunking) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const Bytes stream = valid_stream(rng);
    const int frames = drive(stream, rng, kCeiling);
    // hello + >=1 messages + ping + pong.
    EXPECT_GE(frames, 4) << "seed " << seed;
  }
}

TEST(FrameFuzz, TruncatedStreamsNeverCrashOrOverBuffer) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    Bytes stream = valid_stream(rng);
    stream.resize(rng.next_below(stream.size()));
    drive(stream, rng, kCeiling);
  }
}

TEST(FrameFuzz, BitflippedStreamsNeverCrash) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    Bytes stream = valid_stream(rng);
    const int flips = static_cast<int>(rng.next_range(1, 8));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng.next_below(stream.size());
      stream[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    drive(stream, rng, kCeiling);
  }
}

TEST(FrameFuzz, SplicedStreamsNeverCrash) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const Bytes a = valid_stream(rng);
    const Bytes b = valid_stream(rng);
    // Splice a prefix of one stream onto a suffix of another — frame
    // boundaries land mid-frame almost always.
    Bytes stream(a.begin(),
                 a.begin() + static_cast<std::ptrdiff_t>(
                                 rng.next_below(a.size())));
    stream.insert(stream.end(),
                  b.begin() + static_cast<std::ptrdiff_t>(
                                  rng.next_below(b.size())),
                  b.end());
    drive(stream, rng, kCeiling);
  }
}

TEST(FrameFuzz, CorruptLengthPrefixesAreRejectedNotBuffered) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    Bytes stream = valid_stream(rng);
    // Rewrite the first length prefix with a hostile value: zero, huge, or
    // just off-by-some.
    const std::uint32_t hostile =
        rng.next_bool(0.4)
            ? 0xffffffffu
            : static_cast<std::uint32_t>(rng.next_below(1 << 28));
    for (std::size_t i = 0; i < kFrameLengthBytes; ++i) {
      stream[i] = static_cast<std::uint8_t>(hostile >> (8 * i));
    }
    drive(stream, rng, kCeiling);
  }
}

TEST(FrameFuzz, PureGarbageNeverCrashes) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    Bytes stream(rng.next_range(1, 4096));
    for (auto& byte : stream) {
      byte = static_cast<std::uint8_t>(rng.next_below(256));
    }
    drive(stream, rng, kCeiling);
  }
}

TEST(FrameFuzz, DecoderIsDeterministicAcrossChunkings) {
  // The same byte stream must yield the same frame count and the same
  // corrupt verdict no matter how it is chunked.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng gen(seed);
    Bytes stream = valid_stream(gen);
    if (seed % 2 == 0) {
      stream[gen.next_below(stream.size())] ^= 0x40;
    }
    Rng chunks_a(seed * 31 + 1);
    Rng chunks_b(seed * 131 + 7);
    const int a = drive(stream, chunks_a, kCeiling);
    const int b = drive(stream, chunks_b, kCeiling);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

}  // namespace
}  // namespace corona::net
