// Edge cases of the replicated service that the happy-path integration
// tests don't reach: copy release and backup churn, cross-leaf group
// deletion and log reduction, coordinator-with-local-clients operation,
// resend dedup across coordinator changes, and registry growth.
#include <gtest/gtest.h>

#include "harness.h"

namespace corona {
namespace {

using testing::client_id;
using testing::ReplicatedWorld;
using testing::server_id;

const GroupId kG{1};
const ObjectId kObj{1};

TEST(ReplicaEdge, LeafCopyReleasedWhenEnoughCopiesRemain) {
  // Clients on three leaves; when one leaves, its leaf's copy is surplus
  // (two member-driven copies remain) and is released.
  ReplicatedWorld w(4, 3);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  for (int i = 0; i < 3; ++i) w.client(i).join(kG);
  w.settle();
  for (std::size_t leaf = 1; leaf <= 3; ++leaf) {
    EXPECT_TRUE(w.leaf(leaf).holds_copy(kG)) << leaf;
  }
  w.client(0).leave(kG);  // client 0 was on leaf 1
  w.settle();
  w.run_ms(500);
  EXPECT_FALSE(w.leaf(1).holds_copy(kG));
  EXPECT_TRUE(w.leaf(2).holds_copy(kG));
  EXPECT_TRUE(w.leaf(3).holds_copy(kG));
}

TEST(ReplicaEdge, LastLeafKeptAsBackupWhenMembersConcentrate) {
  // Two members on two leaves; one leaves -> only one supporting leaf
  // remains, so the departing member's leaf stays as the hot standby.
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(1).leave(kG);  // leaf 2 loses its only member
  w.settle();
  w.run_ms(500);
  // Both leaves still hold copies: leaf 1 supports client 0, leaf 2 is the
  // standby (min_copies = 2 and there is no third leaf to recruit).
  EXPECT_TRUE(w.leaf(1).holds_copy(kG));
  EXPECT_TRUE(w.leaf(2).holds_copy(kG));
  EXPECT_GE(w.coordinator().coord_holders(kG).size(), 2u);
}

TEST(ReplicaEdge, DeleteGroupPropagatesToAllLeaves) {
  int deleted_notices = 0;
  CoronaClient::Callbacks cb;
  cb.on_group_deleted = [&](GroupId) { ++deleted_notices; };
  ReplicatedWorld w(3, 2, ReplicaConfig{}, cb);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).delete_group(kG);
  w.settle();
  EXPECT_EQ(w.coordinator().coord_group_count(), 0u);
  EXPECT_FALSE(w.leaf(1).holds_copy(kG));
  EXPECT_FALSE(w.leaf(2).holds_copy(kG));
  EXPECT_GE(deleted_notices, 1);  // the non-deleting member heard about it
  EXPECT_FALSE(w.client(1).is_joined(kG));
}

TEST(ReplicaEdge, LogReductionPropagatesToLeafCopies) {
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  for (int i = 0; i < 10; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("u"));
  }
  w.settle();
  ASSERT_EQ(w.leaf(1).local_state(kG)->history_size(), 10u);
  ASSERT_EQ(w.leaf(2).local_state(kG)->history_size(), 10u);

  w.client(1).reduce_log(kG);
  w.settle();
  EXPECT_EQ(w.coordinator().coord_state(kG)->history_size(), 0u);
  EXPECT_EQ(w.leaf(1).local_state(kG)->history_size(), 0u);
  EXPECT_EQ(w.leaf(2).local_state(kG)->history_size(), 0u);
  // Consolidated state intact everywhere.
  EXPECT_EQ(to_string(*w.leaf(2).local_state(kG)->object(kObj)),
            "uuuuuuuuuu");
}

TEST(ReplicaEdge, SingleServerReplicatedModeServesClientsDirectly) {
  // servers = 1: the coordinator doubles as the (only) leaf.
  ReplicatedWorld w(1, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("solo"));
  w.settle();
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)), "solo");
  EXPECT_TRUE(w.coordinator().is_coordinator());
}

TEST(ReplicaEdge, PersistentGroupOutlivesAllMembersAcrossLeaves) {
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", /*persistent=*/true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("kept"));
  w.settle();
  w.client(0).leave(kG);
  w.client(1).leave(kG);
  w.settle();
  ASSERT_NE(w.coordinator().coord_state(kG), nullptr);
  // A later join through any leaf recovers the state.
  w.client(1).join(kG);
  w.settle();
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)), "kept");
}

TEST(ReplicaEdge, TransientGroupDiesAtNullMembershipAcrossLeaves) {
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", /*persistent=*/false);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).leave(kG);
  w.client(1).leave(kG);
  w.settle();
  EXPECT_EQ(w.coordinator().coord_group_count(), 0u);
  EXPECT_FALSE(w.leaf(1).holds_copy(kG));
  EXPECT_FALSE(w.leaf(2).holds_copy(kG));
}

TEST(ReplicaEdge, ResendDedupSurvivesCoordinatorChange) {
  // Regression: a promoted coordinator seeds its dedup set from the
  // retained history, so post-failover resends of already-sequenced
  // updates are not applied twice.
  ReplicatedWorld w(4, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("once;"));
  w.settle();

  w.rt.crash(w.server_ids[0]);
  w.run_ms(6000);
  ASSERT_TRUE(w.leaf(1).is_coordinator());

  w.client(0).resend_recent(kG);
  w.run_ms(1000);
  EXPECT_EQ(to_string(*w.coordinator().coord_state(kG)->object(kObj)),
            "once;");  // a second "once;" would mean double-apply
  (void)w;
}

TEST(ReplicaEdge, RestartedServerRejoinsRegistry) {
  ReplicatedWorld w(3, 0);
  EXPECT_TRUE(w.coordinator().registry().contains(w.server_ids[2]));
  w.rt.crash(w.server_ids[2]);
  w.run_ms(3000);
  EXPECT_FALSE(w.coordinator().registry().contains(w.server_ids[2]));

  // A fresh server process comes back under the same id and re-registers.
  auto fresh = std::make_unique<ReplicaServer>(ReplicaConfig{}, w.server_ids);
  w.rt.restart(w.server_ids[2], fresh.get());
  w.run_ms(2000);
  EXPECT_TRUE(w.coordinator().registry().contains(w.server_ids[2]));
  EXPECT_EQ(fresh->coordinator(), w.server_ids[0]);
  w.servers[2] = std::move(fresh);
}

TEST(ReplicaEdge, GetMembershipServedFromLeafView) {
  std::vector<MemberInfo> seen;
  CoronaClient::Callbacks cb;
  cb.on_membership_info = [&](GroupId, const std::vector<MemberInfo>& m) {
    seen = m;
  };
  ReplicatedWorld w(3, 2, ReplicaConfig{}, cb);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).get_membership(kG);
  w.settle();
  // The leaf's global view includes the member on the OTHER leaf.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].node, client_id(0));
  EXPECT_EQ(seen[1].node, client_id(1));
}

TEST(ReplicaEdge, JoinNonexistentGroupRejectedThroughLeaf) {
  std::vector<Status> join_status;
  CoronaClient::Callbacks cb;
  cb.on_joined = [&](GroupId, Status s) { join_status.push_back(s); };
  ReplicatedWorld w(3, 1, ReplicaConfig{}, cb);
  w.client(0).join(GroupId{99});
  w.settle();
  ASSERT_EQ(join_status.size(), 1u);
  EXPECT_EQ(join_status[0].code, Errc::kNotFound);
}

TEST(ReplicaEdge, ObserverRoleVisibleAcrossLeaves) {
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG, TransferPolicySpec::full(), MemberRole::kPrincipal);
  w.client(1).join(kG, TransferPolicySpec::full(), MemberRole::kObserver);
  w.settle();
  const auto members = w.client(0).known_members(kG);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[1].node, client_id(1));
  EXPECT_EQ(members[1].role, MemberRole::kObserver);
}

}  // namespace
}  // namespace corona
