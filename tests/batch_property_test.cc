// Batching equivalence (ISSUE: proven equivalent by tests).
//
// The batched fan-out and group-commit paths must be *observationally
// equivalent* to per-message delivery: same workload, same seed, same
// virtual send instants — then batch 1, 8 and 64 must produce byte-identical
// per-client delivery streams (every UpdateRecord field, timestamps
// included: records are stamped at sequencer arrival, which batching does
// not move) and identical final SharedState content (snapshot + retained
// history) at every replica.
//
// The workload is open-loop: send instants are scheduled by the test, never
// derived from deliveries, so the client -> server half of every run is
// identical by construction and any divergence is the batching layer's
// fault.  Covered: single server (async and sync/group-commit flush) and
// the replicated star (coordinator sequencing + leaf fan-out batching).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "harness.h"
#include "util/rng.h"

namespace corona {
namespace {

using testing::client_id;

const GroupId kG{1};

// One scripted open-loop workload, pre-generated once per seed so every
// batch setting replays the exact same (client, object, payload, instant)
// sequence.
struct ScriptedOp {
  std::size_t client;
  bool is_state;
  ObjectId obj;
  Bytes payload;
  bool settle_after;  // advance virtual time between bursts
};

std::vector<ScriptedOp> make_script(std::uint64_t seed, std::size_t clients,
                                    std::size_t ops) {
  Rng rng(seed * 0x9e3779b9ull + 17);
  std::vector<ScriptedOp> script;
  script.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    ScriptedOp op;
    op.client = rng.next_below(clients);
    op.is_state = rng.next_bool(0.2);
    op.obj = ObjectId{1 + rng.next_below(5)};
    op.payload = filler_bytes(1 + rng.next_below(48),
                              static_cast<std::uint8_t>(rng.next_u64()));
    op.settle_after = rng.next_bool(0.25);
    script.push_back(std::move(op));
  }
  return script;
}

// Everything observable about one run: per-client delivery journals plus
// the authority's final consolidated state and retained history.
struct RunOutput {
  std::map<std::size_t, std::vector<UpdateRecord>> journals;
  std::vector<StateEntry> snapshot;
  std::vector<UpdateRecord> history;
};

void expect_identical(const RunOutput& base, const RunOutput& got,
                      std::size_t batch) {
  ASSERT_EQ(base.journals.size(), got.journals.size()) << "batch " << batch;
  for (const auto& [idx, ref] : base.journals) {
    const auto it = got.journals.find(idx);
    ASSERT_NE(it, got.journals.end()) << "batch " << batch;
    ASSERT_EQ(it->second.size(), ref.size())
        << "client " << idx << " delivery count, batch " << batch;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(it->second[i], ref[i])
          << "client " << idx << " diverges at delivery " << i << ", batch "
          << batch << " (seq " << ref[i].seq << " vs " << it->second[i].seq
          << ")";
    }
  }
  EXPECT_EQ(got.snapshot, base.snapshot) << "final state, batch " << batch;
  EXPECT_EQ(got.history, base.history) << "retained history, batch " << batch;
}

// ---------------------------------------------------------------------------
// Single server.
// ---------------------------------------------------------------------------

RunOutput run_single(const std::vector<ScriptedOp>& script,
                     std::size_t n_clients, std::size_t batch,
                     FlushPolicy flush) {
  RunOutput out;
  SimRuntime rt;
  GroupStore store;
  ServerConfig cfg;
  cfg.flush = flush;
  cfg.batch_max_msgs = batch;
  cfg.batch_max_delay = 3 * kMillisecond;
  CoronaServer server(cfg, &store);
  rt.add_node(testing::kServerId, &server,
              rt.network().add_host(HostProfile{}));
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < n_clients; ++i) {
    CoronaClient::Callbacks cb;
    cb.on_deliver = [&out, i](GroupId, const UpdateRecord& rec) {
      out.journals[i].push_back(rec);
    };
    clients.push_back(std::make_unique<CoronaClient>(testing::kServerId, cb));
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(100 * kMillisecond);
  clients[0]->create_group(kG, "batch-eq", true);
  rt.run_for(100 * kMillisecond);
  for (auto& c : clients) c->join(kG);
  rt.run_for(200 * kMillisecond);

  for (const ScriptedOp& op : script) {
    if (op.is_state) {
      clients[op.client]->bcast_state(kG, op.obj, op.payload);
    } else {
      clients[op.client]->bcast_update(kG, op.obj, op.payload);
    }
    if (op.settle_after) rt.run_for(20 * kMillisecond);
  }
  rt.run_for(2 * kSecond);  // drain: batch timers, sync commits, fan-out

  out.snapshot = server.group(kG)->state().snapshot();
  out.history = server.group(kG)->state().history();
  return out;
}

struct BatchEquivalenceParams {
  std::uint64_t seed;
  std::size_t clients;
  std::size_t ops;
  FlushPolicy flush;
};

class SingleServerBatchEquivalence
    : public ::testing::TestWithParam<BatchEquivalenceParams> {};

TEST_P(SingleServerBatchEquivalence, Batch1Vs8Vs64ByteIdentical) {
  const auto p = GetParam();
  const auto script = make_script(p.seed, p.clients, p.ops);
  const RunOutput base = run_single(script, p.clients, 1, p.flush);
  ASSERT_FALSE(base.journals.empty());
  ASSERT_FALSE(base.journals.begin()->second.empty());
  for (const std::size_t batch : {std::size_t{8}, std::size_t{64}}) {
    const RunOutput got = run_single(script, p.clients, batch, p.flush);
    expect_identical(base, got, batch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Async, SingleServerBatchEquivalence,
    ::testing::Values(BatchEquivalenceParams{1, 3, 120, FlushPolicy::kAsync},
                      BatchEquivalenceParams{2, 5, 200, FlushPolicy::kAsync},
                      BatchEquivalenceParams{3, 2, 80, FlushPolicy::kAsync}));

// Group commit: under synchronous flushing a batch rides ONE device write;
// the commit boundary must not change any delivered byte either.
INSTANTIATE_TEST_SUITE_P(
    SyncGroupCommit, SingleServerBatchEquivalence,
    ::testing::Values(BatchEquivalenceParams{4, 3, 120, FlushPolicy::kSync},
                      BatchEquivalenceParams{5, 4, 160, FlushPolicy::kSync}));

// ---------------------------------------------------------------------------
// Replicated star: the coordinator's sequenced-multicast fan-out to leaves
// and each leaf's fan-out to clients both batch; sequencing itself stays
// per-message, so the streams must not move by a byte.
// ---------------------------------------------------------------------------

RunOutput run_replicated(const std::vector<ScriptedOp>& script,
                         std::size_t n_clients, std::size_t batch) {
  RunOutput out;
  SimRuntime rt;
  ReplicaConfig cfg;
  cfg.batch_max_msgs = batch;
  cfg.batch_max_delay = 3 * kMillisecond;
  constexpr std::size_t kServers = 3;  // coordinator + 2 leaves
  std::vector<NodeId> server_ids;
  for (std::size_t i = 0; i < kServers; ++i) {
    server_ids.push_back(testing::server_id(i));
  }
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (std::size_t i = 0; i < kServers; ++i) {
    servers.push_back(
        std::make_unique<ReplicaServer>(cfg, server_ids, nullptr));
    rt.add_node(server_ids[i], servers[i].get(),
                rt.network().add_host(HostProfile{}));
  }
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < n_clients; ++i) {
    CoronaClient::Callbacks cb;
    cb.on_deliver = [&out, i](GroupId, const UpdateRecord& rec) {
      out.journals[i].push_back(rec);
    };
    const std::size_t leaf = 1 + (i % (kServers - 1));
    clients.push_back(
        std::make_unique<CoronaClient>(server_ids[leaf], cb));
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(200 * kMillisecond);
  clients[0]->create_group(kG, "batch-eq-rep", true);
  rt.run_for(200 * kMillisecond);
  for (auto& c : clients) c->join(kG);
  rt.run_for(400 * kMillisecond);

  for (const ScriptedOp& op : script) {
    if (op.is_state) {
      clients[op.client]->bcast_state(kG, op.obj, op.payload);
    } else {
      clients[op.client]->bcast_update(kG, op.obj, op.payload);
    }
    if (op.settle_after) rt.run_for(20 * kMillisecond);
  }
  rt.run_for(3 * kSecond);

  const SharedState* coord = servers[0]->coord_state(kG);
  EXPECT_NE(coord, nullptr);
  if (coord != nullptr) {
    out.snapshot = coord->snapshot();
    out.history = coord->history();
    // Every leaf copy must match the coordinator byte-for-byte too.
    for (std::size_t i = 1; i < kServers; ++i) {
      const SharedState* ls = servers[i]->local_state(kG);
      EXPECT_NE(ls, nullptr) << "leaf " << i;
      if (ls != nullptr) {
        EXPECT_EQ(ls->snapshot(), out.snapshot) << "leaf " << i;
      }
    }
  }
  return out;
}

class ReplicatedBatchEquivalence
    : public ::testing::TestWithParam<BatchEquivalenceParams> {};

TEST_P(ReplicatedBatchEquivalence, Batch1Vs8Vs64ByteIdentical) {
  const auto p = GetParam();
  const auto script = make_script(p.seed, p.clients, p.ops);
  const RunOutput base = run_replicated(script, p.clients, 1);
  ASSERT_FALSE(base.journals.empty());
  ASSERT_FALSE(base.journals.begin()->second.empty());
  for (const std::size_t batch : {std::size_t{8}, std::size_t{64}}) {
    const RunOutput got = run_replicated(script, p.clients, batch);
    expect_identical(base, got, batch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Star, ReplicatedBatchEquivalence,
    ::testing::Values(
        BatchEquivalenceParams{11, 4, 100, FlushPolicy::kAsync},
        BatchEquivalenceParams{12, 6, 150, FlushPolicy::kAsync}));

// Degenerate setting: batch_max_msgs = 1 with a delay bound configured is
// exactly the unbatched path — no timers armed, no frames coalesced.
TEST(BatchDegenerate, BatchOneLeavesNoBatchingFootprint) {
  const auto script = make_script(21, 3, 60);
  SimRuntime rt;
  GroupStore store;
  ServerConfig cfg;
  cfg.batch_max_msgs = 1;
  cfg.batch_max_delay = 3 * kMillisecond;
  CoronaServer server(cfg, &store);
  rt.add_node(testing::kServerId, &server,
              rt.network().add_host(HostProfile{}));
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<CoronaClient>(testing::kServerId));
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(100 * kMillisecond);
  clients[0]->create_group(kG, "degenerate", true);
  rt.run_for(100 * kMillisecond);
  for (auto& c : clients) c->join(kG);
  rt.run_for(200 * kMillisecond);
  for (const ScriptedOp& op : script) {
    clients[op.client]->bcast_update(kG, op.obj, op.payload);
    if (op.settle_after) rt.run_for(20 * kMillisecond);
  }
  rt.run_for(1 * kSecond);

  EXPECT_EQ(server.stats().batches_sequenced, 0u);
  EXPECT_EQ(server.stats().batched_messages, 0u);
  EXPECT_EQ(server.stats().batch_frames_sent, 0u);
  EXPECT_EQ(rt.network().batches_sent(), 0u);
  EXPECT_EQ(server.stats().messages_sequenced, script.size());
}

// A threshold drain must CANCEL the armed delay timer, not merely beat it.
// If the cancel is skipped (the timer handle leaks), the stale timer stays
// scheduled and the next message enqueued after the drain rides it out the
// door early — before its own batch_max_delay has elapsed — and, because
// batch_timer_ still looks armed, no fresh timer is ever set for it.  The
// observable contract: a solo message that never reaches the threshold is
// delivered no earlier than its enqueue time plus the full delay bound.
TEST(BatchTimerDiscipline, ThresholdDrainCancelsDelayTimer) {
  SimRuntime rt;
  GroupStore store;
  ServerConfig cfg;
  cfg.batch_max_msgs = 3;
  cfg.batch_max_delay = 500 * kMillisecond;
  CoronaServer server(cfg, &store);
  rt.add_node(testing::kServerId, &server,
              rt.network().add_host(HostProfile{}));
  std::vector<TimePoint> delivered_at;
  CoronaClient::Callbacks cb;
  cb.on_deliver = [&rt, &delivered_at](GroupId, const UpdateRecord&) {
    delivered_at.push_back(rt.now());
  };
  CoronaClient client(testing::kServerId, cb);
  rt.add_node(client_id(0), &client, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(100 * kMillisecond);
  client.create_group(kG, "timer-discipline", true);
  rt.run_for(100 * kMillisecond);
  client.join(kG);
  rt.run_for(200 * kMillisecond);

  // Burst to exactly the threshold: the delay timer armed by the first
  // message must be canceled by the drain.
  for (int i = 0; i < 3; ++i) {
    client.bcast_update(kG, ObjectId{1}, to_bytes("burst"));
  }
  rt.run_for(100 * kMillisecond);
  ASSERT_EQ(delivered_at.size(), 3u) << "threshold drain did not deliver";

  // A single follow-up, sent well inside what the stale timer's window
  // would be.  Correct code arms a fresh timer at its arrival; leaked-timer
  // code ships it when the stale timer (armed at the burst) fires.
  const TimePoint sent_at = rt.now();
  client.bcast_update(kG, ObjectId{1}, to_bytes("straggler"));
  rt.run_for(450 * kMillisecond);  // stale timer would have fired by now
  EXPECT_EQ(delivered_at.size(), 3u)
      << "straggler shipped early on a timer armed before it was enqueued";

  rt.run_for(300 * kMillisecond);
  ASSERT_EQ(delivered_at.size(), 4u) << "straggler never delivered";
  EXPECT_GE(delivered_at.back(), sent_at + cfg.batch_max_delay)
      << "solo message delivered before its own batch_max_delay elapsed";
}

}  // namespace
}  // namespace corona
