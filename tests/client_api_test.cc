// Edge cases of the client-facing API surface that the protocol-flow tests
// don't pin down: reply routing, duplicate operations, error paths, local
// replica bookkeeping.
#include <gtest/gtest.h>

#include "harness.h"

namespace corona {
namespace {

using testing::client_id;
using testing::SingleServerWorld;

const GroupId kG{1};
const ObjectId kObj{1};

struct ReplyRecorder {
  std::vector<std::pair<RequestId, Status>> replies;
  std::vector<std::pair<GroupId, Status>> joins;

  CoronaClient::Callbacks callbacks() {
    CoronaClient::Callbacks cb;
    cb.on_reply = [this](RequestId rid, Status s) {
      replies.emplace_back(rid, std::move(s));
    };
    cb.on_joined = [this](GroupId g, Status s) {
      joins.emplace_back(g, std::move(s));
    };
    return cb;
  }

  const Status* status_for(RequestId rid) const {
    for (const auto& [r, s] : replies) {
      if (r == rid) return &s;
    }
    return nullptr;
  }
};

TEST(ClientApi, RequestIdsAreMonotonic) {
  SingleServerWorld w(1);
  const RequestId a = w.client(0).create_group(kG, "g", false);
  const RequestId b = w.client(0).join(kG);
  const RequestId c = w.client(0).bcast_update(kG, kObj, to_bytes("x"));
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(ClientApi, DuplicateJoinReportsAlreadyExists) {
  ReplyRecorder rec;
  SingleServerWorld w(1, ServerConfig{}, rec.callbacks());
  w.client(0).create_group(kG, "g", false);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  ASSERT_EQ(rec.joins.size(), 2u);
  EXPECT_TRUE(rec.joins[0].second.is_ok());
  EXPECT_EQ(rec.joins[1].second.code, Errc::kAlreadyExists);
  // The first join's replica survives the rejected duplicate.
  EXPECT_TRUE(w.client(0).is_joined(kG));
}

TEST(ClientApi, LeaveWithoutJoinReportsNotMember) {
  ReplyRecorder rec;
  SingleServerWorld w(1, ServerConfig{}, rec.callbacks());
  w.client(0).create_group(kG, "g", false);
  w.settle();
  const RequestId rid = w.client(0).leave(kG);
  w.settle();
  const Status* s = rec.status_for(rid);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->code, Errc::kNotMember);
}

TEST(ClientApi, UnlockWithoutHoldingReportsError) {
  ReplyRecorder rec;
  SingleServerWorld w(1, ServerConfig{}, rec.callbacks());
  w.client(0).create_group(kG, "g", false);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  const RequestId rid = w.client(0).unlock(kG, kObj);
  w.settle();
  const Status* s = rec.status_for(rid);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->code, Errc::kNotFound);
}

TEST(ClientApi, ReduceLogConfirmedViaReplyCallback) {
  ReplyRecorder rec;
  SingleServerWorld w(1, ServerConfig{}, rec.callbacks());
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("x"));
  w.settle();
  const RequestId rid = w.client(0).reduce_log(kG);
  w.settle();
  const Status* s = rec.status_for(rid);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->is_ok());
}

TEST(ClientApi, LeaveClearsLocalReplica) {
  SingleServerWorld w(1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("x"));
  w.settle();
  ASSERT_NE(w.client(0).group_state(kG), nullptr);
  w.client(0).leave(kG);
  EXPECT_EQ(w.client(0).group_state(kG), nullptr);
  EXPECT_FALSE(w.client(0).is_joined(kG));
}

TEST(ClientApi, StaleDeliveryAfterLeaveIgnored) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  // Client 1 leaves while a multicast is in flight toward it.
  w.client(0).bcast_update(kG, kObj, to_bytes("in-flight"));
  w.client(1).leave(kG);
  w.settle();
  EXPECT_EQ(w.client(1).group_state(kG), nullptr);  // no resurrection
}

TEST(ClientApi, ExpectedSeqTracksDeliveries) {
  SingleServerWorld w(1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  EXPECT_EQ(w.client(0).expected_seq(kG), 1u);
  w.client(0).bcast_update(kG, kObj, to_bytes("x"));
  w.client(0).bcast_update(kG, kObj, to_bytes("y"));
  w.settle();
  EXPECT_EQ(w.client(0).expected_seq(kG), 3u);
  EXPECT_EQ(w.client(0).deliveries_received(), 2u);
}

TEST(ClientApi, KnownMembersTracksNoticesAndQueries) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);  // subscribes to notices by default
  w.settle();
  EXPECT_EQ(w.client(0).known_members(kG).size(), 1u);
  w.client(1).join(kG);
  w.settle();
  EXPECT_EQ(w.client(0).known_members(kG).size(), 2u);
  w.client(1).leave(kG);
  w.settle();
  EXPECT_EQ(w.client(0).known_members(kG).size(), 1u);
}

TEST(ClientApi, ResendBufferIsBounded) {
  CoronaClient::Config cfg;
  cfg.resend_buffer = 4;
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(testing::kServerId, &server,
              rt.network().add_host(HostProfile{}));
  CoronaClient c(testing::kServerId, {}, cfg);
  rt.add_node(client_id(0), &c, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);
  c.create_group(kG, "g", true);
  rt.run_for(50 * kMillisecond);
  c.join(kG);
  rt.run_for(50 * kMillisecond);
  for (int i = 0; i < 20; ++i) {
    c.bcast_update(kG, kObj, to_bytes(std::to_string(i) + ";"));
  }
  rt.run_for(500 * kMillisecond);

  // Wipe the group server-side and replay only the bounded buffer.
  GroupStore store2;
  // (simplest: crash/restart with an empty store to observe the resend set)
  rt.crash(testing::kServerId);
  CoronaServer fresh(ServerConfig{}, &store2);
  rt.restart(testing::kServerId, &fresh);
  rt.run_for(200 * kMillisecond);
  c.create_group(kG, "g", true);
  rt.run_for(100 * kMillisecond);
  c.join(kG);
  rt.run_for(100 * kMillisecond);
  c.resend_recent(kG);
  rt.run_for(500 * kMillisecond);
  ASSERT_TRUE(fresh.has_group(kG));
  // Only the last 4 sends were retained and replayed.
  EXPECT_EQ(to_string(*fresh.group(kG)->state().object(kObj)),
            "16;17;18;19;");
}

TEST(ClientApi, SenderExclusiveStillUpdatesOwnReplicaViaNoDelivery) {
  // Sender-exclusive means the sender does NOT get the delivery, so its own
  // replica intentionally lags until the next inclusive message arrives —
  // the application chose not to be told.  Verify the lag and the catch-up.
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("a"), /*sender_inclusive=*/false);
  w.settle();
  EXPECT_FALSE(w.client(0).group_state(kG)->has_object(kObj));
  EXPECT_TRUE(w.client(1).group_state(kG)->has_object(kObj));
  // The next inclusive delivery exposes the gap; retransmission catches the
  // sender's replica up to the full stream.
  w.client(0).bcast_update(kG, kObj, to_bytes("b"), /*sender_inclusive=*/true);
  w.settle();
  EXPECT_EQ(to_string(*w.client(0).group_state(kG)->object(kObj)), "ab");
}

}  // namespace
}  // namespace corona
