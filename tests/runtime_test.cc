// Tests for the two execution engines: deterministic SimRuntime and the
// concurrent ThreadRuntime.  The same PingPong nodes run under both.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/sim_runtime.h"
#include "runtime/thread_runtime.h"

namespace corona {
namespace {

// Replies to every kDeliver with a kDeliver carrying seq+1, until `limit`.
class PingPong : public Node {
 public:
  PingPong(NodeId peer, SeqNo limit, bool initiator)
      : peer_(peer), limit_(limit), initiator_(initiator) {}

  void on_start() override {
    if (initiator_) {
      Message m;
      m.type = MsgType::kDeliver;
      m.seq = 1;
      send(peer_, m);
    }
  }

  void on_message(NodeId from, const Message& m) override {
    (void)from;
    last_seen_ = m.seq;
    if (m.seq < limit_) {
      Message reply = m;
      reply.seq = m.seq + 1;
      send(peer_, reply);
    }
  }

  SeqNo last_seen() const { return last_seen_; }

 private:
  NodeId peer_;
  SeqNo limit_;
  bool initiator_;
  std::atomic<SeqNo> last_seen_{0};
};

TEST(SimRuntime, PingPongRuns) {
  SimRuntime rt;
  const HostId h1 = rt.network().add_host(HostProfile{});
  const HostId h2 = rt.network().add_host(HostProfile{});
  PingPong a(NodeId{2}, 10, true);
  PingPong b(NodeId{1}, 10, false);
  rt.add_node(NodeId{1}, &a, h1);
  rt.add_node(NodeId{2}, &b, h2);
  rt.start();
  rt.run_until_idle();
  EXPECT_EQ(a.last_seen(), 10u);
  EXPECT_GT(rt.now(), 0);
}

TEST(SimRuntime, VirtualTimeAdvancesWithLatency) {
  SimRuntime rt;
  const HostId h1 = rt.network().add_host(HostProfile{});
  const HostId h2 = rt.network().add_host(HostProfile{});
  rt.network().set_default_latency(10 * kMillisecond);
  PingPong a(NodeId{2}, 4, true);
  PingPong b(NodeId{1}, 4, false);
  rt.add_node(NodeId{1}, &a, h1);
  rt.add_node(NodeId{2}, &b, h2);
  rt.start();
  rt.run_until_idle();
  EXPECT_GE(rt.now(), 4 * 10 * kMillisecond);
}

class TimerNode : public Node {
 public:
  std::vector<std::uint64_t> fired;
  TimerHandle pending = 0;

  void on_start() override {
    set_timer(100, 1);
    set_timer(50, 2);
    pending = set_timer(200, 3);
  }
  void on_message(NodeId, const Message&) override {}
  void on_timer(std::uint64_t tag) override {
    fired.push_back(tag);
    if (tag == 2) cancel_timer(pending);  // cancel tag 3 before it fires
  }
};

TEST(SimRuntime, TimersFireInOrderAndCancel) {
  SimRuntime rt;
  const HostId h = rt.network().add_host(HostProfile{});
  TimerNode n;
  rt.add_node(NodeId{1}, &n, h);
  rt.start();
  rt.run_until_idle();
  EXPECT_EQ(n.fired, (std::vector<std::uint64_t>{2, 1}));
}

class Counter : public Node {
 public:
  int received = 0;
  void on_message(NodeId, const Message&) override { ++received; }
};

TEST(SimRuntime, CrashDropsDeliveryAndTimers) {
  SimRuntime rt;
  const HostId h1 = rt.network().add_host(HostProfile{});
  const HostId h2 = rt.network().add_host(HostProfile{});
  Counter a, b;
  rt.add_node(NodeId{1}, &a, h1);
  rt.add_node(NodeId{2}, &b, h2);
  rt.start();
  rt.run_until_idle();
  Message m;
  m.type = MsgType::kDeliver;
  rt.send(NodeId{1}, NodeId{2}, m);  // in flight...
  rt.crash(NodeId{2});               // ...crashes before delivery
  rt.run_until_idle();
  EXPECT_EQ(b.received, 0);
}

TEST(SimRuntime, RestartDeliversToFreshIncarnation) {
  SimRuntime rt;
  const HostId h1 = rt.network().add_host(HostProfile{});
  const HostId h2 = rt.network().add_host(HostProfile{});
  Counter a, b1, b2;
  rt.add_node(NodeId{1}, &a, h1);
  rt.add_node(NodeId{2}, &b1, h2);
  rt.start();
  rt.run_until_idle();
  rt.crash(NodeId{2});
  rt.restart(NodeId{2}, &b2);
  rt.run_until_idle();
  Message m;
  m.type = MsgType::kDeliver;
  rt.send(NodeId{1}, NodeId{2}, m);
  rt.run_until_idle();
  EXPECT_EQ(b1.received, 0);
  EXPECT_EQ(b2.received, 1);
}

TEST(SimRuntime, ChargeCpuDelaysSubsequentSends) {
  SimRuntime rt;
  const HostId h1 = rt.network().add_host(HostProfile{});
  const HostId h2 = rt.network().add_host(HostProfile{});
  rt.network().set_shared_bandwidth(0);
  Counter a, b;
  rt.add_node(NodeId{1}, &a, h1);
  rt.add_node(NodeId{2}, &b, h2);
  rt.start();
  rt.run_until_idle();
  Message m;
  m.type = MsgType::kDeliver;
  rt.send(NodeId{1}, NodeId{2}, m);
  rt.run_until_idle();
  const TimePoint without_charge = rt.now();
  rt.charge_cpu(NodeId{1}, 50 * kMillisecond);
  rt.send(NodeId{1}, NodeId{2}, m);
  rt.run_until_idle();
  EXPECT_GE(rt.now() - without_charge, 50 * kMillisecond);
}

TEST(SimRuntime, DiskWritesSerialize) {
  SimRuntime rt;
  const HostId h = rt.network().add_host(HostProfile{});
  Counter a;
  rt.add_node(NodeId{1}, &a, h);
  rt.set_disk(NodeId{1}, DiskProfile::nineties_disk());
  const TimePoint t1 = rt.disk_write(NodeId{1}, 4000);
  const TimePoint t2 = rt.disk_write(NodeId{1}, 4000);
  EXPECT_GT(t2, t1);
  ASSERT_NE(rt.disk_of(NodeId{1}), nullptr);
  EXPECT_EQ(rt.disk_of(NodeId{1})->bytes_written(), 8000u);
}

// ---------------------------------------------------------------------------
// ThreadRuntime: the same protocol code under real threads.
// ---------------------------------------------------------------------------

TEST(ThreadRuntime, PingPongRuns) {
  ThreadRuntime rt;
  PingPong a(NodeId{2}, 50, true);
  PingPong b(NodeId{1}, 50, false);
  rt.add_node(NodeId{1}, &a);
  rt.add_node(NodeId{2}, &b);
  rt.start();
  ASSERT_TRUE(rt.wait_quiescent(5 * kSecond));
  rt.stop();
  EXPECT_EQ(a.last_seen(), 50u);
}

class ThreadTimerNode : public Node {
 public:
  std::atomic<int> fired{0};
  void on_start() override { set_timer(10 * kMillisecond, 1); }
  void on_message(NodeId, const Message&) override {}
  void on_timer(std::uint64_t) override { fired.fetch_add(1); }
};

TEST(ThreadRuntime, TimersFire) {
  ThreadRuntime rt;
  ThreadTimerNode n;
  rt.add_node(NodeId{1}, &n);
  rt.start();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (n.fired.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.stop();
  EXPECT_EQ(n.fired.load(), 1);
}

TEST(ThreadRuntime, CrashSuppressesDelivery) {
  ThreadRuntime rt;
  Counter a, b;
  rt.add_node(NodeId{1}, &a);
  rt.add_node(NodeId{2}, &b);
  rt.crash(NodeId{2});
  rt.start();
  Message m;
  m.type = MsgType::kDeliver;
  rt.send(NodeId{1}, NodeId{2}, m);
  rt.wait_quiescent(1 * kSecond);
  rt.stop();
  EXPECT_EQ(b.received, 0);
}

TEST(ThreadRuntime, RestoreLiftsCrashSuppression) {
  // crash() must drop traffic in both directions; restore() must undo it
  // completely, including for nodes crashed more than once.
  ThreadRuntime rt;
  Counter a, b;
  rt.add_node(NodeId{1}, &a);
  rt.add_node(NodeId{2}, &b);
  rt.start();
  Message m;
  m.type = MsgType::kDeliver;

  rt.crash(NodeId{2});
  rt.crash(NodeId{2});  // double-crash must not confuse bookkeeping
  rt.send(NodeId{1}, NodeId{2}, m);  // dropped: receiver crashed
  rt.send(NodeId{2}, NodeId{1}, m);  // dropped: sender crashed
  ASSERT_TRUE(rt.wait_quiescent(1 * kSecond));

  rt.restore(NodeId{2});
  rt.send(NodeId{1}, NodeId{2}, m);
  rt.send(NodeId{2}, NodeId{1}, m);
  ASSERT_TRUE(rt.wait_quiescent(1 * kSecond));
  rt.stop();
  EXPECT_EQ(a.received, 1);
  EXPECT_EQ(b.received, 1);
}

TEST(ThreadRuntime, ManyNodesManyMessages) {
  // 8 nodes all ping node 1; checks mailbox thread-safety under load.
  ThreadRuntime rt;
  Counter sink;
  std::vector<std::unique_ptr<PingPong>> sources;
  rt.add_node(NodeId{1}, &sink);
  for (std::uint64_t i = 2; i <= 9; ++i) {
    sources.push_back(std::make_unique<PingPong>(NodeId{1}, 0, true));
    rt.add_node(NodeId{i}, sources.back().get());
  }
  rt.start();
  ASSERT_TRUE(rt.wait_quiescent(5 * kSecond));
  rt.stop();
  EXPECT_EQ(sink.received, 8);
}

}  // namespace
}  // namespace corona
