#include <gtest/gtest.h>

#include "storage/checkpoint_store.h"
#include "storage/group_store.h"
#include "storage/stable_log.h"
#include "util/bytes.h"

namespace corona {
namespace {

TEST(StableLog, AppendVisibleBeforeFlush) {
  StableLog log;
  log.append(to_bytes("a"));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.durable_size(), 0u);
  EXPECT_EQ(log.unflushed(), 1u);
}

TEST(StableLog, FlushMakesDurable) {
  StableLog log;
  log.append(to_bytes("a"));
  log.append(to_bytes("bb"));
  log.flush();
  EXPECT_EQ(log.durable_size(), 2u);
  EXPECT_EQ(log.bytes_flushed(), 3u);
}

TEST(StableLog, CrashDropsUnflushedTail) {
  StableLog log;
  log.append(to_bytes("a"));
  log.flush();
  log.append(to_bytes("b"));
  log.append(to_bytes("c"));
  log.crash();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(to_string(log.record(0)), "a");
}

TEST(StableLog, CrashOnEmptyLogIsSafe) {
  StableLog log;
  log.crash();
  EXPECT_EQ(log.size(), 0u);
}

TEST(StableLog, DropPrefixShrinksBothViews) {
  StableLog log;
  for (int i = 0; i < 5; ++i) log.append(to_bytes(std::to_string(i)));
  log.flush();
  log.append(to_bytes("5"));
  log.drop_prefix(3);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.durable_size(), 2u);
  EXPECT_EQ(to_string(log.record(0)), "3");
}

TEST(StableLog, PendingBytesTracksUnflushed) {
  StableLog log;
  log.append(filler_bytes(10));
  log.append(filler_bytes(20));
  EXPECT_EQ(log.pending_bytes(), 30u);
  log.flush();
  EXPECT_EQ(log.pending_bytes(), 0u);
}

TEST(CheckpointStore, PutVisibleLiveDurableAfterFlush) {
  CheckpointStore cs;
  cs.put("k", to_bytes("v1"));
  EXPECT_TRUE(cs.get("k").has_value());
  EXPECT_FALSE(cs.get_durable("k").has_value());
  cs.flush();
  EXPECT_EQ(to_string(*cs.get_durable("k")), "v1");
}

TEST(CheckpointStore, CrashRevertsStagedPut) {
  CheckpointStore cs;
  cs.put("k", to_bytes("v1"));
  cs.flush();
  cs.put("k", to_bytes("v2"));
  cs.crash();
  EXPECT_EQ(to_string(*cs.get("k")), "v1");
  EXPECT_EQ(to_string(*cs.get_durable("k")), "v1");
}

TEST(CheckpointStore, EraseIsStagedToo) {
  CheckpointStore cs;
  cs.put("k", to_bytes("v"));
  cs.flush();
  cs.erase("k");
  EXPECT_FALSE(cs.get("k").has_value());
  EXPECT_TRUE(cs.get_durable("k").has_value());
  cs.flush();
  EXPECT_FALSE(cs.get_durable("k").has_value());
}

TEST(CheckpointStore, DurableKeysSorted) {
  CheckpointStore cs;
  cs.put("b", {});
  cs.put("a", {});
  cs.flush();
  EXPECT_EQ(cs.durable_keys(), (std::vector<std::string>{"a", "b"}));
}

UpdateRecord mk_update(SeqNo seq, ObjectId obj, const char* data,
                       NodeId sender = NodeId{100}) {
  UpdateRecord u;
  u.seq = seq;
  u.kind = PayloadKind::kUpdate;
  u.object = obj;
  u.data = to_bytes(data);
  u.sender = sender;
  u.request_id = seq;
  return u;
}

TEST(GroupStore, CreateFlushRecover) {
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{1}, "g1", true},
                  {StateEntry{ObjectId{1}, to_bytes("init")}});
  gs.append_update(GroupId{1}, mk_update(1, ObjectId{1}, "u1"));
  gs.append_update(GroupId{1}, mk_update(2, ObjectId{1}, "u2"));
  (void)gs.flush();

  auto recovered = gs.recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].meta.name, "g1");
  EXPECT_TRUE(recovered[0].meta.persistent);
  EXPECT_EQ(recovered[0].base_seq, 0u);
  ASSERT_EQ(recovered[0].snapshot.size(), 1u);
  EXPECT_EQ(to_string(recovered[0].snapshot[0].data), "init");
  ASSERT_EQ(recovered[0].updates.size(), 2u);
  EXPECT_EQ(recovered[0].updates[1].seq, 2u);
}

TEST(GroupStore, CrashLosesUnflushedUpdates) {
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{1}, "g", true}, {});
  gs.append_update(GroupId{1}, mk_update(1, ObjectId{1}, "durable"));
  (void)gs.flush();
  gs.append_update(GroupId{1}, mk_update(2, ObjectId{1}, "lost"));
  gs.crash();
  auto recovered = gs.recover();
  ASSERT_EQ(recovered.size(), 1u);
  ASSERT_EQ(recovered[0].updates.size(), 1u);
  EXPECT_EQ(to_string(recovered[0].updates[0].data), "durable");
}

TEST(GroupStore, CrashBeforeFirstFlushLosesGroup) {
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{1}, "g", true}, {});
  gs.crash();
  EXPECT_TRUE(gs.recover().empty());
  EXPECT_FALSE(gs.has_group(GroupId{1}));
}

TEST(GroupStore, CheckpointDropsCoveredLogRecords) {
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{1}, "g", true}, {});
  for (SeqNo s = 1; s <= 5; ++s) {
    gs.append_update(GroupId{1}, mk_update(s, ObjectId{1}, "x"));
  }
  gs.install_checkpoint(GroupId{1}, 3,
                        {StateEntry{ObjectId{1}, to_bytes("xxx")}});
  (void)gs.flush();
  auto recovered = gs.recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].base_seq, 3u);
  ASSERT_EQ(recovered[0].updates.size(), 2u);
  EXPECT_EQ(recovered[0].updates[0].seq, 4u);
  EXPECT_EQ(to_string(recovered[0].snapshot[0].data), "xxx");
}

TEST(GroupStore, RemoveGroupErasesEverything) {
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{1}, "g", true}, {});
  gs.append_update(GroupId{1}, mk_update(1, ObjectId{1}, "x"));
  (void)gs.flush();
  gs.remove_group(GroupId{1});
  (void)gs.flush();
  EXPECT_TRUE(gs.recover().empty());
}

TEST(GroupStore, RecoveryOfMultipleGroupsSortedById) {
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{7}, "late", true}, {});
  gs.create_group(GroupMeta{GroupId{3}, "early", true}, {});
  (void)gs.flush();
  auto recovered = gs.recover();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].meta.id, GroupId{3});
  EXPECT_EQ(recovered[1].meta.id, GroupId{7});
}

TEST(GroupStore, TransientGroupsAlsoPersistUntilRemoved) {
  // Persistence of the *store* is orthogonal to group persistence; the
  // server decides what to remove at null membership.
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{1}, "t", false}, {});
  (void)gs.flush();
  auto recovered = gs.recover();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_FALSE(recovered[0].meta.persistent);
}

TEST(GroupStore, PendingBytesAggregatesAcrossGroups) {
  GroupStore gs;
  gs.create_group(GroupMeta{GroupId{1}, "a", true}, {});
  gs.create_group(GroupMeta{GroupId{2}, "b", true}, {});
  gs.append_update(GroupId{1}, mk_update(1, ObjectId{1}, "aaaa"));
  gs.append_update(GroupId{2}, mk_update(1, ObjectId{1}, "bb"));
  EXPECT_GT(gs.pending_bytes(), 0u);
  (void)gs.flush();
  EXPECT_EQ(gs.pending_bytes(), 0u);
}

}  // namespace
}  // namespace corona
