// Property-based sweeps over randomized workloads.  Every parameterized
// instance drives a different random schedule and asserts the protocol
// invariants the paper's guarantees rest on:
//
//   * total order — every member of a group observes the same gap-free
//     delivery sequence (FIFO per sender and causal order follow from the
//     single sequencer);
//   * replica convergence — after quiescence, every member's consolidated
//     state equals the server's;
//   * transfer equivalence — a full-state join yields exactly the state a
//     member that replayed the whole history holds;
//   * reduction transparency — random client-initiated log reductions never
//     change any observable state;
//   * crash durability — after a crash + restart + client resends, the
//     recovered state equals the pre-crash state.
#include <gtest/gtest.h>

#include "harness.h"
#include "util/rng.h"

namespace corona {
namespace {

using testing::client_id;
using testing::SingleServerWorld;

const GroupId kG{1};

struct WorkloadParams {
  int seed;
  std::size_t clients;
  std::size_t operations;
};

class RandomWorkloadProperty
    : public ::testing::TestWithParam<WorkloadParams> {};

// Drives a random mix of bcastState/bcastUpdate/reduce over several objects
// and several clients, settling at random points.
TEST_P(RandomWorkloadProperty, TotalOrderAndConvergence) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.seed) * 0x9e37 + 11);

  // Per-client delivery journals.
  std::map<std::uint64_t, std::vector<UpdateRecord>> journals;
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(testing::kServerId, &server,
              rt.network().add_host(HostProfile{}));
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < p.clients; ++i) {
    CoronaClient::Callbacks cb;
    const std::uint64_t idx = i;
    cb.on_deliver = [&journals, idx](GroupId, const UpdateRecord& rec) {
      journals[idx].push_back(rec);
    };
    clients.push_back(std::make_unique<CoronaClient>(testing::kServerId, cb));
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(100 * kMillisecond);
  clients[0]->create_group(kG, "prop", true);
  rt.run_for(100 * kMillisecond);
  for (auto& c : clients) c->join(kG);
  rt.run_for(200 * kMillisecond);

  for (std::size_t op = 0; op < p.operations; ++op) {
    auto& c = clients[rng.next_below(p.clients)];
    const ObjectId obj{1 + rng.next_below(4)};
    const Bytes payload = filler_bytes(
        1 + rng.next_below(64), static_cast<std::uint8_t>(rng.next_u64()));
    const double dice = rng.next_double();
    if (dice < 0.65) {
      c->bcast_update(kG, obj, payload);
    } else if (dice < 0.9) {
      c->bcast_state(kG, obj, payload);
    } else {
      c->reduce_log(kG);
    }
    if (rng.next_bool(0.2)) rt.run_for(50 * kMillisecond);
  }
  rt.run_for(2 * kSecond);

  // Total order: identical, gap-free journals everywhere.
  ASSERT_FALSE(journals.empty());
  const auto& ref = journals.begin()->second;
  ASSERT_FALSE(ref.empty());
  for (std::size_t i = 1; i + 1 < ref.size() + 1; ++i) {
    ASSERT_EQ(ref[i - 1].seq + 1, ref[i].seq) << "gap in total order";
  }
  for (const auto& [idx, journal] : journals) {
    ASSERT_EQ(journal.size(), ref.size()) << "client " << idx;
    for (std::size_t i = 0; i < journal.size(); ++i) {
      ASSERT_EQ(journal[i], ref[i]) << "divergence at " << i;
    }
  }

  // FIFO per sender within the total order.
  std::map<std::uint64_t, RequestId> last_rid;
  for (const UpdateRecord& rec : ref) {
    auto it = last_rid.find(rec.sender.value);
    if (it != last_rid.end()) {
      ASSERT_GT(rec.request_id, it->second)
          << "sender " << rec.sender.value << " reordered";
    }
    last_rid[rec.sender.value] = rec.request_id;
  }

  // Replica convergence: every client's consolidated state == server's.
  const auto server_snapshot = server.group(kG)->state().snapshot();
  for (std::size_t i = 0; i < p.clients; ++i) {
    const SharedState* st = clients[i]->group_state(kG);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->snapshot(), server_snapshot) << "client " << i;
  }

  // Transfer equivalence: a brand-new joiner's full transfer matches.
  CoronaClient fresh(testing::kServerId);
  rt.add_node(client_id(p.clients), &fresh,
              rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(100 * kMillisecond);
  fresh.join(kG, TransferPolicySpec::full());
  rt.run_for(500 * kMillisecond);
  ASSERT_NE(fresh.group_state(kG), nullptr);
  EXPECT_EQ(fresh.group_state(kG)->snapshot(), server_snapshot);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RandomWorkloadProperty,
    ::testing::Values(WorkloadParams{1, 2, 60}, WorkloadParams{2, 3, 120},
                      WorkloadParams{3, 5, 200}, WorkloadParams{4, 4, 150},
                      WorkloadParams{5, 8, 100}, WorkloadParams{6, 2, 250},
                      WorkloadParams{7, 6, 180}, WorkloadParams{8, 3, 90}));

// Crash durability: random workload, flush, crash, recover, compare.
class CrashRecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryProperty, RecoveredStatePlusResendsMatchesPreCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 3);
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();

  const std::size_t ops = 30 + rng.next_below(50);
  for (std::size_t i = 0; i < ops; ++i) {
    auto& c = w.client(rng.next_below(2));
    const ObjectId obj{1 + rng.next_below(3)};
    if (rng.next_bool(0.8)) {
      c.bcast_update(kG, obj, filler_bytes(1 + rng.next_below(32)));
    } else {
      c.bcast_state(kG, obj, filler_bytes(1 + rng.next_below(32)));
    }
    if (rng.next_bool(0.3)) w.rt.run_for(120 * kMillisecond);
  }
  w.settle();
  const auto pre_crash = w.server->group(kG)->state().snapshot();

  // Crash at a random moment (some tail may be unflushed), restart, rejoin,
  // resend from both clients.
  w.crash_and_restart_server();
  ASSERT_TRUE(w.server->has_group(kG));
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).resend_recent(kG);
  w.client(1).resend_recent(kG);
  w.settle();

  // All payload content is restored.  (Resent updates may be re-sequenced in
  // a different relative order across senders, so compare per-object byte
  // multisets rather than exact streams: each object's stream must contain
  // the same appended chunks.  With our workload every chunk is written by
  // exactly one (sender, request) pair, so total byte length per object is a
  // faithful proxy.)
  const auto post = w.server->group(kG)->state().snapshot();
  std::map<ObjectId, std::size_t> pre_sizes, post_sizes;
  for (const auto& e : pre_crash) pre_sizes[e.object] = e.data.size();
  for (const auto& e : post) post_sizes[e.object] = e.data.size();
  EXPECT_EQ(pre_sizes, post_sizes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryProperty, ::testing::Range(0, 6));

// Reduction transparency: interleave reductions with a fixed workload; the
// final consolidated state must be identical to a run without reductions.
class ReductionTransparency : public ::testing::TestWithParam<int> {};

TEST_P(ReductionTransparency, SameFinalStateWithAndWithoutReduction) {
  // Pre-generate the exact operation schedule once, then replay it twice —
  // with client-requested reductions injected at fixed positions or not.
  struct Op {
    bool is_state;
    ObjectId obj;
    Bytes payload;
    bool reduce_after;
  };
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 7);
  std::vector<Op> schedule;
  for (int i = 0; i < 120; ++i) {
    Op op;
    op.is_state = rng.next_bool(0.25);
    op.obj = ObjectId{1 + rng.next_below(3)};
    op.payload = filler_bytes(1 + rng.next_below(16),
                              static_cast<std::uint8_t>(rng.next_u64()));
    op.reduce_after = rng.next_bool(0.15);
    schedule.push_back(std::move(op));
  }

  auto run = [&](bool with_reduction) {
    SingleServerWorld w(1);
    w.client(0).create_group(kG, "g", true);
    w.settle();
    w.client(0).join(kG);
    w.settle();
    int i = 0;
    for (const Op& op : schedule) {
      if (op.is_state) {
        w.client(0).bcast_state(kG, op.obj, op.payload);
      } else {
        w.client(0).bcast_update(kG, op.obj, op.payload);
      }
      if (with_reduction && op.reduce_after) w.client(0).reduce_log(kG);
      if (++i % 25 == 0) w.settle();
    }
    w.settle();
    return w.server->group(kG)->state().snapshot();
  };

  const auto baseline = run(false);
  const auto reduced = run(true);
  EXPECT_EQ(baseline, reduced)
      << "log reduction changed observable state";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionTransparency, ::testing::Range(0, 4));

}  // namespace
}  // namespace corona
