// Client-failure tolerance (companion paper [15], §6: "client applications
// ... crashed occasionally.  Maintaining the state of a group at the client
// would have led to a state loss when the client crashed"): the server's
// liveness sweep treats silent members as crashed, while idle-but-alive
// clients stay members through keepalives.
#include <gtest/gtest.h>

#include "harness.h"

namespace corona {
namespace {

using testing::client_id;
using testing::kServerId;
using testing::SingleServerWorld;

const GroupId kG{1};
const ObjectId kObj{1};

class ClientFailureWorld : public ::testing::Test {
 protected:
  SimRuntime rt;
  GroupStore store;
  std::unique_ptr<CoronaServer> server;
  std::vector<std::unique_ptr<CoronaClient>> clients;
  std::vector<std::pair<NodeId, bool>> notices;

  void build(std::size_t n_clients, Duration client_timeout,
             Duration heartbeat_interval) {
    ServerConfig cfg;
    cfg.client_timeout = client_timeout;
    server = std::make_unique<CoronaServer>(std::move(cfg), &store);
    rt.add_node(kServerId, server.get(), rt.network().add_host(HostProfile{}));
    for (std::size_t i = 0; i < n_clients; ++i) {
      CoronaClient::Callbacks cb;
      cb.on_membership_change = [this](GroupId, NodeId who, MemberRole,
                                       bool joined) {
        notices.emplace_back(who, joined);
      };
      CoronaClient::Config ccfg;
      ccfg.heartbeat_interval = heartbeat_interval;
      clients.push_back(
          std::make_unique<CoronaClient>(kServerId, cb, ccfg));
      rt.add_node(client_id(i), clients.back().get(),
                  rt.network().add_host(HostProfile{}));
    }
    rt.start();
    rt.run_for(100 * kMillisecond);
  }
};

TEST_F(ClientFailureWorld, CrashedClientIsSweptFromMembership) {
  build(2, /*client_timeout=*/1 * kSecond, /*heartbeat=*/300 * kMillisecond);
  clients[0]->create_group(kG, "g", true);
  rt.run_for(100 * kMillisecond);
  clients[0]->join(kG);
  clients[1]->join(kG);
  rt.run_for(200 * kMillisecond);
  ASSERT_EQ(server->group(kG)->member_count(), 2u);

  rt.crash(client_id(1));
  rt.run_for(3 * kSecond);
  EXPECT_EQ(server->group(kG)->member_count(), 1u);
  EXPECT_EQ(server->stats().clients_expired, 1u);
  // Client 0 was told about the departure.
  bool saw_leave = false;
  for (auto& [who, joined] : notices) {
    if (who == client_id(1) && !joined) saw_leave = true;
  }
  EXPECT_TRUE(saw_leave);
}

TEST_F(ClientFailureWorld, IdleClientWithKeepalivesSurvives) {
  build(1, /*client_timeout=*/1 * kSecond, /*heartbeat=*/300 * kMillisecond);
  clients[0]->create_group(kG, "g", true);
  rt.run_for(100 * kMillisecond);
  clients[0]->join(kG);
  rt.run_for(100 * kMillisecond);
  // Ten seconds of silence except keepalives.
  rt.run_for(10 * kSecond);
  EXPECT_EQ(server->group(kG)->member_count(), 1u);
  EXPECT_EQ(server->stats().clients_expired, 0u);
}

TEST_F(ClientFailureWorld, IdleClientWithoutKeepalivesExpires) {
  build(1, /*client_timeout=*/1 * kSecond, /*heartbeat=*/0);
  clients[0]->create_group(kG, "g", true);
  rt.run_for(100 * kMillisecond);
  clients[0]->join(kG);
  rt.run_for(100 * kMillisecond);
  rt.run_for(5 * kSecond);
  EXPECT_EQ(server->group(kG)->member_count(), 0u);
  EXPECT_EQ(server->stats().clients_expired, 1u);
}

TEST_F(ClientFailureWorld, CrashReleasesLocksToWaiters) {
  build(2, /*client_timeout=*/1 * kSecond, /*heartbeat=*/300 * kMillisecond);
  std::vector<NodeId> grants;
  clients[1]->set_callbacks([&] {
    CoronaClient::Callbacks cb;
    cb.on_lock_granted = [&grants](GroupId, ObjectId) {
      grants.push_back(client_id(1));
    };
    return cb;
  }());
  clients[0]->create_group(kG, "g", true);
  rt.run_for(100 * kMillisecond);
  clients[0]->join(kG);
  clients[1]->join(kG);
  rt.run_for(200 * kMillisecond);
  clients[0]->lock(kG, kObj);
  rt.run_for(100 * kMillisecond);
  clients[1]->lock(kG, kObj);  // queues behind client 0
  rt.run_for(100 * kMillisecond);
  ASSERT_TRUE(grants.empty());

  rt.crash(client_id(0));
  rt.run_for(3 * kSecond);
  // The crashed holder's lock migrated to the waiter.
  EXPECT_EQ(grants, (std::vector<NodeId>{client_id(1)}));
}

TEST_F(ClientFailureWorld, TransientGroupCollectedWhenLastMemberCrashes) {
  build(1, /*client_timeout=*/1 * kSecond, /*heartbeat=*/300 * kMillisecond);
  clients[0]->create_group(kG, "g", /*persistent=*/false);
  rt.run_for(100 * kMillisecond);
  clients[0]->join(kG);
  rt.run_for(100 * kMillisecond);
  rt.crash(client_id(0));
  rt.run_for(3 * kSecond);
  EXPECT_FALSE(server->has_group(kG));
}

TEST_F(ClientFailureWorld, PersistentGroupSurvivesAllClientCrashes) {
  build(2, /*client_timeout=*/1 * kSecond, /*heartbeat=*/300 * kMillisecond);
  clients[0]->create_group(kG, "g", /*persistent=*/true);
  rt.run_for(100 * kMillisecond);
  clients[0]->join(kG);
  clients[1]->join(kG);
  rt.run_for(200 * kMillisecond);
  clients[0]->bcast_update(kG, kObj, to_bytes("survives"));
  rt.run_for(200 * kMillisecond);
  rt.crash(client_id(0));
  rt.crash(client_id(1));
  rt.run_for(3 * kSecond);
  ASSERT_TRUE(server->has_group(kG));
  EXPECT_EQ(server->group(kG)->member_count(), 0u);
  EXPECT_EQ(to_string(*server->group(kG)->state().object(kObj)), "survives");
}

TEST_F(ClientFailureWorld, ReconnectAfterCrashGetsFullState) {
  build(2, /*client_timeout=*/1 * kSecond, /*heartbeat=*/300 * kMillisecond);
  clients[0]->create_group(kG, "g", true);
  rt.run_for(100 * kMillisecond);
  clients[0]->join(kG);
  clients[1]->join(kG);
  rt.run_for(200 * kMillisecond);
  clients[0]->bcast_update(kG, kObj, to_bytes("pre;"));
  rt.run_for(200 * kMillisecond);

  // Client 1 crashes; a fresh incarnation reconnects and rejoins.
  rt.crash(client_id(1));
  rt.run_for(3 * kSecond);
  auto fresh = std::make_unique<CoronaClient>(kServerId);
  rt.restart(client_id(1), fresh.get());
  rt.run_for(100 * kMillisecond);
  fresh->join(kG);
  rt.run_for(300 * kMillisecond);
  ASSERT_NE(fresh->group_state(kG), nullptr);
  EXPECT_EQ(to_string(*fresh->group_state(kG)->object(kObj)), "pre;");
  clients[1] = std::move(fresh);
}

TEST(ClientGapDetection, OutOfOrderDeliveryIsHeldNotApplied) {
  testing::SingleServerWorld w(1);
  w.client(0).create_group(kG, "g", /*persistent=*/false);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("a"));
  w.settle();
  ASSERT_EQ(w.client(0).expected_seq(kG), SeqNo{2});
  const std::uint64_t delivered = w.client(0).deliveries_received();

  // Inject a delivery that skips a sequence number, as a reordering or lossy
  // transport would.  The client must hold it back (and ask the server for
  // the gap) rather than applying it out of order.
  UpdateRecord rec;
  rec.seq = 3;  // gap: seq 2 never arrived
  rec.object = ObjectId{7};
  rec.data = to_bytes("future");
  rec.sender = client_id(0);
  w.client(0).on_message(kServerId, make_deliver(kG, rec));

  EXPECT_EQ(w.client(0).expected_seq(kG), SeqNo{2});
  EXPECT_EQ(w.client(0).deliveries_received(), delivered);
  EXPECT_FALSE(w.client(0).group_state(kG)->has_object(ObjectId{7}));
}

TEST(ClientRecovery, LeaveDiscardsTheResendBuffer) {
  // The recovery resend buffer dies with the membership.  If it survived a
  // leave, a later kResendRequest could re-submit updates from a previous
  // incarnation of the group — and a recreated group (fresh dedup set)
  // would sequence them as brand-new traffic.
  SingleServerWorld w(1);
  w.client(0).create_group(kG, "g", /*persistent=*/false);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("stale"));
  w.settle();
  w.client(0).leave(kG);  // transient group dies with its last member
  w.settle();

  w.client(0).create_group(kG, "g2", /*persistent=*/false);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  const std::uint64_t sequenced = w.server->stats().messages_sequenced;

  // Server-initiated crash-recovery probe for the recreated group.
  Message probe;
  probe.type = MsgType::kResendRequest;
  probe.group = kG;
  w.client(0).on_message(kServerId, probe);
  w.settle();

  EXPECT_EQ(w.server->stats().messages_sequenced, sequenced);
  EXPECT_EQ(w.server->stats().resends_applied, 0u);
  EXPECT_FALSE(w.client(0).group_state(kG)->has_object(kObj));
}

}  // namespace
}  // namespace corona
