// End-to-end tests of the replicated Corona service (paper §4): star
// topology, cross-leaf multicast, state copies + backups, leaf and
// coordinator crashes (election + takeover), and partition reconciliation.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness.h"

namespace corona {
namespace {

using testing::client_id;
using testing::DeliveryLog;
using testing::ReplicatedWorld;
using testing::server_id;

const GroupId kG{1};
const ObjectId kObj{1};

TEST(Replicated, LastLeaveOnALeafRecruitsAReplacementCopy) {
  // When the last member on a leaf leaves and the copy count is below
  // min_copies, the coordinator keeps the departing leaf as hot standby
  // AND recruits a further backup toward the minimum (§4.1).  Skipping the
  // recruitment step leaves the group under-replicated until the next
  // crash forces the issue.
  ReplicaConfig cfg;
  cfg.min_copies = 5;
  ReplicatedWorld w(6, 2, cfg);  // coordinator + 5 leaves; c0->leaf1, c1->leaf2
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  const std::uint64_t before = w.coordinator().stats().backups_assigned;
  w.client(0).leave(kG);
  w.settle();
  EXPECT_EQ(w.coordinator().stats().backups_assigned, before + 1);
}

TEST(Replicated, FanoutBatchFrameStatCountsOnlyCoalescedFrames) {
  // fanout_batch_frames means "frames that actually coalesced >1 delivery".
  // A lone update flushed by the batch-delay timer rides a singleton frame
  // and must not count; a same-tick burst must.  Conflating the two turns
  // the batching observability story (EXPERIMENTS.md) into a lie.
  ReplicaConfig cfg;
  cfg.batch_max_msgs = 4;
  cfg.batch_max_delay = 5 * kMillisecond;
  ReplicatedWorld w(3, 2, cfg);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();

  // One update, then quiesce: the delay timer flushes a 1-message outbox
  // per recipient.  No coalescing happened, so no batch frames.
  w.client(0).bcast_update(kG, kObj, to_bytes("solo;"));
  w.settle();
  std::uint64_t batch_frames = 0;
  for (const auto& s : w.servers) batch_frames += s->stats().fanout_batch_frames;
  EXPECT_EQ(batch_frames, 0u);

  // A burst that fills the batch before the timer: the leaf outboxes carry
  // several kDeliver messages per client, and those frames do count.
  for (int i = 0; i < 4; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("burst;"));
  }
  w.settle();
  batch_frames = 0;
  for (const auto& s : w.servers) batch_frames += s->stats().fanout_batch_frames;
  EXPECT_GT(batch_frames, 0u);
}

TEST(Replicated, CrossLeafMulticast) {
  // Coordinator + 2 leaves; clients 0 and 1 attach to different leaves.
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("across"));
  w.settle();
  for (int c : {0, 1}) {
    const SharedState* st = w.client(c).group_state(kG);
    ASSERT_NE(st, nullptr) << c;
    ASSERT_TRUE(st->has_object(kObj)) << c;
    EXPECT_EQ(to_string(*st->object(kObj)), "across") << c;
  }
  EXPECT_GE(w.leaf(1).stats().forwarded, 1u);
  EXPECT_EQ(w.coordinator().stats().sequenced, 1u);
}

TEST(Replicated, TotalOrderAcrossLeaves) {
  DeliveryLog log;
  ReplicatedWorld* wp = nullptr;
  // Build with per-client delivery logging.
  SimRuntime rt;
  std::vector<NodeId> ids{server_id(0), server_id(1), server_id(2)};
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (std::size_t i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<ReplicaServer>(ReplicaConfig{}, ids));
    rt.add_node(ids[i], servers[i].get(), rt.network().add_host(HostProfile{}));
  }
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<CoronaClient>(
        ids[1 + i % 2], log.callbacks_for(client_id(i))));
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(300 * kMillisecond);
  clients[0]->create_group(kG, "g", true);
  rt.run_for(300 * kMillisecond);
  for (auto& c : clients) c->join(kG);
  rt.run_for(300 * kMillisecond);
  for (int round = 0; round < 5; ++round) {
    for (auto& c : clients) c->bcast_update(kG, kObj, to_bytes("m"));
    rt.run_for(50 * kMillisecond);
  }
  rt.run_for(500 * kMillisecond);
  const auto ref = log.seqs_for(client_id(0));
  EXPECT_EQ(ref.size(), 20u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(log.seqs_for(client_id(i)), ref) << "client " << i;
  }
  (void)wp;
}

TEST(Replicated, JoinServedFromLeafCopy) {
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("history"));
  w.settle();
  // Client 1 joins via the *other* leaf, which must pull the state first.
  w.client(1).join(kG);
  w.settle();
  ASSERT_NE(w.client(1).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)), "history");
  EXPECT_GE(w.leaf(2).stats().state_pulls, 1u);
}

TEST(Replicated, HotStandbyBackupAssigned) {
  // One group, members only on leaf 1 -> coordinator must place a backup
  // copy on another leaf (min_copies = 2).
  ReplicatedWorld w(4, 1);  // coordinator + 3 leaves; client on leaf 1
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.run_ms(500);
  const auto holders = w.coordinator().coord_holders(kG);
  EXPECT_GE(holders.size(), 2u);
  EXPECT_GE(w.coordinator().stats().backups_assigned, 1u);
  // The backup leaf holds a live copy.
  int copies = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    if (w.leaf(i).holds_copy(kG)) ++copies;
  }
  EXPECT_GE(copies, 2);
}

TEST(Replicated, BackupCopyStaysCurrent) {
  ReplicatedWorld w(4, 1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.run_ms(300);
  w.client(0).bcast_update(kG, kObj, to_bytes("replicated"));
  w.settle();
  // Every holder's copy converged to the same head.
  int with_data = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    const SharedState* st = w.leaf(i).local_state(kG);
    if (st != nullptr && st->has_object(kObj)) {
      EXPECT_EQ(to_string(*st->object(kObj)), "replicated");
      ++with_data;
    }
  }
  EXPECT_GE(with_data, 2);
}

TEST(Replicated, MembershipNoticesCrossLeaves) {
  std::vector<std::pair<NodeId, bool>> notices;
  CoronaClient::Callbacks cb;
  cb.on_membership_change = [&](GroupId, NodeId who, MemberRole, bool joined) {
    notices.emplace_back(who, joined);
  };
  ReplicatedWorld w(3, 2, ReplicaConfig{}, cb);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);  // leaf 1, subscribes to notices
  w.settle();
  w.client(1).join(kG);  // leaf 2
  w.settle();
  w.client(1).leave(kG);
  w.settle();
  // Client 0 saw client 1 join and leave despite being on another leaf.
  bool saw_join = false, saw_leave = false;
  for (auto& [who, joined] : notices) {
    if (who == client_id(1)) (joined ? saw_join : saw_leave) = true;
  }
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_leave);
}

TEST(Replicated, LocksAcrossLeaves) {
  std::vector<NodeId> grants;
  SimRuntime rt;
  std::vector<NodeId> ids{server_id(0), server_id(1), server_id(2)};
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (std::size_t i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<ReplicaServer>(ReplicaConfig{}, ids));
    rt.add_node(ids[i], servers[i].get(), rt.network().add_host(HostProfile{}));
  }
  auto cb_for = [&grants](NodeId who) {
    CoronaClient::Callbacks cb;
    cb.on_lock_granted = [&grants, who](GroupId, ObjectId) {
      grants.push_back(who);
    };
    return cb;
  };
  CoronaClient c0(ids[1], cb_for(client_id(0)));
  CoronaClient c1(ids[2], cb_for(client_id(1)));
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(300 * kMillisecond);
  c0.create_group(kG, "g", true);
  rt.run_for(300 * kMillisecond);
  c0.join(kG);
  c1.join(kG);
  rt.run_for(300 * kMillisecond);
  c0.lock(kG, kObj);
  rt.run_for(200 * kMillisecond);
  c1.lock(kG, kObj);
  rt.run_for(200 * kMillisecond);
  ASSERT_EQ(grants, (std::vector<NodeId>{client_id(0)}));
  c0.unlock(kG, kObj);
  rt.run_for(300 * kMillisecond);
  EXPECT_EQ(grants, (std::vector<NodeId>{client_id(0), client_id(1)}));
}

TEST(Replicated, LeafCrashDropsItsMembersAndKeepsGroupAlive) {
  ReplicatedWorld w(4, 2);  // clients on leaves 1 and 2
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("pre;"));
  w.settle();

  // Crash leaf 1 (client 0's server).  Coordinator detects via heartbeats,
  // removes it from the registry, drops its members.
  w.rt.crash(w.server_ids[1]);
  w.run_ms(3000);
  EXPECT_FALSE(w.coordinator().registry().contains(w.server_ids[1]));

  // Client 1 (on surviving leaf 2) continues unaffected.
  w.client(1).bcast_update(kG, kObj, to_bytes("post;"));
  w.settle();
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)),
            "pre;post;");

  // Client 0 reconnects through leaf 2 and rejoins with full transfer.
  w.client(0).set_server(w.server_ids[2]);
  w.client(0).join(kG);
  w.settle();
  ASSERT_NE(w.client(0).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w.client(0).group_state(kG)->object(kObj)),
            "pre;post;");
}

TEST(Replicated, CoordinatorCrashElectsFirstInList) {
  ReplicatedWorld w(4, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("before;"));
  w.settle();

  w.rt.crash(w.server_ids[0]);
  // Staged timeouts: first-in-list (leaf 1) claims after ~fd_timeout, then
  // election + takeover.
  w.run_ms(6000);
  EXPECT_TRUE(w.leaf(1).is_coordinator());
  EXPECT_FALSE(w.leaf(2).is_coordinator());
  EXPECT_EQ(w.leaf(2).coordinator(), w.server_ids[1]);
  EXPECT_GE(w.leaf(1).stats().elections_won, 1u);

  // Service resumes: multicast through the new coordinator, including the
  // pre-crash state.
  w.client(1).bcast_update(kG, kObj, to_bytes("after;"));
  w.run_ms(2000);
  ASSERT_NE(w.client(0).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w.client(0).group_state(kG)->object(kObj)),
            "before;after;");
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)),
            "before;after;");
}

TEST(Replicated, ElectionSkipsDeadFirstServer) {
  // Coordinator AND first leaf crash simultaneously: the second leaf must
  // take over after its longer staged timeout (paper: "k+1 servers tolerate
  // k simultaneous crashes by using increasing timeouts").
  ReplicatedWorld w(4, 1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);  // client on leaf 1
  w.settle();
  // Put the client's data on leaf 2's copy as well (backup should exist).
  w.run_ms(400);
  w.rt.crash(w.server_ids[0]);
  w.rt.crash(w.server_ids[1]);
  w.run_ms(10000);
  EXPECT_TRUE(w.leaf(2).is_coordinator());
  EXPECT_EQ(w.leaf(3).coordinator(), w.server_ids[2]);
}

TEST(Replicated, WrongfulClaimNackedByLiveCoordinator) {
  // Delay only the link between coordinator and leaf 1 long enough for leaf
  // 1 to suspect it; the claim is nacked because the coordinator is alive.
  ReplicatedWorld w(3, 0);
  // Make leaf1 <-> coordinator traffic very slow (but not cut).
  w.rt.network().set_latency(w.server_hosts[0], w.server_hosts[1],
                             1500 * kMillisecond);
  w.run_ms(8000);
  // Leaf 1 claimed at some point but was nacked; nobody usurped.
  EXPECT_TRUE(w.coordinator().is_coordinator());
  EXPECT_FALSE(w.leaf(1).is_coordinator());
  EXPECT_GE(w.leaf(1).stats().elections_started, 0u);
  EXPECT_EQ(w.leaf(1).stats().elections_won, 0u);
}

TEST(Replicated, LastSurvivorElectsItselfAfterCoordinatorCrash) {
  // Two servers total: when the coordinator dies, the surviving leaf can
  // collect no positive witness (there is nobody left to ack), yet it must
  // still win — the "alone" clause of the quorum rule.  Registry size stays
  // at 2 (self + the dead coordinator; nobody is left to prune it), so this
  // is exactly the self-election boundary.
  ReplicatedWorld w(2, 1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("before;"));
  w.settle();

  w.rt.crash(w.server_ids[0]);
  w.run_ms(6000);
  EXPECT_TRUE(w.leaf(1).is_coordinator());
  EXPECT_GE(w.leaf(1).stats().elections_won, 1u);

  // Service resumes on the lone survivor, pre-crash state intact.
  w.client(0).bcast_update(kG, kObj, to_bytes("after;"));
  w.run_ms(2000);
  ASSERT_NE(w.client(0).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w.client(0).group_state(kG)->object(kObj)),
            "before;after;");
}

TEST(Replicated, SenderExclusiveMulticastSkipsOnlyOrigin) {
  // bcast_update(..., sender_inclusive=false): every member EXCEPT the
  // origin gets the delivery.  Pins the leaf fan-out filter in both
  // directions — the origin is skipped, and *only* the origin is skipped.
  SimRuntime rt;
  testing::DeliveryLog log;
  std::vector<NodeId> ids{server_id(0), server_id(1), server_id(2)};
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (std::size_t i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<ReplicaServer>(ReplicaConfig{}, ids));
    rt.add_node(ids[i], servers[i].get(), rt.network().add_host(HostProfile{}));
  }
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<CoronaClient>(
        ids[1 + i], log.callbacks_for(client_id(i))));  // one client per leaf
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(500 * kMillisecond);
  clients[0]->create_group(kG, "g", true);
  rt.run_for(500 * kMillisecond);
  clients[0]->join(kG);
  clients[1]->join(kG);
  rt.run_for(500 * kMillisecond);

  clients[0]->bcast_update(kG, kObj, to_bytes("x"),
                           /*sender_inclusive=*/false);
  rt.run_for(500 * kMillisecond);

  EXPECT_EQ(log.seqs_for(client_id(0)).size(), 0u) << "origin self-delivered";
  EXPECT_EQ(log.seqs_for(client_id(1)).size(), 1u) << "other member skipped";
}

TEST(Replicated, BatchedSenderExclusiveMulticastSkipsOnlyOrigin) {
  // Same contract as above, but through the batched fan-out branch
  // (batch_max_msgs > 1), which carries its own copy of the origin filter
  // in leaf_apply_and_fanout.  A single sender-exclusive update rides the
  // delay-timer flush yet still takes the batched code path, so both
  // directions of the filter are pinned there too: the origin is skipped,
  // and only the origin is skipped.
  SimRuntime rt;
  testing::DeliveryLog log;
  ReplicaConfig cfg;
  cfg.batch_max_msgs = 4;
  cfg.batch_max_delay = 5 * kMillisecond;
  std::vector<NodeId> ids{server_id(0), server_id(1), server_id(2)};
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (std::size_t i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<ReplicaServer>(cfg, ids));
    rt.add_node(ids[i], servers[i].get(), rt.network().add_host(HostProfile{}));
  }
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < 2; ++i) {
    clients.push_back(std::make_unique<CoronaClient>(
        ids[1 + i], log.callbacks_for(client_id(i))));  // one client per leaf
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(500 * kMillisecond);
  clients[0]->create_group(kG, "g", true);
  rt.run_for(500 * kMillisecond);
  clients[0]->join(kG);
  clients[1]->join(kG);
  rt.run_for(500 * kMillisecond);

  clients[0]->bcast_update(kG, kObj, to_bytes("x"),
                           /*sender_inclusive=*/false);
  rt.run_for(500 * kMillisecond);

  EXPECT_EQ(log.seqs_for(client_id(0)).size(), 0u) << "origin self-delivered";
  EXPECT_EQ(log.seqs_for(client_id(1)).size(), 1u) << "other member skipped";
}

TEST(Replicated, LeaveRacingGroupDeleteReportsNotFound) {
  // A leave that reaches the coordinator after the group was deleted must
  // come back as an explicit kNotFound reply, not vanish.  The race is
  // driven deterministically over one leaf's FIFO links: the client issues
  // delete-then-leave back to back, so the leaf still hosts the group when
  // the leave arrives (the kGroupDeleted purge is still in flight) and
  // forwards it upstream; the coordinator has already dropped the group
  // and must answer with an error that the leaf relays to the client.
  std::vector<Status> replies;
  CoronaClient::Callbacks cb;
  cb.on_reply = [&](RequestId, Status s) { replies.push_back(s); };
  ReplicatedWorld w(3, 1, ReplicaConfig{}, cb);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).delete_group(kG);
  w.client(0).leave(kG);
  w.settle();
  bool saw_not_found = false;
  for (const Status& s : replies) {
    if (s.code == Errc::kNotFound) saw_not_found = true;
  }
  EXPECT_TRUE(saw_not_found)
      << "leave after delete must surface kNotFound through the leaf";
}

TEST(Replicated, HotStandbyRetainedWithoutFreshBackupElection) {
  // When a group's last member on a leaf leaves and the copy count would
  // drop below min_copies, the coordinator keeps that leaf as the hot
  // standby directly (§4.1).  That retention is NOT a backup election: the
  // leaf already holds the current copy, so no assignment round runs and
  // the stats counter stays where the join left it.
  ReplicatedWorld w(3, 1);  // coordinator + 2 leaves; client on leaf 1
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("kept"));
  w.settle();
  // The join put one member-driven copy on leaf 1 and elected exactly one
  // backup to reach min_copies = 2.
  ASSERT_EQ(w.coordinator().stats().backups_assigned, 1u);

  w.client(0).leave(kG);
  w.settle();
  EXPECT_EQ(w.coordinator().stats().backups_assigned, 1u)
      << "hot-standby retention ran a redundant backup election";
  EXPECT_TRUE(w.leaf(1).holds_copy(kG));
  const auto holders = w.coordinator().coord_holders(kG);
  EXPECT_NE(std::find(holders.begin(), holders.end(), w.server_ids[1]),
            holders.end());
  EXPECT_GE(holders.size(), 2u);
}

// Sends one bounded retransmit request and records the seqs in the reply.
class RangeProbe final : public Node {
 public:
  void on_message(NodeId, const Message& m) override {
    if (m.type != MsgType::kStateReply) return;
    for (const UpdateRecord& u : m.updates) got.push_back(u.seq);
    ++replies;
  }
  void query(NodeId server, GroupId g, SeqNo from, SeqNo to) {
    Message req;
    req.type = MsgType::kRetransmitReq;
    req.group = g;
    req.seq = from;
    req.seq2 = to;
    send(server, req);
  }
  std::vector<SeqNo> got;
  int replies = 0;
};

TEST(Replicated, BoundedRetransmitRangeIsInclusive) {
  // A gap request asks for [seq, seq2] where seq2 is the out-of-order
  // record the requester dropped; the reply must include seq2 itself or
  // the requester is left one record short until unrelated traffic
  // re-triggers recovery.
  ReplicatedWorld w(2, 1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  for (int i = 0; i < 4; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("u"));
  }
  w.settle();

  RangeProbe probe;
  w.rt.add_node(NodeId{900}, &probe,
                w.rt.network().add_host(HostProfile{}));
  probe.query(w.server_ids[1], kG, /*from=*/2, /*to=*/3);
  w.settle();
  ASSERT_EQ(probe.replies, 1);
  EXPECT_EQ(probe.got, (std::vector<SeqNo>{2, 3}));

  // seq2 == 0 means unbounded: the whole tail from `seq` on.
  probe.got.clear();
  probe.query(w.server_ids[1], kG, /*from=*/2, /*to=*/0);
  w.settle();
  ASSERT_EQ(probe.replies, 2);
  EXPECT_EQ(probe.got, (std::vector<SeqNo>{2, 3, 4}));
}

TEST(Replicated, CoordinatorBoundedRetransmitCarriesUpdates) {
  // The COORDINATOR's retransmit handler (coord_handle_state_query) is a
  // separate code path from the leaf handler the test above exercises: a
  // leaf recovering its own gap asks the coordinator directly, and the
  // coordinator only serves REGISTERED peer ids.  The reply must actually
  // carry the requested records, and the bound seq2 is inclusive — an
  // empty or one-short reply leaves the requester stuck until unrelated
  // traffic re-triggers recovery.
  ReplicatedWorld w(2, 1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  for (int i = 0; i < 4; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("u"));
  }
  w.settle();

  // Take over the leaf's node id with the probe so the request arrives
  // from a registered peer server, exactly as a recovering leaf's would.
  w.rt.crash(w.server_ids[1]);
  RangeProbe probe;
  w.rt.restart(w.server_ids[1], &probe);
  probe.query(w.server_ids[0], kG, /*from=*/2, /*to=*/3);
  w.settle();
  ASSERT_EQ(probe.replies, 1);
  EXPECT_EQ(probe.got, (std::vector<SeqNo>{2, 3}));

  // seq2 == 0 is unbounded: the whole tail from `seq` on.
  probe.got.clear();
  probe.query(w.server_ids[0], kG, /*from=*/2, /*to=*/0);
  w.settle();
  ASSERT_EQ(probe.replies, 2);
  EXPECT_EQ(probe.got, (std::vector<SeqNo>{2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Partition + reconciliation (paper §4.2)
// ---------------------------------------------------------------------------

class PartitionFixture : public ::testing::Test {
 protected:
  // 5 servers: coordinator(0) + leaves 1..4.  Clients: 0 on leaf 1 (cell A),
  // 1 on leaf 3 (cell B).  Partition: {coord, leaf1, leaf2} | {leaf3, leaf4}.
  std::unique_ptr<ReplicatedWorld> w;

  void SetUp() override {
    ReplicaConfig cfg;
    w = std::make_unique<ReplicatedWorld>(5, 4, cfg);
    w->client(0).create_group(kG, "g", true);
    w->settle();
    // clients round-robin: c0->leaf1, c1->leaf2, c2->leaf3, c3->leaf4
    w->client(0).join(kG);
    w->client(2).join(kG);
    w->settle();
    w->client(0).bcast_update(kG, kObj, to_bytes("common;"));
    w->settle();
  }

  void partition() {
    // Cell 0: servers 0,1,2 + clients 0,1.  Cell 1: servers 3,4 + clients 2,3.
    for (std::size_t i : {3ul, 4ul}) {
      w->rt.network().set_partition_cell(w->server_ids[i], 1);
    }
    w->rt.network().set_partition_cell(client_id(2), 1);
    w->rt.network().set_partition_cell(client_id(3), 1);
  }

  void heal() { w->rt.network().heal_partitions(); }
};

TEST_F(PartitionFixture, BothSidesEvolveSeparately) {
  partition();
  // Side B elects its own coordinator (leaf 3 is first reachable in list).
  w->run_ms(12000);
  EXPECT_TRUE(w->coordinator().is_coordinator());
  EXPECT_TRUE(w->leaf(3).is_coordinator());

  // Both sides keep making progress on the same group.
  w->client(0).bcast_update(kG, kObj, to_bytes("A;"));
  w->client(2).bcast_update(kG, kObj, to_bytes("B;"));
  w->run_ms(2000);
  EXPECT_EQ(to_string(*w->client(0).group_state(kG)->object(kObj)),
            "common;A;");
  EXPECT_EQ(to_string(*w->client(2).group_state(kG)->object(kObj)),
            "common;B;");
}

TEST_F(PartitionFixture, ReconcileSelectPrimaryKeepsWinnerBranch) {
  partition();
  w->run_ms(12000);
  ASSERT_TRUE(w->leaf(3).is_coordinator());
  w->client(0).bcast_update(kG, kObj, to_bytes("A;"));
  w->client(2).bcast_update(kG, kObj, to_bytes("B;"));
  w->run_ms(2000);

  heal();
  w->coordinator().begin_reconcile(w->server_ids[3],
                                   PartitionPolicy::kSelectPrimary);
  w->run_ms(5000);

  // One coordinator remains (the initiator), the other demoted.
  EXPECT_TRUE(w->coordinator().is_coordinator());
  EXPECT_FALSE(w->leaf(3).is_coordinator());
  EXPECT_GE(w->coordinator().stats().reconciled_groups, 1u);
  // The authoritative state kept branch A; clients on both sides converged.
  const SharedState* coord_state = w->coordinator().coord_state(kG);
  ASSERT_NE(coord_state, nullptr);
  EXPECT_EQ(to_string(*coord_state->object(kObj)), "common;A;");
  ASSERT_NE(w->client(0).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w->client(0).group_state(kG)->object(kObj)),
            "common;A;");
  ASSERT_NE(w->client(2).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w->client(2).group_state(kG)->object(kObj)),
            "common;A;");
}

TEST_F(PartitionFixture, ReconcileRollbackDiscardsBothBranches) {
  partition();
  w->run_ms(12000);
  ASSERT_TRUE(w->leaf(3).is_coordinator());
  w->client(0).bcast_update(kG, kObj, to_bytes("A;"));
  w->client(2).bcast_update(kG, kObj, to_bytes("B;"));
  w->run_ms(2000);

  heal();
  w->coordinator().begin_reconcile(w->server_ids[3],
                                   PartitionPolicy::kRollback);
  w->run_ms(5000);
  const SharedState* coord_state = w->coordinator().coord_state(kG);
  ASSERT_NE(coord_state, nullptr);
  EXPECT_EQ(to_string(*coord_state->object(kObj)), "common;");
  EXPECT_EQ(to_string(*w->client(2).group_state(kG)->object(kObj)),
            "common;");
}

TEST_F(PartitionFixture, ReconcileEvolveSeparatelySplitsGroup) {
  partition();
  w->run_ms(12000);
  ASSERT_TRUE(w->leaf(3).is_coordinator());
  w->client(0).bcast_update(kG, kObj, to_bytes("A;"));
  w->client(2).bcast_update(kG, kObj, to_bytes("B;"));
  w->run_ms(2000);

  heal();
  w->coordinator().begin_reconcile(w->server_ids[3],
                                   PartitionPolicy::kEvolveSeparately);
  w->run_ms(5000);

  const GroupId split{kG.value + kSplitGroupIdOffset};
  const SharedState* original = w->coordinator().coord_state(kG);
  const SharedState* forked = w->coordinator().coord_state(split);
  ASSERT_NE(original, nullptr);
  ASSERT_NE(forked, nullptr);
  EXPECT_EQ(to_string(*original->object(kObj)), "common;A;");
  EXPECT_EQ(to_string(*forked->object(kObj)), "common;B;");
}

}  // namespace
}  // namespace corona
