// Determinism smoke test: the simulator promises bit-reproducible runs, and
// the corona-lint rules (no wall clocks, no unordered iteration, seeded RNG
// only) exist to keep that promise.  This test runs the same seeded workload
// twice from scratch and asserts the full delivery traces — every client's
// every delivery, with payload checksums and virtual timestamps — and the
// server-side counters serialize to byte-identical strings.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "harness.h"
#include "util/rng.h"

namespace corona::testing {
namespace {

std::uint64_t fnv1a(const Bytes& data) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

void append_trace(std::ostringstream& out, const DeliveryLog& log) {
  for (const DeliveryLog::Entry& e : log.entries) {
    out << "c" << e.client.value << " g" << e.group.value << " seq"
        << e.rec.seq << " obj" << e.rec.object.value << " t"
        << e.rec.timestamp << " h" << fnv1a(e.rec.data) << "\n";
  }
}

// A seeded mixed workload: updates and state replacements of random sizes to
// random objects, interleaved with a mid-run join and a log reduction.
std::string run_single_server(std::uint64_t seed) {
  DeliveryLog log;
  SingleServerWorld w(3, ServerConfig{});
  for (std::size_t i = 0; i < w.clients.size(); ++i) {
    w.client(i).set_callbacks(log.callbacks_for(client_id(i)));
  }
  const GroupId g{1};
  w.client(0).create_group(g, "det", /*persistent=*/true);
  w.settle();
  w.client(0).join(g);
  w.client(1).join(g);
  w.settle();

  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    const std::size_t who = rng.next_below(2);
    const ObjectId obj{1 + rng.next_below(3)};
    Bytes payload(16 + rng.next_below(48));
    for (std::uint8_t& b : payload) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    if (rng.next_bool(0.25)) {
      w.client(who).bcast_state(g, obj, std::move(payload));
    } else {
      w.client(who).bcast_update(g, obj, std::move(payload));
    }
    if (i == 20) w.client(2).join(g);  // join against a warm history
    if (i == 30) w.client(0).reduce_log(g);
    w.rt.run_for(10 * kMillisecond);
  }
  w.settle();

  std::ostringstream out;
  append_trace(out, log);
  const ServerStats& st = w.server->stats();
  out << "sequenced=" << st.messages_sequenced
      << " deliveries=" << st.deliveries_sent
      << " bytes=" << st.delivery_bytes << " joins=" << st.joins_served
      << " reductions=" << st.reductions << " now=" << w.rt.now() << "\n";
  return out.str();
}

std::string run_replicated(std::uint64_t seed) {
  DeliveryLog log;
  ReplicatedWorld w(3, 4);
  for (std::size_t i = 0; i < w.clients.size(); ++i) {
    w.client(i).set_callbacks(log.callbacks_for(client_id(i)));
  }
  const GroupId g{1};
  w.client(0).create_group(g, "det", /*persistent=*/true);
  w.settle();
  for (std::size_t i = 0; i < w.clients.size(); ++i) w.client(i).join(g);
  w.settle();

  Rng rng(seed);
  for (int i = 0; i < 30; ++i) {
    const std::size_t who = rng.next_below(w.clients.size());
    const ObjectId obj{1 + rng.next_below(2)};
    Bytes payload(8 + rng.next_below(64));
    for (std::uint8_t& b : payload) {
      b = static_cast<std::uint8_t>(rng.next_u64());
    }
    w.client(who).bcast_update(g, obj, std::move(payload));
    w.run_ms(10);
  }
  w.settle();

  std::ostringstream out;
  append_trace(out, log);
  const ReplicaStats& st = w.coordinator().stats();
  out << "forwarded=" << st.forwarded << " sequenced=" << st.sequenced
      << " fanout=" << st.fanout_deliveries << " now=" << w.rt.now() << "\n";
  return out.str();
}

TEST(Determinism, SingleServerTraceIsByteIdentical) {
  const std::string a = run_single_server(0xc0ffee);
  const std::string b = run_single_server(0xc0ffee);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, ReplicatedTraceIsByteIdentical) {
  const std::string a = run_replicated(0xdecade);
  const std::string b = run_replicated(0xdecade);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsProduceDifferentTraces) {
  // Sanity check that the trace actually depends on the workload (a trivially
  // constant trace would make the identity assertions vacuous).
  EXPECT_NE(run_single_server(1), run_single_server(2));
}

}  // namespace
}  // namespace corona::testing
