#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace corona {
namespace {

TEST(Bytes, RoundTripString) {
  const Bytes b = to_bytes("hello corona");
  EXPECT_EQ(to_string(b), "hello corona");
}

TEST(Bytes, FillerIsDeterministic) {
  EXPECT_EQ(filler_bytes(64), filler_bytes(64));
  EXPECT_NE(filler_bytes(64, 1), filler_bytes(64, 2));
  EXPECT_EQ(filler_bytes(1000).size(), 1000u);
}

TEST(Ids, StrongTypesAreDistinct) {
  static_assert(!std::is_convertible_v<GroupId, NodeId>);
  static_assert(!std::is_convertible_v<ObjectId, GroupId>);
  EXPECT_EQ(NodeId{7}, NodeId{7});
  EXPECT_NE(NodeId{7}, NodeId{8});
  EXPECT_LT(NodeId{7}, NodeId{8});
}

TEST(Ids, Hashable) {
  std::set<NodeId> s{NodeId{1}, NodeId{2}, NodeId{2}};
  EXPECT_EQ(s.size(), 2u);
  std::unordered_map<GroupId, int> m;
  m[GroupId{5}] = 1;
  EXPECT_EQ(m.count(GroupId{5}), 1u);
}

TEST(Result, OkCarriesValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorCarriesStatus) {
  Result<int> r = Status::error(Errc::kNotFound, "missing");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code, Errc::kNotFound);
  EXPECT_EQ(r.status().to_string(), "not-found: missing");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, EveryErrcHasName) {
  for (int i = 0; i <= static_cast<int>(Errc::kUnavailable); ++i) {
    EXPECT_STRNE(errc_name(static_cast<Errc>(i)), "unknown");
  }
}

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.5);
}

TEST(LatencyStats, SummaryStatistics) {
  LatencyStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_NEAR(s.stddev_pct_of_mean(), 52.7, 0.1);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(LatencyStats, EmptyIsSafe) {
  LatencyStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(ThroughputMeter, KBytesPerSecond) {
  ThroughputMeter m;
  m.start(0);
  for (int i = 0; i < 600; ++i) m.on_delivery(1000);
  m.stop(1 * kSecond);
  EXPECT_DOUBLE_EQ(m.kbytes_per_sec(), 600.0);
  EXPECT_DOUBLE_EQ(m.messages_per_sec(), 600.0);
  EXPECT_EQ(m.total_bytes(), 600000u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "header"});
  t.add_row({"wide-cell", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("wide-cell"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(TextTable, FormatsDoubles) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(3.0, 0), "3");
}

}  // namespace
}  // namespace corona
