// Shared test harness: topology builders over the deterministic engine.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "core/stateless_server.h"
#include "replica/replica_server.h"
#include "runtime/sim_runtime.h"
#include "storage/group_store.h"

namespace corona::testing {

// Node-id conventions used across the tests: servers get low ids, clients
// start at 100.
constexpr NodeId kServerId{1};
inline NodeId client_id(std::size_t i) { return NodeId{100 + i}; }
inline NodeId server_id(std::size_t i) { return NodeId{1 + i}; }

// Single-server world: one CoronaServer and N clients, each on its own host.
struct SingleServerWorld {
  SimRuntime rt;
  GroupStore store;  // the server machine's disk; outlives server restarts
  std::unique_ptr<CoronaServer> server;
  std::vector<std::unique_ptr<CoronaClient>> clients;
  HostId server_host;
  std::vector<HostId> client_hosts;

  explicit SingleServerWorld(std::size_t n_clients,
                             ServerConfig config = ServerConfig{},
                             CoronaClient::Callbacks callbacks = {}) {
    server_host = rt.network().add_host(HostProfile{});
    server = std::make_unique<CoronaServer>(std::move(config), &store);
    rt.add_node(kServerId, server.get(), server_host);
    for (std::size_t i = 0; i < n_clients; ++i) {
      client_hosts.push_back(rt.network().add_host(HostProfile{}));
      clients.push_back(
          std::make_unique<CoronaClient>(kServerId, callbacks));
      rt.add_node(client_id(i), clients[i].get(), client_hosts[i]);
    }
    rt.start();
    settle();
  }

  CoronaClient& client(std::size_t i) { return *clients[i]; }
  // Periodic timers (async flush) keep the event queue non-empty forever,
  // so "idle" is reached by running a generous slice of virtual time.
  void settle() { rt.run_for(500 * kMillisecond); }

  // Crash the server and bring up a fresh instance over the same store
  // (the disk survives; the unflushed tail does not).
  void crash_and_restart_server(ServerConfig config = ServerConfig{}) {
    rt.crash(kServerId);
    store.crash();
    server = std::make_unique<CoronaServer>(std::move(config), &store);
    rt.restart(kServerId, server.get());
    settle();
  }
};

// Replicated world: coordinator + L leaves + clients spread over the leaves.
struct ReplicatedWorld {
  SimRuntime rt;
  std::vector<std::unique_ptr<ReplicaServer>> servers;  // [0] = coordinator
  std::vector<std::unique_ptr<CoronaClient>> clients;
  std::vector<HostId> server_hosts;
  std::vector<NodeId> server_ids;

  ReplicatedWorld(std::size_t n_servers, std::size_t n_clients,
                  ReplicaConfig cfg = ReplicaConfig{},
                  CoronaClient::Callbacks callbacks = {}) {
    for (std::size_t i = 0; i < n_servers; ++i) {
      server_ids.push_back(server_id(i));
    }
    for (std::size_t i = 0; i < n_servers; ++i) {
      server_hosts.push_back(rt.network().add_host(HostProfile{}));
      servers.push_back(
          std::make_unique<ReplicaServer>(cfg, server_ids, nullptr));
      rt.add_node(server_ids[i], servers[i].get(), server_hosts[i]);
    }
    for (std::size_t i = 0; i < n_clients; ++i) {
      // Clients round-robin over the leaves (servers 1..n-1); with a single
      // server they attach to the coordinator.
      const std::size_t leaf =
          n_servers > 1 ? 1 + (i % (n_servers - 1)) : 0;
      const HostId host = rt.network().add_host(HostProfile{});
      clients.push_back(
          std::make_unique<CoronaClient>(server_ids[leaf], callbacks));
      rt.add_node(client_id(i), clients[i].get(), host);
    }
    rt.start();
    settle();
  }

  ReplicaServer& coordinator() { return *servers[0]; }
  ReplicaServer& leaf(std::size_t i) { return *servers[i]; }
  CoronaClient& client(std::size_t i) { return *clients[i]; }
  // Heartbeat timers keep the event queue non-empty forever; settle by
  // running a generous slice of virtual time instead of draining.
  void settle() { rt.run_for(500 * kMillisecond); }
  void run_ms(std::int64_t ms) { rt.run_for(ms * kMillisecond); }
};

// Records deliveries for assertions.
struct DeliveryLog {
  struct Entry {
    NodeId client;
    GroupId group;
    UpdateRecord rec;
  };
  std::vector<Entry> entries;

  CoronaClient::Callbacks callbacks_for(NodeId client) {
    CoronaClient::Callbacks cb;
    cb.on_deliver = [this, client](GroupId g, const UpdateRecord& rec) {
      entries.push_back(Entry{client, g, rec});
    };
    return cb;
  }

  std::vector<SeqNo> seqs_for(NodeId client) const {
    std::vector<SeqNo> out;
    for (const auto& e : entries) {
      if (e.client == client) out.push_back(e.rec.seq);
    }
    return out;
  }
};

}  // namespace corona::testing
