// Fault-injection tests: selective message loss via the SimRuntime drop
// filter exercises the retransmission paths that a clean network never
// touches — client gap detection (§3's reliability guarantee), leaf-side
// gap fill in the replicated service, and the IP-multicast delivery path.
#include <gtest/gtest.h>

#include "harness.h"
#include "util/rng.h"

namespace corona {
namespace {

using testing::client_id;
using testing::kServerId;
using testing::ReplicatedWorld;
using testing::SingleServerWorld;

const GroupId kG{1};
const ObjectId kObj{1};

TEST(FaultInjection, ClientDetectsGapAndRetransmits) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();

  w.client(0).bcast_update(kG, kObj, to_bytes("one;"));
  w.settle();

  // Drop exactly one delivery to client 1.
  bool dropped_one = false;
  w.rt.set_drop_filter([&](NodeId, NodeId to, const Message& m) {
    if (!dropped_one && to == client_id(1) && m.type == MsgType::kDeliver) {
      dropped_one = true;
      return true;
    }
    return false;
  });
  w.client(0).bcast_update(kG, kObj, to_bytes("two;"));
  w.settle();
  w.rt.clear_drop_filter();
  ASSERT_TRUE(dropped_one);
  EXPECT_EQ(w.rt.dropped_by_filter(), 1u);

  // Client 1 is now one behind; the next delivery exposes the gap and the
  // retransmission protocol repairs it in order.
  w.client(0).bcast_update(kG, kObj, to_bytes("three;"));
  w.settle();
  const SharedState* st = w.client(1).group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(to_string(*st->object(kObj)), "one;two;three;");
  EXPECT_GE(w.client(1).gaps_detected(), 1u);
  EXPECT_GE(w.server->stats().retransmits_served, 1u);
}

TEST(FaultInjection, GapAcrossReducedHistoryReloadsSnapshot) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();

  // Lose a run of deliveries to client 1, then reduce the log past the gap.
  w.rt.set_drop_filter([&](NodeId, NodeId to, const Message& m) {
    return to == client_id(1) && m.type == MsgType::kDeliver;
  });
  for (int i = 0; i < 5; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("x"));
  }
  w.settle();
  w.rt.clear_drop_filter();
  w.client(0).reduce_log(kG);
  w.settle();

  w.client(0).bcast_update(kG, kObj, to_bytes("y"));
  w.settle();
  // The requested range was reduced away; the server ships the consolidated
  // snapshot instead and client 1 converges.
  const SharedState* st = w.client(1).group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(to_string(*st->object(kObj)), "xxxxxy");
}

TEST(FaultInjection, LeafGapFillInReplicatedService) {
  ReplicatedWorld w(3, 2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();

  // Drop one sequenced multicast from the coordinator to leaf 2.
  bool dropped_one = false;
  w.rt.set_drop_filter([&](NodeId, NodeId to, const Message& m) {
    if (!dropped_one && to == w.server_ids[2] &&
        m.type == MsgType::kSeqMulticast) {
      dropped_one = true;
      return true;
    }
    return false;
  });
  w.client(0).bcast_update(kG, kObj, to_bytes("a;"));
  w.settle();
  w.rt.clear_drop_filter();
  ASSERT_TRUE(dropped_one);

  // The next multicast exposes the leaf's gap; it refetches from the
  // coordinator and both the leaf copy and its client converge.
  w.client(0).bcast_update(kG, kObj, to_bytes("b;"));
  w.settle();
  const SharedState* leaf_copy = w.leaf(2).local_state(kG);
  ASSERT_NE(leaf_copy, nullptr);
  EXPECT_EQ(to_string(*leaf_copy->object(kObj)), "a;b;");
  const SharedState* st = w.client(1).group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(to_string(*st->object(kObj)), "a;b;");
}

TEST(FaultInjection, LossyLinkEventuallyConverges) {
  // 30% loss on every kDeliver to client 1: repeated gap repair still
  // reconstructs the exact stream.
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();

  Rng rng(42);
  w.rt.set_drop_filter([&](NodeId, NodeId to, const Message& m) {
    return to == client_id(1) && m.type == MsgType::kDeliver &&
           rng.next_bool(0.3);
  });
  std::string expect;
  for (int i = 0; i < 40; ++i) {
    const std::string chunk = std::to_string(i) + ";";
    expect += chunk;
    w.client(0).bcast_update(kG, kObj, to_bytes(chunk));
    if (i % 8 == 7) w.settle();
  }
  w.settle();
  w.rt.clear_drop_filter();
  // One clean delivery flushes any outstanding gap.
  w.client(0).bcast_update(kG, kObj, to_bytes("end;"));
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("fin;"));
  w.settle();

  const SharedState* st = w.client(1).group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(to_string(*st->object(kObj)), expect + "end;fin;");
}

TEST(FaultInjection, IpMulticastDeliversToAllMembers) {
  ServerConfig cfg;
  cfg.use_ip_multicast = true;
  SingleServerWorld w(4, std::move(cfg));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  for (std::size_t i = 0; i < 4; ++i) w.client(i).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("mc"));
  w.settle();
  for (std::size_t i = 0; i < 4; ++i) {
    const SharedState* st = w.client(i).group_state(kG);
    ASSERT_NE(st, nullptr) << i;
    EXPECT_EQ(to_string(*st->object(kObj)), "mc") << i;
  }
  EXPECT_EQ(w.server->stats().deliveries_sent, 4u);
}

TEST(FaultInjection, IpMulticastRespectsSenderExclusive) {
  ServerConfig cfg;
  cfg.use_ip_multicast = true;
  SingleServerWorld w(2, std::move(cfg));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("x"), /*sender_inclusive=*/false);
  w.settle();
  EXPECT_EQ(w.client(0).deliveries_received(), 0u);
  EXPECT_EQ(w.client(1).deliveries_received(), 1u);
}

TEST(FaultInjection, IpMulticastCheaperThanPointToPointAtServer) {
  // Identical workloads; the multicast server's host finishes earlier.
  auto run = [](bool mc) {
    ServerConfig cfg;
    cfg.use_ip_multicast = mc;
    SingleServerWorld w(20, std::move(cfg));
    w.client(0).create_group(kG, "g", true);
    w.settle();
    for (std::size_t i = 0; i < 20; ++i) {
      w.client(i).join(kG, TransferPolicySpec::nothing(),
                       MemberRole::kObserver, false);
    }
    w.settle();
    const TimePoint before = w.rt.now();
    w.client(0).bcast_update(kG, kObj, filler_bytes(1000));
    // Time until the highest-id member applies it.
    while (w.client(19).deliveries_received() == 0) {
      w.rt.run_for(1 * kMillisecond);
    }
    return w.rt.now() - before;
  };
  const Duration p2p = run(false);
  const Duration mcast = run(true);
  EXPECT_LT(mcast, p2p / 2);
}

TEST(FaultInjection, HealthyDonorNeverTripsTheFailurePath) {
  // Peer-transfer joins lean on failure detection: a donor that answers
  // kOk with its replica must complete the join on the fast path — zero
  // timeouts, exactly one transfer.  Misreading a healthy donor's reply as
  // a failure (or a donor misreading its own replica) silently degrades
  // every join to the timeout path.
  ServerConfig cfg;
  cfg.join_transfer = JoinTransferMode::kPeer;
  cfg.peer_timeout = 500 * kMillisecond;
  SingleServerWorld w(2, std::move(cfg));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);  // first member: no donor available, service serves
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("donor-copy"));
  w.settle();

  w.client(1).join(kG);  // must be served by client 0's replica
  w.rt.run_for(2 * kSecond);
  ASSERT_TRUE(w.client(1).is_joined(kG));
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)),
            "donor-copy");
  EXPECT_EQ(w.server->stats().peer_transfers, 1u);
  EXPECT_EQ(w.server->stats().peer_timeouts, 0u);
}

}  // namespace
}  // namespace corona
