// Address-book parsing: the tiny config layer feeding corona-serverd and
// corona-clientd.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/address.h"

namespace corona::net {
namespace {

TEST(SocketAddress, ParsesEndpoint) {
  auto ep = parse_endpoint("127.0.0.1:7700");
  ASSERT_TRUE(ep.is_ok());
  EXPECT_EQ(ep.value().host, "127.0.0.1");
  EXPECT_EQ(ep.value().port, 7700);
  EXPECT_EQ(ep.value().to_string(), "127.0.0.1:7700");
}

TEST(SocketAddress, RejectsMalformedEndpoints) {
  EXPECT_FALSE(parse_endpoint("").is_ok());
  EXPECT_FALSE(parse_endpoint("nohost").is_ok());
  EXPECT_FALSE(parse_endpoint(":80").is_ok());
  EXPECT_FALSE(parse_endpoint("host:").is_ok());
  EXPECT_FALSE(parse_endpoint("host:abc").is_ok());
  EXPECT_FALSE(parse_endpoint("host:70000").is_ok());
}

TEST(SocketAddress, ParsesBookString) {
  auto book = parse_address_book("1=10.0.0.1:7700, 2=10.0.0.2:7700");
  ASSERT_TRUE(book.is_ok());
  ASSERT_EQ(book.value().size(), 2u);
  EXPECT_EQ(book.value().at(NodeId{1}).host, "10.0.0.1");
  EXPECT_EQ(book.value().at(NodeId{2}).port, 7700);
}

TEST(SocketAddress, RejectsBadBooks) {
  EXPECT_FALSE(parse_address_book("").is_ok());
  EXPECT_FALSE(parse_address_book("x=1.2.3.4:1").is_ok());
  EXPECT_FALSE(parse_address_book("1=nope").is_ok());
  EXPECT_FALSE(parse_address_book("1=h:1,1=h:2").is_ok());  // duplicate id
}

TEST(SocketAddress, LoadsBookFileWithCommentsAndBlankLines) {
  const std::string path = ::testing::TempDir() + "/corona_book_test.txt";
  {
    std::ofstream out(path);
    out << "# the server mesh\n"
        << "\n"
        << "1=127.0.0.1:7700\n"
        << "  2 127.0.0.1:7701   # space form\n";
  }
  auto book = load_address_book_file(path);
  ASSERT_TRUE(book.is_ok()) << book.status().to_string();
  ASSERT_EQ(book.value().size(), 2u);
  EXPECT_EQ(book.value().at(NodeId{2}).port, 7701);
  std::remove(path.c_str());
}

TEST(SocketAddress, MissingBookFileIsNotFound) {
  auto book = load_address_book_file("/nonexistent/corona/book");
  ASSERT_FALSE(book.is_ok());
  EXPECT_EQ(book.status().code, Errc::kNotFound);
}

}  // namespace
}  // namespace corona::net
