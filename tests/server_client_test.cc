// End-to-end tests of the single-server Corona service over the
// deterministic engine: the full client protocol of paper §3.
#include <gtest/gtest.h>

#include <map>

#include "harness.h"

namespace corona {
namespace {

using testing::client_id;
using testing::DeliveryLog;
using testing::kServerId;
using testing::SingleServerWorld;

const GroupId kG{1};
const ObjectId kObj{1};

TEST(ServerClient, CreateJoinBcastDeliver) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "room", /*persistent=*/false);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("hello"));
  w.settle();

  // Both members (sender-inclusive) hold the update in their replicas.
  for (int c : {0, 1}) {
    const SharedState* st = w.client(c).group_state(kG);
    ASSERT_NE(st, nullptr) << c;
    ASSERT_TRUE(st->has_object(kObj)) << c;
    EXPECT_EQ(to_string(*st->object(kObj)), "hello") << c;
  }
  EXPECT_EQ(w.server->stats().messages_sequenced, 1u);
  EXPECT_EQ(w.server->stats().deliveries_sent, 2u);
}

TEST(ServerClient, CreateDuplicateGroupRejected) {
  std::vector<std::pair<RequestId, Status>> replies;
  CoronaClient::Callbacks cb;
  cb.on_reply = [&](RequestId rid, Status s) { replies.emplace_back(rid, s); };
  SingleServerWorld w(1, ServerConfig{}, cb);
  w.client(0).create_group(kG, "a", false);
  w.settle();
  const RequestId rid = w.client(0).create_group(kG, "b", false);
  w.settle();
  ASSERT_FALSE(replies.empty());
  bool found = false;
  for (auto& [r, s] : replies) {
    if (r == rid) {
      found = true;
      EXPECT_EQ(s.code, Errc::kAlreadyExists);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ServerClient, JoinNonexistentGroupFails) {
  std::vector<Status> join_status;
  CoronaClient::Callbacks cb;
  cb.on_joined = [&](GroupId, Status s) { join_status.push_back(s); };
  SingleServerWorld w(1, ServerConfig{}, cb);
  w.client(0).join(GroupId{99});
  w.settle();
  ASSERT_EQ(join_status.size(), 1u);
  EXPECT_EQ(join_status[0].code, Errc::kNotFound);
  EXPECT_FALSE(w.client(0).is_joined(GroupId{99}));
}

TEST(ServerClient, BcastFromNonMemberRejected) {
  std::vector<Status> replies;
  CoronaClient::Callbacks cb;
  cb.on_reply = [&](RequestId, Status s) { replies.push_back(s); };
  SingleServerWorld w(1, ServerConfig{}, cb);
  w.client(0).create_group(kG, "g", false);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("x"));
  w.settle();
  ASSERT_FALSE(replies.empty());
  EXPECT_EQ(replies.back().code, Errc::kNotMember);
  EXPECT_EQ(w.server->stats().messages_sequenced, 0u);
}

TEST(ServerClient, SenderExclusiveSkipsSender) {
  DeliveryLog log;
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  CoronaClient c0(kServerId, log.callbacks_for(client_id(0)));
  CoronaClient c1(kServerId, log.callbacks_for(client_id(1)));
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(100 * kMillisecond);
  c0.create_group(kG, "g", false);
  rt.run_for(100 * kMillisecond);
  c0.join(kG);
  c1.join(kG);
  rt.run_for(100 * kMillisecond);
  c0.bcast_update(kG, kObj, to_bytes("x"), /*sender_inclusive=*/false);
  rt.run_for(200 * kMillisecond);
  EXPECT_TRUE(log.seqs_for(client_id(0)).empty());
  EXPECT_EQ(log.seqs_for(client_id(1)).size(), 1u);
}

TEST(ServerClient, TotalOrderAcrossSenders) {
  DeliveryLog log;
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  std::vector<std::unique_ptr<CoronaClient>> clients;
  for (std::size_t i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<CoronaClient>(
        kServerId, log.callbacks_for(client_id(i))));
    rt.add_node(client_id(i), clients.back().get(),
                rt.network().add_host(HostProfile{}));
  }
  rt.start();
  rt.run_for(50 * kMillisecond);
  clients[0]->create_group(kG, "g", false);
  rt.run_for(50 * kMillisecond);
  for (auto& c : clients) c->join(kG);
  rt.run_for(50 * kMillisecond);
  // Interleaved sends from all clients.
  for (int round = 0; round < 5; ++round) {
    for (auto& c : clients) {
      c->bcast_update(kG, kObj, to_bytes("m"));
    }
    rt.run_for(20 * kMillisecond);
  }
  rt.run_for(300 * kMillisecond);

  // Every client received every message in the identical total order.
  const auto ref = log.seqs_for(client_id(0));
  EXPECT_EQ(ref.size(), 20u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(log.seqs_for(client_id(i)), ref) << "client " << i;
  }
  // And that order is gap-free ascending.
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(ref[i], i + 1);
}

TEST(ServerClient, JoinTransfersFullState) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", false,
                           {StateEntry{kObj, to_bytes("INIT:")}});
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("a"));
  w.client(0).bcast_update(kG, kObj, to_bytes("b"));
  w.settle();
  // Late joiner receives the consolidated state.
  w.client(1).join(kG, TransferPolicySpec::full());
  w.settle();
  const SharedState* st = w.client(1).group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(to_string(*st->object(kObj)), "INIT:ab");
  // And subsequent updates continue seamlessly.
  w.client(0).bcast_update(kG, kObj, to_bytes("c"));
  w.settle();
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)), "INIT:abc");
}

TEST(ServerClient, JoinTransfersLastN) {
  DeliveryLog log;
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  CoronaClient c0(kServerId);
  CoronaClient c1(kServerId);
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);
  c0.create_group(kG, "chat", false);
  rt.run_for(50 * kMillisecond);
  c0.join(kG);
  rt.run_for(50 * kMillisecond);
  for (int i = 0; i < 10; ++i) {
    c0.bcast_update(kG, kObj, to_bytes("line" + std::to_string(i) + ";"));
    rt.run_for(20 * kMillisecond);
  }
  c1.join(kG, TransferPolicySpec::last_n_updates(3));
  rt.run_for(200 * kMillisecond);
  const SharedState* st = c1.group_state(kG);
  ASSERT_NE(st, nullptr);
  // Only the last 3 lines were transferred.
  EXPECT_EQ(to_string(*st->object(kObj)), "line7;line8;line9;");
  EXPECT_EQ(st->history_size(), 3u);
}

TEST(ServerClient, JoinTransfersObjectSubset) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", false);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_state(kG, ObjectId{1}, to_bytes("one"));
  w.client(0).bcast_state(kG, ObjectId{2}, to_bytes("two"));
  w.client(0).bcast_state(kG, ObjectId{3}, to_bytes("three"));
  w.settle();
  w.client(1).join(kG, TransferPolicySpec::objects_only({ObjectId{2}}));
  w.settle();
  const SharedState* st = w.client(1).group_state(kG);
  ASSERT_NE(st, nullptr);
  EXPECT_FALSE(st->has_object(ObjectId{1}));
  EXPECT_TRUE(st->has_object(ObjectId{2}));
  EXPECT_FALSE(st->has_object(ObjectId{3}));
}

TEST(ServerClient, MembershipNoticesOnlyToSubscribers) {
  std::vector<std::pair<NodeId, bool>> notices;  // (subject, joined)
  CoronaClient::Callbacks subscriber_cb;
  subscriber_cb.on_membership_change = [&](GroupId, NodeId who, MemberRole,
                                           bool joined) {
    notices.emplace_back(who, joined);
  };
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  CoronaClient subscriber(kServerId, subscriber_cb);
  CoronaClient joiner(kServerId);
  rt.add_node(client_id(0), &subscriber, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &joiner, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);
  subscriber.create_group(kG, "g", false);
  rt.run_for(50 * kMillisecond);
  subscriber.join(kG, TransferPolicySpec::full(), MemberRole::kPrincipal,
                  /*notify_membership=*/true);
  rt.run_for(50 * kMillisecond);
  joiner.join(kG, TransferPolicySpec::full(), MemberRole::kObserver,
              /*notify_membership=*/false);
  rt.run_for(100 * kMillisecond);
  joiner.leave(kG);
  rt.run_for(100 * kMillisecond);

  ASSERT_EQ(notices.size(), 2u);
  EXPECT_EQ(notices[0], std::make_pair(client_id(1), true));
  EXPECT_EQ(notices[1], std::make_pair(client_id(1), false));
}

TEST(ServerClient, GetMembershipListsRoles) {
  std::vector<MemberInfo> seen;
  CoronaClient::Callbacks cb;
  cb.on_membership_info = [&](GroupId, const std::vector<MemberInfo>& m) {
    seen = m;
  };
  SingleServerWorld w(2, ServerConfig{}, cb);
  w.client(0).create_group(kG, "g", false);
  w.settle();
  w.client(0).join(kG, TransferPolicySpec::full(), MemberRole::kPrincipal);
  w.client(1).join(kG, TransferPolicySpec::full(), MemberRole::kObserver);
  w.settle();
  w.client(0).get_membership(kG);
  w.settle();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].node, client_id(0));
  EXPECT_EQ(seen[0].role, MemberRole::kPrincipal);
  EXPECT_EQ(seen[1].role, MemberRole::kObserver);
}

TEST(ServerClient, TransientGroupDiesAtNullMembership) {
  SingleServerWorld w(1);
  w.client(0).create_group(kG, "g", /*persistent=*/false);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  EXPECT_TRUE(w.server->has_group(kG));
  w.client(0).leave(kG);
  w.settle();
  EXPECT_FALSE(w.server->has_group(kG));
}

TEST(ServerClient, PersistentGroupSurvivesNullMembership) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", /*persistent=*/true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("kept"));
  w.settle();
  w.client(0).leave(kG);
  w.settle();
  ASSERT_TRUE(w.server->has_group(kG));
  // A later client joins the memberless group and gets the state.
  w.client(1).join(kG);
  w.settle();
  ASSERT_NE(w.client(1).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)), "kept");
}

TEST(ServerClient, DeleteGroupNotifiesMembers) {
  int deleted_seen = 0;
  CoronaClient::Callbacks cb;
  cb.on_group_deleted = [&](GroupId) { ++deleted_seen; };
  SingleServerWorld w(2, ServerConfig{}, cb);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(1).delete_group(kG);
  w.settle();
  EXPECT_FALSE(w.server->has_group(kG));
  EXPECT_EQ(deleted_seen, 1);  // client 0 (client 1 gets the kReply instead)
  EXPECT_FALSE(w.client(0).is_joined(kG));
}

TEST(ServerClient, LocksGrantQueueAndRelease) {
  std::vector<NodeId> grants;
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  auto cb_for = [&](NodeId who) {
    CoronaClient::Callbacks cb;
    cb.on_lock_granted = [&grants, who](GroupId, ObjectId) {
      grants.push_back(who);
    };
    return cb;
  };
  CoronaClient c0(kServerId, cb_for(client_id(0)));
  CoronaClient c1(kServerId, cb_for(client_id(1)));
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);
  c0.create_group(kG, "g", false);
  rt.run_for(50 * kMillisecond);
  c0.join(kG);
  c1.join(kG);
  rt.run_for(50 * kMillisecond);
  c0.lock(kG, kObj);
  rt.run_for(50 * kMillisecond);
  c1.lock(kG, kObj);  // queues
  rt.run_for(50 * kMillisecond);
  ASSERT_EQ(grants, (std::vector<NodeId>{client_id(0)}));
  c0.unlock(kG, kObj);
  rt.run_for(50 * kMillisecond);
  EXPECT_EQ(grants, (std::vector<NodeId>{client_id(0), client_id(1)}));
}

TEST(ServerClient, LeaveReleasesHeldLocks) {
  std::vector<NodeId> grants;
  SimRuntime rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  CoronaClient c0(kServerId);
  CoronaClient::Callbacks cb;
  cb.on_lock_granted = [&](GroupId, ObjectId) {
    grants.push_back(client_id(1));
  };
  CoronaClient c1(kServerId, cb);
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);
  c0.create_group(kG, "g", true);
  rt.run_for(50 * kMillisecond);
  c0.join(kG);
  c1.join(kG);
  rt.run_for(50 * kMillisecond);
  c0.lock(kG, kObj);
  rt.run_for(50 * kMillisecond);
  c1.lock(kG, kObj);
  rt.run_for(50 * kMillisecond);
  c0.leave(kG);  // implicit release
  rt.run_for(100 * kMillisecond);
  EXPECT_EQ(grants, (std::vector<NodeId>{client_id(1)}));
}

TEST(ServerClient, ClientRequestedLogReduction) {
  SingleServerWorld w(1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  for (int i = 0; i < 10; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("u"));
  }
  w.settle();
  ASSERT_EQ(w.server->group(kG)->state().history_size(), 10u);
  w.client(0).reduce_log(kG);  // reduce to head
  w.settle();
  EXPECT_EQ(w.server->group(kG)->state().history_size(), 0u);
  EXPECT_EQ(w.server->group(kG)->state().base_seq(), 10u);
  EXPECT_EQ(w.server->stats().reductions, 1u);
  // State is still intact for future joins.
  EXPECT_EQ(to_string(*w.server->group(kG)->state().object(kObj)),
            "uuuuuuuuuu");
}

TEST(ServerClient, RetransmitAtReductionBoundaryShipsSnapshot) {
  // A retransmit request for exactly base_seq + 1 sits on the reduction
  // boundary, and the server's contract is inclusive: boundary requests get
  // the consolidated snapshot, not a record range.  The two replies are not
  // interchangeable — a snapshot reply reloads the replica wholesale, while
  // range records below the recipient's next_expected are dropped — so the
  // branch taken is visible in the client's replica shape.
  SingleServerWorld w(1);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  for (int i = 0; i < 5; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("a"));
  }
  w.settle();
  w.client(0).reduce_log(kG);  // server: base_seq 5, history empty
  w.settle();
  for (int i = 0; i < 3; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("b"));
  }
  w.settle();
  ASSERT_EQ(w.server->group(kG)->state().base_seq(), 5u);
  ASSERT_EQ(w.server->group(kG)->state().history_size(), 3u);
  const SharedState* cs = w.client(0).group_state(kG);
  ASSERT_NE(cs, nullptr);
  ASSERT_EQ(cs->history_size(), 8u);  // clients don't trim on kLogReduced

  // Ask for the boundary record (seq 6 == base_seq + 1, open-ended).
  Message req;
  req.type = MsgType::kRetransmitReq;
  req.group = kG;
  req.seq = 6;
  req.seq2 = 0;
  w.server->on_message(client_id(0), req);
  w.settle();

  // The consolidated snapshot replaces the client's replayed history; a
  // record-range reply would have left all 8 records in place (seqs 6..8
  // are below the caught-up client's next_expected of 9).
  EXPECT_EQ(cs->history_size(), 0u);
  EXPECT_EQ(cs->base_seq(), 8u);
  EXPECT_EQ(to_string(*cs->object(kObj)), "aaaaabbb");
}

TEST(ServerClient, AutomaticReductionPolicy) {
  ServerConfig cfg;
  cfg.reduction_factory = [] { return make_count_threshold(5); };
  SingleServerWorld w(1, std::move(cfg));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  for (int i = 0; i < 20; ++i) {
    w.client(0).bcast_update(kG, kObj, to_bytes("u"));
  }
  w.settle();
  EXPECT_LE(w.server->group(kG)->state().history_size(), 5u);
  EXPECT_GE(w.server->stats().reductions, 3u);
}

TEST(ServerClient, AclSessionManagerEnforced) {
  SimRuntime rt;
  GroupStore store;
  AclSessionManager acl;
  acl.allow(client_id(0), GroupId{AclSessionManager::kAnyGroup},
            GroupAction::kCreate);
  acl.allow(client_id(0), GroupId{AclSessionManager::kAnyGroup},
            GroupAction::kJoin);
  acl.allow(client_id(0), GroupId{AclSessionManager::kAnyGroup},
            GroupAction::kPublish);
  // client 1 may join but not publish
  acl.allow(client_id(1), GroupId{AclSessionManager::kAnyGroup},
            GroupAction::kJoin);
  CoronaServer server(ServerConfig{}, &store, &acl);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  std::vector<Status> c1_replies;
  CoronaClient::Callbacks cb;
  cb.on_reply = [&](RequestId, Status s) { c1_replies.push_back(s); };
  CoronaClient c0(kServerId);
  CoronaClient c1(kServerId, cb);
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);
  c0.create_group(kG, "g", false);
  rt.run_for(50 * kMillisecond);
  c0.join(kG);
  c1.join(kG);
  rt.run_for(50 * kMillisecond);
  ASSERT_TRUE(c1.is_joined(kG));
  c1.bcast_update(kG, kObj, to_bytes("nope"));
  rt.run_for(100 * kMillisecond);
  ASSERT_FALSE(c1_replies.empty());
  EXPECT_EQ(c1_replies.back().code, Errc::kPermissionDenied);
  EXPECT_EQ(server.stats().messages_sequenced, 0u);
}

TEST(ServerClient, StatelessServerSequencesWithoutState) {
  SimRuntime rt;
  StatelessServer server;
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  DeliveryLog log;
  CoronaClient c0(kServerId, log.callbacks_for(client_id(0)));
  CoronaClient c1(kServerId, log.callbacks_for(client_id(1)));
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_until_idle();
  c0.create_group(kG, "g", false);
  rt.run_until_idle();
  c0.join(kG);
  c1.join(kG);
  rt.run_until_idle();
  c0.bcast_update(kG, kObj, to_bytes("m"));
  c1.bcast_update(kG, kObj, to_bytes("n"));
  rt.run_until_idle();
  // Total order still holds (it is a sequencer)...
  EXPECT_EQ(log.seqs_for(client_id(0)), log.seqs_for(client_id(1)));
  EXPECT_EQ(server.stats().messages_sequenced, 2u);
}

TEST(ServerClient, ServerRestartRecoversPersistentGroups) {
  SingleServerWorld w(2);
  w.client(0).create_group(kG, "g", /*persistent=*/true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("before-crash"));
  w.settle();
  // Let the async flush run, then crash + restart over the same store.
  w.rt.run_for(500 * kMillisecond);
  w.crash_and_restart_server();

  EXPECT_TRUE(w.server->has_group(kG));
  EXPECT_EQ(to_string(*w.server->group(kG)->state().object(kObj)),
            "before-crash");
  // Membership does not survive (clients must rejoin), state does.
  EXPECT_EQ(w.server->group(kG)->member_count(), 0u);
  w.client(1).join(kG);
  w.settle();
  ASSERT_NE(w.client(1).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)),
            "before-crash");
}

TEST(ServerClient, UnflushedTailRecoveredViaClientResend) {
  ServerConfig slow_flush;
  slow_flush.flush_interval = 10 * kSecond;  // effectively never during test
  SingleServerWorld w(1, std::move(slow_flush));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  // The create is flushed only via the (slow) timer; force a durable base
  // by an explicit early flush cycle: run past one interval.
  w.rt.run_for(11 * kSecond);
  w.client(0).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("lost1;"));
  w.client(0).bcast_update(kG, kObj, to_bytes("lost2;"));
  w.settle();
  // Crash before the next flush: the two updates were never durable.
  w.crash_and_restart_server();
  ASSERT_TRUE(w.server->has_group(kG));
  EXPECT_FALSE(w.server->group(kG)->state().has_object(kObj));

  // Paper §6: the updates are retrieved from the original sender.
  w.client(0).join(kG);
  w.settle();
  w.client(0).resend_recent(kG);
  w.settle();
  ASSERT_TRUE(w.server->group(kG)->state().has_object(kObj));
  EXPECT_EQ(to_string(*w.server->group(kG)->state().object(kObj)),
            "lost1;lost2;");
  EXPECT_EQ(w.server->stats().resends_applied, 2u);
  // Resending again is idempotent (dedup by sender/request id).
  w.client(0).resend_recent(kG);
  w.settle();
  EXPECT_EQ(to_string(*w.server->group(kG)->state().object(kObj)),
            "lost1;lost2;");
}

TEST(ServerClient, SyncFlushStillDelivers) {
  ServerConfig cfg;
  cfg.flush = FlushPolicy::kSync;
  SingleServerWorld w(2, std::move(cfg));
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.client(1).join(kG);
  w.settle();
  w.client(0).bcast_update(kG, kObj, to_bytes("synced"));
  w.settle();
  ASSERT_NE(w.client(1).group_state(kG), nullptr);
  EXPECT_EQ(to_string(*w.client(1).group_state(kG)->object(kObj)), "synced");
  EXPECT_GE(w.server->stats().flushes, 1u);
}

TEST(ServerClient, QosSchedulingPrefersHighPriorityGroup) {
  ServerConfig cfg;
  cfg.enable_qos = true;
  SingleServerWorld w(1, std::move(cfg));
  const GroupId hi{1}, lo{2};
  w.client(0).create_group(hi, "hi", false);
  w.client(0).create_group(lo, "lo", false);
  w.settle();
  w.server->set_group_qos_class(hi, 0);
  w.server->set_group_qos_class(lo, 2);
  w.client(0).join(hi);
  w.client(0).join(lo);
  w.settle();
  w.client(0).bcast_update(lo, kObj, to_bytes("low"));
  w.client(0).bcast_update(hi, kObj, to_bytes("high"));
  w.settle();
  // Both eventually delivered.
  EXPECT_TRUE(w.client(0).group_state(hi)->has_object(kObj));
  EXPECT_TRUE(w.client(0).group_state(lo)->has_object(kObj));
  EXPECT_EQ(w.server->stats().messages_sequenced, 2u);
}

TEST(ServerClient, BatchedFanoutNeedsNoRetransmits) {
  ServerConfig cfg;
  cfg.batch_max_msgs = 4;
  cfg.batch_max_delay = 3 * kMillisecond;
  SingleServerWorld w(3, std::move(cfg));
  w.client(0).create_group(kG, "batched", false);
  w.settle();
  for (int c : {0, 1, 2}) w.client(c).join(kG);
  w.settle();
  // Burst of updates inside one window so the sequencer drains them as
  // coalesced batches and the fan-out emits multi-record client frames.
  for (std::uint64_t i = 0; i < 12; ++i) {
    w.client(i % 3).bcast_update(kG, ObjectId{i + 1},
                                 to_bytes("v" + std::to_string(i)));
  }
  w.settle();
  EXPECT_GT(w.server->stats().batched_messages, 0u);
  for (int c : {0, 1, 2}) {
    EXPECT_EQ(w.client(c).expected_seq(kG), SeqNo{13}) << c;
    for (std::uint64_t i = 0; i < 12; ++i) {
      EXPECT_TRUE(w.client(c).group_state(kG)->has_object(ObjectId{i + 1}))
          << c << " missing object " << i + 1;
    }
  }
  // On a lossless network the batched fan-out must be complete by itself: a
  // dropped batch tail would only reach members via gap recovery, and that
  // shows up here as a served retransmission.
  EXPECT_EQ(w.server->stats().retransmits_served, 0u);
}

TEST(ServerClient, EveryDeniedRequestGetsAnErrorReply) {
  // Authorization failures must be answered, never dropped: a silent denial
  // leaves the client waiting forever.  Cover the create, join, and
  // reduce-log denial paths separately.
  SimRuntime rt;
  GroupStore store;
  AclSessionManager acl;
  acl.allow_all_actions(client_id(0), GroupId{AclSessionManager::kAnyGroup});
  // client 1 gets no rights at all
  CoronaServer server(ServerConfig{}, &store, &acl);
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));

  std::map<RequestId, Status> replies;
  std::vector<Status> join_results;
  CoronaClient::Callbacks cb;
  cb.on_reply = [&](RequestId rid, Status s) { replies[rid] = s; };
  cb.on_joined = [&](GroupId, Status s) { join_results.push_back(s); };
  CoronaClient c0(kServerId);
  CoronaClient c1(kServerId, cb);
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(50 * kMillisecond);
  c0.create_group(kG, "g", true);
  rt.run_for(50 * kMillisecond);

  const RequestId create_rid = c1.create_group(GroupId{9}, "nope", false);
  const RequestId reduce_rid = c1.reduce_log(kG);
  c1.join(kG);
  rt.run_for(100 * kMillisecond);

  ASSERT_TRUE(replies.count(create_rid));
  EXPECT_EQ(replies[create_rid].code, Errc::kPermissionDenied);
  ASSERT_TRUE(replies.count(reduce_rid));
  EXPECT_EQ(replies[reduce_rid].code, Errc::kPermissionDenied);
  ASSERT_EQ(join_results.size(), 1u);
  EXPECT_EQ(join_results[0].code, Errc::kPermissionDenied);
  EXPECT_FALSE(c1.is_joined(kG));
}

TEST(ServerClient, LeaveIsAcknowledged) {
  // leave() is a request like any other: the server must ack it so the
  // client can tell "left cleanly" from "request lost".
  std::map<RequestId, Status> replies;
  CoronaClient::Callbacks cb;
  cb.on_reply = [&](RequestId rid, Status s) { replies[rid] = s; };
  SingleServerWorld w(1, ServerConfig{}, cb);
  w.client(0).create_group(kG, "g", true);
  w.settle();
  w.client(0).join(kG);
  w.settle();
  const RequestId rid = w.client(0).leave(kG);
  w.settle();
  ASSERT_TRUE(replies.count(rid));
  EXPECT_TRUE(replies[rid].ok());
  EXPECT_FALSE(w.client(0).is_joined(kG));
}

TEST(ServerClient, StatelessMembershipQueryListsMembers) {
  SimRuntime rt;
  StatelessServer server;
  rt.add_node(kServerId, &server, rt.network().add_host(HostProfile{}));
  std::vector<std::vector<MemberInfo>> infos;
  CoronaClient::Callbacks cb;
  cb.on_membership_info = [&](GroupId g, const std::vector<MemberInfo>& m) {
    if (g == kG) infos.push_back(m);
  };
  CoronaClient c0(kServerId, cb);
  CoronaClient c1(kServerId);
  rt.add_node(client_id(0), &c0, rt.network().add_host(HostProfile{}));
  rt.add_node(client_id(1), &c1, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_until_idle();
  c0.create_group(kG, "g", false);
  rt.run_until_idle();
  c0.join(kG);
  c1.join(kG);
  rt.run_until_idle();
  c0.get_membership(kG);
  rt.run_until_idle();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].size(), 2u);
}

}  // namespace
}  // namespace corona
