// Deterministic corruption fuzzing of the durable storage formats — the
// seeded twin of fuzz/storage_fuzz.cc, run in every build.
//
// The invariant under attack is the recovery contract (docs/STORAGE.md):
// whatever happens to the bytes on disk, a scan must (a) never crash or read
// out of bounds, (b) return only records that were genuinely written —
// corruption may truncate the record sequence, never alter a record or
// resurrect a discarded one, and (c) leave the log in a state where
// appending and re-scanning still works.
//
// Modeled on tests/net_frame_fuzz_test.cc: build valid images, mutilate them
// deterministically (truncation at every offset, seeded bitflips, spliced
// frames, garbage tails), and assert the prefix property at both the buffer
// level (scan_segment) and the file level (DiskLog reopen).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "storage/disk/disk_checkpoint.h"
#include "storage/disk/disk_format.h"
#include "storage/disk/disk_io.h"
#include "storage/disk/disk_log.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace corona {
namespace {

using disk::DiskCounters;
using disk::scan_segment;
using disk::SegmentScan;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/corona_storage_fuzz_XXXXXX";
    const char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path_ = p != nullptr ? p : "";
  }
  ~TempDir() {
    if (!path_.empty()) disk::remove_tree(path_);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<Bytes> make_records(Rng& rng, std::size_t n) {
  std::vector<Bytes> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(filler_bytes(rng.next_below(64),
                                   static_cast<std::uint8_t>(rng.next_u64())));
  }
  return records;
}

Bytes build_segment(std::uint64_t base, const std::vector<Bytes>& records) {
  Bytes buf;
  disk::append_segment_header(buf, base);
  for (const Bytes& r : records) disk::append_record(buf, r);
  return buf;
}

// The core oracle: everything the scan returns must be a genuine written
// record, in order, from the start — corruption only ever truncates.
void expect_prefix(const SegmentScan& scan, const std::vector<Bytes>& truth) {
  ASSERT_LE(scan.records.size(), truth.size());
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    ASSERT_EQ(scan.records[i], truth[i]) << "record " << i << " altered";
  }
}

TEST(StorageFuzz, TruncationAtEveryOffsetYieldsValidPrefix) {
  Rng rng(0xc0ffee);
  const std::vector<Bytes> records = make_records(rng, 8);
  const Bytes full = build_segment(3, records);
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    Bytes buf(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    const SegmentScan scan = scan_segment(buf);
    expect_prefix(scan, records);
    if (cut == full.size()) {
      EXPECT_EQ(scan.records.size(), records.size());
      EXPECT_FALSE(scan.truncated);
    } else {
      EXPECT_TRUE(scan.truncated || scan.records.size() < records.size() ||
                  !scan.header_ok);
    }
  }
}

TEST(StorageFuzz, SeededBitflipsNeverResurrectOrAlter) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed);
    const std::vector<Bytes> records = make_records(rng, 6);
    Bytes buf = build_segment(rng.next_below(1000), records);
    // 1..4 independent bitflips anywhere in the image.
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      buf[rng.next_below(buf.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    const SegmentScan scan = scan_segment(buf);
    expect_prefix(scan, records);
  }
}

TEST(StorageFuzz, GarbageTailsAreCut) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed * 77);
    const std::vector<Bytes> records = make_records(rng, 4);
    Bytes buf = build_segment(0, records);
    const std::size_t tail = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < tail; ++i) {
      buf.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
    const SegmentScan scan = scan_segment(buf);
    expect_prefix(scan, records);
  }
}

TEST(StorageFuzz, SplicedForeignTailIsNotMisattributed) {
  // Splice: a torn write leaves the tail of an OLD segment image past the
  // truncation point of the new one.  Any record the scan accepts from the
  // spliced region must still be a byte-exact real record — never a blend.
  Rng rng(0x5eed);
  const std::vector<Bytes> current = make_records(rng, 4);
  const std::vector<Bytes> old = make_records(rng, 4);
  Bytes buf = build_segment(0, current);
  const Bytes old_image = build_segment(0, old);
  // Chop the current image mid-record, then splice old-image bytes on.
  buf.resize(buf.size() - 3);
  buf.insert(buf.end(),
             old_image.begin() +
                 static_cast<std::ptrdiff_t>(disk::kSegmentHeaderBytes),
             old_image.end());
  const SegmentScan scan = scan_segment(buf);
  // The torn record's header no longer matches the spliced bytes, so the
  // scan stops at or before it; nothing it returns may mix the two images.
  ASSERT_LE(scan.records.size(), current.size());
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i], current[i]);
  }
}

TEST(StorageFuzz, RandomGarbageBuffersNeverCrashAnyDecoder) {
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    Rng rng(seed * 0x9e3779b9u);
    Bytes buf(rng.next_below(300));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
    const SegmentScan scan = scan_segment(buf);
    // Whatever comes back must be internally consistent.
    EXPECT_LE(scan.valid_bytes, buf.size());
    (void)disk::decode_checkpoint_file(buf);
    (void)disk::decode_log_meta(buf);
  }
}

TEST(StorageFuzz, CheckpointBufferBitflipsAlwaysRejectWhole) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed + 31337);
    const std::string key = "group/" + std::to_string(rng.next_below(50));
    const Bytes blob = filler_bytes(rng.next_below(120));
    Bytes file = disk::encode_checkpoint_file(key, blob);
    file[rng.next_below(file.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    const auto decoded = disk::decode_checkpoint_file(file);
    // A checkpoint is atomic: it decodes byte-identical or not at all.
    if (decoded.has_value()) {
      EXPECT_EQ(decoded->key, key);
      EXPECT_EQ(decoded->blob, blob);
    }
  }
}

// ---------------------------------------------------------------------------
// File-level: mutilate a real log directory, reopen, assert the same prefix
// property — and that the recovered log still takes appends.
// ---------------------------------------------------------------------------

TEST(StorageFuzz, CorruptedLogDirectoryRecoversToValidPrefixAndStaysUsable) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TempDir dir;
    DiskCounters counters;
    Rng rng(seed * 1315423911u);
    const std::string path = dir.path() + "/log";
    std::vector<Bytes> truth;
    {
      disk::DiskLog log(path, 160, &counters);
      const std::size_t n = 5 + rng.next_below(20);
      for (std::size_t i = 0; i < n; ++i) {
        Bytes rec = filler_bytes(rng.next_below(48),
                                 static_cast<std::uint8_t>(rng.next_u64()));
        truth.push_back(rec);
        log.append(std::move(rec));
        if (rng.next_bool(0.6)) log.flush();
      }
      const std::size_t durable = log.durable_size();
      truth.resize(durable);  // the unflushed tail is not on disk
    }
    // Mutilate one random segment file: truncate, flip, or append garbage.
    std::vector<std::string> segs;
    for (const std::string& f : disk::list_files(path)) {
      if (f.starts_with("seg-")) segs.push_back(f);
    }
    if (!segs.empty() && rng.next_bool(0.8)) {
      const std::string victim =
          path + "/" + segs[rng.next_below(segs.size())];
      Bytes content = *disk::read_file(victim);
      const std::uint64_t kind = rng.next_below(3);
      if (kind == 0 && !content.empty()) {
        content.resize(rng.next_below(content.size()));
      } else if (kind == 1 && !content.empty()) {
        content[rng.next_below(content.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      } else {
        const std::size_t tail = 1 + rng.next_below(30);
        for (std::size_t i = 0; i < tail; ++i) {
          content.push_back(static_cast<std::uint8_t>(rng.next_u64()));
        }
      }
      disk::atomic_write_file(victim, content, &counters);
    }
    std::size_t recovered_count = 0;
    {
      disk::DiskLog log(path, 160, &counters);
      ASSERT_LE(log.size(), truth.size());
      const std::uint64_t start = log.start_index();
      for (std::size_t i = 0; i < log.size(); ++i) {
        ASSERT_EQ(log.record(i), truth[start + i]) << "record altered";
      }
      recovered_count = log.size();
      // The survivor must still take writes.
      log.append(to_bytes("post-corruption"));
      log.flush();
    }
    // And a second recovery sees the new record chained on cleanly.
    disk::DiskLog log(path, 160, &counters);
    ASSERT_EQ(log.size(), recovered_count + 1);
    EXPECT_EQ(to_string(log.record(log.size() - 1)), "post-corruption");
  }
}

TEST(StorageFuzz, SplicedCheckpointFileUnderWrongNameIsDropped) {
  TempDir dir;
  DiskCounters counters;
  const std::string path = dir.path() + "/ckpt";
  {
    disk::DiskCheckpointStore cs(path, &counters);
    cs.put("group/1", to_bytes("one"));
    cs.put("group/2", to_bytes("two"));
    cs.flush();
  }
  // Copy group/1's (internally valid) file over group/2's: the embedded key
  // no longer matches the filename, so the splice must be rejected, not
  // silently served as group/2's checkpoint.
  const std::vector<std::string> files = disk::list_files(path);
  ASSERT_EQ(files.size(), 2u);
  const Bytes first = *disk::read_file(path + "/" + files[0]);
  disk::atomic_write_file(path + "/" + files[1], first, &counters);
  disk::DiskCheckpointStore cs(path, &counters);
  EXPECT_EQ(cs.durable_keys(), (std::vector<std::string>{"group/1"}));
  EXPECT_GT(counters.corrupt_files_dropped, 0u);
}

}  // namespace
}  // namespace corona
