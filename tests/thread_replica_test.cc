// The replicated service under the concurrent ThreadRuntime: coordinator,
// leaves and clients each on their own OS thread, real heartbeats and real
// message races through the same protocol code the simulator runs.
#include <gtest/gtest.h>

#include <atomic>

#include "core/client.h"
#include "replica/replica_server.h"
#include "runtime/thread_runtime.h"

namespace corona {
namespace {

const GroupId kG{1};
const ObjectId kObj{1};

ReplicaConfig fast_cfg() {
  ReplicaConfig cfg;
  cfg.heartbeat_interval = 20 * kMillisecond;
  cfg.fd_timeout = 100 * kMillisecond;
  cfg.election_window = 50 * kMillisecond;
  cfg.takeover_window = 50 * kMillisecond;
  return cfg;
}

TEST(ThreadedReplica, CrossLeafMulticastAndStateTransfer) {
  ThreadRuntime rt;
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}, NodeId{3}};
  ReplicaServer coordinator(fast_cfg(), ids);
  ReplicaServer leaf_a(fast_cfg(), ids);
  ReplicaServer leaf_b(fast_cfg(), ids);
  rt.add_node(ids[0], &coordinator);
  rt.add_node(ids[1], &leaf_a);
  rt.add_node(ids[2], &leaf_b);

  std::atomic<int> delivered{0};
  CoronaClient::Callbacks cb;
  cb.on_deliver = [&](GroupId, const UpdateRecord&) { delivered.fetch_add(1); };
  CoronaClient ann(ids[1], cb);
  CoronaClient bob(ids[2], cb);
  rt.add_node(NodeId{100}, &ann);
  rt.add_node(NodeId{101}, &bob);
  rt.start();
  rt.wait_quiescent(2 * kSecond);

  ann.create_group(kG, "g", true);
  rt.wait_quiescent(2 * kSecond);
  ann.join(kG);
  rt.wait_quiescent(2 * kSecond);
  ann.bcast_update(kG, kObj, to_bytes("pre;"));
  rt.wait_quiescent(2 * kSecond);

  // Bob joins through the other leaf: its copy is pulled on demand, and the
  // transfer carries ann's update.
  bob.join(kG);
  rt.wait_quiescent(2 * kSecond);
  ASSERT_TRUE(bob.is_joined(kG));
  ASSERT_NE(bob.group_state(kG), nullptr);
  EXPECT_EQ(to_string(*bob.group_state(kG)->object(kObj)), "pre;");

  bob.bcast_update(kG, kObj, to_bytes("post;"));
  rt.wait_quiescent(2 * kSecond);
  EXPECT_EQ(to_string(*ann.group_state(kG)->object(kObj)), "pre;post;");
  EXPECT_GE(delivered.load(), 3);
  rt.stop();
}

TEST(ThreadedReplica, CoordinatorCrashElectionUnderThreads) {
  ThreadRuntime rt;
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}, NodeId{3}, NodeId{4}};
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (NodeId id : ids) {
    servers.push_back(std::make_unique<ReplicaServer>(fast_cfg(), ids));
    rt.add_node(id, servers.back().get());
  }
  CoronaClient client(ids[1]);
  rt.add_node(NodeId{100}, &client);
  rt.start();
  rt.wait_quiescent(2 * kSecond);

  client.create_group(kG, "g", true);
  rt.wait_quiescent(2 * kSecond);
  client.join(kG);
  rt.wait_quiescent(2 * kSecond);
  client.bcast_update(kG, kObj, to_bytes("before;"));
  rt.wait_quiescent(2 * kSecond);

  rt.crash(ids[0]);
  // Real time must pass for heartbeat timeouts + election (fd 100 ms,
  // staged claims): poll until a survivor takes over.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool elected = false;
  while (!elected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    for (std::size_t i = 1; i < servers.size(); ++i) {
      if (servers[i]->is_coordinator()) elected = true;
    }
  }
  ASSERT_TRUE(elected);

  client.bcast_update(kG, kObj, to_bytes("after;"));
  rt.wait_quiescent(5 * kSecond);
  ASSERT_NE(client.group_state(kG), nullptr);
  EXPECT_EQ(to_string(*client.group_state(kG)->object(kObj)),
            "before;after;");
  rt.stop();
}

}  // namespace
}  // namespace corona
