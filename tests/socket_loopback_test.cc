// End-to-end Corona over real TCP on 127.0.0.1: one SocketRuntime process
// hosting the stateful server, three more hosting one CoronaClient each —
// four event loops, four real sockets, the unchanged protocol code from
// src/core.  Covers the full session: create, join with customized state
// transfer, >100 sequenced multicasts in identical total order, locks, a
// dropped-and-reconnected client resyncing via retransmission, and leave.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "core/stateless_server.h"
#include "net/socket_runtime.h"

namespace corona::net {
namespace {

const NodeId kServerId{1};
const GroupId kG{1};
const ObjectId kObj{1};

// Polls `pred` until it holds or `timeout` wall-clock elapses.  Generous
// timeouts keep this stable under sanitizers on loaded machines.
bool wait_until(const std::function<bool()>& pred,
                Duration timeout = 30 * kSecond) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// One client "process": its own SocketRuntime whose address book holds just
// the server, plus journals filled from the delivery callback.
struct ClientProc {
  explicit ClientProc(NodeId id, std::uint16_t server_port,
                      SocketRuntimeConfig cfg = {},
                      int first_deliver_stall_ms = 0)
      : rt(cfg), id(id) {
    CoronaClient::Callbacks cb;
    cb.on_deliver = [this, first_deliver_stall_ms](GroupId,
                                                   const UpdateRecord& rec) {
      // A positive stall blocks this client's event loop on its first
      // delivery.  While it sleeps nothing is read, so the kernel buffers
      // behind it stay at their small initial sizes and a concurrent
      // fan-out burst sees genuine EAGAIN backpressure at the server.
      if (first_deliver_stall_ms > 0 && !stalled) {
        stalled = true;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(first_deliver_stall_ms));
      }
      std::lock_guard<std::mutex> lock(mu);
      journal.push_back(rec.seq);
    };
    cb.on_joined = [this](GroupId, Status s) {
      std::lock_guard<std::mutex> lock(mu);
      if (s.is_ok()) ++joins_ok;
    };
    cb.on_lock_granted = [this](GroupId, ObjectId) {
      std::lock_guard<std::mutex> lock(mu);
      ++lock_grants;
    };
    cb.on_reply = [this](RequestId, Status s) {
      std::lock_guard<std::mutex> lock(mu);
      if (s.is_ok()) ++replies_ok;
    };
    client = std::make_unique<CoronaClient>(kServerId, cb);
    rt.add_node(id, client.get());
    rt.set_peer_address(kServerId, Endpoint{"127.0.0.1", server_port});
    rt.start();
  }
  ~ClientProc() { rt.stop(); }

  std::size_t journal_size() {
    std::lock_guard<std::mutex> lock(mu);
    return journal.size();
  }
  std::vector<SeqNo> journal_copy() {
    std::lock_guard<std::mutex> lock(mu);
    return journal;
  }
  void clear_journal() {
    std::lock_guard<std::mutex> lock(mu);
    journal.clear();
  }
  int joins() {
    std::lock_guard<std::mutex> lock(mu);
    return joins_ok;
  }
  int grants() {
    std::lock_guard<std::mutex> lock(mu);
    return lock_grants;
  }
  int replies() {
    std::lock_guard<std::mutex> lock(mu);
    return replies_ok;
  }

  SocketRuntime rt;
  NodeId id;
  std::unique_ptr<CoronaClient> client;

  std::mutex mu;
  std::vector<SeqNo> journal;
  bool stalled = false;  // loop-thread only
  int joins_ok = 0;
  int lock_grants = 0;
  int replies_ok = 0;
};

TEST(SocketLoopback, FullSessionOverRealTcp) {
  // --- server process ---
  SocketRuntime server_rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  server_rt.add_node(kServerId, &server);
  auto port = server_rt.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  server_rt.start();

  // --- three client processes, real connections over 127.0.0.1 ---
  ClientProc c0(NodeId{100}, port.value());
  ClientProc c1(NodeId{101}, port.value());
  // c2 gets a long reconnect backoff so the disconnect window below is wide
  // enough that deliveries are provably lost and must be re-fetched.
  SocketRuntimeConfig slow_redial;
  slow_redial.reconnect_backoff_min = 500 * kMillisecond;
  ClientProc c2(NodeId{102}, port.value(), slow_redial);

  ASSERT_TRUE(wait_until([&] { return server_rt.stats().accepts >= 3; }));

  // --- create + join (full transfer for c0/c1) ---
  c0.client->create_group(kG, "g", true);
  // c1's join rides a different TCP connection than c0's create, so nothing
  // orders them at the server; wait for the create ack before c1 joins.
  ASSERT_TRUE(wait_until([&] { return c0.replies() >= 1; }));
  c0.client->join(kG);
  c1.client->join(kG);
  ASSERT_TRUE(wait_until([&] { return c0.joins() == 1 && c1.joins() == 1; }));

  // --- customized state transfer: 20 updates, then join with last-5 ---
  for (int i = 0; i < 20; ++i) {
    c0.client->bcast_update(kG, kObj, to_bytes("u"));
  }
  ASSERT_TRUE(wait_until([&] { return c1.journal_size() >= 20; }));
  c2.client->join(kG, TransferPolicySpec::last_n_updates(5));
  ASSERT_TRUE(wait_until([&] { return c2.joins() == 1; }));
  {
    const SharedState* st = c2.client->group_state(kG);
    ASSERT_NE(st, nullptr);
    ASSERT_NE(st->object(kObj), nullptr);
    EXPECT_EQ(st->object(kObj)->size(), 5u)
        << "last_n_updates(5) must transfer exactly the 5 newest updates";
    const SharedState* full = c1.client->group_state(kG);
    ASSERT_NE(full, nullptr);
    EXPECT_EQ(full->object(kObj)->size(), 20u);
  }

  // --- >100 sequenced multicasts from all three, identical total order ---
  c0.clear_journal();
  c1.clear_journal();
  c2.clear_journal();
  constexpr int kRounds = 35;  // 3 * 35 = 105 multicasts
  for (int round = 0; round < kRounds; ++round) {
    c0.client->bcast_update(kG, kObj, to_bytes("a"));
    c1.client->bcast_update(kG, kObj, to_bytes("b"));
    c2.client->bcast_update(kG, kObj, to_bytes("c"));
  }
  const std::size_t expect = 3 * kRounds;
  ASSERT_TRUE(wait_until([&] {
    return c0.journal_size() >= expect && c1.journal_size() >= expect &&
           c2.journal_size() >= expect;
  }));
  const auto j0 = c0.journal_copy();
  const auto j1 = c1.journal_copy();
  const auto j2 = c2.journal_copy();
  ASSERT_EQ(j0.size(), expect);
  EXPECT_EQ(j0, j1) << "clients saw different total orders";
  EXPECT_EQ(j0, j2) << "clients saw different total orders";
  for (std::size_t i = 1; i < j0.size(); ++i) {
    ASSERT_EQ(j0[i - 1] + 1, j0[i]) << "sequence gap in the total order";
  }

  // --- locks serialize across real connections ---
  c0.client->lock(kG, kObj);
  ASSERT_TRUE(wait_until([&] { return c0.grants() == 1; }));
  c1.client->lock(kG, kObj);  // must queue behind c0
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(c1.grants(), 0);
  c0.client->unlock(kG, kObj);
  ASSERT_TRUE(wait_until([&] { return c1.grants() == 1; }));
  c1.client->unlock(kG, kObj);

  // --- disconnect c2, lose deliveries, reconnect, resync via retransmit ---
  const auto disconnects_before = server_rt.stats().disconnects;
  server_rt.drop_connection(NodeId{102});
  ASSERT_TRUE(wait_until(
      [&] { return server_rt.stats().disconnects > disconnects_before; }));
  // These fan-outs happen while c2 has no connection (its redial waits
  // 500 ms), so its copies are dropped at the server and must come back
  // through the retransmission path.
  for (int i = 0; i < 5; ++i) {
    c0.client->bcast_update(kG, kObj, to_bytes("lost"));
  }
  ASSERT_TRUE(wait_until([&] {
    return c0.journal_size() >= expect + 5 && c1.journal_size() >= expect + 5;
  }));
  EXPECT_LT(c2.journal_size(), expect + 5) << "c2 was supposed to be offline";
  // Wait out the redial, then send one more update: its sequence number
  // exposes the gap to c2, which requests retransmission and catches up.
  ASSERT_TRUE(wait_until(
      [&] { return c2.rt.stats().connects_ok >= 2; }, 60 * kSecond));
  c0.client->bcast_update(kG, kObj, to_bytes("after"));
  ASSERT_TRUE(wait_until([&] {
    return c2.journal_size() >= expect + 6;
  }));
  EXPECT_GE(c2.client->gaps_detected(), 1u);
  EXPECT_EQ(c2.journal_copy(), c0.journal_copy())
      << "resynced client diverged from the total order";

  // --- leave: no further deliveries reach c2 ---
  c2.client->leave(kG);
  ASSERT_TRUE(wait_until([&] { return !c2.client->is_joined(kG); }));
  const std::size_t c2_final = c2.journal_size();
  c0.client->bcast_update(kG, kObj, to_bytes("bye"));
  ASSERT_TRUE(wait_until([&] { return c0.journal_size() >= expect + 7; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(c2.journal_size(), c2_final);

  c2.rt.stop();
  c1.rt.stop();
  c0.rt.stop();
  server_rt.stop();
}

// Batched fan-out over real TCP: the server coalesces deliveries into
// multi-frame gathered writes, and a client severed *mid-batch* — the
// connection dies while coalesced frames are still being pushed — resyncs
// via retransmission to the exact unacked suffix.  A torn batch would show
// up as a duplicate, a gap, or a divergent journal.
TEST(SocketLoopback, BatchedFanoutSurvivesMidBatchDisconnect) {
  SocketRuntime server_rt;
  GroupStore store;
  ServerConfig scfg;
  scfg.batch_max_msgs = 8;
  scfg.batch_max_delay = 20 * kMillisecond;
  CoronaServer server(scfg, &store);
  server_rt.add_node(kServerId, &server);
  auto port = server_rt.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  server_rt.start();

  ClientProc c0(NodeId{100}, port.value());
  ClientProc c1(NodeId{101}, port.value());
  // The victim gets a long redial backoff so its offline window straddles
  // whole batches, not just single frames.
  SocketRuntimeConfig slow_redial;
  slow_redial.reconnect_backoff_min = 500 * kMillisecond;
  ClientProc c2(NodeId{102}, port.value(), slow_redial);
  ASSERT_TRUE(wait_until([&] { return server_rt.stats().accepts >= 3; }));

  c0.client->create_group(kG, "g", true);
  ASSERT_TRUE(wait_until([&] { return c0.replies() >= 1; }));
  c0.client->join(kG);
  c1.client->join(kG);
  c2.client->join(kG);
  ASSERT_TRUE(wait_until(
      [&] { return c0.joins() == 1 && c1.joins() == 1 && c2.joins() == 1; }));

  // --- warm burst: back-to-back sends fill the batch queue, so fan-out
  // frames leave in gathered writes ---
  constexpr std::size_t kWarm = 40;
  for (std::size_t i = 0; i < kWarm; ++i) {
    c0.client->bcast_update(kG, kObj, to_bytes("w"));
  }
  ASSERT_TRUE(wait_until([&] {
    return c0.journal_size() >= kWarm && c1.journal_size() >= kWarm &&
           c2.journal_size() >= kWarm;
  }));
  EXPECT_GE(server_rt.stats().writev_calls, 1u);
  EXPECT_GE(server_rt.stats().frames_coalesced, 2u)
      << "no fan-out frame was ever coalesced into a gathered write";

  // --- sever c2 mid-stream, then push two more batches while it is gone ---
  const auto disconnects_before = server_rt.stats().disconnects;
  server_rt.drop_connection(NodeId{102});
  ASSERT_TRUE(wait_until(
      [&] { return server_rt.stats().disconnects > disconnects_before; }));
  constexpr std::size_t kLost = 16;
  for (std::size_t i = 0; i < kLost; ++i) {
    c0.client->bcast_update(kG, kObj, to_bytes("lost"));
  }
  ASSERT_TRUE(wait_until([&] {
    return c0.journal_size() >= kWarm + kLost &&
           c1.journal_size() >= kWarm + kLost;
  }));
  EXPECT_LT(c2.journal_size(), kWarm + kLost)
      << "c2 was supposed to be offline";

  // --- redial, nudge, resync: exactly the unacked suffix comes back ---
  ASSERT_TRUE(wait_until(
      [&] { return c2.rt.stats().connects_ok >= 2; }, 60 * kSecond));
  c0.client->bcast_update(kG, kObj, to_bytes("after"));
  ASSERT_TRUE(wait_until(
      [&] { return c2.journal_size() >= kWarm + kLost + 1; }));
  EXPECT_GE(c2.client->gaps_detected(), 1u);

  const auto j0 = c0.journal_copy();
  const auto j2 = c2.journal_copy();
  EXPECT_EQ(j2, j0) << "resynced client diverged from the total order";
  for (std::size_t i = 1; i < j2.size(); ++i) {
    ASSERT_EQ(j2[i - 1] + 1, j2[i])
        << "duplicate or gap at delivery " << i
        << " — resync replayed something other than the unacked suffix";
  }

  c2.rt.stop();
  c1.rt.stop();
  c0.rt.stop();
  server_rt.stop();
  // The loop thread is joined; server counters are safe to read now.
  EXPECT_GE(server.stats().batches_sequenced, 1u);
  EXPECT_GE(server.stats().batch_frames_sent, 1u)
      << "batching was configured but no coalesced frame was sent";
}

TEST(SocketLoopback, StatelessServerSequencesOverSockets) {
  // The Figure-3 stateless configuration deploys over TCP unchanged too.
  SocketRuntime server_rt;
  StatelessServer server;
  server_rt.add_node(kServerId, &server);
  auto port = server_rt.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  server_rt.start();

  ClientProc a(NodeId{100}, port.value());
  ClientProc b(NodeId{101}, port.value());

  a.client->create_group(kG, "g", false);
  // b's join is on a different connection than a's create; wait for the ack.
  ASSERT_TRUE(wait_until([&] { return a.replies() >= 1; }));
  a.client->join(kG, TransferPolicySpec::nothing());
  b.client->join(kG, TransferPolicySpec::nothing());
  ASSERT_TRUE(wait_until([&] { return a.joins() == 1 && b.joins() == 1; }));

  for (int i = 0; i < 10; ++i) {
    a.client->bcast_update(kG, kObj, to_bytes("x"));
  }
  ASSERT_TRUE(wait_until(
      [&] { return a.journal_size() >= 10 && b.journal_size() >= 10; }));
  EXPECT_EQ(a.journal_copy(), b.journal_copy());

  a.rt.stop();
  b.rt.stop();
  server_rt.stop();
}

// Node::on_timer must work unchanged on the socket engine.
class TickNode : public Node {
 public:
  std::atomic<int> fired{0};
  TimerHandle cancelled = 0;

  void on_start() override {
    set_timer(5 * kMillisecond, 1);
    cancelled = set_timer(10 * kMillisecond, 2);
    cancel_timer(cancelled);
    set_timer(15 * kMillisecond, 3);
  }
  void on_message(NodeId, const Message&) override {}
  void on_timer(std::uint64_t tag) override {
    EXPECT_NE(tag, 2u) << "cancelled timer fired";
    fired.fetch_add(1);
  }
};

TEST(SocketLoopback, TimersFireAndCancelOnLoopThread) {
  SocketRuntime rt;
  TickNode n;
  rt.add_node(NodeId{1}, &n);
  rt.start();
  ASSERT_TRUE(wait_until([&] { return n.fired.load() >= 2; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rt.stop();
  EXPECT_EQ(n.fired.load(), 2);
}

TEST(SocketLoopback, TransportKeepaliveKeepsIdleConnectionAlive) {
  SocketRuntime server_rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  server_rt.add_node(kServerId, &server);
  auto port = server_rt.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.is_ok());
  server_rt.start();

  SocketRuntimeConfig cfg;
  cfg.keepalive_interval = 20 * kMillisecond;
  ClientProc c(NodeId{100}, port.value(), cfg);
  ASSERT_TRUE(wait_until([&] { return c.rt.stats().pings_sent >= 3; }));
  // Pongs came back on the same connection; no reconnect happened.
  EXPECT_EQ(c.rt.stats().connects_ok, 1u);
  EXPECT_EQ(c.rt.stats().disconnects, 0u);

  c.rt.stop();
  server_rt.stop();
}

TEST(SocketLoopback, ServerUnreachableThenReachable) {
  // A client started before its server exists must keep redialing with
  // backoff and deliver the queued traffic once the server appears.
  SocketRuntime probe;
  auto port = probe.listen("127.0.0.1", 0);  // reserve an ephemeral port
  ASSERT_TRUE(port.is_ok());
  const std::uint16_t p = port.value();
  // Release the port (nothing listens there now).
  probe.stop();

  ClientProc c(NodeId{100}, p);
  c.client->create_group(kG, "g", true);  // queued toward the absent server
  ASSERT_TRUE(wait_until(
      [&] { return c.rt.stats().reconnects_scheduled >= 2; }));

  SocketRuntime server_rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  server_rt.add_node(kServerId, &server);
  auto rebind = server_rt.listen("127.0.0.1", p);
  ASSERT_TRUE(rebind.is_ok()) << rebind.status().to_string();
  server_rt.start();

  c.client->join(kG);
  ASSERT_TRUE(wait_until([&] { return c.joins() == 1; }, 60 * kSecond));

  c.rt.stop();
  server_rt.stop();
}

// Counts messages arriving at a node, independent of protocol role.
struct SinkNode final : Node {
  std::mutex mu;
  std::vector<SeqNo> seqs;
  void on_message(NodeId, const Message& m) override {
    std::lock_guard<std::mutex> lock(mu);
    seqs.push_back(m.seq);
  }
  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return seqs.size();
  }
};

TEST(SocketLoopback, BatchOfOneStillDelivers) {
  // send_batch is the transport's public API, and a run of one message is a
  // legal batch: it must take the single-frame fast path, not vanish.
  SocketRuntime server_rt;
  SinkNode sink;
  server_rt.add_node(kServerId, &sink);
  auto port = server_rt.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  server_rt.start();

  SocketRuntime sender_rt;
  SinkNode unused;
  sender_rt.add_node(NodeId{100}, &unused);
  sender_rt.set_peer_address(kServerId, Endpoint{"127.0.0.1", port.value()});
  sender_rt.start();

  Message one;
  one.type = MsgType::kHeartbeat;
  one.seq = 7;
  sender_rt.send_batch(NodeId{100}, kServerId, {one});
  ASSERT_TRUE(wait_until([&] { return sink.count() >= 1; }));

  Message a = one, b = one;
  a.seq = 8;
  b.seq = 9;
  sender_rt.send_batch(NodeId{100}, kServerId, {a, b});
  ASSERT_TRUE(wait_until([&] { return sink.count() >= 3; }));

  sender_rt.stop();
  server_rt.stop();
  EXPECT_EQ(sink.seqs, (std::vector<SeqNo>{7, 8, 9}));
  EXPECT_EQ(server_rt.stats().messages_dropped, 0u);
}

TEST(SocketLoopback, StopWhileRedialTimerPending) {
  // Shutdown-ordering: stop() must join the loop cleanly while the
  // reconnect-backoff timer is armed and a connect may be in flight.
  SocketRuntime probe;
  auto port = probe.listen("127.0.0.1", 0);  // reserve an ephemeral port
  ASSERT_TRUE(port.is_ok());
  const std::uint16_t p = port.value();
  probe.stop();  // nothing listens there now

  SocketRuntimeConfig cfg;
  cfg.reconnect_backoff_min = 5 * kMillisecond;
  cfg.reconnect_backoff_max = 20 * kMillisecond;
  auto c = std::make_unique<ClientProc>(NodeId{100}, p, cfg);
  c->client->create_group(kG, "g", true);  // traffic queued toward nobody
  ASSERT_TRUE(wait_until(
      [&] { return c->rt.stats().reconnects_scheduled >= 1; }));
  c->rt.stop();  // redial timer still pending
  c->rt.stop();  // second stop is a no-op
  c.reset();     // and the destructor's stop is a third
}

TEST(SocketLoopback, StopWhileBatchPartiallyDrained) {
  // Shutdown-ordering: stop() right after a large send_batch — the loop
  // may be mid-writev with most of the batch still queued.  The contract
  // is that loss cuts only the tail: whatever arrives is an in-order
  // prefix, and the teardown itself must be race-free (tsan checks that).
  SocketRuntime server_rt;
  SinkNode sink;
  server_rt.add_node(kServerId, &sink);
  auto port = server_rt.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  server_rt.start();

  SocketRuntime sender_rt;
  SinkNode unused;
  sender_rt.add_node(NodeId{100}, &unused);
  sender_rt.set_peer_address(kServerId, Endpoint{"127.0.0.1", port.value()});
  sender_rt.start();

  Message m;
  m.type = MsgType::kHeartbeat;
  m.payload = Bytes(1024, 0x5a);
  std::vector<Message> batch;
  for (SeqNo i = 0; i < 512; ++i) {
    m.seq = i;
    batch.push_back(m);
  }
  sender_rt.send_batch(NodeId{100}, kServerId, batch);
  sender_rt.stop();  // no settling: the batch is at best partially written
  server_rt.stop();

  const std::vector<SeqNo> got = sink.seqs;  // loops joined; no lock needed
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], i) << "delivered batch is not an in-order prefix";
  }
}

TEST(SocketLoopback, WriteBackpressureDrainsViaEpollout) {
  // A fan-out burst larger than the kernel socket buffers forces sendmsg
  // into EAGAIN with frames still queued in user space.  Nothing else ever
  // pokes that connection again — client heartbeats are off, delivers are
  // unacknowledged, and the burst is over — so the backlog drains only if
  // the loop registered EPOLLOUT for the queued bytes.  The receiver stalls
  // its event loop on the first delivery: with nothing being read, TCP
  // autotuning cannot grow the buffers past their small initial sizes, so
  // most of the burst provably lands in the server's user-space queue
  // rather than being absorbed by the kernel.
  SocketRuntime server_rt;
  GroupStore store;
  CoronaServer server(ServerConfig{}, &store);
  server_rt.add_node(kServerId, &server);
  auto port = server_rt.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.is_ok()) << port.status().to_string();
  server_rt.start();

  ClientProc sender(NodeId{100}, port.value());
  ClientProc receiver(NodeId{101}, port.value(), {},
                      /*first_deliver_stall_ms=*/800);
  ASSERT_TRUE(wait_until([&] { return server_rt.stats().accepts >= 2; }));

  sender.client->create_group(kG, "g", true);
  ASSERT_TRUE(wait_until([&] { return sender.replies() >= 1; }));
  sender.client->join(kG);
  receiver.client->join(kG);
  ASSERT_TRUE(wait_until(
      [&] { return sender.joins() == 1 && receiver.joins() == 1; }));

  // ~6.4 MB of deliveries per client: beyond what the kernel can absorb
  // for the stalled connection (sndbuf autotunes to at most 4 MB and the
  // frozen rcvbuf holds a few hundred KB), yet the post-EAGAIN backlog
  // stays comfortably under the 8 MB per-connection queue cap (overflow
  // there would drop frames and fail the messages_dropped check below).
  constexpr std::size_t kBurst = 200;
  const std::string payload(32 * 1024, 'x');
  for (std::size_t i = 0; i < kBurst; ++i) {
    sender.client->bcast_update(kG, kObj, to_bytes(payload));
  }
  EXPECT_TRUE(wait_until([&] { return receiver.journal_size() >= kBurst; }))
      << "fan-out stalled at " << receiver.journal_size() << "/" << kBurst
      << " -- backlogged frames drain only via EPOLLOUT";
  EXPECT_TRUE(wait_until([&] { return sender.journal_size() >= kBurst; }));
  EXPECT_EQ(server_rt.stats().messages_dropped, 0u);
  server_rt.stop();  // the loop reads `store`, which dies before server_rt
}

}  // namespace
}  // namespace corona::net
