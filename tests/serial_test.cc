#include <gtest/gtest.h>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "serial/message.h"
#include "util/rng.h"

namespace corona {
namespace {

TEST(Codec, PrimitivesRoundTrip) {
  Encoder e;
  e.put_u8(0xab);
  e.put_bool(true);
  e.put_u32(1234567);
  e.put_u64(0xdeadbeefcafebabeull);
  e.put_i64(-987654321);
  e.put_string("corona");
  e.put_bytes(filler_bytes(33));

  Decoder d(e.buffer());
  EXPECT_EQ(d.get_u8(), 0xab);
  EXPECT_TRUE(d.get_bool());
  EXPECT_EQ(d.get_u32(), 1234567u);
  EXPECT_EQ(d.get_u64(), 0xdeadbeefcafebabeull);
  EXPECT_EQ(d.get_i64(), -987654321);
  EXPECT_EQ(d.get_string(), "corona");
  EXPECT_EQ(d.get_bytes(), filler_bytes(33));
  EXPECT_TRUE(d.ok());
  EXPECT_TRUE(d.at_end());
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 32),
        ~0ull}) {
    Encoder e;
    e.put_u64(v);
    Decoder d(e.buffer());
    EXPECT_EQ(d.get_u64(), v);
    EXPECT_TRUE(d.ok());
  }
}

TEST(Codec, SignedZigzag) {
  for (std::int64_t v : std::initializer_list<std::int64_t>{
           0, -1, 1, INT64_MIN, INT64_MAX, -123456789}) {
    Encoder e;
    e.put_i64(v);
    Decoder d(e.buffer());
    EXPECT_EQ(d.get_i64(), v);
  }
}

TEST(Codec, TruncatedBufferTripsOkFlag) {
  Encoder e;
  e.put_bytes(filler_bytes(100));
  Bytes wire = e.take();
  wire.resize(10);  // cut mid-payload
  Decoder d(wire);
  (void)d.get_bytes();
  EXPECT_FALSE(d.ok());
}

TEST(Codec, OverlongVarintRejected) {
  Bytes wire(11, 0x80);  // 11 continuation bytes: > 64 bits
  Decoder d(wire);
  (void)d.get_u64();
  EXPECT_FALSE(d.ok());
}

TEST(Codec, ReadsAfterFailureReturnZero) {
  Bytes empty;
  Decoder d(empty);
  EXPECT_EQ(d.get_u64(), 0u);
  EXPECT_EQ(d.get_string(), "");
  EXPECT_FALSE(d.ok());
}

Message sample_deliver() {
  UpdateRecord rec;
  rec.seq = 42;
  rec.kind = PayloadKind::kUpdate;
  rec.object = ObjectId{7};
  rec.data = to_bytes("stroke(1,2)->(3,4)");
  rec.sender = NodeId{103};
  rec.timestamp = 123456789;
  rec.request_id = 17;
  return make_deliver(GroupId{9}, rec);
}

TEST(Message, DeliverRoundTrip) {
  const Message m = sample_deliver();
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), m);
}

TEST(Message, JoinCarriesPolicy) {
  Message m = make_join(GroupId{3},
                        TransferPolicySpec::objects_last_n(
                            {ObjectId{1}, ObjectId{2}}, 25),
                        MemberRole::kObserver, true, 5);
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().policy.mode, TransferMode::kObjectsLastN);
  EXPECT_EQ(decoded.value().policy.last_n, 25u);
  ASSERT_EQ(decoded.value().policy.objects.size(), 2u);
  EXPECT_EQ(decoded.value().policy.objects[1], ObjectId{2});
  EXPECT_EQ(decoded.value().role, MemberRole::kObserver);
  EXPECT_EQ(decoded.value(), m);
}

TEST(Message, CreateGroupCarriesInitialState) {
  Message m = make_create_group(
      GroupId{4}, "whiteboard", true,
      {StateEntry{ObjectId{1}, to_bytes("canvas")},
       StateEntry{ObjectId{2}, filler_bytes(500)}},
      9);
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), m);
  EXPECT_TRUE(decoded.value().persistent);
  EXPECT_EQ(decoded.value().text, "whiteboard");
  ASSERT_EQ(decoded.value().state.size(), 2u);
  EXPECT_EQ(decoded.value().state[1].data.size(), 500u);
}

TEST(Message, ServerListRoundTrip) {
  Message m = make_server_list(12, {NodeId{1}, NodeId{2}, NodeId{5}});
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().nodes.size(), 3u);
  EXPECT_EQ(decoded.value(), m);
}

TEST(Message, JoinReplyWithUpdatesAndMembers) {
  Message m;
  m.type = MsgType::kJoinReply;
  m.group = GroupId{2};
  m.seq = 10;
  m.state = {StateEntry{ObjectId{1}, to_bytes("abc")}};
  for (SeqNo s = 11; s <= 13; ++s) {
    UpdateRecord u;
    u.seq = s;
    u.object = ObjectId{1};
    u.data = to_bytes("u");
    u.sender = NodeId{100};
    m.updates.push_back(u);
  }
  m.members = {MemberInfo{NodeId{100}, MemberRole::kPrincipal},
               MemberInfo{NodeId{101}, MemberRole::kObserver}};
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), m);
}

TEST(Message, DecodeRejectsBadVersion) {
  Bytes wire = sample_deliver().encode();
  wire[0] = 99;
  EXPECT_FALSE(Message::decode(wire).is_ok());
}

TEST(Message, DecodeRejectsTrailingBytes) {
  Bytes wire = sample_deliver().encode();
  wire.push_back(0);
  EXPECT_FALSE(Message::decode(wire).is_ok());
}

TEST(Message, DecodeRejectsTruncation) {
  const Bytes wire = sample_deliver().encode();
  for (std::size_t cut : {1ul, wire.size() / 2, wire.size() - 1}) {
    Bytes chopped(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Message::decode(chopped).is_ok()) << "cut=" << cut;
  }
}

TEST(Message, WireSizeMatchesEncoding) {
  const Message m = sample_deliver();
  EXPECT_EQ(m.wire_size(), m.encode().size());
}

TEST(Message, EveryTypeHasName) {
  for (int t = 0; t <= static_cast<int>(MsgType::kDigestReply); ++t) {
    EXPECT_STRNE(msg_type_name(static_cast<MsgType>(t)), "unknown") << t;
  }
}

TEST(RecordCodec, UpdateRecordRoundTrip) {
  UpdateRecord u;
  u.seq = 77;
  u.kind = PayloadKind::kState;
  u.object = ObjectId{3};
  u.data = filler_bytes(256);
  u.sender = NodeId{42};
  u.timestamp = -5;
  u.request_id = 8;
  auto decoded = decode_update_record(encode_update_record(u));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), u);
}

TEST(RecordCodec, StateEntryRoundTrip) {
  StateEntry s{ObjectId{11}, to_bytes("payload")};
  auto decoded = decode_state_entry(encode_state_entry(s));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), s);
}

TEST(RecordCodec, CorruptRecordRejected) {
  Bytes wire = encode_update_record(UpdateRecord{});
  wire.pop_back();
  EXPECT_FALSE(decode_update_record(wire).is_ok());
}

// Property sweep: randomized messages round-trip for a range of payload
// sizes and field mixes.
class MessageFuzzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MessageFuzzRoundTrip, RandomizedRoundTrip) {
  Rng rng(GetParam() * 7919 + 1);
  for (int iter = 0; iter < 50; ++iter) {
    Message m;
    m.type = MsgType::kDeliver;
    m.group = GroupId{rng.next_u64()};
    m.object = ObjectId{rng.next_u64()};
    m.seq = rng.next_u64();
    m.seq2 = rng.next_u64();
    m.sender = NodeId{rng.next_u64()};
    m.epoch = rng.next_u64();
    m.timestamp = static_cast<TimePoint>(rng.next_u64());
    m.sender_inclusive = rng.next_bool(0.5);
    m.accept = rng.next_bool(0.5);
    m.kind = rng.next_bool(0.5) ? PayloadKind::kState : PayloadKind::kUpdate;
    m.payload = filler_bytes(rng.next_below(2000),
                             static_cast<std::uint8_t>(rng.next_u64()));
    const auto n64 = rng.next_below(10);
    for (std::uint64_t i = 0; i < n64; ++i) m.u64s.push_back(rng.next_u64());
    auto decoded = Message::decode(m.encode());
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzRoundTrip,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace corona
