// The SIGKILL-recovery property, with a real kill(2): a writer process is
// killed at a random moment — possibly mid-flush, mid-checkpoint, or
// mid-segment-rotation — and the reopened store must come back to a
// byte-identical prefix of what the writer produced:
//   * every update the writer observed as flushed survives (the durable
//     floor, communicated through an atomically-replaced progress file);
//   * recovered sequence numbers are contiguous from the checkpoint base,
//     with no gap, duplicate, or resurrected record beyond the unflushed
//     tail;
//   * recovered payloads are byte-identical to what was written (payloads
//     are a pure function of seq, so the check needs no shared memory).
//
// This is the process-level half of the recovery gate; the in-process
// randomized crash-point equivalence property lives in disk_storage_test.cc
// and the daemon-level loopback resync scenario in the CI crash-restart job.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include "storage/disk/disk_env.h"
#include "storage/disk/disk_format.h"
#include "storage/disk/disk_io.h"
#include "storage/group_store.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace corona {
namespace {

constexpr GroupId kGroup{1};
constexpr std::size_t kSegmentBytes = 512;  // plenty of rotations per run

Bytes payload_for(SeqNo seq) {
  return filler_bytes(8 + seq % 48, static_cast<std::uint8_t>(seq * 131u));
}

Bytes snapshot_for(SeqNo base) {
  return filler_bytes(4 + base % 32, static_cast<std::uint8_t>(base));
}

UpdateRecord update_for(SeqNo seq) {
  UpdateRecord u;
  u.seq = seq;
  u.kind = PayloadKind::kUpdate;
  u.object = ObjectId{seq % 3};
  u.data = payload_for(seq);
  u.sender = NodeId{100 + seq % 4};
  u.request_id = seq;
  return u;
}

// The victim: writes updates as fast as it can, flushing in small batches
// and checkpointing periodically, until it is killed.  After every flush it
// publishes the durable floor via an atomic file replace, so the parent
// knows a lower bound on what recovery must yield.
[[noreturn]] void run_writer(const std::string& data_dir,
                             const std::string& progress_path,
                             std::uint64_t seed) {
  ::alarm(30);  // backstop: never outlive a parent that failed to kill us
  disk::DiskEnv env(disk::DiskEnvConfig{data_dir, kSegmentBytes});
  GroupStore gs(&env);
  gs.create_group(GroupMeta{kGroup, "victim", true},
                  {StateEntry{ObjectId{0}, snapshot_for(0)}});
  Rng rng(seed);
  disk::DiskCounters progress_counters;
  SeqNo seq = 0;
  SeqNo base = 0;  // checkpoints only ever move forward
  for (;;) {
    const std::size_t batch = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < batch; ++i) {
      gs.append_update(kGroup, update_for(++seq));
    }
    (void)gs.flush();
    disk::atomic_write_file(progress_path, disk::encode_log_meta(seq),
                            &progress_counters);
    if (rng.next_bool(0.1)) {
      base += rng.next_below(seq - base + 1);
      gs.install_checkpoint(kGroup, base,
                            {StateEntry{ObjectId{0}, snapshot_for(base)}});
      (void)gs.flush();
    }
  }
}

TEST(CrashRestart, SigkilledWriterRecoversDurablePrefixExactly) {
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    char tmpl[] = "/tmp/corona_crash_restart_XXXXXX";
    const char* root = ::mkdtemp(tmpl);
    ASSERT_NE(root, nullptr);
    const std::string data_dir = std::string(root) + "/data";
    const std::string progress_path = std::string(root) + "/progress";

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      run_writer(data_dir, progress_path,
                 0xdeadbeefULL + static_cast<std::uint64_t>(round));
    }

    // Wait for the writer's first flush (the progress file appearing with a
    // nonzero floor) — on a loaded machine the child may take a while to be
    // scheduled at all — then kill it without warning.  Varying the extra
    // delay scatters the kill across flushes, rotations, checkpoints.
    SeqNo first_floor = 0;
    for (int spins = 0; spins < 2000 && first_floor == 0; ++spins) {
      if (const auto buf = disk::read_file(progress_path)) {
        if (const auto decoded = disk::decode_log_meta(*buf)) {
          first_floor = *decoded;
        }
      }
      if (first_floor == 0) ::usleep(5000);
    }
    ASSERT_GT(first_floor, 0u) << "writer never reached its first flush";
    ::usleep(1000 + 17000 * static_cast<useconds_t>(round));
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Durable floor: the highest seq the writer saw flush() return for.
    SeqNo floor = 0;
    if (const auto buf = disk::read_file(progress_path)) {
      const auto decoded = disk::decode_log_meta(*buf);
      ASSERT_TRUE(decoded.has_value());  // atomic replace: old or new, whole
      floor = *decoded;
    }
    ASSERT_GT(floor, 0u) << "writer was killed before any flush";

    // Recover through a cold reopen of the data directory.
    disk::DiskEnv env(disk::DiskEnvConfig{data_dir, kSegmentBytes});
    GroupStore gs(&env);
    const std::vector<RecoveredGroup> groups = gs.recover();
    ASSERT_EQ(groups.size(), 1u);
    const RecoveredGroup& g = groups[0];
    EXPECT_EQ(g.meta.id, kGroup);
    EXPECT_EQ(g.meta.name, "victim");
    ASSERT_EQ(g.snapshot.size(), 1u);
    EXPECT_EQ(g.snapshot[0].data, snapshot_for(g.base_seq));

    // Contiguity: updates run base_seq+1 .. head with no gap or duplicate,
    // and nothing below the floor was lost.
    SeqNo expect = g.base_seq + 1;
    for (const UpdateRecord& u : g.updates) {
      ASSERT_EQ(u.seq, expect) << "gap or duplicate in recovered sequence";
      ASSERT_EQ(u.data, payload_for(u.seq)) << "payload altered by recovery";
      EXPECT_EQ(u.request_id, u.seq);
      ++expect;
    }
    const SeqNo head = expect - 1;
    EXPECT_GE(head, floor)
        << "a flush()-acknowledged update vanished across SIGKILL";

    disk::remove_tree(root);
  }
}

// Kill, recover, write more, kill again: recovery must compose — the second
// incarnation's appends chain onto the first's durable records.
TEST(CrashRestart, RecoveryComposesAcrossTwoKills) {
  char tmpl[] = "/tmp/corona_crash_restart2_XXXXXX";
  const char* root = ::mkdtemp(tmpl);
  ASSERT_NE(root, nullptr);
  const std::string data_dir = std::string(root) + "/data";
  const std::string progress_path = std::string(root) + "/progress";

  SeqNo resume_floor = 0;
  for (int life = 0; life < 2; ++life) {
    SCOPED_TRACE("life=" + std::to_string(life));
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      if (life == 0) {
        run_writer(data_dir, progress_path, 0xabcdef);
      }
      // Second life: recover, then continue writing from the recovered head.
      ::alarm(30);
      disk::DiskEnv env(disk::DiskEnvConfig{data_dir, kSegmentBytes});
      GroupStore gs(&env);
      const auto groups = gs.recover();
      if (groups.size() != 1) ::_exit(3);
      SeqNo seq = groups[0].base_seq;
      for (const UpdateRecord& u : groups[0].updates) {
        if (u.seq != seq + 1) ::_exit(4);  // first life left a gap
        seq = u.seq;
      }
      disk::DiskCounters progress_counters;
      for (;;) {
        gs.append_update(kGroup, update_for(++seq));
        (void)gs.flush();
        disk::atomic_write_file(progress_path, disk::encode_log_meta(seq),
                                &progress_counters);
      }
    }
    ::usleep(life == 0 ? 30000 : 40000);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "writer exited: rc="
                                     << WEXITSTATUS(status);
    const auto buf = disk::read_file(progress_path);
    ASSERT_TRUE(buf.has_value());
    const auto decoded = disk::decode_log_meta(*buf);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_GT(*decoded, resume_floor) << "second life made no progress";
    resume_floor = *decoded;
  }

  disk::DiskEnv env(disk::DiskEnvConfig{data_dir, kSegmentBytes});
  GroupStore gs(&env);
  const auto groups = gs.recover();
  ASSERT_EQ(groups.size(), 1u);
  SeqNo expect = groups[0].base_seq + 1;
  for (const UpdateRecord& u : groups[0].updates) {
    ASSERT_EQ(u.seq, expect);
    ASSERT_EQ(u.data, payload_for(u.seq));
    ++expect;
  }
  EXPECT_GE(expect - 1, resume_floor);
  disk::remove_tree(root);
}

}  // namespace
}  // namespace corona
