#include <gtest/gtest.h>

#include "core/shared_state.h"
#include "util/rng.h"

namespace corona {
namespace {

UpdateRecord rec(SeqNo seq, PayloadKind kind, ObjectId obj, const char* data) {
  UpdateRecord u;
  u.seq = seq;
  u.kind = kind;
  u.object = obj;
  u.data = to_bytes(data);
  u.sender = NodeId{100};
  u.request_id = seq;
  return u;
}

TEST(SharedState, BcastStateReplacesObjectStream) {
  SharedState s;
  s.apply(rec(1, PayloadKind::kState, ObjectId{1}, "first"));
  s.apply(rec(2, PayloadKind::kState, ObjectId{1}, "second"));
  ASSERT_TRUE(s.has_object(ObjectId{1}));
  EXPECT_EQ(to_string(*s.object(ObjectId{1})), "second");
}

TEST(SharedState, BcastUpdateAppendsToObjectStream) {
  SharedState s;
  s.apply(rec(1, PayloadKind::kState, ObjectId{1}, "base"));
  s.apply(rec(2, PayloadKind::kUpdate, ObjectId{1}, "+a"));
  s.apply(rec(3, PayloadKind::kUpdate, ObjectId{1}, "+b"));
  EXPECT_EQ(to_string(*s.object(ObjectId{1})), "base+a+b");
}

TEST(SharedState, UpdateOnMissingObjectCreatesIt) {
  SharedState s;
  s.apply(rec(1, PayloadKind::kUpdate, ObjectId{9}, "x"));
  EXPECT_EQ(to_string(*s.object(ObjectId{9})), "x");
}

TEST(SharedState, LoadInstallsSnapshot) {
  SharedState s;
  s.load(10, {StateEntry{ObjectId{1}, to_bytes("a")},
              StateEntry{ObjectId{2}, to_bytes("bb")}});
  EXPECT_EQ(s.base_seq(), 10u);
  EXPECT_EQ(s.head_seq(), 10u);
  EXPECT_EQ(s.object_count(), 2u);
  EXPECT_EQ(s.state_bytes(), 3u);
  EXPECT_EQ(s.history_size(), 0u);
}

TEST(SharedState, SnapshotSortedByObjectId) {
  SharedState s;
  s.apply(rec(1, PayloadKind::kState, ObjectId{5}, "z"));
  s.apply(rec(2, PayloadKind::kState, ObjectId{2}, "a"));
  const auto snap = s.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].object, ObjectId{2});
  EXPECT_EQ(snap[1].object, ObjectId{5});
}

TEST(SharedState, SnapshotOfSubset) {
  SharedState s;
  s.apply(rec(1, PayloadKind::kState, ObjectId{1}, "a"));
  s.apply(rec(2, PayloadKind::kState, ObjectId{2}, "b"));
  s.apply(rec(3, PayloadKind::kState, ObjectId{3}, "c"));
  const ObjectId want[] = {ObjectId{3}, ObjectId{1}, ObjectId{99}};
  const auto snap = s.snapshot_of(want);
  ASSERT_EQ(snap.size(), 2u);  // 99 missing -> skipped
  EXPECT_EQ(snap[0].object, ObjectId{3});
  EXPECT_EQ(snap[1].object, ObjectId{1});
}

TEST(SharedState, LastNReturnsTail) {
  SharedState s;
  for (SeqNo i = 1; i <= 10; ++i) {
    s.apply(rec(i, PayloadKind::kUpdate, ObjectId{1}, "u"));
  }
  const auto tail = s.last_n(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 8u);
  EXPECT_EQ(tail[2].seq, 10u);
  EXPECT_EQ(s.last_n(99).size(), 10u);
  EXPECT_TRUE(s.last_n(0).empty());
}

TEST(SharedState, LastNOfFiltersObjects) {
  SharedState s;
  for (SeqNo i = 1; i <= 6; ++i) {
    s.apply(rec(i, PayloadKind::kUpdate, ObjectId{i % 2}, "u"));
  }
  const ObjectId want[] = {ObjectId{0}};
  const auto tail = s.last_n_of(want, 2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);  // even seqs touch object 0
  EXPECT_EQ(tail[1].seq, 6u);
}

TEST(SharedState, SinceReturnsSuffix) {
  SharedState s;
  for (SeqNo i = 1; i <= 5; ++i) {
    s.apply(rec(i, PayloadKind::kUpdate, ObjectId{1}, "u"));
  }
  EXPECT_EQ(s.since(3).size(), 2u);
  EXPECT_EQ(s.since(0).size(), 5u);
  EXPECT_TRUE(s.since(5).empty());
}

TEST(SharedState, ReduceDropsPrefixAndMovesBase) {
  SharedState s;
  for (SeqNo i = 1; i <= 10; ++i) {
    s.apply(rec(i, PayloadKind::kUpdate, ObjectId{1}, "u"));
  }
  EXPECT_EQ(s.reduce_to(6), 6u);
  EXPECT_EQ(s.base_seq(), 6u);
  EXPECT_EQ(s.head_seq(), 10u);
  EXPECT_EQ(s.history_size(), 4u);
  // Reducing again to the same point is a no-op.
  EXPECT_EQ(s.reduce_to(6), 0u);
  // Clamped to head.
  EXPECT_EQ(s.reduce_to(99), 4u);
  EXPECT_EQ(s.base_seq(), 10u);
}

TEST(SharedState, ReduceFoldsPrefixIntoBaseSnapshot) {
  SharedState s;
  s.load(0, {StateEntry{ObjectId{1}, to_bytes("I")}});
  s.apply(rec(1, PayloadKind::kUpdate, ObjectId{1}, "a"));
  s.apply(rec(2, PayloadKind::kUpdate, ObjectId{1}, "b"));
  s.apply(rec(3, PayloadKind::kUpdate, ObjectId{1}, "c"));
  s.reduce_to(2);
  const auto base = s.snapshot_at_base();
  ASSERT_EQ(base.size(), 1u);
  EXPECT_EQ(to_string(base[0].data), "Iab");  // state at seq 2
  EXPECT_EQ(to_string(*s.object(ObjectId{1})), "Iabc");  // head unchanged
}

TEST(SharedState, HistoryBytesTracked) {
  SharedState s;
  s.apply(rec(1, PayloadKind::kUpdate, ObjectId{1}, "12345"));
  s.apply(rec(2, PayloadKind::kUpdate, ObjectId{1}, "12"));
  EXPECT_EQ(s.history_bytes(), 7u);
  s.reduce_to(1);
  EXPECT_EQ(s.history_bytes(), 2u);
}

TEST(SharedState, StateBytesTracksReplaceAndAppend) {
  SharedState s;
  s.apply(rec(1, PayloadKind::kState, ObjectId{1}, "12345"));
  EXPECT_EQ(s.state_bytes(), 5u);
  s.apply(rec(2, PayloadKind::kUpdate, ObjectId{1}, "67"));
  EXPECT_EQ(s.state_bytes(), 7u);
  s.apply(rec(3, PayloadKind::kState, ObjectId{1}, "x"));
  EXPECT_EQ(s.state_bytes(), 1u);
}

// ---------------------------------------------------------------------------
// Property: for any random workload and any interleaving of reductions,
// replaying the base snapshot + retained history reproduces the consolidated
// state ("the new state is equivalent with the initial state plus the
// history of state updates", §3.2).
// ---------------------------------------------------------------------------

class SharedStateReplayProperty : public ::testing::TestWithParam<int> {};

TEST_P(SharedStateReplayProperty, ReplayEquivalence) {
  Rng rng(GetParam() * 31337 + 5);
  SharedState s;
  s.load(0, {StateEntry{ObjectId{0}, to_bytes("seed")}});
  SeqNo seq = 0;
  for (int step = 0; step < 300; ++step) {
    if (rng.next_bool(0.1) && s.history_size() > 0) {
      const SeqNo upto =
          s.base_seq() + 1 + rng.next_below(s.head_seq() - s.base_seq());
      s.reduce_to(upto);
    } else {
      UpdateRecord u;
      u.seq = ++seq;
      u.kind = rng.next_bool(0.3) ? PayloadKind::kState : PayloadKind::kUpdate;
      u.object = ObjectId{rng.next_below(5)};
      u.data = filler_bytes(rng.next_below(40),
                            static_cast<std::uint8_t>(rng.next_u64()));
      u.sender = NodeId{100};
      u.request_id = seq;
      s.apply(u);
    }

    // Invariant check: base snapshot + retained history == consolidated.
    SharedState replay;
    replay.load(s.base_seq(), s.snapshot_at_base());
    for (const UpdateRecord& u : s.history()) replay.apply(u);
    ASSERT_EQ(replay.snapshot(), s.snapshot()) << "step " << step;
    ASSERT_EQ(replay.head_seq(), s.head_seq());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedStateReplayProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace corona
