// Regression tests for corona-check, the schedule-exploration harness
// (src/check/).  Three contracts are pinned here:
//
//   1. The bounded default search is *quiet*: systematic delivery-reordering
//      and fault injection over the scripted worlds finds no oracle
//      violation (these bounds are a subset of what CI explores).
//   2. The harness *catches a planted bug*: with client gap detection off
//      (WorldOptions::seed_ordering_bug) a reordered delivery is applied out
//      of order and silently drops an update; the search must find it and
//      minimize the trace.
//   3. Replay is *byte-identical*: re-executing the minimized trace twice
//      produces the same violation report, step count and delivery count —
//      the property that makes a printed trace a usable bug report.
#include <gtest/gtest.h>

#include "check/explorer.h"
#include "check/trace.h"
#include "check/world.h"

namespace corona::check {
namespace {

TEST(ScheduleTrace, ParseAndPrintRoundTrip) {
  const auto t = ScheduleTrace::parse("0,3,1");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->choices, (std::vector<std::uint32_t>{0, 3, 1}));
  EXPECT_EQ(t->to_string(), "0,3,1");
  EXPECT_EQ(ScheduleTrace{}.to_string(), "-");
  EXPECT_FALSE(ScheduleTrace::parse("1,x,2").has_value());
  EXPECT_FALSE(ScheduleTrace::parse("").has_value());
}

TEST(ScheduleTrace, StripTrailingZeros) {
  ScheduleTrace t;
  t.choices = {0, 2, 0, 0};
  t.strip_trailing_zeros();
  EXPECT_EQ(t.choices, (std::vector<std::uint32_t>{0, 2}));
}

TEST(CheckExplore, BoundedDfsSingleServerIsQuiet) {
  WorldOptions world;
  ExplorerOptions options;
  options.max_schedules = 400;
  options.max_decisions = 16;
  const auto result = Explorer(world, options).explore();
  EXPECT_FALSE(result.found) << result.report;
  EXPECT_GE(result.stats.schedules, 10u);
}

TEST(CheckExplore, BoundedDfsReplicatedIsQuiet) {
  WorldOptions world;
  world.mode = WorldOptions::Mode::kReplicated;
  ExplorerOptions options;
  options.max_schedules = 60;
  options.max_decisions = 12;
  const auto result = Explorer(world, options).explore();
  EXPECT_FALSE(result.found) << result.report;
  EXPECT_GE(result.stats.schedules, 5u);
}

TEST(CheckExplore, RandomWalksAreQuietAndDeterministicPerSeed) {
  WorldOptions world;
  ExplorerOptions options;
  options.mode = ExplorerOptions::Mode::kRandom;
  options.max_schedules = 50;
  options.max_decisions = 24;
  options.seed = 7;
  const auto a = Explorer(world, options).explore();
  const auto b = Explorer(world, options).explore();
  EXPECT_FALSE(a.found) << a.report;
  EXPECT_EQ(a.stats.total_steps, b.stats.total_steps);
}

// The harness's own mutation test (ISSUE acceptance): plant an ordering bug
// — clients skip gap detection, so an out-of-order delivery is applied and
// the skipped seq later dropped as a duplicate — and the search must catch
// it with a minimized, replayable trace.
TEST(CheckExplore, SeededOrderingBugIsCaughtAndMinimized) {
  WorldOptions world;
  world.seed_ordering_bug = true;
  ExplorerOptions options;
  options.relax_channel_fifo = true;  // the bug needs in-channel reordering
  options.max_decisions = 30;
  options.max_schedules = 2000;
  Explorer explorer(world, options);
  const auto result = explorer.explore();
  ASSERT_TRUE(result.found) << "bounded search missed the planted bug after "
                            << result.stats.schedules << " schedules";
  EXPECT_NE(result.report.find("convergence violation"), std::string::npos)
      << result.report;
  EXPECT_FALSE(result.trace.empty());

  // Byte-identical replay: same trace, same world — same report, step count
  // and delivery count, across two fresh executions.
  const RunResult first = explorer.run_one(result.trace);
  const RunResult second = explorer.run_one(result.trace);
  EXPECT_TRUE(first.violated);
  EXPECT_EQ(first.report, result.report);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.steps, second.steps);
  EXPECT_EQ(first.deliveries, second.deliveries);
  EXPECT_EQ(first.executed, second.executed);

  // Minimality: the trace still violates with its last choice defaulted
  // away only if that choice was already 0 — i.e. every non-zero choice is
  // load-bearing.  (minimize() greedily zeroes; spot-check the contract.)
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    if (result.trace.choices[i] == 0) continue;
    ScheduleTrace weakened = result.trace;
    weakened.choices[i] = 0;
    EXPECT_FALSE(explorer.run_one(weakened).violated)
        << "choice " << i << " was not load-bearing; minimize() should have "
        << "zeroed it";
  }
}

// Without the planted bug the very same relaxed search is quiet — the
// violation above is the mutation, not a harness artifact.
TEST(CheckExplore, RelaxedSearchWithoutMutationIsQuiet) {
  WorldOptions world;
  ExplorerOptions options;
  options.relax_channel_fifo = true;
  options.max_decisions = 30;
  options.max_schedules = 400;
  const auto result = Explorer(world, options).explore();
  EXPECT_FALSE(result.found) << result.report;
}

// Batched fan-out under exploration: with the server batch queue on the
// bounded DFS (including crash/partition schedules) must stay quiet — batch
// boundaries introduce no (group, seq) gaps or reorders at any client.
TEST(CheckExplore, BatchedDfsSingleServerIsQuiet) {
  WorldOptions world;
  world.batch_max_msgs = 4;
  ExplorerOptions options;
  options.max_schedules = 400;
  options.max_decisions = 16;
  const auto result = Explorer(world, options).explore();
  EXPECT_FALSE(result.found) << result.report;
  EXPECT_GE(result.stats.schedules, 10u);
}

TEST(CheckExplore, BatchedDfsReplicatedIsQuiet) {
  WorldOptions world;
  world.mode = WorldOptions::Mode::kReplicated;
  world.batch_max_msgs = 4;
  ExplorerOptions options;
  options.max_schedules = 60;
  options.max_decisions = 12;
  const auto result = Explorer(world, options).explore();
  EXPECT_FALSE(result.found) << result.report;
  EXPECT_GE(result.stats.schedules, 5u);
}

// The batch mutation: the server drops the tail record of every coalesced
// frame, clients run without gap detection, and the batch-boundary oracle
// must see the seq jump.  Replay of the violating trace is byte-identical.
TEST(CheckExplore, SeededBatchTailDropIsCaught) {
  WorldOptions world;
  world.seed_batch_bug = true;
  ExplorerOptions options;
  options.max_decisions = 30;
  options.max_schedules = 2000;
  Explorer explorer(world, options);
  const auto result = explorer.explore();
  ASSERT_TRUE(result.found) << "bounded search missed the planted batch bug "
                            << "after " << result.stats.schedules
                            << " schedules";
  EXPECT_NE(result.report.find("batch-boundary violation"), std::string::npos)
      << result.report;
  const RunResult first = explorer.run_one(result.trace);
  const RunResult second = explorer.run_one(result.trace);
  EXPECT_TRUE(first.violated);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.steps, second.steps);
  EXPECT_EQ(first.deliveries, second.deliveries);
}

// Fault injection actually runs: the bounded DFS reaches schedules that
// spend the crash and partition budgets, and those runs stay quiet too —
// crash recovery (restart + rejoin + resend) and partition healing keep the
// oracles satisfied.
TEST(CheckExplore, FaultSchedulesAreExercisedAndQuiet) {
  WorldOptions world;
  ExplorerOptions options;
  options.max_decisions = 24;
  options.max_schedules = 3000;
  const auto result = Explorer(world, options).explore();
  EXPECT_FALSE(result.found) << result.report;
  EXPECT_GE(result.stats.crash_runs, 1u)
      << "no explored schedule injected a server crash";
  EXPECT_GE(result.stats.partition_runs, 1u)
      << "no explored schedule injected a client partition";
}

}  // namespace
}  // namespace corona::check
