// Unit tests for the replication building blocks: registry, failure
// detector, election tally, replication manager, partition reconciliation,
// and takeover planning.
#include <gtest/gtest.h>

#include "replica/election.h"
#include "replica/failure_detector.h"
#include "replica/partition.h"
#include "replica/recovery.h"
#include "replica/registry.h"
#include "replica/replication_manager.h"

namespace corona {
namespace {

// ---------------------------------------------------------------------------
// ServerRegistry
// ---------------------------------------------------------------------------

TEST(Registry, StartupOrderPreserved) {
  ServerRegistry r({NodeId{3}, NodeId{1}, NodeId{2}});
  EXPECT_EQ(r.position_of(NodeId{3}), 0u);
  EXPECT_EQ(r.position_of(NodeId{2}), 2u);
  EXPECT_FALSE(r.position_of(NodeId{9}).has_value());
}

TEST(Registry, AddAppendsRemoveErases) {
  ServerRegistry r({NodeId{1}});
  r.add(NodeId{2});
  r.add(NodeId{2});  // idempotent
  EXPECT_EQ(r.size(), 2u);
  r.remove(NodeId{1});
  EXPECT_EQ(r.servers(), (std::vector<NodeId>{NodeId{2}}));
}

TEST(Registry, StaleEpochIgnored) {
  ServerRegistry r({NodeId{1}});
  r.set_servers({NodeId{1}, NodeId{2}}, 5);
  r.set_servers({NodeId{9}}, 3);  // stale
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.epoch(), 5u);
}

TEST(Registry, FirstExcludingSkipsCoordinator) {
  ServerRegistry r({NodeId{1}, NodeId{2}, NodeId{3}});
  EXPECT_EQ(r.first_excluding(NodeId{1}), NodeId{2});
  EXPECT_EQ(r.first_excluding(NodeId{9}), NodeId{1});
}

// ---------------------------------------------------------------------------
// FailureDetector
// ---------------------------------------------------------------------------

TEST(FailureDetector, SilenceBeyondTimeoutSuspects) {
  FailureDetector fd(1000);
  fd.watch(NodeId{1}, 0);
  EXPECT_FALSE(fd.is_suspect(NodeId{1}, 1000));
  EXPECT_TRUE(fd.is_suspect(NodeId{1}, 1001));
}

TEST(FailureDetector, HeardFromResets) {
  FailureDetector fd(1000);
  fd.watch(NodeId{1}, 0);
  fd.heard_from(NodeId{1}, 900);
  EXPECT_FALSE(fd.is_suspect(NodeId{1}, 1500));
  EXPECT_EQ(fd.silence(NodeId{1}, 1500), 600);
}

TEST(FailureDetector, UnwatchedPeersNeverSuspect) {
  FailureDetector fd(10);
  EXPECT_FALSE(fd.is_suspect(NodeId{1}, 1000000));
  fd.heard_from(NodeId{1}, 5);  // not watched: ignored
  EXPECT_EQ(fd.silence(NodeId{1}, 100), 0);
}

TEST(FailureDetector, SuspectsSortedById) {
  FailureDetector fd(10);
  fd.watch(NodeId{5}, 0);
  fd.watch(NodeId{2}, 0);
  fd.watch(NodeId{9}, 100);
  const auto s = fd.suspects(50);
  EXPECT_EQ(s, (std::vector<NodeId>{NodeId{2}, NodeId{5}}));
}

// ---------------------------------------------------------------------------
// Election
// ---------------------------------------------------------------------------

TEST(Election, StagedClaimDelays) {
  EXPECT_EQ(claim_delay(0, 1000), 1000);
  EXPECT_EQ(claim_delay(1, 1000), 2000);
  EXPECT_EQ(claim_delay(4, 1000), 5000);
}

TEST(Election, WinsWithHalfPlusOne) {
  ElectionTally t;
  t.start(7, 6);  // 6 remaining servers, claimant included
  EXPECT_FALSE(t.won());
  t.vote(7, NodeId{2}, true);
  t.vote(7, NodeId{3}, true);
  EXPECT_FALSE(t.won());  // 2 acks + self = 3 < 4
  t.vote(7, NodeId{4}, true);
  EXPECT_TRUE(t.won());  // 3 acks + self = 4 = half+1
}

TEST(Election, NackLoses) {
  ElectionTally t;
  t.start(7, 3);
  t.vote(7, NodeId{2}, true);
  t.vote(7, NodeId{3}, false);
  EXPECT_TRUE(t.lost());
  EXPECT_FALSE(t.won());
}

TEST(Election, WrongEpochAndDuplicateVotesIgnored) {
  ElectionTally t;
  t.start(7, 4);
  t.vote(6, NodeId{2}, true);   // stale epoch
  t.vote(7, NodeId{3}, true);
  t.vote(7, NodeId{3}, true);   // duplicate
  EXPECT_EQ(t.acks(), 1u);
}

TEST(Election, FinishDeactivates) {
  ElectionTally t;
  t.start(7, 2);
  t.vote(7, NodeId{2}, true);
  EXPECT_TRUE(t.won());
  t.finish();
  EXPECT_FALSE(t.in_progress());
  EXPECT_FALSE(t.won());
}

// ---------------------------------------------------------------------------
// ReplicationManager
// ---------------------------------------------------------------------------

TEST(ReplicationManager, HoldersUnionOfSupportAndBackup) {
  ReplicationManager rm(2);
  rm.add_supporting_server(GroupId{1}, NodeId{2});
  rm.add_backup(GroupId{1}, NodeId{3});
  EXPECT_EQ(rm.copy_count(GroupId{1}), 2u);
  EXPECT_EQ(rm.holders(GroupId{1}), (std::vector<NodeId>{NodeId{2}, NodeId{3}}));
  EXPECT_TRUE(rm.is_backup(GroupId{1}, NodeId{3}));
  EXPECT_FALSE(rm.is_backup(GroupId{1}, NodeId{2}));
}

TEST(ReplicationManager, SupportSubsumesBackup) {
  ReplicationManager rm(2);
  rm.add_backup(GroupId{1}, NodeId{2});
  rm.add_supporting_server(GroupId{1}, NodeId{2});
  EXPECT_FALSE(rm.is_backup(GroupId{1}, NodeId{2}));
  EXPECT_EQ(rm.copy_count(GroupId{1}), 1u);
}

TEST(ReplicationManager, RemoveBackupDropsExactlyThatServer) {
  ReplicationManager rm(2);
  rm.add_backup(GroupId{1}, NodeId{3});
  rm.add_backup(GroupId{1}, NodeId{4});
  ASSERT_TRUE(rm.is_backup(GroupId{1}, NodeId{3}));
  rm.remove_backup(GroupId{1}, NodeId{3});
  EXPECT_FALSE(rm.is_backup(GroupId{1}, NodeId{3}));
  EXPECT_TRUE(rm.is_backup(GroupId{1}, NodeId{4}));
  EXPECT_EQ(rm.copy_count(GroupId{1}), 1u);
  // Unknown group: a no-op, not a crash or a phantom entry.
  rm.remove_backup(GroupId{9}, NodeId{3});
  EXPECT_EQ(rm.copy_count(GroupId{9}), 0u);
}

TEST(ReplicationManager, PickBackupWhenBelowMinimum) {
  ReplicationManager rm(2);
  rm.add_supporting_server(GroupId{1}, NodeId{2});
  const std::vector<NodeId> candidates{NodeId{2}, NodeId{3}, NodeId{4}};
  auto pick = rm.pick_backup(GroupId{1}, candidates);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, NodeId{3});  // first non-holder in startup order
  rm.add_backup(GroupId{1}, *pick);
  EXPECT_FALSE(rm.pick_backup(GroupId{1}, candidates).has_value());
}

TEST(ReplicationManager, DropServerReturnsReducedGroups) {
  ReplicationManager rm(2);
  rm.add_supporting_server(GroupId{1}, NodeId{2});
  rm.add_supporting_server(GroupId{2}, NodeId{3});
  const auto reduced = rm.drop_server(NodeId{2});
  EXPECT_EQ(reduced, (std::vector<GroupId>{GroupId{1}}));
  EXPECT_EQ(rm.copy_count(GroupId{1}), 0u);
}

TEST(ReplicationManager, ReleasableBackupsWhenEnoughSupport) {
  ReplicationManager rm(2);
  rm.add_backup(GroupId{1}, NodeId{9});
  rm.add_supporting_server(GroupId{1}, NodeId{2});
  EXPECT_TRUE(rm.releasable_backups(GroupId{1}).empty());  // 1 support < 2
  rm.add_supporting_server(GroupId{1}, NodeId{3});
  EXPECT_EQ(rm.releasable_backups(GroupId{1}),
            (std::vector<NodeId>{NodeId{9}}));
}

// ---------------------------------------------------------------------------
// Partition reconciliation
// ---------------------------------------------------------------------------

UpdateRecord rec(SeqNo seq, const char* data, NodeId sender = NodeId{100}) {
  UpdateRecord u;
  u.seq = seq;
  u.kind = PayloadKind::kUpdate;
  u.object = ObjectId{1};
  u.data = to_bytes(data);
  u.sender = sender;
  u.request_id = seq;
  return u;
}

SharedState branch_state(std::vector<UpdateRecord> recs) {
  SharedState s;
  for (auto& r : recs) s.apply(r);
  return s;
}

TEST(Partition, DigestDistinguishesContent) {
  EXPECT_NE(record_digest(rec(1, "a")), record_digest(rec(1, "b")));
  EXPECT_NE(record_digest(rec(1, "a")), record_digest(rec(2, "a")));
  EXPECT_EQ(record_digest(rec(1, "a")), record_digest(rec(1, "a")));
}

TEST(Partition, ForkPointAtDivergence) {
  // Common prefix 1..3, divergence at 4.
  auto a = branch_state({rec(1, "x"), rec(2, "y"), rec(3, "z"), rec(4, "A")});
  auto b = branch_state({rec(1, "x"), rec(2, "y"), rec(3, "z"), rec(4, "B")});
  const auto fork = find_fork_point(make_branch_digest(a), make_branch_digest(b));
  ASSERT_TRUE(fork.has_value());
  EXPECT_EQ(*fork, 3u);
}

TEST(Partition, ForkPointWhenOneSideAhead) {
  auto a = branch_state({rec(1, "x"), rec(2, "y")});
  auto b = branch_state({rec(1, "x"), rec(2, "y"), rec(3, "z")});
  const auto fork = find_fork_point(make_branch_digest(a), make_branch_digest(b));
  ASSERT_TRUE(fork.has_value());
  EXPECT_EQ(*fork, 2u);
}

TEST(Partition, ForkPointIdenticalHistories) {
  auto a = branch_state({rec(1, "x"), rec(2, "y")});
  auto b = branch_state({rec(1, "x"), rec(2, "y")});
  EXPECT_EQ(*find_fork_point(make_branch_digest(a), make_branch_digest(b)), 2u);
}

TEST(Partition, ForkPointRespectsReducedBase) {
  auto a = branch_state({rec(1, "x"), rec(2, "y"), rec(3, "z")});
  auto b = branch_state({rec(1, "x"), rec(2, "y"), rec(3, "z")});
  a.reduce_to(2);  // a's digest starts after 2
  const auto fork = find_fork_point(make_branch_digest(a), make_branch_digest(b));
  ASSERT_TRUE(fork.has_value());
  EXPECT_EQ(*fork, 3u);
}

TEST(Partition, NoForkWhenHistoriesDisjoint) {
  auto a = branch_state({rec(1, "x"), rec(2, "y")});
  auto b = branch_state({rec(1, "x"), rec(2, "y"), rec(3, "z"), rec(4, "w")});
  b.reduce_to(3);  // b retains only seq 4; a's history ends at 2
  const auto fork = find_fork_point(make_branch_digest(a), make_branch_digest(b));
  EXPECT_FALSE(fork.has_value());
}

TEST(Partition, RollbackDiscardsBothBranches) {
  auto out = reconcile_branches(GroupId{1}, 3, Branch{{rec(4, "A")}},
                                Branch{{rec(4, "B")}},
                                PartitionPolicy::kRollback);
  EXPECT_TRUE(out.merged_tail.empty());
  EXPECT_FALSE(out.split_group.has_value());
  EXPECT_EQ(out.fork, 3u);
}

TEST(Partition, SelectPrimaryKeepsChosenBranch) {
  auto keep_a = reconcile_branches(GroupId{1}, 3, Branch{{rec(4, "A")}},
                                   Branch{{rec(4, "B")}},
                                   PartitionPolicy::kSelectPrimary, true);
  ASSERT_EQ(keep_a.merged_tail.size(), 1u);
  EXPECT_EQ(to_string(keep_a.merged_tail[0].data), "A");
  auto keep_b = reconcile_branches(GroupId{1}, 3, Branch{{rec(4, "A")}},
                                   Branch{{rec(4, "B")}},
                                   PartitionPolicy::kSelectPrimary, false);
  EXPECT_EQ(to_string(keep_b.merged_tail[0].data), "B");
}

TEST(Partition, EvolveSeparatelySplitsGroup) {
  auto out = reconcile_branches(GroupId{5}, 3, Branch{{rec(4, "A")}},
                                Branch{{rec(4, "B"), rec(5, "C")}},
                                PartitionPolicy::kEvolveSeparately);
  ASSERT_TRUE(out.split_group.has_value());
  EXPECT_EQ(out.split_group->value, 5 + kSplitGroupIdOffset);
  EXPECT_EQ(out.merged_tail.size(), 1u);
  EXPECT_EQ(out.split_tail.size(), 2u);
}

TEST(Partition, StateAtRebuildsForkState) {
  auto s = branch_state({rec(1, "a"), rec(2, "b"), rec(3, "c")});
  const SharedState at2 = state_at(s, 2);
  EXPECT_EQ(to_string(*at2.object(ObjectId{1})), "ab");
  EXPECT_EQ(at2.head_seq(), 2u);
}

TEST(Partition, PolicyNames) {
  EXPECT_STREQ(partition_policy_name(PartitionPolicy::kRollback), "rollback");
  EXPECT_STREQ(partition_policy_name(PartitionPolicy::kEvolveSeparately),
               "evolve-separately");
}

// ---------------------------------------------------------------------------
// Takeover planning
// ---------------------------------------------------------------------------

TEST(Recovery, GroupHeadsRoundTrip) {
  const std::vector<GroupHead> heads{{GroupId{1}, 10}, {GroupId{2}, 0}};
  EXPECT_EQ(decode_group_heads(encode_group_heads(heads)), heads);
}

TEST(Recovery, PlanPullsFreshestHolder) {
  std::map<NodeId, std::vector<GroupHead>> reports;
  reports[NodeId{2}] = {{GroupId{1}, 5}, {GroupId{2}, 9}};
  reports[NodeId{3}] = {{GroupId{1}, 8}};
  std::map<GroupId, SeqNo> local{{GroupId{2}, 9}};
  const auto plan = plan_takeover(reports, local);
  ASSERT_EQ(plan.size(), 1u);  // group 2 is already fresh locally
  EXPECT_EQ(plan.at(GroupId{1}).source, NodeId{3});
  EXPECT_EQ(plan.at(GroupId{1}).remote_head, 8u);
}

TEST(Recovery, PlanPullsUnknownGroupsEvenAtHeadZero) {
  std::map<NodeId, std::vector<GroupHead>> reports;
  reports[NodeId{2}] = {{GroupId{7}, 0}};
  const auto plan = plan_takeover(reports, {});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.at(GroupId{7}).source, NodeId{2});
}

TEST(Recovery, TiesGoToLowestServerId) {
  std::map<NodeId, std::vector<GroupHead>> reports;
  reports[NodeId{4}] = {{GroupId{1}, 5}};
  reports[NodeId{2}] = {{GroupId{1}, 5}};
  const auto plan = plan_takeover(reports, {});
  EXPECT_EQ(plan.at(GroupId{1}).source, NodeId{2});
}

TEST(Recovery, EmptyReportsEmptyPlan) {
  EXPECT_TRUE(plan_takeover({}, {{GroupId{1}, 3}}).empty());
}

}  // namespace
}  // namespace corona
