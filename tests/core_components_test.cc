// Unit tests for the smaller core components: locks, session manager,
// state-transfer policies, log-reduction policies, group bookkeeping, and
// the QoS scheduler.
#include <gtest/gtest.h>

#include "core/group.h"
#include "core/locks.h"
#include "core/log_reduction.h"
#include "core/qos_scheduler.h"
#include "core/session_manager.h"
#include "core/state_transfer.h"

namespace corona {
namespace {

// ---------------------------------------------------------------------------
// LockTable
// ---------------------------------------------------------------------------

TEST(LockTable, FirstAcquireGrants) {
  LockTable t;
  EXPECT_EQ(t.acquire(ObjectId{1}, NodeId{100}),
            LockTable::AcquireOutcome::kGranted);
  EXPECT_EQ(t.holder(ObjectId{1}), NodeId{100});
}

TEST(LockTable, SecondAcquireQueues) {
  LockTable t;
  t.acquire(ObjectId{1}, NodeId{100});
  EXPECT_EQ(t.acquire(ObjectId{1}, NodeId{101}),
            LockTable::AcquireOutcome::kQueued);
  EXPECT_EQ(t.waiters(ObjectId{1}), 1u);
}

TEST(LockTable, DuplicateAcquireReported) {
  LockTable t;
  t.acquire(ObjectId{1}, NodeId{100});
  EXPECT_EQ(t.acquire(ObjectId{1}, NodeId{100}),
            LockTable::AcquireOutcome::kAlreadyHeld);
  t.acquire(ObjectId{1}, NodeId{101});
  EXPECT_EQ(t.acquire(ObjectId{1}, NodeId{101}),
            LockTable::AcquireOutcome::kAlreadyHeld);
}

TEST(LockTable, ReleaseGrantsFifo) {
  LockTable t;
  t.acquire(ObjectId{1}, NodeId{100});
  t.acquire(ObjectId{1}, NodeId{101});
  t.acquire(ObjectId{1}, NodeId{102});
  auto r = t.release(ObjectId{1}, NodeId{100});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r.value(), NodeId{101});
  EXPECT_EQ(t.holder(ObjectId{1}), NodeId{101});
}

TEST(LockTable, ReleaseByNonHolderRejected) {
  LockTable t;
  t.acquire(ObjectId{1}, NodeId{100});
  auto r = t.release(ObjectId{1}, NodeId{101});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code, Errc::kLockHeld);
}

TEST(LockTable, ReleaseUnheldRejected) {
  LockTable t;
  auto r = t.release(ObjectId{1}, NodeId{100});
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code, Errc::kNotFound);
}

TEST(LockTable, ReleaseWithoutWaitersFreesLock) {
  LockTable t;
  t.acquire(ObjectId{1}, NodeId{100});
  auto r = t.release(ObjectId{1}, NodeId{100});
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().has_value());
  EXPECT_FALSE(t.holder(ObjectId{1}).has_value());
}

TEST(LockTable, DropMemberReleasesEverything) {
  LockTable t;
  t.acquire(ObjectId{1}, NodeId{100});  // holds 1
  t.acquire(ObjectId{2}, NodeId{100});  // holds 2
  t.acquire(ObjectId{1}, NodeId{101});  // waits on 1
  t.acquire(ObjectId{2}, NodeId{101});  // waits on 2
  t.acquire(ObjectId{3}, NodeId{102});  // unrelated
  const auto grants = t.drop_member(NodeId{100});
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(t.holder(ObjectId{1}), NodeId{101});
  EXPECT_EQ(t.holder(ObjectId{2}), NodeId{101});
  EXPECT_EQ(t.holder(ObjectId{3}), NodeId{102});
}

TEST(LockTable, DropWaiterLeavesHolder) {
  LockTable t;
  t.acquire(ObjectId{1}, NodeId{100});
  t.acquire(ObjectId{1}, NodeId{101});
  EXPECT_TRUE(t.drop_member(NodeId{101}).empty());
  EXPECT_EQ(t.holder(ObjectId{1}), NodeId{100});
  EXPECT_EQ(t.waiters(ObjectId{1}), 0u);
}

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

TEST(SessionManager, AllowAllAllows) {
  AllowAllSessionManager sm;
  EXPECT_TRUE(sm.authorize(NodeId{1}, GroupId{1}, GroupAction::kDelete));
}

TEST(SessionManager, AclDeniesByDefault) {
  AclSessionManager sm;
  const Status s = sm.authorize(NodeId{1}, GroupId{1}, GroupAction::kJoin);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code, Errc::kPermissionDenied);
}

TEST(SessionManager, AclExactRule) {
  AclSessionManager sm;
  sm.allow(NodeId{1}, GroupId{2}, GroupAction::kJoin);
  EXPECT_TRUE(sm.authorize(NodeId{1}, GroupId{2}, GroupAction::kJoin));
  EXPECT_FALSE(sm.authorize(NodeId{1}, GroupId{3}, GroupAction::kJoin));
  EXPECT_FALSE(sm.authorize(NodeId{2}, GroupId{2}, GroupAction::kJoin));
  EXPECT_FALSE(sm.authorize(NodeId{1}, GroupId{2}, GroupAction::kDelete));
}

TEST(SessionManager, AclWildcards) {
  AclSessionManager sm;
  sm.allow(NodeId{1}, GroupId{AclSessionManager::kAnyGroup},
           GroupAction::kPublish);
  sm.allow(NodeId{AclSessionManager::kAnyClient}, GroupId{9},
           GroupAction::kJoin);
  EXPECT_TRUE(sm.authorize(NodeId{1}, GroupId{77}, GroupAction::kPublish));
  EXPECT_TRUE(sm.authorize(NodeId{42}, GroupId{9}, GroupAction::kJoin));
  EXPECT_FALSE(sm.authorize(NodeId{42}, GroupId{10}, GroupAction::kJoin));
}

TEST(SessionManager, AclRevoke) {
  AclSessionManager sm;
  sm.allow(NodeId{1}, GroupId{2}, GroupAction::kJoin);
  sm.revoke(NodeId{1}, GroupId{2}, GroupAction::kJoin);
  EXPECT_FALSE(sm.authorize(NodeId{1}, GroupId{2}, GroupAction::kJoin));
}

TEST(SessionManager, AllowAllActionsCoversSuite) {
  AclSessionManager sm;
  sm.allow_all_actions(NodeId{1}, GroupId{2});
  for (GroupAction a :
       {GroupAction::kCreate, GroupAction::kDelete, GroupAction::kJoin,
        GroupAction::kLeave, GroupAction::kPublish, GroupAction::kReduceLog}) {
    EXPECT_TRUE(sm.authorize(NodeId{1}, GroupId{2}, a))
        << group_action_name(a);
  }
}

// ---------------------------------------------------------------------------
// State transfer policies
// ---------------------------------------------------------------------------

class TransferFixture : public ::testing::Test {
 protected:
  SharedState state;
  void SetUp() override {
    state.load(0, {StateEntry{ObjectId{1}, to_bytes("A")},
                   StateEntry{ObjectId{2}, to_bytes("B")}});
    for (SeqNo s = 1; s <= 20; ++s) {
      UpdateRecord u;
      u.seq = s;
      u.kind = PayloadKind::kUpdate;
      u.object = ObjectId{1 + s % 2};
      u.data = to_bytes("u" + std::to_string(s));
      u.sender = NodeId{100};
      u.request_id = s;
      state.apply(u);
    }
  }
};

TEST_F(TransferFixture, FullStateShipsConsolidatedSnapshot) {
  const auto t = build_transfer(state, TransferPolicySpec::full());
  EXPECT_EQ(t.base_seq, 20u);
  EXPECT_EQ(t.snapshot.size(), 2u);
  EXPECT_TRUE(t.updates.empty());
}

TEST_F(TransferFixture, LastNShipsTailOnly) {
  const auto t = build_transfer(state, TransferPolicySpec::last_n_updates(5));
  EXPECT_TRUE(t.snapshot.empty());
  ASSERT_EQ(t.updates.size(), 5u);
  EXPECT_EQ(t.updates.front().seq, 16u);
  EXPECT_EQ(t.base_seq, 15u);
}

TEST_F(TransferFixture, LastNLargerThanHistoryShipsAll) {
  const auto t = build_transfer(state, TransferPolicySpec::last_n_updates(99));
  EXPECT_EQ(t.updates.size(), 20u);
  EXPECT_EQ(t.base_seq, 0u);
}

TEST_F(TransferFixture, ObjectsShipsSubsetSnapshot) {
  const auto t =
      build_transfer(state, TransferPolicySpec::objects_only({ObjectId{2}}));
  ASSERT_EQ(t.snapshot.size(), 1u);
  EXPECT_EQ(t.snapshot[0].object, ObjectId{2});
  EXPECT_EQ(t.base_seq, 20u);
}

TEST_F(TransferFixture, ObjectsLastNFiltersBoth) {
  const auto t = build_transfer(
      state, TransferPolicySpec::objects_last_n({ObjectId{1}}, 3));
  EXPECT_TRUE(t.snapshot.empty());
  ASSERT_EQ(t.updates.size(), 3u);
  for (const auto& u : t.updates) EXPECT_EQ(u.object, ObjectId{1});
}

TEST_F(TransferFixture, NothingShipsNothing) {
  const auto t = build_transfer(state, TransferPolicySpec::nothing());
  EXPECT_TRUE(t.snapshot.empty());
  EXPECT_TRUE(t.updates.empty());
  EXPECT_EQ(t.base_seq, 20u);
}

TEST_F(TransferFixture, TotalBytesAccounts) {
  const auto full = build_transfer(state, TransferPolicySpec::full());
  const auto last1 = build_transfer(state, TransferPolicySpec::last_n_updates(1));
  EXPECT_GT(full.total_bytes(), last1.total_bytes());
}

// ---------------------------------------------------------------------------
// Reduction policies
// ---------------------------------------------------------------------------

SharedState state_with_updates(std::size_t n, std::size_t bytes_each) {
  SharedState s;
  for (SeqNo i = 1; i <= n; ++i) {
    UpdateRecord u;
    u.seq = i;
    u.kind = PayloadKind::kUpdate;
    u.object = ObjectId{1};
    u.data = filler_bytes(bytes_each);
    u.sender = NodeId{100};
    u.request_id = i;
    s.apply(u);
  }
  return s;
}

TEST(ReductionPolicy, NoReductionNeverFires) {
  auto p = make_no_reduction();
  auto s = state_with_updates(1000, 100);
  EXPECT_EQ(p->should_reduce(s), 0u);
}

TEST(ReductionPolicy, SizeThresholdFires) {
  auto p = make_size_threshold(500);
  auto below = state_with_updates(4, 100);
  EXPECT_EQ(p->should_reduce(below), 0u);
  auto above = state_with_updates(6, 100);
  EXPECT_EQ(p->should_reduce(above), 6u);
}

TEST(ReductionPolicy, CountThresholdFires) {
  auto p = make_count_threshold(10);
  auto below = state_with_updates(10, 1);
  EXPECT_EQ(p->should_reduce(below), 0u);
  auto above = state_with_updates(11, 1);
  EXPECT_EQ(p->should_reduce(above), 11u);
}

TEST(ReductionPolicy, WindowKeepsTail) {
  auto p = make_window(5);
  auto s = state_with_updates(11, 1);
  EXPECT_EQ(p->should_reduce(s), 6u);  // head(11) - keep(5)
  s.reduce_to(6);
  EXPECT_EQ(p->should_reduce(s), 0u);  // history is 5 <= 2*keep
}

// ---------------------------------------------------------------------------
// Group bookkeeping
// ---------------------------------------------------------------------------

TEST(Group, MembershipAddRemove) {
  Group g(GroupMeta{GroupId{1}, "g", false});
  EXPECT_TRUE(g.add_member(NodeId{100}, MemberRole::kPrincipal, true));
  EXPECT_FALSE(g.add_member(NodeId{100}, MemberRole::kObserver, false));
  EXPECT_TRUE(g.is_member(NodeId{100}));
  EXPECT_TRUE(g.remove_member(NodeId{100}));
  EXPECT_FALSE(g.remove_member(NodeId{100}));
}

TEST(Group, MemberListDeterministicOrder) {
  Group g(GroupMeta{GroupId{1}, "g", false});
  g.add_member(NodeId{105}, MemberRole::kPrincipal, false);
  g.add_member(NodeId{101}, MemberRole::kObserver, true);
  const auto list = g.member_list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].node, NodeId{101});
  EXPECT_EQ(list[1].node, NodeId{105});
}

TEST(Group, NoticeSubscribersFiltered) {
  Group g(GroupMeta{GroupId{1}, "g", false});
  g.add_member(NodeId{100}, MemberRole::kPrincipal, true);
  g.add_member(NodeId{101}, MemberRole::kPrincipal, false);
  EXPECT_EQ(g.notice_subscribers(), (std::vector<NodeId>{NodeId{100}}));
}

TEST(Group, SequencerMonotonic) {
  Group g(GroupMeta{GroupId{1}, "g", false});
  EXPECT_EQ(g.allocate_seq(), 1u);
  EXPECT_EQ(g.allocate_seq(), 2u);
  g.set_next_seq(100);
  EXPECT_EQ(g.allocate_seq(), 100u);
}

TEST(Group, SeenSetDedups) {
  Group g(GroupMeta{GroupId{1}, "g", false});
  EXPECT_TRUE(g.mark_seen(NodeId{100}, 1));
  EXPECT_FALSE(g.mark_seen(NodeId{100}, 1));
  EXPECT_TRUE(g.was_seen(NodeId{100}, 1));
  EXPECT_FALSE(g.was_seen(NodeId{100}, 2));
  EXPECT_TRUE(g.mark_seen(NodeId{101}, 1));  // different sender, same rid
}

// ---------------------------------------------------------------------------
// QoS scheduler
// ---------------------------------------------------------------------------

Message bcast_for(GroupId g) {
  return make_bcast(PayloadKind::kUpdate, g, ObjectId{1}, to_bytes("x"), true,
                    1);
}

TEST(QosScheduler, StrictPriorityOrder) {
  QosScheduler q;
  q.set_group_class(GroupId{1}, 2);
  q.set_group_class(GroupId{2}, 0);
  q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  q.enqueue(NodeId{100}, bcast_for(GroupId{2}));
  auto first = q.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->msg.group, GroupId{2});
  EXPECT_EQ(q.dequeue()->msg.group, GroupId{1});
}

TEST(QosScheduler, UnknownGroupDefaultsToMiddleClass) {
  QosScheduler q;
  EXPECT_EQ(q.group_class(GroupId{42}), 1);
}

TEST(QosScheduler, AgingPreventsStarvation) {
  QosScheduler::Config cfg;
  cfg.aging_limit = 3;
  QosScheduler q(cfg);
  q.set_group_class(GroupId{1}, 0);
  q.set_group_class(GroupId{2}, 2);
  q.enqueue(NodeId{100}, bcast_for(GroupId{2}));  // low priority, waits
  for (int i = 0; i < 10; ++i) q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  // After aging_limit dequeues the low-priority message is promoted twice
  // and eventually drains even while high-priority work keeps arriving.
  int drained_low = 0;
  for (int i = 0; i < 11; ++i) {
    auto item = q.dequeue();
    ASSERT_TRUE(item.has_value());
    if (item->msg.group == GroupId{2}) ++drained_low;
  }
  EXPECT_EQ(drained_low, 1);
  EXPECT_GT(q.promoted(), 0u);
}

TEST(QosScheduler, SheddingDropsLowestClassUnderLoad) {
  QosScheduler::Config cfg;
  cfg.shed_threshold = 5;
  QosScheduler q(cfg);
  q.set_group_class(GroupId{1}, 0);
  q.set_group_class(GroupId{3}, 2);
  q.enqueue(NodeId{100}, bcast_for(GroupId{3}));
  for (int i = 0; i < 10; ++i) q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  EXPECT_GT(q.shed(), 0u);
  EXPECT_LE(q.depth(), 6u);
  // The shed message was the low-priority one.
  while (auto item = q.dequeue()) {
    EXPECT_EQ(item->msg.group, GroupId{1});
  }
}

TEST(QosScheduler, DepthAndCounters) {
  QosScheduler q;
  EXPECT_TRUE(q.empty());
  q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.enqueued(), 2u);
  EXPECT_EQ(q.max_depth_seen(), 2u);
  q.dequeue();
  EXPECT_EQ(q.depth(), 1u);
}

TEST(QosScheduler, ShedThresholdIsAnInclusiveBound) {
  // depth == shed_threshold is still acceptable load; shedding starts only
  // when the backlog strictly exceeds it.
  QosScheduler::Config cfg;
  cfg.shed_threshold = 3;
  QosScheduler q(cfg);
  for (int i = 0; i < 3; ++i) q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  EXPECT_EQ(q.shed(), 0u);
  EXPECT_EQ(q.depth(), 3u);
  q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.depth(), 3u);
}

TEST(QosScheduler, PromotionClimbsExactlyOneClassPerAging) {
  // A class-2 message must pass through class 1 on its way up: two aging
  // rounds, two promotions.  Jumping straight to class 0 would let bulk
  // traffic leapfrog the interactive class.
  QosScheduler::Config cfg;
  cfg.aging_limit = 1;
  QosScheduler q(cfg);
  q.set_group_class(GroupId{1}, 0);
  q.set_group_class(GroupId{2}, 2);
  q.enqueue(NodeId{100}, bcast_for(GroupId{2}));  // waits in class 2
  q.enqueue(NodeId{100}, bcast_for(GroupId{1}));
  q.enqueue(NodeId{100}, bcast_for(GroupId{1}));

  ASSERT_EQ(q.dequeue()->msg.group, GroupId{1});  // ages 2 -> promotes to 1
  EXPECT_EQ(q.promoted(), 1u);
  ASSERT_EQ(q.dequeue()->msg.group, GroupId{1});  // ages 1 -> promotes to 0
  EXPECT_EQ(q.promoted(), 2u);
  auto last = q.dequeue();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->msg.group, GroupId{2});
  EXPECT_EQ(q.depth(), 0u);
}

TEST(Group, InvariantCatchesHeadSeqCatchingUpToNextSeq) {
  // next_seq_ is the next sequence number to hand out, so an applied record
  // carrying it (head == next) means the sequencer double-issued — the
  // invariant must flag equality, not just overshoot.
  Group g(GroupMeta{GroupId{1}, "g", false});
  g.state().load(1, {});  // head_seq == 1 == next_seq_
  EXPECT_FALSE(g.check_invariants().ok());
  g.set_next_seq(2);
  EXPECT_TRUE(g.check_invariants().ok());
}

}  // namespace
}  // namespace corona
