// Cold restart of the whole replicated service: every process stops, a new
// cluster starts over the coordinator's surviving durable store, and the
// persistent groups come back with their state (paper §3.1: "a group and
// its shared data should be able to outlive the process members of the
// group" — including the server processes, via stable storage).
#include <gtest/gtest.h>

#include "core/client.h"
#include "replica/replica_server.h"
#include "runtime/sim_runtime.h"
#include "storage/group_store.h"

namespace corona {
namespace {

const GroupId kPersistent{1};
const GroupId kTransient{2};
const ObjectId kObj{1};

TEST(ReplicaColdRestart, PersistentGroupsRecoverFromCoordinatorDisk) {
  GroupStore disk;  // the coordinator machine's disk; survives the cluster

  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}, NodeId{3}};
  ReplicaConfig cfg;

  // ---- first life of the cluster ----
  {
    SimRuntime rt;
    ReplicaServer coordinator(cfg, ids, &disk);
    ReplicaServer leaf_a(cfg, ids);
    ReplicaServer leaf_b(cfg, ids);
    rt.add_node(ids[0], &coordinator, rt.network().add_host(HostProfile{}));
    rt.add_node(ids[1], &leaf_a, rt.network().add_host(HostProfile{}));
    rt.add_node(ids[2], &leaf_b, rt.network().add_host(HostProfile{}));
    CoronaClient client(ids[1]);
    rt.add_node(NodeId{100}, &client, rt.network().add_host(HostProfile{}));
    rt.start();
    rt.run_for(500 * kMillisecond);

    client.create_group(kPersistent, "keep", /*persistent=*/true);
    client.create_group(kTransient, "drop", /*persistent=*/false);
    rt.run_for(300 * kMillisecond);
    client.join(kPersistent);
    client.join(kTransient);
    rt.run_for(300 * kMillisecond);
    client.bcast_update(kPersistent, kObj, to_bytes("durable-data"));
    client.bcast_update(kTransient, kObj, to_bytes("ephemeral"));
    // Let the async flush land before the power goes out.
    rt.run_for(1 * kSecond);
  }
  // Everything is gone except the disk.  A transient group whose members
  // all died with the cluster must not be resurrected.

  // ---- second life ----
  SimRuntime rt;
  ReplicaServer coordinator(cfg, ids, &disk);
  ReplicaServer leaf_a(cfg, ids);
  ReplicaServer leaf_b(cfg, ids);
  rt.add_node(ids[0], &coordinator, rt.network().add_host(HostProfile{}));
  rt.add_node(ids[1], &leaf_a, rt.network().add_host(HostProfile{}));
  rt.add_node(ids[2], &leaf_b, rt.network().add_host(HostProfile{}));
  CoronaClient late(ids[2]);
  rt.add_node(NodeId{101}, &late, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(1 * kSecond);

  ASSERT_NE(coordinator.coord_state(kPersistent), nullptr);
  EXPECT_EQ(coordinator.coord_state(kTransient), nullptr);

  // A brand-new client joins through a leaf and receives the durable state.
  late.join(kPersistent);
  rt.run_for(1 * kSecond);
  ASSERT_TRUE(late.is_joined(kPersistent));
  ASSERT_NE(late.group_state(kPersistent), nullptr);
  EXPECT_EQ(to_string(*late.group_state(kPersistent)->object(kObj)),
            "durable-data");

  // And the recovered group keeps sequencing from where it left off.
  late.bcast_update(kPersistent, kObj, to_bytes("+more"));
  rt.run_for(1 * kSecond);
  EXPECT_EQ(to_string(*late.group_state(kPersistent)->object(kObj)),
            "durable-data+more");
}

TEST(ReplicaColdRestart, UnflushedTailLostOnColdRestart) {
  GroupStore disk;
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
  ReplicaConfig cfg;
  cfg.flush_interval = 60 * kSecond;  // effectively never during the test

  {
    SimRuntime rt;
    ReplicaServer coordinator(cfg, ids, &disk);
    ReplicaServer leaf(cfg, ids);
    rt.add_node(ids[0], &coordinator, rt.network().add_host(HostProfile{}));
    rt.add_node(ids[1], &leaf, rt.network().add_host(HostProfile{}));
    CoronaClient client(ids[1]);
    rt.add_node(NodeId{100}, &client, rt.network().add_host(HostProfile{}));
    rt.start();
    rt.run_for(500 * kMillisecond);
    client.create_group(kPersistent, "keep", true);
    rt.run_for(300 * kMillisecond);
    // Force the creation checkpoint to become durable, then write updates
    // that never get flushed.
    (void)disk.flush();
    client.join(kPersistent);
    rt.run_for(300 * kMillisecond);
    client.bcast_update(kPersistent, kObj, to_bytes("never-flushed"));
    rt.run_for(300 * kMillisecond);
  }
  disk.crash();  // power loss: the unflushed tail vanishes (§6)

  SimRuntime rt;
  ReplicaServer coordinator(cfg, ids, &disk);
  ReplicaServer leaf(cfg, ids);
  rt.add_node(ids[0], &coordinator, rt.network().add_host(HostProfile{}));
  rt.add_node(ids[1], &leaf, rt.network().add_host(HostProfile{}));
  rt.start();
  rt.run_for(1 * kSecond);
  ASSERT_NE(coordinator.coord_state(kPersistent), nullptr);
  EXPECT_FALSE(coordinator.coord_state(kPersistent)->has_object(kObj));
}

}  // namespace
}  // namespace corona
