// Frame-reassembly robustness: the FrameDecoder must survive arbitrary
// chunking of the TCP byte stream (single-byte feeds, fragmented frames,
// many frames coalesced into one read) and must turn garbage into a clean
// terminal corrupt state — never a crash, never an over-read.
#include <gtest/gtest.h>

#include <vector>

#include "net/frame.h"
#include "serial/message.h"

namespace corona::net {
namespace {

Bytes concat(const std::vector<Bytes>& parts) {
  Bytes all;
  for (const Bytes& p : parts) all.insert(all.end(), p.begin(), p.end());
  return all;
}

Bytes sample_message_frame(SeqNo seq) {
  Message m;
  m.type = MsgType::kDeliver;
  m.group = GroupId{7};
  m.seq = seq;
  return encode_message_frame(NodeId{3}, NodeId{4}, m.encode());
}

TEST(SocketFrame, RoundTripsEveryKind) {
  FrameDecoder d;
  d.feed(BytesView(encode_hello_frame({NodeId{1}, NodeId{9}})));
  d.feed(BytesView(sample_message_frame(42)));
  d.feed(BytesView(encode_ping_frame()));
  d.feed(BytesView(encode_pong_frame()));

  Frame f;
  ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.kind, FrameKind::kHello);
  EXPECT_EQ(f.hello_nodes, (std::vector<NodeId>{NodeId{1}, NodeId{9}}));

  ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.kind, FrameKind::kMessage);
  EXPECT_EQ(f.from, NodeId{3});
  EXPECT_EQ(f.to, NodeId{4});
  auto decoded = Message::decode(f.message_wire);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().type, MsgType::kDeliver);
  EXPECT_EQ(decoded.value().seq, 42u);

  ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.kind, FrameKind::kPing);
  ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.kind, FrameKind::kPong);
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kNeedMore);
  EXPECT_EQ(d.buffered_bytes(), 0u);
}

TEST(SocketFrame, SingleByteFeedsReassemble) {
  const Bytes wire = sample_message_frame(5);
  FrameDecoder d;
  Frame f;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    // Until the last byte lands, no frame may surface.
    EXPECT_EQ(d.next(&f), FrameDecoder::Next::kNeedMore);
    d.feed(&wire[i], 1);
  }
  ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.kind, FrameKind::kMessage);
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kNeedMore);
}

TEST(SocketFrame, FragmentedAcrossUnevenChunks) {
  const Bytes wire =
      concat({sample_message_frame(1), sample_message_frame(2),
              encode_hello_frame({NodeId{8}}), sample_message_frame(3)});
  // Feed in prime-sized chunks so boundaries never line up with frames.
  FrameDecoder d;
  std::vector<Frame> out;
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t n = std::min<std::size_t>(7, wire.size() - off);
    d.feed(wire.data() + off, n);
    off += n;
    Frame f;
    while (d.next(&f) == FrameDecoder::Next::kFrame) out.push_back(f);
  }
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].kind, FrameKind::kMessage);
  EXPECT_EQ(out[2].kind, FrameKind::kHello);
  EXPECT_EQ(out[2].hello_nodes, (std::vector<NodeId>{NodeId{8}}));
}

TEST(SocketFrame, CoalescedIntoOneFeed) {
  std::vector<Bytes> parts;
  for (SeqNo s = 1; s <= 50; ++s) parts.push_back(sample_message_frame(s));
  FrameDecoder d;
  d.feed(BytesView(concat(parts)));
  Frame f;
  for (SeqNo s = 1; s <= 50; ++s) {
    ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
    auto decoded = Message::decode(f.message_wire);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value().seq, s);
  }
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kNeedMore);
  EXPECT_EQ(d.buffered_bytes(), 0u);
}

TEST(SocketFrame, TruncatedFrameStaysPending) {
  const Bytes wire = sample_message_frame(9);
  FrameDecoder d;
  d.feed(wire.data(), wire.size() - 1);  // connection died one byte short
  Frame f;
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kNeedMore);
  EXPECT_FALSE(d.corrupt());
  EXPECT_EQ(d.buffered_bytes(), wire.size() - 1);
}

TEST(SocketFrame, ZeroLengthFrameIsCorrupt) {
  const Bytes wire = {0, 0, 0, 0};  // length 0: no room for the kind byte
  FrameDecoder d;
  d.feed(BytesView(wire));
  Frame f;
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
  EXPECT_TRUE(d.corrupt());
}

TEST(SocketFrame, OversizeLengthIsCorruptImmediately) {
  // A garbage length prefix must be rejected before any buffering happens,
  // not after the decoder tries to accumulate 4 GB.
  const Bytes wire = {0xff, 0xff, 0xff, 0xff, 1};
  FrameDecoder d(1024);
  d.feed(BytesView(wire));
  Frame f;
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
}

TEST(SocketFrame, UnknownKindIsCorrupt) {
  const Bytes wire = {1, 0, 0, 0, 0x77};
  FrameDecoder d;
  d.feed(BytesView(wire));
  Frame f;
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
}

TEST(SocketFrame, WrongHelloVersionIsCorrupt) {
  Bytes wire = encode_hello_frame({NodeId{1}});
  wire[kFrameLengthBytes + 1] = 0x6e;  // version byte right after the kind
  FrameDecoder d;
  d.feed(BytesView(wire));
  Frame f;
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
}

TEST(SocketFrame, HelloWithLyingCountIsCorruptNotHuge) {
  // kind=hello, version ok, then a varint count far larger than the bytes
  // present; must be rejected without attempting a giant reserve.
  Bytes body = {kFrameProtocolVersion,
                0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  Bytes wire;
  const std::size_t len = 1 + body.size();
  wire.push_back(static_cast<std::uint8_t>(len));
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(0);
  wire.push_back(static_cast<std::uint8_t>(FrameKind::kHello));
  wire.insert(wire.end(), body.begin(), body.end());
  FrameDecoder d;
  d.feed(BytesView(wire));
  Frame f;
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
}

TEST(SocketFrame, PingWithBodyIsCorrupt) {
  const Bytes wire = {2, 0, 0, 0, static_cast<std::uint8_t>(FrameKind::kPing),
                      0xab};
  FrameDecoder d;
  d.feed(BytesView(wire));
  Frame f;
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
}

TEST(SocketFrame, CorruptIsTerminalEvenAfterGoodBytes) {
  FrameDecoder d;
  d.feed(BytesView(Bytes{1, 0, 0, 0, 0x77}));  // unknown kind
  Frame f;
  ASSERT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
  // Feeding perfectly valid frames afterwards must not resurrect the stream:
  // a framing error leaves no trustworthy boundary to resynchronize on.
  d.feed(BytesView(encode_ping_frame()));
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kCorrupt);
  EXPECT_TRUE(d.corrupt());
}

TEST(SocketFrame, RandomGarbageNeverCrashes) {
  // Deterministic pseudo-garbage (xorshift; no wall-clock seed) hammered
  // through the decoder in odd chunk sizes: every outcome is acceptable
  // except a crash, an over-read, or an infinite loop.
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  auto next_byte = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<std::uint8_t>(x);
  };
  for (int round = 0; round < 32; ++round) {
    FrameDecoder d(4096);
    Bytes junk(257);
    for (auto& b : junk) b = next_byte();
    std::size_t off = 0;
    int guard = 0;
    while (off < junk.size() && !d.corrupt()) {
      const std::size_t n = std::min<std::size_t>(1 + (round % 9), junk.size() - off);
      d.feed(junk.data() + off, n);
      off += n;
      Frame f;
      FrameDecoder::Next r;
      while ((r = d.next(&f)) == FrameDecoder::Next::kFrame) {
        ASSERT_LT(++guard, 10000);
      }
      if (r == FrameDecoder::Next::kCorrupt) break;
    }
  }
}

TEST(SocketFrame, LongStreamCompactsItsBuffer) {
  // Many frames through one decoder: the consumed prefix must be reclaimed,
  // not accumulated forever.
  FrameDecoder d;
  Frame f;
  for (int i = 0; i < 2000; ++i) {
    d.feed(BytesView(encode_ping_frame()));
    ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
  }
  EXPECT_EQ(d.buffered_bytes(), 0u);
}

TEST(SocketFrame, MultiByteLengthPrefixDecodesExactly) {
  // A body longer than 255 bytes puts a non-zero value in the second length
  // byte; the little-endian decode must weight each byte correctly or the
  // decoder desyncs from the stream.
  Message m;
  m.type = MsgType::kDeliver;
  m.group = GroupId{7};
  m.seq = 9;
  m.text = std::string(300, 'x');
  const Bytes wire = m.encode();
  ASSERT_GT(wire.size(), 255u);

  FrameDecoder d;
  d.feed(BytesView(encode_message_frame(NodeId{3}, NodeId{4}, wire)));
  Frame f;
  ASSERT_EQ(d.next(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.kind, FrameKind::kMessage);
  EXPECT_EQ(f.message_wire, wire);
  EXPECT_EQ(d.next(&f), FrameDecoder::Next::kNeedMore);
  EXPECT_EQ(d.buffered_bytes(), 0u);
}

TEST(SocketFrame, FrameExactlyAtTheCeilingIsAccepted) {
  // The ceiling is inclusive: a ping frame is exactly one byte of body, so a
  // decoder capped at one byte must still accept it (and reject two).
  FrameDecoder exact(1);
  exact.feed(BytesView(encode_ping_frame()));
  Frame f;
  ASSERT_EQ(exact.next(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.kind, FrameKind::kPing);
  EXPECT_FALSE(exact.corrupt());

  FrameDecoder tight(1);
  tight.feed(BytesView(encode_hello_frame({NodeId{1}})));  // body > 1 byte
  EXPECT_EQ(tight.next(&f), FrameDecoder::Next::kCorrupt);
}

}  // namespace
}  // namespace corona::net
