// libFuzzer entry for the durable storage decoders (storage/disk/), built
// behind -DCORONA_FUZZ=ON.  The input is fed to every on-disk format reader
// — segment scan, checkpoint file, log meta — as one hostile buffer, which
// is exactly what a recovery scan reads off a crashed disk.
//
//   cmake --preset asan -DCORONA_FUZZ=ON && cmake --build build/asan -j
//   ./build/asan/fuzz/storage_fuzz -max_total_time=60
//
// The deterministic seeded twin of this harness runs in every build as
// tests/storage_fuzz_test.cc and additionally checks the prefix property
// against known-good images; this entry point is pure never-crash coverage.
#include <cstddef>
#include <cstdint>

#include "storage/disk/disk_format.h"
#include "util/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const corona::BytesView buf(data, size);
  const corona::disk::SegmentScan scan = corona::disk::scan_segment(buf);
  if (scan.valid_bytes > size) __builtin_trap();  // internal inconsistency
  (void)corona::disk::decode_checkpoint_file(buf);
  (void)corona::disk::decode_log_meta(buf);
  return 0;
}
