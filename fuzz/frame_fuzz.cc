// libFuzzer entry for the stream framing decoder (net/frame.h), built
// behind -DCORONA_FUZZ=ON.  The input is treated as one received byte
// stream; the first byte seeds the chunking so coverage includes reassembly
// across arbitrary read boundaries, not just whole-buffer feeds.
//
//   cmake --preset asan -DCORONA_FUZZ=ON && cmake --build build/asan -j
//   ./build/asan/fuzz/frame_fuzz -max_total_time=60
//
// The deterministic seeded twin of this harness runs in every build as
// tests/net_frame_fuzz_test.cc.
#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "net/frame.h"
#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using corona::net::Frame;
  using corona::net::FrameDecoder;

  // Bound the buffer the decoder may legitimately hold so a fuzzed length
  // prefix cannot turn into an OOM report instead of a finding.
  FrameDecoder decoder(1 << 20);
  corona::Rng chunker(size == 0 ? 1 : data[0]);

  std::size_t off = size == 0 ? 0 : 1;
  while (off < size) {
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(size - off, chunker.next_range(1, 97)));
    decoder.feed(data + off, chunk);
    off += chunk;
    Frame frame;
    while (decoder.next(&frame) == FrameDecoder::Next::kFrame) {
    }
    if (decoder.corrupt()) break;
  }
  return 0;
}
