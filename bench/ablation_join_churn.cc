// §1 ablation: unobtrusive joins and leaves.
//
// "A process should be able to join and leave a group unobtrusively; the
// existing processes in the group should be able to carry on with their
// operations in the presence of multiple, concurrent joins and leaves."
//
// A steady interactive multicast runs while churn clients join (full-state
// transfer of a sizeable group state!) and leave at increasing rates.  The
// existing members' round-trip latency is compared against the churn-free
// baseline, in both join modes:
//   service — Corona (§3.2): the join never touches existing members;
//   peer    — the §2 baseline: every join pulls the state through a member.
#include <iostream>
#include <map>
#include <memory>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

namespace {

const GroupId kG{1};
const ObjectId kObj{1};

double run_churn(JoinTransferMode mode, int churn_per_sec) {
  SimRuntime rt;
  const NodeId server_id{1};
  GroupStore store;
  ServerConfig cfg;
  cfg.join_transfer = mode;
  CoronaServer server(std::move(cfg), &store);
  rt.add_node(server_id, &server,
              rt.network().add_host(HostProfile::ultrasparc()));

  // Two steady members; one measures round trips.
  std::map<RequestId, TimePoint> in_flight;
  LatencyStats rtt;
  CoronaClient::Callbacks cb;
  CoronaClient measurer(server_id);
  cb.on_deliver = [&](GroupId g, const UpdateRecord& rec) {
    if (!(g == kG)) return;
    auto it = in_flight.find(rec.request_id);
    if (it != in_flight.end()) {
      rtt.add(to_ms(rt.now() - it->second));
      in_flight.erase(it);
    }
  };
  measurer.set_callbacks(cb);
  CoronaClient partner(server_id);
  rt.add_node(NodeId{100}, &measurer,
              rt.network().add_host(HostProfile::sparc20()));
  rt.add_node(NodeId{101}, &partner,
              rt.network().add_host(HostProfile::sparc20()));

  // A pool of churn clients cycling through join -> leave.
  constexpr std::size_t kChurnPool = 8;
  std::vector<std::unique_ptr<CoronaClient>> churners;
  for (std::size_t i = 0; i < kChurnPool; ++i) {
    churners.push_back(std::make_unique<CoronaClient>(server_id));
    rt.add_node(NodeId{200 + i}, churners.back().get(),
                rt.network().add_host(HostProfile::sparc20()));
  }

  rt.start();
  rt.run_for(50 * kMillisecond);
  measurer.create_group(kG, "g", true);
  rt.run_for(50 * kMillisecond);
  measurer.join(kG);
  partner.join(kG);
  rt.run_for(100 * kMillisecond);
  // Sizeable state so each full-state join moves real bytes.
  for (int i = 0; i < 200; ++i) {
    partner.bcast_update(kG, kObj, filler_bytes(500));
    if (i % 40 == 39) rt.run_for(200 * kMillisecond);
  }
  rt.run_for(1 * kSecond);

  // 10 s of measurement: interactive sends at 10 Hz; churn at the given
  // rate, alternating join/leave across the pool.
  for (int i = 0; i < 100; ++i) {
    rt.sim().queue().schedule_after(
        static_cast<Duration>(i) * 100 * kMillisecond, [&] {
          const RequestId rid =
              measurer.bcast_update(kG, kObj, filler_bytes(200));
          in_flight[rid] = rt.now();
        });
  }
  if (churn_per_sec > 0) {
    const Duration step = 1 * kSecond / churn_per_sec;
    const int events = 10 * churn_per_sec;
    for (int i = 0; i < events; ++i) {
      const std::size_t who = static_cast<std::size_t>(i) % kChurnPool;
      const bool joining = (i / kChurnPool) % 2 == 0;
      rt.sim().queue().schedule_after(
          static_cast<Duration>(i) * step, [&churners, who, joining] {
            if (joining) {
              churners[who]->join(kG);  // full-state transfer
            } else {
              churners[who]->leave(kG);
            }
          });
    }
  }
  rt.run_for(15 * kSecond);
  return rtt.mean();
}

}  // namespace

int main() {
  print_banner("Ablation — multicast latency under join/leave churn",
               "§1 'join and leave unobtrusively' claims");

  TextTable table({"churn (joins+leaves)/s", "service-join ms",
                   "peer-join ms", "peer/service"});
  for (int churn : {0, 2, 5, 10}) {
    const double service = run_churn(JoinTransferMode::kService, churn);
    const double peer = run_churn(JoinTransferMode::kPeer, churn);
    table.add_row({std::to_string(churn), TextTable::fmt(service, 2),
                   TextTable::fmt(peer, 2),
                   TextTable::fmt(peer / service, 1) + "x"});
  }
  std::cout << table.to_string();
  std::cout << "\nShape: under churn the steady members pay 4-10x more when\n"
               "joins route through donor members (the §2 peer baseline)\n"
               "than when the service answers them — joining 'does not\n"
               "involve the existing members of a group' (§3.2).  The\n"
               "residual service-mode cost is the server shipping transfer\n"
               "bytes on the same link as the deliveries, which log\n"
               "reduction and last-n policies shrink (see\n"
               "ablation_state_transfer).\n";
  return 0;
}
