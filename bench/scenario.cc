#include "bench/scenario.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>

namespace corona::bench {

namespace {

constexpr GroupId kGroup{1};
constexpr ObjectId kObject{1};

NodeId server_node(std::size_t i) { return NodeId{1 + i}; }
NodeId client_node(std::size_t i) { return NodeId{100 + i}; }

// Drives the measuring client: records send time per request id and samples
// the round trip when its own multicast comes back.
class RoundTripDriver {
 public:
  RoundTripDriver(SimRuntime& rt, CoronaClient& client, GroupId group,
                  std::size_t bytes, std::size_t messages, Duration interval,
                  bool self_clocked)
      : rt_(rt), client_(client), group_(group), bytes_(bytes),
        messages_(messages), interval_(interval),
        self_clocked_(self_clocked) {}

  CoronaClient::Callbacks callbacks() {
    CoronaClient::Callbacks cb;
    cb.on_deliver = [this](GroupId g, const UpdateRecord& rec) {
      if (!(g == group_) || !(rec.sender == client_.id())) return;
      auto it = in_flight_.find(rec.request_id);
      if (it == in_flight_.end()) return;
      stats_.add(to_ms(rt_.now() - it->second));
      in_flight_.erase(it);
      if (self_clocked_) send_next();
    };
    return cb;
  }

  // Kick off the send schedule.  In timed mode every send is pre-scheduled
  // at the paper's cadence; in self-clocked mode each delivery triggers the
  // next send.
  void start() {
    if (self_clocked_) {
      send_next();
      return;
    }
    for (std::size_t i = 0; i < messages_; ++i) {
      rt_.sim().queue().schedule_after(
          static_cast<Duration>(i) * interval_, [this] { send_one(); });
    }
  }

  bool done() const { return sent_ >= messages_ && in_flight_.empty(); }
  const LatencyStats& stats() const { return stats_; }

 private:
  void send_one() {
    const RequestId rid =
        client_.bcast_update(group_, kObject, filler_bytes(bytes_), true);
    in_flight_[rid] = rt_.now();
    ++sent_;
  }
  void send_next() {
    if (sent_ < messages_) send_one();
  }

  SimRuntime& rt_;
  CoronaClient& client_;
  GroupId group_;
  std::size_t bytes_;
  std::size_t messages_;
  Duration interval_;
  bool self_clocked_;
  std::map<RequestId, TimePoint> in_flight_;
  LatencyStats stats_;
  std::size_t sent_ = 0;
};

}  // namespace

RoundTripResult run_single_server_roundtrip(const RoundTripConfig& cfg) {
  SimRuntime rt;
  rt.network().set_shared_bandwidth(cfg.shared_bandwidth_bytes_per_sec);
  const HostId server_host = rt.network().add_host(cfg.server_profile);
  std::vector<HostId> machines;
  for (std::size_t i = 0; i < cfg.client_machines; ++i) {
    machines.push_back(rt.network().add_host(cfg.client_profile));
  }

  ServerConfig scfg;
  scfg.stateful = cfg.stateful;
  scfg.flush = cfg.flush;
  scfg.use_ip_multicast = cfg.use_ip_multicast;
  GroupStore store;
  CoronaServer stateful_server(scfg, &store);
  StatelessServer stateless_server;
  Node* server = cfg.stateful ? static_cast<Node*>(&stateful_server)
                              : static_cast<Node*>(&stateless_server);
  rt.add_node(server_node(0), server, server_host);
  rt.set_disk(server_node(0), DiskProfile::nineties_disk());

  // Receivers first (lower ids), the measuring sender last: the server fans
  // out in member-id order, so the measurement is the worst case.
  std::vector<std::unique_ptr<CoronaClient>> receivers;
  for (std::size_t i = 0; i + 1 < cfg.clients; ++i) {
    receivers.push_back(std::make_unique<CoronaClient>(server_node(0)));
    rt.add_node(client_node(i), receivers.back().get(),
                machines[i % machines.size()]);
  }
  auto measurer = std::make_unique<CoronaClient>(server_node(0));
  RoundTripDriver driver(rt, *measurer, kGroup, cfg.message_bytes,
                         cfg.messages, cfg.send_interval, cfg.self_clocked);
  measurer->set_callbacks(driver.callbacks());
  rt.add_node(client_node(cfg.clients - 1), measurer.get(),
              machines[(cfg.clients - 1) % machines.size()]);

  rt.start();
  rt.run_for(50 * kMillisecond);
  measurer->create_group(kGroup, "bench", false);
  rt.run_for(50 * kMillisecond);
  // Receivers are pure sinks: no transfer, no membership awareness (the
  // O(N^2) notice traffic would otherwise pollute the warm-up).
  for (auto& r : receivers) {
    r->join(kGroup, TransferPolicySpec::nothing(), MemberRole::kObserver,
            /*notify_membership=*/false);
  }
  rt.run_for(2 * kSecond);
  measurer->join(kGroup, TransferPolicySpec::nothing(),
                 MemberRole::kPrincipal, /*notify_membership=*/false);
  rt.run_for(1 * kSecond);

  driver.start();
  // Generous ceiling: cadence * messages + drain time.
  const Duration budget =
      cfg.send_interval * static_cast<Duration>(cfg.messages) + 120 * kSecond;
  TimePoint deadline = rt.now() + budget;
  while (!driver.done() && rt.now() < deadline) {
    rt.run_for(1 * kSecond);
  }

  RoundTripResult out;
  out.round_trip_ms = driver.stats();
  out.messages_sequenced = cfg.stateful
                               ? stateful_server.stats().messages_sequenced
                               : stateless_server.stats().messages_sequenced;
  return out;
}

ThroughputResult run_single_server_throughput(const ThroughputConfig& cfg) {
  SimRuntime rt;
  rt.network().set_shared_bandwidth(cfg.shared_bandwidth_bytes_per_sec);
  const HostId server_host = rt.network().add_host(cfg.server_profile);

  GroupStore store;
  ServerConfig scfg;
  scfg.flush = cfg.flush;
  scfg.batch_max_msgs = cfg.batch_max_msgs;
  scfg.batch_max_delay = cfg.batch_max_delay;
  CoronaServer server(scfg, &store);
  rt.add_node(server_node(0), &server, server_host);
  rt.set_disk(server_node(0), DiskProfile::nineties_disk());

  // Closed-loop blasting clients: each keeps `window` multicasts in flight,
  // sending a new one whenever one of its own comes back.  Each sender
  // samples the send -> own-delivery latency of every multicast.
  struct Blaster {
    std::unique_ptr<CoronaClient> client;
    std::size_t bytes;
    SimRuntime* rt;
    LatencyStats* latency;
    std::map<RequestId, TimePoint> in_flight;
    void pump() {
      const RequestId rid =
          client->bcast_update(kGroup, kObject, filler_bytes(bytes));
      in_flight[rid] = rt->now();
    }
    void sample(RequestId rid) {
      auto it = in_flight.find(rid);
      if (it == in_flight.end()) return;
      latency->add(to_ms(rt->now() - it->second));
      in_flight.erase(it);
    }
  };
  std::vector<std::unique_ptr<Blaster>> blasters;
  ThroughputMeter delivered;
  LatencyStats latency;
  for (std::size_t i = 0; i < cfg.clients; ++i) {
    auto b = std::make_unique<Blaster>();
    Blaster* bp = b.get();
    b->bytes = cfg.message_bytes;
    b->rt = &rt;
    b->latency = &latency;
    CoronaClient::Callbacks cb;
    const NodeId self = client_node(i);
    cb.on_deliver = [bp, self, &delivered](GroupId, const UpdateRecord& rec) {
      delivered.on_delivery(rec.data.size());
      if (rec.sender == self) {
        bp->sample(rec.request_id);
        bp->pump();
      }
    };
    b->client = std::make_unique<CoronaClient>(server_node(0), cb);
    rt.add_node(self, b->client.get(),
                rt.network().add_host(HostProfile::sparc20()));
    blasters.push_back(std::move(b));
  }

  rt.start();
  rt.run_for(50 * kMillisecond);
  blasters[0]->client->create_group(kGroup, "bench", false);
  rt.run_for(50 * kMillisecond);
  for (auto& b : blasters) {
    b->client->join(kGroup, TransferPolicySpec::nothing(),
                    MemberRole::kPrincipal, /*notify_membership=*/false);
  }
  rt.run_for(500 * kMillisecond);

  const TimePoint t0 = rt.now();
  delivered.start(t0);
  const std::uint64_t sequenced0 = server.stats().messages_sequenced;
  for (auto& b : blasters) {
    for (std::size_t k = 0; k < cfg.window; ++k) b->pump();
  }
  rt.run_for(cfg.run_time);
  delivered.stop(rt.now());

  ThroughputResult out;
  const double secs = to_sec(rt.now() - t0);
  const std::uint64_t sequenced =
      server.stats().messages_sequenced - sequenced0;
  out.aggregate_kbytes_per_sec =
      static_cast<double>(sequenced) * static_cast<double>(cfg.message_bytes) /
      1000.0 / secs;
  out.delivered_kbytes_per_sec = delivered.kbytes_per_sec();
  out.messages_per_sec = static_cast<double>(sequenced) / secs;
  out.latency_ms = latency;
  out.batch_frames_sent = server.stats().batch_frames_sent;
  out.group_commits = server.stats().group_commits;
  out.group_commit_records = server.stats().group_commit_records;
  out.flushes = server.stats().flushes;
  return out;
}

RoundTripResult run_replicated_roundtrip(const ReplicatedConfig& cfg) {
  SimRuntime rt;
  rt.network().set_shared_bandwidth(cfg.shared_bandwidth_bytes_per_sec);
  rt.network().set_default_latency(cfg.client_latency);

  std::vector<NodeId> server_ids;
  for (std::size_t i = 0; i < cfg.servers; ++i) {
    server_ids.push_back(server_node(i));
  }
  std::vector<HostId> server_hosts;
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  ReplicaConfig rcfg;
  rcfg.batch_max_msgs = cfg.batch_max_msgs;
  rcfg.batch_max_delay = cfg.batch_max_delay;
  for (std::size_t i = 0; i < cfg.servers; ++i) {
    server_hosts.push_back(rt.network().add_host(HostProfile::ultrasparc()));
    servers.push_back(std::make_unique<ReplicaServer>(rcfg, server_ids));
    rt.add_node(server_ids[i], servers[i].get(), server_hosts[i]);
  }
  for (std::size_t a = 0; a < cfg.servers; ++a) {
    for (std::size_t b = a + 1; b < cfg.servers; ++b) {
      rt.network().set_latency(server_hosts[a], server_hosts[b],
                               cfg.inter_server_latency);
    }
  }

  std::vector<HostId> machines;
  for (std::size_t i = 0; i < cfg.client_machines; ++i) {
    machines.push_back(rt.network().add_host(HostProfile::sparc20()));
  }
  // Clients round-robin over the leaves (or the single server).
  auto leaf_for = [&](std::size_t i) {
    if (cfg.servers == 1) return server_ids[0];
    return server_ids[1 + i % (cfg.servers - 1)];
  };

  std::vector<std::unique_ptr<CoronaClient>> receivers;
  for (std::size_t i = 0; i + 1 < cfg.clients; ++i) {
    receivers.push_back(std::make_unique<CoronaClient>(leaf_for(i)));
    rt.add_node(client_node(i), receivers.back().get(),
                machines[i % machines.size()]);
  }
  auto measurer = std::make_unique<CoronaClient>(leaf_for(cfg.clients - 1));
  RoundTripDriver driver(rt, *measurer, kGroup, cfg.message_bytes,
                         cfg.messages, 100 * kMillisecond, cfg.self_clocked);
  measurer->set_callbacks(driver.callbacks());
  rt.add_node(client_node(cfg.clients - 1), measurer.get(),
              machines[(cfg.clients - 1) % machines.size()]);

  rt.start();
  rt.run_for(500 * kMillisecond);
  measurer->create_group(kGroup, "bench", true);
  rt.run_for(500 * kMillisecond);
  for (auto& r : receivers) {
    r->join(kGroup, TransferPolicySpec::nothing(), MemberRole::kObserver,
            /*notify_membership=*/false);
  }
  rt.run_for(10 * kSecond);
  measurer->join(kGroup, TransferPolicySpec::nothing(),
                 MemberRole::kPrincipal, /*notify_membership=*/false);
  rt.run_for(5 * kSecond);

  driver.start();
  const TimePoint deadline = rt.now() + 600 * kSecond;
  while (!driver.done() && rt.now() < deadline) {
    rt.run_for(1 * kSecond);
  }

  RoundTripResult out;
  out.round_trip_ms = driver.stats();
  for (auto& s : servers) {
    out.messages_sequenced += s->stats().sequenced;
  }
  return out;
}

JoinCostResult run_join_cost(const JoinCostConfig& cfg) {
  SimRuntime rt;
  const HostId server_host = rt.network().add_host(HostProfile::ultrasparc());

  GroupStore store;
  ServerConfig scfg;
  if (cfg.reduction) scfg.reduction_factory = cfg.reduction;
  CoronaServer server(scfg, &store);
  rt.add_node(server_node(0), &server, server_host);
  rt.set_disk(server_node(0), DiskProfile::nineties_disk());

  CoronaClient publisher(server_node(0));
  rt.add_node(client_node(0), &publisher,
              rt.network().add_host(HostProfile::sparc20()));

  JoinCostResult out;
  bool joined = false;
  TimePoint join_sent = 0;
  CoronaClient::Callbacks cb;
  cb.on_joined = [&](GroupId, Status s) {
    if (s.is_ok()) {
      joined = true;
      out.join_ms = to_ms(rt.now() - join_sent);
    }
  };
  CoronaClient late(server_node(0), cb);
  rt.add_node(client_node(1), &late,
              rt.network().add_host(HostProfile::sparc20()));

  rt.start();
  rt.run_for(50 * kMillisecond);
  publisher.create_group(kGroup, "bench", true);
  rt.run_for(50 * kMillisecond);
  publisher.join(kGroup);
  rt.run_for(50 * kMillisecond);
  for (std::size_t i = 0; i < cfg.history_updates; ++i) {
    publisher.bcast_update(kGroup, kObject, filler_bytes(cfg.update_bytes));
    if (i % 50 == 49) rt.run_for(200 * kMillisecond);
  }
  rt.run_for(2 * kSecond);

  const std::uint64_t bytes_before = server.stats().transfer_bytes;
  out.server_history_records = server.group(kGroup)->state().history_size();
  out.server_log_bytes = server.group(kGroup)->state().history_bytes();
  join_sent = rt.now();
  late.join(kGroup, cfg.policy);
  const TimePoint deadline = rt.now() + 600 * kSecond;
  while (!joined && rt.now() < deadline) rt.run_for(100 * kMillisecond);
  out.transfer_bytes = server.stats().transfer_bytes - bytes_before;
  return out;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n==================================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "(Stateful Group Communication Services, Litiu & Prakash, ICDCS'99)\n"
            << "==================================================================\n";
}

// ---------------------------------------------------------------------------
// JsonReport
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

JsonReport::JsonReport(std::string bench_name) {
  add_text("bench", bench_name);
}

void JsonReport::add(const std::string& key, double value) {
  entries_.emplace_back(key, render_number(value));
}

void JsonReport::add_count(const std::string& key, std::uint64_t value) {
  entries_.emplace_back(key, std::to_string(value));
}

void JsonReport::add_text(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

std::string JsonReport::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "  \"" + json_escape(entries_[i].first) + "\": " +
           entries_[i].second;
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += "}\n";
  return out;
}

bool JsonReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "JsonReport: cannot open " << path << " for writing\n";
    return false;
  }
  out << to_string();
  return static_cast<bool>(out);
}

std::string json_output_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

}  // namespace corona::bench
