// §3.2 ablation: customized state transfer.  "Based on the speed of its
// connection to the server and application characteristics, the client may
// request either to receive the whole state of the group or the latest n
// updates to the state ... or only the state of certain objects."
//
// Measures join latency and bytes shipped under each policy as the group's
// history grows — the quantitative case for per-client transfer policies.
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

int main() {
  print_banner("Ablation — state-transfer policy vs join cost",
               "§3.2 customized state transfer");

  std::cout << "\nGroup history: K updates of 200 B each before the join.\n\n";
  TextTable table({"history K", "full ms", "full KB", "last-20 ms",
                   "last-20 KB", "nothing ms"});
  for (std::size_t k : {100u, 500u, 1000u, 2000u, 4000u}) {
    JoinCostConfig cfg;
    cfg.history_updates = k;
    cfg.update_bytes = 200;

    cfg.policy = TransferPolicySpec::full();
    const auto full = run_join_cost(cfg);
    cfg.policy = TransferPolicySpec::last_n_updates(20);
    const auto last20 = run_join_cost(cfg);
    cfg.policy = TransferPolicySpec::nothing();
    const auto nothing = run_join_cost(cfg);

    table.add_row({std::to_string(k), TextTable::fmt(full.join_ms),
                   TextTable::fmt(full.transfer_bytes / 1000.0),
                   TextTable::fmt(last20.join_ms),
                   TextTable::fmt(last20.transfer_bytes / 1000.0),
                   TextTable::fmt(nothing.join_ms)});
  }
  std::cout << table.to_string();
  std::cout << "\nShape: full-state join cost grows linearly with the group's\n"
               "accumulated state while last-n stays flat — the slow-link\n"
               "client's policy of §3.2.  The join never involves existing\n"
               "members, so none of these block the rest of the group.\n";
  return 0;
}
