// §3.2 ablation: state-log reduction.  "The history of state updates for a
// group may be trimmed up to a point and replaced with the consistent group
// state existing at that point."
//
// Compares server-side retained history (records + bytes) and last-n join
// latency with reduction disabled vs a windowed policy, under a long run of
// incremental updates.
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

int main() {
  print_banner("Ablation — log reduction vs server memory and join cost",
               "§3.2 state log reduction service");

  TextTable table({"history K", "policy", "retained records", "retained KB",
                   "last-20 join ms"});
  for (std::size_t k : {1000u, 4000u}) {
    for (bool reduce : {false, true}) {
      JoinCostConfig cfg;
      cfg.history_updates = k;
      cfg.update_bytes = 200;
      cfg.policy = TransferPolicySpec::last_n_updates(20);
      if (reduce) {
        cfg.reduction = [] { return make_window(100); };
      }
      const auto r = run_join_cost(cfg);
      table.add_row({std::to_string(k),
                     reduce ? "window(100)" : "none",
                     std::to_string(r.server_history_records),
                     TextTable::fmt(r.server_log_bytes / 1000.0),
                     TextTable::fmt(r.join_ms)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nShape: without reduction the retained history grows without\n"
               "bound; the windowed policy caps it near 2x the window while\n"
               "still serving last-n joins — 'the new state is equivalent\n"
               "with the initial state plus the history of state updates'\n"
               "(§3.2), as the tests verify by replay.\n";
  return 0;
}
