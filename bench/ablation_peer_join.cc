// §2 ablation: service-side join (Corona) vs the ISIS-style peer-based join.
//
// "In ISIS, the join of a new member involves the execution of a join
// protocol among all group members, and slow members can slow down the join
// operation.  Furthermore, in ISIS any state associated with a group must be
// transferred to the joining client from an existing client, which may
// occasionally fail.  Thus the time to complete the join reflects the
// timeout for failure detection and making an additional request to another
// client."
//
// Three configurations, same group (2 members, 500 updates x 200 B):
//   service      — Corona: the stateful server answers the join (§3.2);
//   peer         — the donor member supplies the state;
//   peer + crash — the first donor has silently crashed: the join pays the
//                  1 s failure-detection timeout before the retry succeeds.
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

namespace {

const GroupId kG{1};
const ObjectId kObj{1};

double run_join(JoinTransferMode mode, bool crash_first_donor) {
  SimRuntime rt;
  const NodeId server_id{1};
  GroupStore store;
  ServerConfig cfg;
  cfg.join_transfer = mode;
  cfg.peer_timeout = 1 * kSecond;  // the paper-era failure-detection timeout
  CoronaServer server(std::move(cfg), &store);
  rt.add_node(server_id, &server,
              rt.network().add_host(HostProfile::ultrasparc()));

  CoronaClient donor_a(server_id);
  CoronaClient donor_b(server_id);
  rt.add_node(NodeId{100}, &donor_a,
              rt.network().add_host(HostProfile::sparc20()));
  rt.add_node(NodeId{101}, &donor_b,
              rt.network().add_host(HostProfile::sparc20()));

  double join_ms = -1;
  TimePoint join_sent = 0;
  CoronaClient::Callbacks cb;
  cb.on_joined = [&](GroupId, Status s) {
    if (s.is_ok()) join_ms = to_ms(rt.now() - join_sent);
  };
  CoronaClient joiner(server_id, cb);
  rt.add_node(NodeId{102}, &joiner,
              rt.network().add_host(HostProfile::sparc20()));

  rt.start();
  rt.run_for(50 * kMillisecond);
  donor_a.create_group(kG, "g", true);
  rt.run_for(50 * kMillisecond);
  donor_a.join(kG);
  rt.run_for(50 * kMillisecond);
  donor_b.join(kG);
  rt.run_for(200 * kMillisecond);
  for (int i = 0; i < 500; ++i) {
    donor_a.bcast_update(kG, kObj, filler_bytes(200));
    if (i % 50 == 49) rt.run_for(200 * kMillisecond);
  }
  rt.run_for(2 * kSecond);

  if (crash_first_donor) rt.crash(NodeId{100});
  join_sent = rt.now();
  joiner.join(kG);
  rt.run_for(20 * kSecond);
  return join_ms;
}

}  // namespace

int main() {
  print_banner("Ablation — service-side join vs ISIS-style peer join",
               "§2 related-work comparison + §6 join claims");

  const double service = run_join(JoinTransferMode::kService, false);
  const double peer = run_join(JoinTransferMode::kPeer, false);
  const double peer_crash = run_join(JoinTransferMode::kPeer, true);

  TextTable table({"join mode", "join latency ms", "vs service"});
  table.add_row({"service-side (Corona, §3.2)", TextTable::fmt(service),
                 "1.00x"});
  table.add_row({"peer transfer, healthy donor", TextTable::fmt(peer),
                 TextTable::fmt(peer / service, 2) + "x"});
  table.add_row({"peer transfer, crashed donor", TextTable::fmt(peer_crash),
                 TextTable::fmt(peer_crash / service, 2) + "x"});
  std::cout << table.to_string();
  std::cout << "\nShape: the healthy peer join pays two extra hops through a\n"
               "slower client machine; the crashed-donor join pays the full\n"
               "failure-detection timeout before retrying — 'accommodating a\n"
               "new process to a group may block ... for an unpredictable\n"
               "amount of time' (§6), which is precisely why Corona keeps\n"
               "the state at the service.\n";
  return 0;
}
