// Durability ablation: what does crash-safety cost, and what buys it back?
//
// §6 warns that "state logging could limit the throughput due to disk I/O"
// and names the two levers this bench sweeps: batching commits (group
// commit amortizes the fsync) and checkpointing (bounds the log suffix
// replayed at recovery).  The storage/disk/ backend makes both real: every
// flush() is framed appends + one fdatasync, every checkpoint an atomic
// temp+fsync+rename.  The sweep drives the durable GroupStore through a
// checkpoint-interval x flush-batch grid and reports, per cell:
//
//   * steady-state ingest (messages/s, wall clock — machine-dependent),
//   * fsyncs per 1k messages (deterministic: a pure function of the grid),
//   * cold-restart recovery time and the records replayed (the checkpoint
//     interval is exactly the replay-length knob).
//
// Unlike the sim ablations this bench hits the real filesystem; the
// recorded baseline keeps tight thresholds only on the deterministic
// counters and loose ones on wall-clock rates.
#include <chrono>
#include <iostream>
#include <string>

#include <stdlib.h>
#include <unistd.h>

#include "bench/scenario.h"
#include "storage/disk/disk_env.h"
#include "storage/disk/disk_io.h"
#include "storage/group_store.h"
#include "util/bytes.h"

using namespace corona;
using namespace corona::bench;

namespace {

constexpr GroupId kGroup{1};
constexpr std::size_t kMessages = 2000;
constexpr std::size_t kPayloadBytes = 1000;
constexpr std::size_t kSegmentBytes = 1 << 20;

struct CellResult {
  double ingest_msgs_per_sec = 0;
  double fsyncs_per_kmsg = 0;
  double recovery_ms = 0;
  std::uint64_t replayed_records = 0;
};

UpdateRecord update_for(SeqNo seq) {
  UpdateRecord u;
  u.seq = seq;
  u.kind = PayloadKind::kUpdate;
  u.object = ObjectId{seq % 8};
  u.data = filler_bytes(kPayloadBytes, static_cast<std::uint8_t>(seq));
  u.sender = NodeId{100};
  u.request_id = seq;
  return u;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// One grid cell: ingest kMessages with the given flush batch and
// checkpoint cadence, then time a cold reopen of the same directory.
// ckpt_interval == 0 means "never checkpoint" (recovery replays it all).
CellResult run_cell(std::size_t flush_batch, std::size_t ckpt_interval) {
  char tmpl[] = "/tmp/corona_bench_durability_XXXXXX";
  const char* root = ::mkdtemp(tmpl);
  if (root == nullptr) {
    std::cerr << "mkdtemp failed\n";
    ::exit(1);
  }
  CellResult out;
  {
    disk::DiskEnv env(disk::DiskEnvConfig{root, kSegmentBytes});
    GroupStore gs(&env);
    gs.create_group(GroupMeta{kGroup, "bench", true}, {});
    (void)gs.flush();
    const std::uint64_t fsyncs_before = env.stats().fsyncs;
    const auto t0 = std::chrono::steady_clock::now();
    SeqNo base = 0;
    for (SeqNo seq = 1; seq <= kMessages; ++seq) {
      gs.append_update(kGroup, update_for(seq));
      if (seq % flush_batch == 0) (void)gs.flush();
      if (ckpt_interval != 0 && seq % ckpt_interval == 0) {
        gs.install_checkpoint(
            kGroup, seq, {StateEntry{ObjectId{0}, filler_bytes(256, 7)}});
        base = seq;
      }
    }
    (void)gs.flush();
    (void)base;
    const double ingest_ms = elapsed_ms(t0);
    out.ingest_msgs_per_sec = kMessages / (ingest_ms / 1000.0);
    out.fsyncs_per_kmsg =
        1000.0 * static_cast<double>(env.stats().fsyncs - fsyncs_before) /
        static_cast<double>(kMessages);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    disk::DiskEnv env(disk::DiskEnvConfig{root, kSegmentBytes});
    GroupStore gs(&env);
    const auto groups = gs.recover();
    out.recovery_ms = elapsed_ms(t0);
    if (groups.size() != 1) {
      std::cerr << "recovery lost the bench group\n";
      ::exit(1);
    }
    out.replayed_records = groups[0].updates.size();
  }
  disk::remove_tree(root);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  print_banner("Ablation — durability: fsync batching x checkpoint cadence",
               "§6 disk-I/O bound; storage/disk/ backend (docs/STORAGE.md)");

  JsonReport report("ablation_durability");

  const std::size_t batches[] = {1, 8, 64};
  const std::size_t intervals[] = {0, 64, 512};

  TextTable ingest({"ckpt interval", "flush batch", "ingest msg/s",
                    "fsyncs / 1k msgs", "recovery ms", "replayed"});
  for (const std::size_t ckpt : intervals) {
    for (const std::size_t batch : batches) {
      const CellResult r = run_cell(batch, ckpt);
      const std::string ckpt_name =
          ckpt == 0 ? "never" : std::to_string(ckpt);
      ingest.add_row({ckpt_name, std::to_string(batch),
                      TextTable::fmt(r.ingest_msgs_per_sec),
                      TextTable::fmt(r.fsyncs_per_kmsg, 1),
                      TextTable::fmt(r.recovery_ms, 2),
                      std::to_string(r.replayed_records)});
      const std::string key =
          "ckpt_" + ckpt_name + ".batch_" + std::to_string(batch);
      report.add(key + ".ingest_msgs_per_sec", r.ingest_msgs_per_sec);
      report.add(key + ".fsyncs_per_kmsg", r.fsyncs_per_kmsg);
      report.add(key + ".recovery_wall_ms", r.recovery_ms);
      report.add_count(key + ".replayed_records", r.replayed_records);
    }
  }
  std::cout << ingest.to_string();
  std::cout
      << "\nShape: the fsync count is the grid's pure function — batch 64\n"
         "cuts it ~64x (group commit; §6's mitigation), and checkpoints\n"
         "add one fsync'd atomic replace per interval.  Recovery time\n"
         "scales with the replayed suffix: 'never' replays everything,\n"
         "ckpt 64 replays under one interval's worth.  Wall-clock rates\n"
         "are machine-dependent; the counters are not.\n";

  if (const std::string path = json_output_path(argc, argv); !path.empty()) {
    if (!report.write(path)) return 1;
  }
  return 0;
}
