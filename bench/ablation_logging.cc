// §6 ablation: "State logging ... is not in the critical path as far as
// communication latency is concerned; the service can multicast data to a
// group in parallel with disk logging" and "State logging could limit the
// throughput due to disk I/O (typical disk transfer rate is around 3-5
// Mbytes/sec).  But techniques such as RAID, log-structured file systems or
// main-memory logging with power backup could be used."
//
// Latency side: the Figure 3 workload (small fan-out so the disk term is
// visible) under four logging configurations.  Throughput side: the byte
// rate the log device itself can absorb, the bound the paper warns about.
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

namespace {

double roundtrip_ms(FlushPolicy flush) {
  RoundTripConfig cfg;
  cfg.clients = 5;  // small group: fan-out no longer hides the device
  cfg.messages = 300;
  cfg.message_bytes = 1000;
  cfg.flush = flush;
  return run_single_server_roundtrip(cfg).round_trip_ms.mean();
}

}  // namespace

int main() {
  print_banner("Ablation — logging policy vs multicast latency",
               "§6 'logging is off the critical path' claims");

  const double none = roundtrip_ms(FlushPolicy::kNone);
  const double async = roundtrip_ms(FlushPolicy::kAsync);
  const double sync = roundtrip_ms(FlushPolicy::kSync);

  TextTable table({"logging policy", "round-trip ms", "vs no-logging"});
  table.add_row({"none (memory only)", TextTable::fmt(none, 2), "1.00x"});
  table.add_row({"async flush (paper design)", TextTable::fmt(async, 2),
                 TextTable::fmt(async / none, 2) + "x"});
  table.add_row({"sync flush, 4 MB/s disk", TextTable::fmt(sync, 2),
                 TextTable::fmt(sync / none, 2) + "x"});
  std::cout << table.to_string();
  std::cout << "\nShape: async logging is indistinguishable from no logging\n"
               "(the paper's design point); synchronous flushing pays the\n"
               "device seek+transfer on every multicast's critical path.\n";

  // Throughput bound: bytes/s the log device absorbs for 1000-byte records
  // batched at the async flush cadence (10 records per 100 ms flush).
  std::cout << "\n--- log-device throughput bound (§6) ---\n";
  TextTable disk({"device", "KB/s absorbed (1 KB records, batched)"});
  for (auto [name, profile] :
       {std::pair{"3-5 MB/s disk (paper's typical)",
                  DiskProfile::nineties_disk()},
        std::pair{"RAID / log-structured (paper's mitigation)",
                  DiskProfile::fast_raid()}}) {
    SimDisk dev(profile);
    // Saturate: issue 10 KB batches back to back for 10 virtual seconds.
    TimePoint t = 0;
    std::uint64_t bytes = 0;
    while (t < 10 * kSecond) {
      t = dev.write(10000, t);
      bytes += 10000;
    }
    disk.add_row({name, TextTable::fmt(double(bytes) / 1000.0 / to_sec(t))});
  }
  std::cout << disk.to_string();
  std::cout << "\nShape: the 1990s device absorbs a few MB/s — above the\n"
               "~600 KB/s the service generates (Table 1), so logging can\n"
               "run in parallel without throttling multicast; RAID lifts\n"
               "the bound by an order of magnitude (§6).\n";

  // Group commit: when multicasts are batched, one flush covers the whole
  // batch and the device's fixed per-op cost (seek + syscall) is paid once
  // per drain instead of once per multicast, pulling synchronous logging
  // most of the way back to the async design point.
  std::cout << "\n--- group commit: sync-flush throughput vs commit size ---\n";
  TextTable gc({"commit granularity", "msg/s", "device writes"});
  for (auto [name, batch] :
       {std::pair{"one write per multicast (batch 1)", std::size_t{1}},
        std::pair{"group commit over batch 16", std::size_t{16}},
        std::pair{"group commit over batch 64", std::size_t{64}}}) {
    ThroughputConfig cfg;
    cfg.window = 32;
    cfg.shared_bandwidth_bytes_per_sec = 0;  // isolate the device term
    cfg.flush = FlushPolicy::kSync;
    cfg.batch_max_msgs = batch;
    // Bound > batch-fill time so the threshold (not the timer) drains.
    cfg.batch_max_delay = 500 * kMillisecond;
    const auto r = run_single_server_throughput(cfg);
    gc.add_row({name, TextTable::fmt(r.messages_per_sec),
                std::to_string(r.flushes)});
  }
  std::cout << gc.to_string();
  std::cout << "\nShape: per-message sync commits serialize on the device's\n"
               "per-op cost; group commit amortizes it across the batch.\n";
  return 0;
}
