// Table 1: "Server throughput obtained using multicast messages of size
// 1000/10000 bytes" on the UltraSparc vs the quad Pentium II 200 (NT), with
// 6 clients on separate machines multicasting as fast as possible over a
// 10 Mbps Ethernet.
//
// The absolute cells of Table 1 are unreadable in the surviving paper text;
// the reproduced claims are (a) the NT box sustains visibly more than the
// UltraSparc, (b) large messages move more bytes/s than small ones, and
// (c) with enough clients the service sustains ~600 KB/s (§5.2.2) with the
// wire, not the server code, as the bottleneck.
#include <iostream>
#include <iterator>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

int main(int argc, char** argv) {
  print_banner("Table 1 — server throughput (KB/s), 6 blasting clients",
               "Table 1 + §5.2.2");
  JsonReport report("table1_throughput");

  struct Row {
    const char* name;
    HostProfile profile;
  };
  const Row rows[] = {
      {"UltraSparc 1 (Solaris)", HostProfile::ultrasparc()},
      {"quad Pentium II 200 (NT)", HostProfile::pentium_ii_quad()},
  };
  const char* row_keys[] = {"ultrasparc", "pentium_ii"};

  // "Throughput" is the aggregate byte rate the server pushes to receivers
  // (the paper's bottleneck was "the network capacity and the inability of
  // some of the slower clients", not the server code).
  TextTable table({"server machine", "1000 B KB/s", "10000 B KB/s",
                   "1000 B msg/s seq'd"});
  double us_1000 = 0, nt_1000 = 0;
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const Row& row = rows[i];
    ThroughputConfig cfg;
    cfg.server_profile = row.profile;
    cfg.message_bytes = 1000;
    const auto small = run_single_server_throughput(cfg);
    cfg.message_bytes = 10000;
    const auto large = run_single_server_throughput(cfg);
    if (row.profile.send_per_msg_us == HostProfile::ultrasparc().send_per_msg_us) {
      us_1000 = small.delivered_kbytes_per_sec;
    } else {
      nt_1000 = small.delivered_kbytes_per_sec;
    }
    table.add_row({row.name,
                   TextTable::fmt(small.delivered_kbytes_per_sec),
                   TextTable::fmt(large.delivered_kbytes_per_sec),
                   TextTable::fmt(small.messages_per_sec)});
    const std::string prefix = std::string(row_keys[i]) + ".";
    report.add(prefix + "kbytes_per_sec_1000b", small.delivered_kbytes_per_sec);
    report.add(prefix + "kbytes_per_sec_10000b", large.delivered_kbytes_per_sec);
    report.add(prefix + "messages_per_sec_1000b", small.messages_per_sec);
  }
  std::cout << table.to_string();
  std::cout << "\nShape: NT/UltraSparc ratio at 1000 B = "
            << TextTable::fmt(nt_1000 / us_1000, 2)
            << "x at 1000 B: the UltraSparc is CPU-bound there while the NT\n"
               "box is wire-bound (paper: NT sustains more; the limitation\n"
               "was 'in the network capacity', not the server code).\n";

  // §5.2.2: "every time a new client was added, the throughput increased" —
  // the bottleneck is client feed rate + wire, not the server.
  std::cout << "\n--- client-count scaling at 1000 B (NT server) ---\n";
  TextTable scale({"clients", "KB/s"});
  for (std::size_t n : {2u, 4u, 6u, 10u, 14u}) {
    ThroughputConfig cfg;
    cfg.server_profile = HostProfile::pentium_ii_quad();
    cfg.clients = n;
    cfg.message_bytes = 1000;
    const auto r = run_single_server_throughput(cfg);
    scale.add_row({std::to_string(n),
                   TextTable::fmt(r.delivered_kbytes_per_sec)});
    report.add("scaling.clients_" + std::to_string(n) + ".kbytes_per_sec",
               r.delivered_kbytes_per_sec);
  }
  std::cout << scale.to_string()
            << "\nShape: throughput rises monotonically with client count\n"
               "(paper: 'every time a new client was added, the throughput\n"
               "increased') and plateaus at the wire, the paper's ~600 KB/s\n"
               "regime scaled by our ideal-Ethernet efficiency.\n";

  if (const std::string path = json_output_path(argc, argv); !path.empty()) {
    report.add("nt_over_ultrasparc_1000b", nt_1000 / us_1000);
    if (!report.write(path)) return 1;
  }
  return 0;
}
