// Table 2: "Roundtrip delay (msec) for a multicast message of size 1000
// bytes, using a single server vs multiple servers" for 100/200/300 clients,
// with the replicated architecture of §4.1 (a coordinator and six servers,
// clients over 12 machines).
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

int main(int argc, char** argv) {
  print_banner("Table 2 — round-trip delay: single vs replicated service",
               "Table 2 + §5.2.3");
  JsonReport report("table2_replicated");

  std::cout << "\nSetup: coordinator + 6 servers (UltraSparc profiles),\n"
               "clients over 12 machines a few routers away (switched\n"
               "network: per-link latency, no shared-segment ceiling),\n"
               "1000-byte multicasts, worst-case receiver, self-clocked.\n\n";

  TextTable table({"clients", "single server ms", "multiple servers ms",
                   "speedup"});
  double last_speedup = 0;
  for (std::size_t n : {100u, 200u, 300u}) {
    ReplicatedConfig cfg;
    cfg.clients = n;
    cfg.messages = 120;

    cfg.servers = 1;
    const auto single = run_replicated_roundtrip(cfg);
    cfg.servers = 7;
    const auto multi = run_replicated_roundtrip(cfg);

    const double sm = single.round_trip_ms.mean();
    const double mm = multi.round_trip_ms.mean();
    last_speedup = sm / mm;
    table.add_row({std::to_string(n), TextTable::fmt(sm),
                   TextTable::fmt(mm), TextTable::fmt(sm / mm, 2)});
    const std::string prefix = "clients_" + std::to_string(n) + ".";
    report.add(prefix + "single_ms", sm);
    report.add(prefix + "replicated_ms", mm);
    report.add(prefix + "speedup", sm / mm);
  }
  std::cout << table.to_string();
  std::cout << "\nShape: the replicated service is faster at every size and "
               "its advantage grows with client count\n(paper: 'better "
               "scalability and responsiveness'); at 300 clients speedup = "
            << TextTable::fmt(last_speedup, 2) << "x.\n";

  if (const std::string path = json_output_path(argc, argv); !path.empty()) {
    report.add("speedup_at_300", last_speedup);
    if (!report.write(path)) return 1;
  }
  return 0;
}
