// §5.3 ablation: the QoS-based adaptive server ("based on priorities and
// explicit control over the scheduling of different activities and on
// dynamic adjustment of its policies according to system load").
//
// Workload: an interactive group (chat-like, 10 msg/s) shares the server
// with a bulk group (instrument data, blasting).  Without QoS the
// interactive traffic queues behind the bulk flood; with QoS the interactive
// group is priority class 0 and its latency stays near the unloaded value,
// while under sustained overload the low class is aged/shed.
#include <iostream>
#include <map>
#include <memory>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

namespace {

const GroupId kInteractive{1};
const GroupId kBulk{2};
const ObjectId kObj{1};

struct QosRunResult {
  double interactive_ms = 0;
  double bulk_msgs = 0;
  std::uint64_t shed = 0;
};

QosRunResult run(bool enable_qos) {
  SimRuntime rt;
  rt.network().set_shared_bandwidth(0);  // isolate server-side scheduling
  const NodeId server_id{1};

  GroupStore store;
  ServerConfig cfg;
  cfg.enable_qos = enable_qos;
  cfg.qos_service_time = 2 * kMillisecond;  // admission pacing
  cfg.qos.aging_limit = 32;
  cfg.qos.shed_threshold = 64;
  CoronaServer server(std::move(cfg), &store);
  rt.add_node(server_id, &server,
              rt.network().add_host(HostProfile::ultrasparc()));

  // Interactive measurer.
  std::map<RequestId, TimePoint> in_flight;
  LatencyStats interactive;
  CoronaClient::Callbacks icb;
  CoronaClient chat(server_id);
  icb.on_deliver = [&](GroupId g, const UpdateRecord& rec) {
    if (!(g == kInteractive)) return;
    auto it = in_flight.find(rec.request_id);
    if (it != in_flight.end()) {
      interactive.add(to_ms(rt.now() - it->second));
      in_flight.erase(it);
    }
  };
  chat.set_callbacks(icb);
  rt.add_node(NodeId{100}, &chat,
              rt.network().add_host(HostProfile::sparc20()));

  // Bulk blasters: three clients flooding 500 B updates at 1 kHz each —
  // about 3x what the server's fan-out path can absorb.
  std::vector<std::unique_ptr<CoronaClient>> blasters;
  for (std::uint64_t i = 0; i < 3; ++i) {
    blasters.push_back(std::make_unique<CoronaClient>(server_id));
    rt.add_node(NodeId{101 + i}, blasters.back().get(),
                rt.network().add_host(HostProfile::sparc20()));
  }

  rt.start();
  rt.run_for(50 * kMillisecond);
  chat.create_group(kInteractive, "chat", false);
  chat.create_group(kBulk, "bulk", false);
  rt.run_for(50 * kMillisecond);
  server.set_group_qos_class(kInteractive, 0);
  server.set_group_qos_class(kBulk, 2);
  chat.join(kInteractive, TransferPolicySpec::nothing());
  for (auto& b : blasters) b->join(kBulk, TransferPolicySpec::nothing());
  rt.run_for(100 * kMillisecond);

  std::uint64_t bulk_delivered0 = server.stats().deliveries_sent;
  for (int i = 0; i < 3000; ++i) {  // 3 s of 1 kHz flood per blaster
    rt.sim().queue().schedule_after(
        static_cast<Duration>(i) * kMillisecond, [&blasters] {
          for (auto& b : blasters) {
            b->bcast_update(kBulk, kObj, filler_bytes(500));
          }
        });
  }
  for (int i = 0; i < 30; ++i) {  // 3 s of 10 Hz interactive chatter
    rt.sim().queue().schedule_after(
        static_cast<Duration>(i) * 100 * kMillisecond, [&] {
          const RequestId rid =
              chat.bcast_update(kInteractive, kObj, filler_bytes(100));
          in_flight[rid] = rt.now();
        });
  }
  rt.run_for(10 * kSecond);

  QosRunResult out;
  out.interactive_ms = interactive.mean();
  out.bulk_msgs =
      static_cast<double>(server.stats().deliveries_sent - bulk_delivered0);
  out.shed = server.stats().qos_shed;
  return out;
}

}  // namespace

int main() {
  print_banner("Ablation — adaptive QoS scheduling under overload",
               "§5.3 QoS-based adaptive Corona server");

  const QosRunResult off = run(false);
  const QosRunResult on = run(true);

  TextTable table({"configuration", "interactive round-trip ms",
                   "bulk deliveries", "shed"});
  table.add_row({"FIFO (no QoS)", TextTable::fmt(off.interactive_ms),
                 TextTable::fmt(off.bulk_msgs, 0), "0"});
  table.add_row({"QoS: chat=class0, bulk=class2",
                 TextTable::fmt(on.interactive_ms),
                 TextTable::fmt(on.bulk_msgs, 0), std::to_string(on.shed)});
  std::cout << table.to_string();
  std::cout << "\nShape: with priorities the interactive group's latency is "
            << TextTable::fmt(off.interactive_ms / on.interactive_ms, 1)
            << "x lower under the same bulk flood; sustained overload is\n"
               "absorbed by shedding the lowest class (dynamic adjustment\n"
               "to system load, §5.3).\n";
  return 0;
}
