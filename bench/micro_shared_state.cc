// Microbenchmarks (google-benchmark): shared-state maintenance operations —
// the per-message server-side cost Figure 3 shows to be negligible relative
// to fan-out.
#include <benchmark/benchmark.h>

#include "core/shared_state.h"
#include "core/state_transfer.h"

namespace corona {
namespace {

UpdateRecord rec(SeqNo seq, std::size_t bytes) {
  UpdateRecord u;
  u.seq = seq;
  u.kind = PayloadKind::kUpdate;
  u.object = ObjectId{seq % 8};
  u.data = filler_bytes(bytes);
  u.sender = NodeId{100};
  u.request_id = seq;
  return u;
}

void BM_ApplyUpdate(benchmark::State& state) {
  SharedState s;
  SeqNo seq = 0;
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    s.apply(rec(++seq, bytes));
    if (s.history_size() > 4096) {
      state.PauseTiming();
      s.reduce_to(s.head_seq());
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(seq * bytes));
}
BENCHMARK(BM_ApplyUpdate)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SnapshotFullState(benchmark::State& state) {
  SharedState s;
  for (SeqNo i = 1; i <= static_cast<SeqNo>(state.range(0)); ++i) {
    s.apply(rec(i, 200));
  }
  for (auto _ : state) {
    auto snap = s.snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_SnapshotFullState)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BuildTransferLastN(benchmark::State& state) {
  SharedState s;
  for (SeqNo i = 1; i <= 10000; ++i) s.apply(rec(i, 200));
  const auto policy = TransferPolicySpec::last_n_updates(
      static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto t = build_transfer(s, policy);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BuildTransferLastN)->Arg(10)->Arg(100)->Arg(1000);

void BM_ReduceToHead(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SharedState s;
    for (SeqNo i = 1; i <= static_cast<SeqNo>(state.range(0)); ++i) {
      s.apply(rec(i, 200));
    }
    state.ResumeTiming();
    s.reduce_to(s.head_seq());
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ReduceToHead)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace corona

BENCHMARK_MAIN();
