// §4.2 ablation: failover timelines.
//
//   * coordinator crash -> staged election -> takeover -> service resumes;
//   * k simultaneous crashes among the top of the list (increasing
//     timeouts: the i-th server claims only after (i+1)*t of silence);
//   * service disruption seen by a client that keeps multicasting through
//     the crash.
#include <iostream>
#include <memory>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

namespace {

constexpr GroupId kGroup{1};
constexpr ObjectId kObject{1};

struct FailoverResult {
  double election_ms = 0;    // crash -> new coordinator in office
  double disruption_ms = 0;  // longest gap between deliveries at a client
  bool recovered = false;
};

// Coordinator + `leaves` leaf servers; crash the coordinator and the first
// `extra_crashes` leaves simultaneously at t=4s while a client multicasts
// every 100 ms through a surviving leaf.
FailoverResult run_failover(std::size_t leaves, std::size_t extra_crashes) {
  SimRuntime rt;
  rt.network().set_shared_bandwidth(0);

  std::vector<NodeId> ids;
  for (std::size_t i = 0; i <= leaves; ++i) ids.push_back(NodeId{1 + i});
  ReplicaConfig rcfg;
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (std::size_t i = 0; i <= leaves; ++i) {
    servers.push_back(std::make_unique<ReplicaServer>(rcfg, ids));
    rt.add_node(ids[i], servers[i].get(),
                rt.network().add_host(HostProfile::ultrasparc()));
  }

  // The client lives on the last leaf (it survives every crash pattern).
  FailoverResult out;
  TimePoint last_delivery = 0;
  Duration max_gap = 0;
  CoronaClient::Callbacks cb;
  cb.on_deliver = [&](GroupId, const UpdateRecord&) {
    if (last_delivery != 0) {
      max_gap = std::max(max_gap, rt.now() - last_delivery);
    }
    last_delivery = rt.now();
  };
  CoronaClient client(ids[leaves], cb);
  rt.add_node(NodeId{100}, &client,
              rt.network().add_host(HostProfile::sparc20()));

  rt.start();
  rt.run_for(300 * kMillisecond);
  client.create_group(kGroup, "g", true);
  rt.run_for(300 * kMillisecond);
  client.join(kGroup);
  rt.run_for(300 * kMillisecond);

  // Steady multicast cadence.
  for (int i = 0; i < 200; ++i) {
    rt.sim().queue().schedule_after(
        static_cast<Duration>(i) * 100 * kMillisecond,
        [&client] { client.bcast_update(kGroup, kObject, filler_bytes(200)); });
  }

  rt.run_for(4 * kSecond);
  const TimePoint crash_at = rt.now();
  for (std::size_t i = 0; i <= extra_crashes; ++i) {
    rt.crash(ids[i]);  // coordinator + the first extra_crashes leaves
  }
  // Run until a new coordinator is in office or we give up.
  TimePoint elected_at = 0;
  const TimePoint deadline = rt.now() + 60 * kSecond;
  while (elected_at == 0 && rt.now() < deadline) {
    rt.run_for(100 * kMillisecond);
    for (std::size_t i = extra_crashes + 1; i <= leaves; ++i) {
      if (servers[i]->is_coordinator()) {
        elected_at = rt.now();
        break;
      }
    }
  }
  rt.run_for(22 * kSecond);  // drain the remaining cadence

  out.election_ms = elected_at > 0 ? to_ms(elected_at - crash_at) : -1;
  out.disruption_ms = to_ms(max_gap);
  out.recovered = elected_at > 0 && last_delivery > elected_at;
  return out;
}

}  // namespace

int main() {
  print_banner("Ablation — failover: elections under k simultaneous crashes",
               "§4.2 staged-timeout election + takeover");

  TextTable table({"crashed servers", "new coordinator after ms",
                   "max delivery gap ms", "service recovered"});
  for (std::size_t k : {0u, 1u, 2u}) {
    const auto r = run_failover(/*leaves=*/4, /*extra_crashes=*/k);
    table.add_row({"coordinator + " + std::to_string(k) + " leaves",
                   TextTable::fmt(r.election_ms),
                   TextTable::fmt(r.disruption_ms),
                   r.recovered ? "yes" : "NO"});
  }
  std::cout << table.to_string();
  std::cout << "\nShape: election time grows roughly linearly with the number\n"
               "of dead list-heads — the staged (i+1)*t suspicion delays of\n"
               "§4.2 ('a system made up by k+1 servers can tolerate k\n"
               "simultaneous crashes by using increasing timeouts') — and\n"
               "the surviving side resumes multicast service afterwards.\n";
  return 0;
}
