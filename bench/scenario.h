// Workload builders reproducing the paper's §5.2 evaluation setups on the
// deterministic simulator.
//
// Testbed model (paper): the server runs on an UltraSparc 1 (or a quad
// Pentium II 200 for Table 1); clients are uniformly distributed over 6
// (Figure 3 / Table 1) or 12 (Table 2) Sparc-20-class machines; hosts share
// a 10 Mbps Ethernet with ~300 us propagation latency; the log device is a
// 4 MB/s disk.
//
// Measurement protocol (Figure 3): "all clients but one are just receivers
// ... The extra client is both a sender and a receiver and it is used to
// measure the round-trip delay.  This client is the last one (in the group)
// a broadcast message is sent to, therefore the values measured correspond
// to the worst case. ... A data point is obtained by averaging over 600
// successive messages, sent with the rate of a message every 100 msec."
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "core/stateless_server.h"
#include "replica/replica_server.h"
#include "runtime/sim_runtime.h"
#include "util/stats.h"

namespace corona::bench {

struct RoundTripConfig {
  bool stateful = true;            // CoronaServer vs the stateless baseline
  std::size_t clients = 10;        // receivers + 1 measuring sender
  std::size_t message_bytes = 1000;
  std::size_t messages = 600;      // samples per data point
  Duration send_interval = 100 * kMillisecond;
  // Self-clocked mode sends the next message only after the previous round
  // trip completes — used for sizes that saturate the 100 ms cadence.
  bool self_clocked = false;
  std::size_t client_machines = 6;
  HostProfile server_profile = HostProfile::ultrasparc();
  HostProfile client_profile = HostProfile::sparc20();
  double shared_bandwidth_bytes_per_sec = 1.25e6;  // 10 Mbps Ethernet
  FlushPolicy flush = FlushPolicy::kAsync;
  bool use_ip_multicast = false;  // §5.3 one-to-many delivery extension
};

struct RoundTripResult {
  LatencyStats round_trip_ms;
  std::uint64_t messages_sequenced = 0;
};

// Figure 3: single server (stateful or stateless), N clients, fixed size.
RoundTripResult run_single_server_roundtrip(const RoundTripConfig& cfg);

struct ThroughputConfig {
  HostProfile server_profile = HostProfile::ultrasparc();
  std::size_t clients = 6;  // paper: "6 clients running on separate machines"
  std::size_t message_bytes = 1000;
  std::size_t window = 4;  // in-flight multicasts per client ("as fast as possible")
  Duration run_time = 30 * kSecond;
  double shared_bandwidth_bytes_per_sec = 1.25e6;  // 10 Mbps Ethernet
  FlushPolicy flush = FlushPolicy::kAsync;
  // Batched fan-out & group commit (ServerConfig knobs); 1 = per-message.
  std::size_t batch_max_msgs = 1;
  Duration batch_max_delay = 0;
};

struct ThroughputResult {
  double aggregate_kbytes_per_sec = 0;  // bytes accepted by the sequencer
  double delivered_kbytes_per_sec = 0;  // bytes fanned out to receivers
  double messages_per_sec = 0;
  LatencyStats latency_ms;  // send -> own delivery, sampled on every sender
  std::uint64_t batch_frames_sent = 0;  // coalesced (>1 msg) client frames
  std::uint64_t group_commits = 0;
  std::uint64_t group_commit_records = 0;
  std::uint64_t flushes = 0;
};

// Table 1: blasting clients, measuring sustained server throughput.
ThroughputResult run_single_server_throughput(const ThroughputConfig& cfg);

struct ReplicatedConfig {
  std::size_t servers = 7;  // coordinator + 6 (paper §5.2.3); 1 = single
  std::size_t clients = 100;
  std::size_t client_machines = 12;
  std::size_t message_bytes = 1000;
  std::size_t messages = 200;
  bool self_clocked = true;
  // Table 2's clients sit "in different local networks, situated a few
  // routers away" — not one shared segment — so the shared-medium model is
  // disabled and per-pair latency dominates.
  double shared_bandwidth_bytes_per_sec = 0;
  Duration inter_server_latency = 200;   // us, servers co-located
  Duration client_latency = 800;         // us, a few routers away
  // Batched fan-out at coordinator and leaves; 1 = per-message.
  std::size_t batch_max_msgs = 1;
  Duration batch_max_delay = 0;
};

// Table 2: round-trip delay, single server vs replicated service.
RoundTripResult run_replicated_roundtrip(const ReplicatedConfig& cfg);

// Join-cost measurement for the state-transfer / log-reduction ablations.
struct JoinCostConfig {
  std::size_t history_updates = 1000;   // updates before the join
  std::size_t update_bytes = 200;
  TransferPolicySpec policy = TransferPolicySpec::full();
  std::function<std::unique_ptr<ReductionPolicy>()> reduction;  // optional
};

struct JoinCostResult {
  double join_ms = 0;           // request -> state installed at the client
  std::size_t transfer_bytes = 0;
  std::size_t server_history_records = 0;
  std::uint64_t server_log_bytes = 0;
};

JoinCostResult run_join_cost(const JoinCostConfig& cfg);

// Standard header printed by every bench binary.
void print_banner(const std::string& title, const std::string& paper_ref);

// ---------------------------------------------------------------------------
// Machine-readable results (--json <path>).
//
// Benches keep their human-readable tables on stdout; when run with
// `--json <path>` they additionally dump flat key -> value metrics so
// harnesses (tools/bench/run_benches.py, CI baselines) can diff runs
// without scraping tables.
// ---------------------------------------------------------------------------

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  void add(const std::string& key, double value);
  void add_count(const std::string& key, std::uint64_t value);
  void add_text(const std::string& key, const std::string& value);

  // Renders the whole report as a JSON object (insertion order preserved).
  std::string to_string() const;
  // Writes to_string() to `path`; returns false (and prints to stderr) on
  // I/O failure.
  bool write(const std::string& path) const;

 private:
  // key -> already-rendered JSON value literal
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Extracts `--json <path>` from a bench command line; empty when absent.
std::string json_output_path(int argc, char** argv);

}  // namespace corona::bench
