// Microbenchmarks (google-benchmark): wire codec throughput.  The paper
// attributes "a significant part of the cost associated with broadcasting a
// message" to serialization (§5.2.1); these benches quantify our codec.
#include <benchmark/benchmark.h>

#include "serial/message.h"

namespace corona {
namespace {

Message sample_message(std::size_t payload) {
  UpdateRecord rec;
  rec.seq = 123456;
  rec.kind = PayloadKind::kUpdate;
  rec.object = ObjectId{42};
  rec.data = filler_bytes(payload);
  rec.sender = NodeId{100};
  rec.timestamp = 987654321;
  rec.request_id = 77;
  return make_deliver(GroupId{7}, rec);
}

void BM_MessageEncode(benchmark::State& state) {
  const Message m = sample_message(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes wire = m.encode();
    bytes += wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MessageEncode)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MessageDecode(benchmark::State& state) {
  const Bytes wire =
      sample_message(static_cast<std::size_t>(state.range(0))).encode();
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto m = Message::decode(wire);
    bytes += wire.size();
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MessageDecode)->Arg(100)->Arg(1000)->Arg(10000);

void BM_UpdateRecordRoundTrip(benchmark::State& state) {
  UpdateRecord u;
  u.seq = 9;
  u.data = filler_bytes(static_cast<std::size_t>(state.range(0)));
  u.sender = NodeId{5};
  for (auto _ : state) {
    auto round = decode_update_record(encode_update_record(u));
    benchmark::DoNotOptimize(round);
  }
}
BENCHMARK(BM_UpdateRecordRoundTrip)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace corona

BENCHMARK_MAIN();
