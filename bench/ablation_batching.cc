// Ablation: batched multicast fan-out & group-commit logging.
//
// The Table 1 workload (6 blasting clients, 1000-byte multicasts, UltraSparc
// server) under increasing batch sizes, on two media:
//
//   * the paper's 10 Mbps shared Ethernet — the wire is the bottleneck
//     (§5.2.2: "the limitation was in the network capacity"), so batching
//     can only recover the per-message CPU share and the gain is modest;
//   * a switched/ideal network (shared-medium model off) — the server CPU
//     is the bottleneck, and amortizing the per-send fixed cost across a
//     coalesced frame shows the full batching headroom.
//
// The headline metric is the switched-medium speedup of batch 64 over
// batch 1; the batch-1 rows must match the unbatched Table 1 numbers (the
// degenerate path is the old path).
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

namespace {

// The delay bound must exceed the batch-fill time (~batch / arrival rate,
// a few hundred ms at these rates) or the timer chops the queue into
// sub-threshold drains and the fan-out never coalesces.  On a blast
// workload the threshold is the operative knob; the timer is only the
// idle-tail safety valve.
constexpr Duration kDelayBound = 500 * kMillisecond;

ThroughputResult run(std::size_t batch, std::size_t window,
                     double shared_bandwidth) {
  ThroughputConfig cfg;
  cfg.server_profile = HostProfile::ultrasparc();
  cfg.clients = 6;
  cfg.message_bytes = 1000;
  cfg.window = window;
  cfg.shared_bandwidth_bytes_per_sec = shared_bandwidth;
  cfg.batch_max_msgs = batch;
  cfg.batch_max_delay = kDelayBound;
  return run_single_server_throughput(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  print_banner("Ablation — batched fan-out vs batch size",
               "Table 1 workload + §5.2.2 wire-bound ceiling");
  JsonReport report("ablation_batching");

  // Switched medium, deep client windows: the CPU-bound regime where
  // batching pays.  6 clients x window 32 = 192 multicasts in flight, so a
  // 64-batch actually fills.
  std::cout << "\n--- switched network (CPU-bound), window 32 ---\n";
  TextTable sw({"batch", "msg/s", "KB/s", "p50 ms", "p99 ms", "batch frames"});
  double base_msgs = 0, best_msgs = 0;
  for (std::size_t batch : {1u, 4u, 8u, 16u, 64u}) {
    const auto r = run(batch, /*window=*/32, /*shared_bandwidth=*/0);
    if (batch == 1) base_msgs = r.messages_per_sec;
    if (batch == 64) best_msgs = r.messages_per_sec;
    sw.add_row({std::to_string(batch), TextTable::fmt(r.messages_per_sec),
                TextTable::fmt(r.delivered_kbytes_per_sec),
                TextTable::fmt(r.latency_ms.percentile(50), 2),
                TextTable::fmt(r.latency_ms.percentile(99), 2),
                std::to_string(r.batch_frames_sent)});
    const std::string prefix = "switched.batch_" + std::to_string(batch) + ".";
    report.add(prefix + "messages_per_sec", r.messages_per_sec);
    report.add(prefix + "kbytes_per_sec", r.delivered_kbytes_per_sec);
    report.add(prefix + "p50_ms", r.latency_ms.percentile(50));
    report.add(prefix + "p99_ms", r.latency_ms.percentile(99));
  }
  std::cout << sw.to_string();
  const double speedup = best_msgs / base_msgs;
  std::cout << "\nSpeedup batch 64 vs 1 (switched): "
            << TextTable::fmt(speedup, 2) << "x\n";
  report.add("speedup_batch64_vs_1", speedup);

  // The paper's shared 10 Mbps Ethernet, same deep windows: the wire
  // serializes every byte regardless of framing, so batching only trims the
  // CPU share and the curve flattens into the §5.2.2 ceiling.
  std::cout << "\n--- 10 Mbps shared Ethernet (wire-bound), window 32 ---\n";
  TextTable eth({"batch", "msg/s", "KB/s", "p50 ms", "p99 ms"});
  double eth_base = 0, eth_best = 0;
  for (std::size_t batch : {1u, 8u, 64u}) {
    const auto r = run(batch, /*window=*/32, /*shared_bandwidth=*/1.25e6);
    if (batch == 1) eth_base = r.messages_per_sec;
    if (batch == 64) eth_best = r.messages_per_sec;
    eth.add_row({std::to_string(batch), TextTable::fmt(r.messages_per_sec),
                 TextTable::fmt(r.delivered_kbytes_per_sec),
                 TextTable::fmt(r.latency_ms.percentile(50), 2),
                 TextTable::fmt(r.latency_ms.percentile(99), 2)});
    const std::string prefix = "ethernet.batch_" + std::to_string(batch) + ".";
    report.add(prefix + "messages_per_sec", r.messages_per_sec);
    report.add(prefix + "kbytes_per_sec", r.delivered_kbytes_per_sec);
  }
  std::cout << eth.to_string();
  report.add("ethernet_speedup_batch64_vs_1", eth_best / eth_base);

  // Group commit under synchronous flushing: one device write per drain
  // instead of one per multicast recovers most of the sync-logging tax.
  std::cout << "\n--- group commit (sync flush, switched, window 32) ---\n";
  TextTable gc({"batch", "msg/s", "flushes", "records/commit"});
  for (std::size_t batch : {1u, 16u, 64u}) {
    ThroughputConfig cfg;
    cfg.server_profile = HostProfile::ultrasparc();
    cfg.window = 32;
    cfg.shared_bandwidth_bytes_per_sec = 0;
    cfg.flush = FlushPolicy::kSync;
    cfg.batch_max_msgs = batch;
    cfg.batch_max_delay = kDelayBound;
    const auto r = run_single_server_throughput(cfg);
    // Single-record flushes commit 1 record each; group commits report
    // their covered record counts directly.
    const double per_commit =
        r.flushes > 0
            ? static_cast<double>(r.group_commit_records +
                                  (r.flushes - r.group_commits)) /
                  static_cast<double>(r.flushes)
            : 0;
    gc.add_row({std::to_string(batch), TextTable::fmt(r.messages_per_sec),
                std::to_string(r.flushes), TextTable::fmt(per_commit, 1)});
    report.add("group_commit.batch_" + std::to_string(batch) +
                   ".messages_per_sec",
               r.messages_per_sec);
  }
  std::cout << gc.to_string();
  std::cout << "\nShape: on the shared wire batching flattens into the\n"
               "network-capacity ceiling (Table 1's regime); on a switched\n"
               "network it amortizes the per-send CPU cost for the 2x+\n"
               "headroom, and group commit does the same for the log device.\n";

  if (const std::string path = json_output_path(argc, argv); !path.empty()) {
    if (!report.write(path)) return 1;
  }
  return 0;
}
