// §4 / §5.3 ablation: point-to-point fan-out vs the IP-multicast extension.
//
// "If the users are widely distributed over different networks, bandwidth is
// wasted for sending the same data multiple times over the same network
// segments.  The latter problem is eliminated if IP-multicast is used for
// communication between a server and its clients." (§4) — and §5.3 reports a
// hybrid version.  This bench quantifies the trade: with one-to-many
// delivery the server pays one send and the wire carries one copy, so the
// round-trip curve flattens and the wire load drops by the group size.
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

int main() {
  print_banner("Ablation — point-to-point vs IP-multicast fan-out",
               "§4 bandwidth argument + §5.3 hybrid transport");

  TextTable table({"clients", "p2p ms", "ip-mcast ms", "speedup"});
  for (int n : {10, 20, 40, 60, 100}) {
    RoundTripConfig cfg;
    cfg.clients = static_cast<std::size_t>(n);
    cfg.messages = 300;
    cfg.self_clocked = true;

    cfg.use_ip_multicast = false;
    const double p2p = run_single_server_roundtrip(cfg).round_trip_ms.mean();
    cfg.use_ip_multicast = true;
    const double mc = run_single_server_roundtrip(cfg).round_trip_ms.mean();
    table.add_row({std::to_string(n), TextTable::fmt(p2p), TextTable::fmt(mc),
                   TextTable::fmt(p2p / mc, 2) + "x"});
  }
  std::cout << table.to_string();
  std::cout << "\nShape: the point-to-point curve grows linearly with the\n"
               "group (the server serializes N sends and the wire carries N\n"
               "copies) while the IP-multicast curve stays nearly flat — the\n"
               "reason the paper built the hybrid transport.  Point-to-point\n"
               "remains the default: awareness, security and ISP support all\n"
               "favor explicit connections (§4).\n";
  return 0;
}
