// Figure 3: "Group multicast with a single server: Round-trip delay vs
// #clients for messages of size 1000 bytes.  The latency is almost identical
// regardless whether the server does logging or not.  The round-trip delay
// increases approximately linearly with the number of clients."
//
// Also reproduces the text follow-up: the same sweep at 10000 bytes stays
// linear with a higher slope (run self-clocked — that size saturates the
// paper's 100 ms cadence).
#include <iostream>

#include "bench/scenario.h"

using namespace corona;
using namespace corona::bench;

int main(int argc, char** argv) {
  print_banner("Figure 3 — round-trip delay vs number of clients",
               "Figure 3 + §5.2.1 message-size follow-up");
  JsonReport report("fig3_roundtrip");

  std::cout << "\nSetup: single server (UltraSparc-1 profile), clients over 6\n"
               "machines, 10 Mbps shared Ethernet, 1000-byte multicasts at\n"
               "10 msg/s, 600-message averages, worst-case (last) receiver.\n\n";

  TextTable table({"clients", "stateful ms", "(sd%)", "stateless ms", "(sd%)",
                   "overhead %"});
  double max_overhead = 0;
  std::vector<std::pair<int, double>> stateful_curve;
  for (int n : {5, 10, 20, 30, 40, 50, 60}) {
    RoundTripConfig cfg;
    cfg.clients = static_cast<std::size_t>(n);
    cfg.message_bytes = 1000;
    cfg.messages = 600;

    cfg.stateful = true;
    const auto with_state = run_single_server_roundtrip(cfg);
    cfg.stateful = false;
    const auto without_state = run_single_server_roundtrip(cfg);

    const double sm = with_state.round_trip_ms.mean();
    const double lm = without_state.round_trip_ms.mean();
    const double overhead = (sm - lm) / lm * 100.0;
    max_overhead = std::max(max_overhead, overhead);
    stateful_curve.emplace_back(n, sm);
    table.add_row({std::to_string(n), TextTable::fmt(sm),
                   TextTable::fmt(with_state.round_trip_ms.stddev_pct_of_mean()),
                   TextTable::fmt(lm),
                   TextTable::fmt(without_state.round_trip_ms.stddev_pct_of_mean()),
                   TextTable::fmt(overhead)});
    const std::string prefix = "clients_" + std::to_string(n) + ".";
    report.add(prefix + "stateful_ms", sm);
    report.add(prefix + "stateless_ms", lm);
    report.add(prefix + "overhead_pct", overhead);
  }
  std::cout << table.to_string();

  // Shape checks printed for EXPERIMENTS.md.
  const double slope =
      (stateful_curve.back().second - stateful_curve.front().second) /
      (stateful_curve.back().first - stateful_curve.front().first);
  std::cout << "\nShape: stateful-vs-stateless overhead stays <= "
            << TextTable::fmt(max_overhead) << "% (paper: 'for the most part"
            << " minimal; the two curves are very close');\n"
            << "slope ~ " << TextTable::fmt(slope, 2)
            << " ms/client (paper: 'increases approximately linearly').\n";

  std::cout << "\n--- 10000-byte follow-up (self-clocked) ---\n";
  TextTable big({"clients", "1000 B ms", "10000 B ms", "ratio"});
  for (int n : {10, 20, 40, 60}) {
    RoundTripConfig cfg;
    cfg.clients = static_cast<std::size_t>(n);
    cfg.messages = 200;
    cfg.self_clocked = true;
    cfg.message_bytes = 1000;
    const double small = run_single_server_roundtrip(cfg).round_trip_ms.mean();
    cfg.message_bytes = 10000;
    const double large = run_single_server_roundtrip(cfg).round_trip_ms.mean();
    big.add_row({std::to_string(n), TextTable::fmt(small),
                 TextTable::fmt(large), TextTable::fmt(large / small, 2)});
    const std::string prefix = "clients_" + std::to_string(n) + ".";
    report.add(prefix + "large_1000b_ms", small);
    report.add(prefix + "large_10000b_ms", large);
  }
  std::cout << big.to_string()
            << "\nShape: delay stays linear in clients at 10000 B with a "
               "higher slope (paper §5.2.1).\n";

  if (const std::string path = json_output_path(argc, argv); !path.empty()) {
    report.add("max_overhead_pct", max_overhead);
    report.add("slope_ms_per_client", slope);
    if (!report.write(path)) return 1;
  }
  return 0;
}
