// Adaptive QoS message scheduling (paper §5.3: "a QoS-based adaptive version
// of the Corona server, based on priorities and explicit control over the
// scheduling of different activities and on dynamic adjustment of its
// policies according to system load").
//
// Groups are assigned one of three priority classes.  Incoming multicasts
// are drained in class order, with two safeguards:
//
//   * aging — a waiting message is promoted one class after `aging_limit`
//     dequeues pass it by, so low classes are never starved outright;
//   * adaptive shedding — when the backlog exceeds `shed_threshold`, the
//     oldest message of the lowest non-empty class is dropped per enqueue
//     (collaborative awareness traffic degrades before interactive edits).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "serial/message.h"
#include "util/ids.h"

namespace corona {

class QosScheduler {
 public:
  static constexpr int kClasses = 3;  // 0 = highest priority

  struct Config {
    std::size_t aging_limit = 16;     // dequeues before a class-promote
    std::size_t shed_threshold = 0;   // 0 disables shedding
  };

  struct Item {
    NodeId from;
    Message msg;
  };

  QosScheduler() = default;
  explicit QosScheduler(const Config& config) : config_(config) {}

  // Default class for unknown groups is the middle one.
  void set_group_class(GroupId g, int klass);
  int group_class(GroupId g) const;

  void enqueue(NodeId from, Message msg);
  std::optional<Item> dequeue();

  std::size_t depth() const;
  bool empty() const { return depth() == 0; }
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t shed() const { return shed_; }
  std::uint64_t promoted() const { return promoted_; }
  std::size_t max_depth_seen() const { return max_depth_; }

 private:
  struct Waiting {
    Item item;
    std::size_t age = 0;  // dequeues that happened while this waited
  };

  void maybe_shed();
  void age_and_promote();

  Config config_;
  std::deque<Waiting> classes_[kClasses];
  std::map<GroupId, int> group_class_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t promoted_ = 0;
  std::size_t max_depth_ = 0;
};

}  // namespace corona
