#include "core/group.h"

namespace corona {

bool Group::add_member(NodeId node, MemberRole role, bool wants_notices) {
  return members_.emplace(node, Member{role, wants_notices}).second;
}

bool Group::remove_member(NodeId node) { return members_.erase(node) > 0; }

std::vector<MemberInfo> Group::member_list() const {
  std::vector<MemberInfo> out;
  out.reserve(members_.size());
  for (const auto& [node, m] : members_) {
    out.push_back(MemberInfo{node, m.role});
  }
  return out;
}

std::vector<NodeId> Group::notice_subscribers() const {
  std::vector<NodeId> out;
  for (const auto& [node, m] : members_) {
    if (m.wants_membership_notices) out.push_back(node);
  }
  return out;
}

}  // namespace corona
