#include "core/group.h"

namespace corona {

bool Group::add_member(NodeId node, MemberRole role, bool wants_notices) {
  return members_.emplace(node, Member{role, wants_notices}).second;
}

bool Group::remove_member(NodeId node) { return members_.erase(node) > 0; }

std::vector<MemberInfo> Group::member_list() const {
  std::vector<MemberInfo> out;
  out.reserve(members_.size());
  for (const auto& [node, m] : members_) {
    out.push_back(MemberInfo{node, m.role});
  }
  return out;
}

std::vector<NodeId> Group::notice_subscribers() const {
  std::vector<NodeId> out;
  for (const auto& [node, m] : members_) {
    if (m.wants_membership_notices) out.push_back(node);
  }
  return out;
}

InvariantReport Group::check_invariants() const {
  InvariantReport rep;
  rep.merge(state_.check_invariants());
  rep.merge(locks_.check_invariants());
  if (state_.head_seq() >= next_seq_) {
    rep.fail("Group: head_seq " + std::to_string(state_.head_seq()) +
             " >= next_seq " + std::to_string(next_seq_));
  }
  for (const auto& [obj, node] : locks_.all_holders()) {
    if (!is_member(node)) {
      rep.fail("Group: lock holder node:" + std::to_string(node.value) +
               " for obj:" + std::to_string(obj.value) + " is not a member");
    }
  }
  for (const auto& [obj, node] : locks_.all_waiters()) {
    if (!is_member(node)) {
      rep.fail("Group: lock waiter node:" + std::to_string(node.value) +
               " for obj:" + std::to_string(obj.value) + " is not a member");
    }
  }
  return rep;
}

}  // namespace corona
