// Group bookkeeping at the server (paper §3.1).
//
// A group binds together: metadata (persistent/transient), the shared state,
// the membership (with roles and per-member notification preferences), the
// sequencer for the group's total order, the lock table, and the dedup set
// used by crash recovery (one (sender, request-id) pair per sequenced
// message, so resent updates are sequenced at most once).
#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/locks.h"
#include "core/shared_state.h"
#include "serial/message.h"
#include "storage/group_store.h"
#include "util/ids.h"

namespace corona {

struct Member {
  MemberRole role = MemberRole::kPrincipal;
  bool wants_membership_notices = false;
};

class Group {
 public:
  explicit Group(GroupMeta meta) : meta_(std::move(meta)) {}

  const GroupMeta& meta() const { return meta_; }
  bool persistent() const { return meta_.persistent; }

  SharedState& state() { return state_; }
  const SharedState& state() const { return state_; }
  LockTable& locks() { return locks_; }
  const LockTable& locks() const { return locks_; }

  // -- membership ----------------------------------------------------------
  // Returns false if already a member.
  bool add_member(NodeId node, MemberRole role, bool wants_notices);
  // Returns false if not a member.
  bool remove_member(NodeId node);
  bool is_member(NodeId node) const { return members_.contains(node); }
  std::size_t member_count() const { return members_.size(); }
  // Members in deterministic (NodeId) order — also the multicast fan-out
  // order, so the highest-id member is always reached last (the paper
  // measures its round-trip as the worst case).
  const std::map<NodeId, Member>& members() const { return members_; }
  std::vector<MemberInfo> member_list() const;
  // Members that subscribed to membership-change notifications.
  std::vector<NodeId> notice_subscribers() const;

  // -- sequencing ------------------------------------------------------------
  // Allocates the next sequence number in the group's total order.
  SeqNo allocate_seq() { return next_seq_++; }
  SeqNo next_seq() const { return next_seq_; }
  void set_next_seq(SeqNo s) { next_seq_ = s; }

  // -- recovery dedup ---------------------------------------------------------
  // Marks (sender, rid) as sequenced; returns false if it already was.
  bool mark_seen(NodeId sender, RequestId rid) {
    return seen_.emplace(sender.value, rid).second;
  }
  bool was_seen(NodeId sender, RequestId rid) const {
    return seen_.contains({sender.value, rid});
  }

  // Structural invariants: every applied seq precedes next_seq_; every lock
  // holder and waiter is a current member (drop_member on leave/crash must
  // keep this); plus the nested SharedState and LockTable invariants.
  InvariantReport check_invariants() const;

 private:
  friend struct GroupTestAccess;  // invariant tests corrupt internals

  GroupMeta meta_;
  SharedState state_;
  LockTable locks_;
  std::map<NodeId, Member> members_;
  SeqNo next_seq_ = 1;
  std::set<std::pair<std::uint64_t, RequestId>> seen_;
};

}  // namespace corona
