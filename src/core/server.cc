#include "core/server.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "util/invariant.h"
#include "util/logging.h"

namespace corona {

CoronaServer::CoronaServer(ServerConfig config, GroupStore* store,
                           SessionManager* session_manager)
    : config_(std::move(config)), store_(store), session_(session_manager),
      qos_(config_.qos) {
  if (store_ == nullptr) {
    owned_store_ = std::make_unique<GroupStore>();
    store_ = owned_store_.get();
  }
  if (session_ == nullptr) {
    owned_session_ = std::make_unique<AllowAllSessionManager>();
    session_ = owned_session_.get();
  }
  if (!config_.reduction_factory) {
    config_.reduction_factory = [] { return make_no_reduction(); };
  }
}

CoronaServer::~CoronaServer() = default;

void CoronaServer::on_start() {
  if (config_.stateful) {
    recover_from_store();
    if (config_.flush == FlushPolicy::kAsync) schedule_flush();
  }
  if (config_.client_timeout > 0) {
    set_timer(config_.client_timeout / 2, kLivenessTimer);
  }
}

void CoronaServer::recover_from_store() {
  for (RecoveredGroup& rg : store_->recover()) {
    Group group(rg.meta);
    group.state().load(rg.base_seq, rg.snapshot);
    SeqNo head = rg.base_seq;
    for (const UpdateRecord& u : rg.updates) {
      group.state().apply(u);
      group.mark_seen(u.sender, u.request_id);
      head = u.seq;
    }
    group.set_next_seq(head + 1);
    CORONA_CHECK_INVARIANTS(group);
    const GroupId id = rg.meta.id;
    groups_.erase(id);
    groups_.emplace(id, std::move(group));
    reduction_[id] = config_.reduction_factory();
    LOG_INFO("server", "recovered ", id, " head=", head,
             " objects=", groups_.at(id).state().object_count());
  }
}

void CoronaServer::on_message(NodeId from, const Message& m) {
  // Any traffic counts as liveness; idle clients send keepalives.
  if (config_.client_timeout > 0) {
    if (auto it = client_last_heard_.find(from);
        it != client_last_heard_.end()) {
      it->second = now();
    }
  }
  if (m.type == MsgType::kHeartbeat) return;  // keepalive only

  // Multicast traffic can be QoS-scheduled; control traffic never queues.
  if (config_.enable_qos &&
      (m.type == MsgType::kBcastState || m.type == MsgType::kBcastUpdate)) {
    qos_.enqueue(from, m);
    stats_.qos_shed = qos_.shed();
    if (!qos_drain_scheduled_) {
      qos_drain_scheduled_ = true;
      // Admission waits out the current service slot, so bursts accumulate
      // in the scheduler where priorities/aging/shedding can act on them.
      const Duration wait = std::max<Duration>(0, qos_busy_until_ - now());
      set_timer(wait, kQosDrainTimer);
    }
    return;
  }
  process(from, m);
}

void CoronaServer::on_timer(std::uint64_t tag) {
  if (tag == kFlushTimer) {
    flush_now();
    schedule_flush();
    return;
  }
  if (tag == kLivenessTimer) {
    // Fail-stop client sweep (companion paper [15]): silent members are
    // dropped everywhere, exactly as an explicit leave would.
    std::vector<NodeId> expired;
    for (const auto& [client, last] : client_last_heard_) {
      if (now() - last > config_.client_timeout) expired.push_back(client);
    }
    for (NodeId client : expired) {
      client_last_heard_.erase(client);
      ++stats_.clients_expired;
      drop_member_everywhere(client);
    }
    set_timer(config_.client_timeout / 2, kLivenessTimer);
    return;
  }
  if (tag == kQosDrainTimer) {
    // Drain one message per service slot so higher-priority arrivals can
    // overtake queued lower-priority ones while the server is busy.  With
    // batching enabled the slot admits up to a batch's worth so the batch
    // queue can actually fill.
    const std::size_t burst = std::max<std::size_t>(1, config_.batch_max_msgs);
    for (std::size_t i = 0; i < burst; ++i) {
      auto item = qos_.dequeue();
      if (!item) break;
      qos_busy_until_ = now() + config_.qos_service_time;
      process(item->from, item->msg);
    }
    if (!qos_.empty()) {
      set_timer(config_.qos_service_time, kQosDrainTimer);
    } else {
      qos_drain_scheduled_ = false;
    }
    return;
  }
  if (tag == kBatchTimer) {
    batch_timer_ = 0;
    drain_batch();
    return;
  }
  if (tag >= kPeerTagBase) {
    peer_transfer_timeout(tag - kPeerTagBase);
    return;
  }
  if (tag >= kSyncTagBase) {
    auto it = pending_sync_.find(tag - kSyncTagBase);
    if (it == pending_sync_.end()) return;
    std::vector<PendingDelivery> items = std::move(it->second);
    pending_sync_.erase(it);
    fanout_batch(items);
    return;
  }
}

// Role dispatch surface: every MsgType must be handled below or waived.
// lint-dispatch: MsgType
// dispatch-ignore: kInvalid -- sentinel; the decoder rejects it upstream
// dispatch-ignore: kReply kDeliver -- emitted by this role, never received
// dispatch-ignore: kServerHello kFwdMulticast kSeqMulticast -- replica tier
// dispatch-ignore: kGroupOp kGroupOpResult kHeartbeatAck -- replica tier
// dispatch-ignore: kServerList kElectionClaim kElectionVote -- replica tier
// dispatch-ignore: kCoordAnnounce kBackupAssign -- replica tier
// dispatch-ignore: kResendRequest -- sent to clients, never received
// dispatch-ignore: kDigestRequest kDigestReply -- replica anti-entropy only
void CoronaServer::process(NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kCreateGroup: handle_create(from, m); break;
    case MsgType::kDeleteGroup: handle_delete(from, m); break;
    case MsgType::kJoin: handle_join(from, m); break;
    case MsgType::kLeave: handle_leave(from, m); break;
    case MsgType::kGetMembership: handle_get_membership(from, m); break;
    case MsgType::kBcastState:
    case MsgType::kBcastUpdate: handle_bcast(from, m); break;
    case MsgType::kLockRequest: handle_lock_request(from, m); break;
    case MsgType::kLockRelease: handle_lock_release(from, m); break;
    case MsgType::kReduceLog: handle_reduce_log(from, m); break;
    case MsgType::kRetransmitReq: handle_retransmit(from, m); break;
    case MsgType::kResendReply: handle_resend_reply(from, m); break;
    case MsgType::kStateReply: handle_peer_state(from, m); break;
    default:
      LOG_WARN("server", "unexpected ", msg_type_name(m.type), " from ",
               from.value);
      break;
  }
}

Group* CoronaServer::find_group(GroupId g) {
  auto it = groups_.find(g);
  return it != groups_.end() ? &it->second : nullptr;
}

const Group* CoronaServer::group(GroupId g) const {
  auto it = groups_.find(g);
  return it != groups_.end() ? &it->second : nullptr;
}

Status CoronaServer::authorize(NodeId client, GroupId g, GroupAction action) {
  return session_->authorize(client, g, action);
}

void CoronaServer::set_group_qos_class(GroupId g, int klass) {
  qos_.set_group_class(g, klass);
}

// ---------------------------------------------------------------------------
// Group management
// ---------------------------------------------------------------------------

void CoronaServer::handle_create(NodeId from, const Message& m) {
  if (Status s = authorize(from, m.group, GroupAction::kCreate); !s) {
    send(from, make_reply(s, m.request_id));
    return;
  }
  if (groups_.contains(m.group)) {
    send(from, make_reply(Status::error(Errc::kAlreadyExists), m.request_id));
    return;
  }
  GroupMeta meta{m.group, m.text, m.persistent};
  Group group(meta);
  group.state().load(0, m.state);
  groups_.emplace(m.group, std::move(group));
  reduction_[m.group] = config_.reduction_factory();
  if (config_.stateful) {
    store_->create_group(meta, m.state);
    if (config_.flush == FlushPolicy::kSync) flush_now();
  }
  send(from, make_reply(Status::ok(), m.request_id));
}

void CoronaServer::handle_delete(NodeId from, const Message& m) {
  if (Status s = authorize(from, m.group, GroupAction::kDelete); !s) {
    send(from, make_reply(s, m.request_id));
    return;
  }
  Group* group = find_group(m.group);
  if (group == nullptr) {
    send(from, make_reply(Status::error(Errc::kNotFound), m.request_id));
    return;
  }
  // "The shared state of a deleted group is lost."
  Message note;
  note.type = MsgType::kGroupDeleted;
  note.group = m.group;
  for (const auto& [member, info] : group->members()) {
    if (!(member == from)) send(member, note);
  }
  groups_.erase(m.group);
  reduction_.erase(m.group);
  if (config_.stateful) store_->remove_group(m.group);
  send(from, make_reply(Status::ok(), m.request_id));
}

void CoronaServer::handle_join(NodeId from, const Message& m) {
  Message reply;
  reply.type = MsgType::kJoinReply;
  reply.group = m.group;
  reply.request_id = m.request_id;

  if (Status s = authorize(from, m.group, GroupAction::kJoin); !s) {
    reply.status = s.code;
    reply.text = s.detail;
    send(from, reply);
    return;
  }
  Group* group = find_group(m.group);
  if (group == nullptr) {
    reply.status = Errc::kNotFound;
    send(from, reply);
    return;
  }
  if (!group->add_member(from, m.role, m.notify_membership)) {
    reply.status = Errc::kAlreadyExists;
    reply.text = "already a member";
    send(from, reply);
    return;
  }

  // Peer-transfer baseline (§2's ISIS-style join): fetch the state from an
  // existing member instead of the service copy.  Membership is finalized
  // when the transfer completes; the reply is deferred.
  if (config_.stateful && config_.join_transfer == JoinTransferMode::kPeer &&
      group->member_count() > 1) {
    group->remove_member(from);  // re-added when the transfer lands
    begin_peer_transfer(*group, from, m);
    return;
  }

  // Customized state transfer (§3.2).  The join involves no existing member:
  // everything comes from the server's copy of the shared state.
  if (config_.stateful) {
    TransferContent t = build_transfer(group->state(), m.policy);
    reply.seq = t.base_seq;
    reply.state = std::move(t.snapshot);
    reply.updates = std::move(t.updates);
    std::size_t bytes = 0;
    for (const StateEntry& s : reply.state) bytes += s.data.size();
    for (const UpdateRecord& u : reply.updates) bytes += u.data.size();
    stats_.transfer_bytes += bytes;
  } else {
    reply.seq = group->next_seq() - 1;
  }
  reply.members = group->member_list();
  ++stats_.joins_served;
  if (config_.client_timeout > 0) client_last_heard_[from] = now();
  send(from, reply);

  send_membership_notices(*group, from, m.role, /*joined=*/true);
}

// ---------------------------------------------------------------------------
// Peer-transfer baseline (paper §2)
// ---------------------------------------------------------------------------

void CoronaServer::begin_peer_transfer(Group& group, NodeId joiner,
                                       const Message& join) {
  PendingPeerJoin p;
  p.group = group.meta().id;
  p.joiner = joiner;
  p.request_id = join.request_id;
  p.role = join.role;
  p.notify = join.notify_membership;
  for (const auto& [member, info] : group.members()) {
    if (!(member == joiner)) p.remaining_donors.push_back(member);
  }
  p.donor = p.remaining_donors.front();
  p.remaining_donors.erase(p.remaining_donors.begin());

  const std::uint64_t token = next_peer_token_++;
  Message q;
  q.type = MsgType::kStateQuery;
  q.group = p.group;
  q.request_id = token;
  send(p.donor, q);
  p.timer = set_timer(config_.peer_timeout, kPeerTagBase + token);
  pending_peer_.emplace(token, std::move(p));
}

void CoronaServer::handle_peer_state(NodeId from, const Message& m) {
  auto it = pending_peer_.find(m.request_id);
  if (it == pending_peer_.end() || !(it->second.donor == from)) return;
  if (m.status != Errc::kOk) {
    // The donor cannot serve (left / never had the state): fail over to the
    // next one right away.
    cancel_timer(it->second.timer);
    const std::uint64_t token = it->first;
    PendingPeerJoin p = std::move(it->second);
    pending_peer_.erase(it);
    pending_peer_.emplace(token, std::move(p));
    peer_transfer_timeout(token);
    return;
  }
  cancel_timer(it->second.timer);
  PendingPeerJoin p = std::move(it->second);
  pending_peer_.erase(it);
  ++stats_.peer_transfers;
  if (Group* group = find_group(p.group)) {
    finish_join_reply(*group, p, m.seq, m.state, {});
  }
}

void CoronaServer::peer_transfer_timeout(std::uint64_t token) {
  auto it = pending_peer_.find(token);
  if (it == pending_peer_.end()) return;
  ++stats_.peer_timeouts;
  PendingPeerJoin& p = it->second;
  Group* group = find_group(p.group);
  if (group == nullptr) {
    pending_peer_.erase(it);
    return;
  }
  if (p.remaining_donors.empty()) {
    // "the time to complete the join reflects the timeout for failure
    // detection and making an additional request" — and when no member can
    // answer, the stateful service is the last resort.
    PendingPeerJoin done = std::move(p);
    pending_peer_.erase(it);
    TransferContent t = build_transfer(group->state(),
                                       TransferPolicySpec::full());
    finish_join_reply(*group, done, t.base_seq, t.snapshot, t.updates);
    return;
  }
  p.donor = p.remaining_donors.front();
  p.remaining_donors.erase(p.remaining_donors.begin());
  Message q;
  q.type = MsgType::kStateQuery;
  q.group = p.group;
  q.request_id = token;
  send(p.donor, q);
  p.timer = set_timer(config_.peer_timeout, kPeerTagBase + token);
}

void CoronaServer::finish_join_reply(Group& group, const PendingPeerJoin& p,
                                     SeqNo base,
                                     std::vector<StateEntry> snapshot,
                                     std::vector<UpdateRecord> updates) {
  group.add_member(p.joiner, p.role, p.notify);
  Message reply;
  reply.type = MsgType::kJoinReply;
  reply.group = group.meta().id;
  reply.request_id = p.request_id;
  reply.seq = base;
  reply.state = std::move(snapshot);
  reply.updates = std::move(updates);
  reply.members = group.member_list();
  ++stats_.joins_served;
  if (config_.client_timeout > 0) client_last_heard_[p.joiner] = now();
  send(p.joiner, reply);
  send_membership_notices(group, p.joiner, p.role, /*joined=*/true);
}

void CoronaServer::handle_leave(NodeId from, const Message& m) {
  Group* group = find_group(m.group);
  if (group == nullptr || !group->remove_member(from)) {
    send(from, make_reply(Status::error(Errc::kNotMember), m.request_id));
    return;
  }
  // Leaving implicitly releases held locks; queued waiters get grants.
  for (auto& [obj, grantee] : group->locks().drop_member(from)) {
    Message grant;
    grant.type = MsgType::kLockGrant;
    grant.group = m.group;
    grant.object = obj;
    send(grantee, grant);
  }
  send(from, make_reply(Status::ok(), m.request_id));
  send_membership_notices(*group, from, MemberRole::kPrincipal,
                          /*joined=*/false);
  CORONA_CHECK_INVARIANTS(*group);

  // Transient groups cease to exist at null membership; persistent groups
  // and their shared state outlive their members (§3.1).
  if (group->member_count() == 0 && !group->persistent()) {
    groups_.erase(m.group);
    reduction_.erase(m.group);
    if (config_.stateful) store_->remove_group(m.group);
  }

  // Stop liveness tracking once the client belongs to no group.
  if (config_.client_timeout > 0) {
    bool member_somewhere = false;
    for (const auto& [gid, g] : groups_) {
      if (g.is_member(from)) {
        member_somewhere = true;
        break;
      }
    }
    if (!member_somewhere) client_last_heard_.erase(from);
  }
}

void CoronaServer::handle_get_membership(NodeId from, const Message& m) {
  Group* group = find_group(m.group);
  if (group == nullptr) {
    send(from, make_reply(Status::error(Errc::kNotFound), m.request_id));
    return;
  }
  Message info;
  info.type = MsgType::kMembershipInfo;
  info.group = m.group;
  info.request_id = m.request_id;
  info.members = group->member_list();
  send(from, info);
}

void CoronaServer::send_membership_notices(Group& group, NodeId subject,
                                           MemberRole role, bool joined) {
  const auto subscribers = group.notice_subscribers();
  if (subscribers.empty()) return;
  Message note;
  note.type = MsgType::kMembershipNotice;
  note.group = group.meta().id;
  note.sender = subject;
  note.role = role;
  note.accept = joined;
  for (NodeId member : subscribers) {
    if (!(member == subject)) send(member, note);
  }
}

// ---------------------------------------------------------------------------
// Multicast + logging
// ---------------------------------------------------------------------------

void CoronaServer::handle_bcast(NodeId from, const Message& m) {
  if (Status s = authorize(from, m.group, GroupAction::kPublish); !s) {
    send(from, make_reply(s, m.request_id));
    return;
  }
  Group* group = find_group(m.group);
  if (group == nullptr) {
    send(from, make_reply(Status::error(Errc::kNotFound), m.request_id));
    return;
  }
  if (!group->is_member(from)) {
    send(from, make_reply(Status::error(Errc::kNotMember), m.request_id));
    return;
  }

  UpdateRecord rec;
  rec.kind = m.kind;
  rec.object = m.object;
  rec.data = m.payload;
  rec.sender = from;
  rec.timestamp = now();  // server-side real-time stamping (§3.2)
  rec.request_id = m.request_id;

  if (config_.batch_max_msgs > 1) {
    // Batched path: the record is timestamped now (arrival), sequenced at
    // the next drain in arrival order — the same order and the same record
    // bytes the per-message path would produce.
    enqueue_batch(
        PendingDelivery{m.group, std::move(rec), m.sender_inclusive, from});
    return;
  }
  sequence_and_deliver(*group, std::move(rec), m.sender_inclusive, from);
}

void CoronaServer::sequence_record(Group& group, UpdateRecord& rec) {
  rec.seq = group.allocate_seq();
  group.mark_seen(rec.sender, rec.request_id);
  ++stats_.messages_sequenced;

  if (config_.stateful) {
    // State maintenance: constant + linear-in-payload CPU, the overhead the
    // Figure 3 comparison isolates.
    rt().charge_cpu(id(), config_.state_cpu_per_msg +
                              static_cast<Duration>(std::llround(
                                  config_.state_cpu_per_byte *
                                  static_cast<double>(rec.data.size()))));
    group.state().apply(rec);
    store_->append_update(group.meta().id, rec);
  }
}

void CoronaServer::sequence_and_deliver(Group& group, UpdateRecord rec,
                                        bool sender_inclusive, NodeId sender) {
  sequence_record(group, rec);

  if (config_.stateful && config_.flush == FlushPolicy::kSync) {
    // Ablation baseline: hold the delivery until the log record is on the
    // device.
    const std::uint64_t bytes = store_->pending_bytes();
    const std::size_t records = store_->flush();
    ++stats_.flushes;
    const TimePoint done =
        rt().disk_write(id(), bytes, std::max<std::size_t>(records, 1));
    const std::uint64_t token = next_pending_++;
    pending_sync_[token].push_back(PendingDelivery{
        group.meta().id, std::move(rec), sender_inclusive, sender});
    set_timer(done - now(), kSyncTagBase + token);
    maybe_reduce(group);
    return;
  }

  deliver_to_members(group, rec, sender_inclusive, sender);
  if (config_.stateful) maybe_reduce(group);
  CORONA_CHECK_INVARIANTS(group);
}

void CoronaServer::enqueue_batch(PendingDelivery p) {
  batch_queue_.push_back(std::move(p));
  if (batch_queue_.size() >= config_.batch_max_msgs) {
    if (batch_timer_ != 0) {
      cancel_timer(batch_timer_);
      batch_timer_ = 0;
    }
    drain_batch();
    return;
  }
  if (batch_timer_ == 0) {
    batch_timer_ = set_timer(config_.batch_max_delay, kBatchTimer);
  }
}

void CoronaServer::drain_batch() {
  if (batch_queue_.empty()) return;
  std::vector<PendingDelivery> batch = std::move(batch_queue_);
  batch_queue_.clear();
  if (batch.size() > 1) {
    ++stats_.batches_sequenced;
    stats_.batched_messages += batch.size();
  }

  // Sequence in arrival order — exactly the order the per-message path
  // would have produced.  A group deleted since arrival drops its queued
  // multicasts, as a delete racing an in-flight bcast always has.
  std::vector<PendingDelivery> live;
  live.reserve(batch.size());
  std::set<GroupId> touched;
  for (PendingDelivery& p : batch) {
    Group* group = find_group(p.group);
    if (group == nullptr) continue;
    sequence_record(*group, p.rec);
    touched.insert(p.group);
    live.push_back(std::move(p));
  }
  if (live.empty()) return;

  if (config_.stateful && config_.flush == FlushPolicy::kSync) {
    // Group commit: ONE flush and ONE device write cover the entire batch;
    // the device's fixed per-op cost is paid once for the whole run.  The
    // run is delivered together when the commit lands.
    const std::uint64_t bytes = store_->pending_bytes();
    const std::size_t records = store_->flush();
    ++stats_.flushes;
    if (records > 1) {
      ++stats_.group_commits;
      stats_.group_commit_records += records;
    }
    const TimePoint done =
        rt().disk_write(id(), bytes, std::max<std::size_t>(records, 1));
    const std::uint64_t token = next_pending_++;
    pending_sync_[token] = std::move(live);
    set_timer(done - now(), kSyncTagBase + token);
    for (GroupId gid : touched) {
      if (Group* g = find_group(gid)) maybe_reduce(*g);
    }
    return;
  }

  fanout_batch(live);
  for (GroupId gid : touched) {
    if (Group* g = find_group(gid)) {
      if (config_.stateful) maybe_reduce(*g);
      CORONA_CHECK_INVARIANTS(*g);
    }
  }
}

void CoronaServer::fanout_batch(std::vector<PendingDelivery>& items) {
  if (items.size() == 1) {
    PendingDelivery& p = items.front();
    if (Group* g = find_group(p.group)) {
      deliver_to_members(*g, p.rec, p.sender_inclusive, p.sender);
    }
    return;
  }
  if (config_.use_ip_multicast) {
    // One-to-many transport already coalesces the fan-out; batching the
    // frames on top buys nothing, so keep per-record multicast.
    for (PendingDelivery& p : items) {
      if (Group* g = find_group(p.group)) {
        deliver_to_members(*g, p.rec, p.sender_inclusive, p.sender);
      }
    }
    return;
  }
  // One coalesced frame per client covering its whole run, in sequence
  // order.  std::map keeps the per-client send order deterministic.
  std::map<NodeId, std::vector<Message>> per_client;
  for (PendingDelivery& p : items) {
    Group* group = find_group(p.group);
    if (group == nullptr) continue;
    const Message out = make_deliver(p.group, p.rec);
    for (const auto& [member, info] : group->members()) {
      if (!p.sender_inclusive && member == p.sender) continue;
      per_client[member].push_back(out);
      ++stats_.deliveries_sent;
      stats_.delivery_bytes += p.rec.data.size();
    }
  }
  for (auto& [member, msgs] : per_client) {
    if (config_.debug_drop_batch_tail && msgs.size() > 1) msgs.pop_back();
    if (msgs.size() > 1) ++stats_.batch_frames_sent;
    send_batch(member, msgs);
  }
}

void CoronaServer::deliver_to_members(Group& group, const UpdateRecord& rec,
                                      bool sender_inclusive, NodeId sender) {
  const Message out = make_deliver(group.meta().id, rec);
  if (config_.use_ip_multicast) {
    std::vector<NodeId> recipients;
    recipients.reserve(group.member_count());
    for (const auto& [member, info] : group.members()) {
      if (!sender_inclusive && member == sender) continue;
      recipients.push_back(member);
    }
    multicast(recipients, out);
    stats_.deliveries_sent += recipients.size();
    stats_.delivery_bytes += rec.data.size() * recipients.size();
    return;
  }
  // Point-to-point fan-out of the one kDeliver: engines that serialize at
  // the sender encode `out` once for all recipients instead of per member.
  std::vector<NodeId> recipients;
  recipients.reserve(group.member_count());
  for (const auto& [member, info] : group.members()) {
    if (!sender_inclusive && member == sender) continue;
    recipients.push_back(member);
  }
  fanout(recipients, out);
  stats_.deliveries_sent += recipients.size();
  stats_.delivery_bytes += rec.data.size() * recipients.size();
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

void CoronaServer::handle_lock_request(NodeId from, const Message& m) {
  Group* group = find_group(m.group);
  if (group == nullptr || !group->is_member(from)) {
    send(from, make_reply(Status::error(Errc::kNotMember), m.request_id));
    return;
  }
  const auto outcome = group->locks().acquire(m.object, from);
  if (outcome == LockTable::AcquireOutcome::kGranted) {
    Message grant;
    grant.type = MsgType::kLockGrant;
    grant.group = m.group;
    grant.object = m.object;
    grant.request_id = m.request_id;
    send(from, grant);
  } else {
    // Queued (or duplicate): acknowledge receipt; the grant follows when the
    // holder releases.
    send(from, make_reply(Status::error(Errc::kLockHeld, "queued"),
                          m.request_id));
  }
}

void CoronaServer::handle_lock_release(NodeId from, const Message& m) {
  Group* group = find_group(m.group);
  if (group == nullptr) {
    send(from, make_reply(Status::error(Errc::kNotFound), m.request_id));
    return;
  }
  auto result = group->locks().release(m.object, from);
  if (!result) {
    send(from, make_reply(result.status(), m.request_id));
    return;
  }
  send(from, make_reply(Status::ok(), m.request_id));
  if (auto next = result.value()) {
    Message grant;
    grant.type = MsgType::kLockGrant;
    grant.group = m.group;
    grant.object = m.object;
    send(*next, grant);
  }
}

// ---------------------------------------------------------------------------
// Log reduction
// ---------------------------------------------------------------------------

void CoronaServer::handle_reduce_log(NodeId from, const Message& m) {
  if (Status s = authorize(from, m.group, GroupAction::kReduceLog); !s) {
    send(from, make_reply(s, m.request_id));
    return;
  }
  Group* group = find_group(m.group);
  if (group == nullptr) {
    send(from, make_reply(Status::error(Errc::kNotFound), m.request_id));
    return;
  }
  const SeqNo upto = m.seq == 0 ? group->state().head_seq() : m.seq;
  perform_reduction(*group, upto);
  Message done;
  done.type = MsgType::kLogReduced;
  done.group = m.group;
  done.seq = group->state().base_seq();
  done.request_id = m.request_id;
  send(from, done);
}

void CoronaServer::maybe_reduce(Group& group) {
  auto it = reduction_.find(group.meta().id);
  if (it == reduction_.end()) return;
  if (const SeqNo upto = it->second->should_reduce(group.state()); upto > 0) {
    perform_reduction(group, upto);
  }
}

void CoronaServer::perform_reduction(Group& group, SeqNo upto) {
  // "The history of state updates ... may be trimmed up to a point and
  // replaced with the consistent group state existing at that point" (§3.2).
  // SharedState folds the dropped prefix into its base snapshot, which then
  // becomes the durable checkpoint.
  const std::size_t dropped = group.state().reduce_to(upto);
  if (dropped == 0) return;
  if (config_.stateful) {
    store_->install_checkpoint(group.meta().id, group.state().base_seq(),
                               group.state().snapshot_at_base());
  }
  ++stats_.reductions;
  stats_.records_dropped_by_reduction += dropped;
}

// ---------------------------------------------------------------------------
// Retransmission + recovery resends
// ---------------------------------------------------------------------------

void CoronaServer::handle_retransmit(NodeId from, const Message& m) {
  Group* group = find_group(m.group);
  if (group == nullptr) {
    send(from, make_reply(Status::error(Errc::kNotFound), m.request_id));
    return;
  }
  Message reply;
  reply.type = MsgType::kStateReply;
  reply.group = m.group;
  reply.request_id = m.request_id;
  const SharedState& st = group->state();
  if (m.seq <= st.base_seq() + 1 && st.base_seq() > 0) {
    // The requested range was reduced away; ship the consolidated state.
    reply.seq = st.head_seq();
    reply.state = st.snapshot();
  } else {
    reply.seq = st.base_seq();
    for (const UpdateRecord& u : st.since(m.seq - 1)) {
      if (m.seq2 != 0 && u.seq > m.seq2) break;
      reply.updates.push_back(u);
    }
  }
  ++stats_.retransmits_served;
  send(from, reply);
}

void CoronaServer::handle_resend_reply(NodeId from, const Message& m) {
  // Crash recovery (§6): updates lost with the unflushed log tail are
  // re-submitted by their original senders and sequenced afresh; the
  // (sender, request-id) dedup set recovered from the durable log keeps
  // already-stable updates from being applied twice.
  Group* group = find_group(m.group);
  if (group == nullptr) return;
  for (const UpdateRecord& orig : m.updates) {
    if (group->was_seen(orig.sender, orig.request_id)) continue;
    if (!group->is_member(orig.sender)) continue;
    UpdateRecord rec = orig;
    rec.timestamp = now();
    ++stats_.resends_applied;
    sequence_and_deliver(*group, std::move(rec), /*sender_inclusive=*/true,
                         from);
  }
}

// ---------------------------------------------------------------------------
// Flushing
// ---------------------------------------------------------------------------

void CoronaServer::schedule_flush() {
  set_timer(config_.flush_interval, kFlushTimer);
}

void CoronaServer::flush_now() {
  const std::uint64_t bytes = store_->pending_bytes();
  // Commit-group size is already accounted via pending_bytes above.
  (void)store_->flush();
  ++stats_.flushes;
  if (bytes > 0) rt().disk_write(id(), bytes);
}

void CoronaServer::drop_member_everywhere(NodeId who) {
  std::vector<GroupId> to_erase;
  for (auto& [gid, group] : groups_) {
    if (!group.is_member(who)) continue;
    group.remove_member(who);
    for (auto& [obj, grantee] : group.locks().drop_member(who)) {
      Message grant;
      grant.type = MsgType::kLockGrant;
      grant.group = gid;
      grant.object = obj;
      send(grantee, grant);
    }
    send_membership_notices(group, who, MemberRole::kPrincipal,
                            /*joined=*/false);
    CORONA_CHECK_INVARIANTS(group);
    if (group.member_count() == 0 && !group.persistent()) to_erase.push_back(gid);
  }
  for (GroupId gid : to_erase) {
    groups_.erase(gid);
    reduction_.erase(gid);
    if (config_.stateful) store_->remove_group(gid);
  }
}

}  // namespace corona
