#include "core/stateless_server.h"

#include "util/logging.h"

namespace corona {

void StatelessServer::on_message(NodeId from, const Message& m) {
  switch (m.type) {
    case MsgType::kCreateGroup: {
      const bool fresh = groups_.emplace(m.group, GroupEntry{}).second;
      send(from, make_reply(fresh ? Status::ok()
                                  : Status::error(Errc::kAlreadyExists),
                            m.request_id));
      break;
    }
    case MsgType::kDeleteGroup: {
      groups_.erase(m.group);
      send(from, make_reply(Status::ok(), m.request_id));
      break;
    }
    case MsgType::kJoin: {
      auto it = groups_.find(m.group);
      Message reply;
      reply.type = MsgType::kJoinReply;
      reply.group = m.group;
      reply.request_id = m.request_id;
      if (it == groups_.end()) {
        reply.status = Errc::kNotFound;
      } else {
        it->second.members.emplace(from, m.role);
        reply.seq = it->second.next_seq - 1;
        for (const auto& [node, role] : it->second.members) {
          reply.members.push_back(MemberInfo{node, role});
        }
      }
      send(from, reply);
      break;
    }
    case MsgType::kLeave: {
      auto it = groups_.find(m.group);
      if (it != groups_.end()) {
        it->second.members.erase(from);
        // A stateless group dies with its last member: there is nothing to
        // outlive them.
        if (it->second.members.empty()) groups_.erase(it);
      }
      send(from, make_reply(Status::ok(), m.request_id));
      break;
    }
    case MsgType::kGetMembership: {
      auto it = groups_.find(m.group);
      Message info;
      info.type = MsgType::kMembershipInfo;
      info.group = m.group;
      info.request_id = m.request_id;
      if (it != groups_.end()) {
        for (const auto& [node, role] : it->second.members) {
          info.members.push_back(MemberInfo{node, role});
        }
      }
      send(from, info);
      break;
    }
    case MsgType::kBcastState:
    case MsgType::kBcastUpdate:
      handle_bcast(from, m);
      break;
    default:
      LOG_WARN("stateless", "unsupported ", msg_type_name(m.type));
      send(from, make_reply(Status::error(Errc::kInvalidArgument,
                                          "stateless server"),
                            m.request_id));
      break;
  }
}

void StatelessServer::handle_bcast(NodeId from, const Message& m) {
  auto it = groups_.find(m.group);
  if (it == groups_.end() || !it->second.members.contains(from)) {
    send(from, make_reply(Status::error(Errc::kNotMember), m.request_id));
    return;
  }
  UpdateRecord rec;
  rec.seq = it->second.next_seq++;
  rec.kind = m.kind;
  rec.object = m.object;
  rec.data = m.payload;
  rec.sender = from;
  rec.timestamp = now();
  rec.request_id = m.request_id;
  ++stats_.messages_sequenced;
  const Message out = make_deliver(m.group, rec);
  for (const auto& [member, role] : it->second.members) {
    if (!m.sender_inclusive && member == from) continue;
    send(member, out);
    ++stats_.deliveries_sent;
  }
}

}  // namespace corona
