// Customized state transfer (paper §3.2).
//
// "Based on the speed of its connection to the server and application
// characteristics, the client may request either to receive the whole state
// of the group or the latest n updates to the state (for incremental
// updates).  It may also request to be transferred only the state of certain
// objects in the shared state of the group."
//
// build_transfer() turns a TransferPolicySpec plus the group's SharedState
// into the content of a kJoinReply: a snapshot (consolidated object streams)
// and/or a run of update records, with the base sequence number the client
// should consider itself synchronized to.
#pragma once

#include "core/shared_state.h"
#include "serial/message.h"

namespace corona {

struct TransferContent {
  SeqNo base_seq = 0;  // client is synchronized to this seq after applying
  std::vector<StateEntry> snapshot;
  std::vector<UpdateRecord> updates;

  std::size_t total_bytes() const;
};

TransferContent build_transfer(const SharedState& state,
                               const TransferPolicySpec& policy);

}  // namespace corona
