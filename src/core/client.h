// CoronaClient — the client-side library (paper §3).
//
// A client talks to one server (or one leaf of the replicated service; the
// protocol is identical).  It exposes the Corona service suite as
// asynchronous operations returning request ids, maintains a local replica
// of the shared state of every joined group by applying sequenced
// deliveries, detects sequence gaps and requests retransmission, keeps a
// bounded resend buffer so a recovering server can re-fetch updates lost
// with its unflushed log tail (§6), and surfaces everything to the
// application through callbacks.
//
// Client-based semantics (§3.1): this class never interprets payload bytes;
// applications (see examples/) layer meaning on the opaque object streams.
//
// Thread-safety: all operations and reads may be invoked from any thread
// (the threaded runtime delivers messages on the client's own node thread
// while the application drives the API from its thread).  Callbacks run
// with the client lock held on the runtime's delivery thread; they may call
// back into the client (the lock is recursive) but should not block.  The
// lock is the annotated corona::RecursiveMutex (util/sync.h), so a clang
// -Wthread-safety build proves every guarded field stays under it; this is
// the one protocol-layer class that holds a lock at all — everything else
// is single-threaded by construction.  Under the sim runtime the lock is
// always uncontended, so it adds no nondeterminism.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/shared_state.h"
#include "runtime/runtime.h"
#include "serial/message.h"
#include "util/context.h"
#include "util/ids.h"
#include "util/sync.h"

namespace corona {

class CoronaClient : public Node {
 public:
  struct Callbacks {
    // One sequenced state message delivered in the group's total order.
    std::function<void(GroupId, const UpdateRecord&)> on_deliver;
    // Join finished: status + the transferred state (already applied to the
    // local replica when the status is ok).
    std::function<void(GroupId, Status)> on_joined;
    // Membership-change notification (joined=true/false).
    std::function<void(GroupId, NodeId, MemberRole, bool joined)>
        on_membership_change;
    // Reply to getMembership.
    std::function<void(GroupId, const std::vector<MemberInfo>&)>
        on_membership_info;
    std::function<void(GroupId, ObjectId)> on_lock_granted;
    std::function<void(GroupId)> on_group_deleted;
    // Generic ack/error for an operation.
    std::function<void(RequestId, Status)> on_reply;
  };

  struct Config {
    // How many of this client's own multicasts to retain for server crash
    // recovery (0 disables the resend buffer).
    std::size_t resend_buffer = 64;
    // Detect delivery gaps and request retransmission.
    bool gap_detection = true;
    // Keepalive cadence for servers running a client-liveness sweep
    // (ServerConfig::client_timeout); 0 sends no heartbeats.
    Duration heartbeat_interval = 0;
  };

  explicit CoronaClient(NodeId server);
  CoronaClient(NodeId server, Callbacks callbacks);
  CoronaClient(NodeId server, Callbacks callbacks, Config config);

  // Reconnects the client to a different (or restarted) server.
  void set_server(NodeId server) {
    RecursiveMutexLock lock(mu_);
    server_ = server;
  }
  NodeId server() const {
    RecursiveMutexLock lock(mu_);
    return server_;
  }

  // Replaces the callback set (e.g. when harness wiring needs the client
  // object to exist before the callbacks can be built).
  void set_callbacks(Callbacks callbacks) {
    RecursiveMutexLock lock(mu_);
    cb_ = std::move(callbacks);
  }

  // -- service operations (all asynchronous) ---------------------------------
  RequestId create_group(GroupId g, std::string name, bool persistent,
                         std::vector<StateEntry> initial_state = {});
  RequestId delete_group(GroupId g);
  RequestId join(GroupId g,
                 TransferPolicySpec policy = TransferPolicySpec::full(),
                 MemberRole role = MemberRole::kPrincipal,
                 bool notify_membership = true);
  RequestId leave(GroupId g);
  RequestId get_membership(GroupId g);
  CORONA_HOT_PATH RequestId bcast_state(GroupId g, ObjectId obj,
                                        Bytes payload,
                                        bool sender_inclusive = true);
  CORONA_HOT_PATH RequestId bcast_update(GroupId g, ObjectId obj,
                                         Bytes payload,
                                         bool sender_inclusive = true);
  RequestId lock(GroupId g, ObjectId obj);
  RequestId unlock(GroupId g, ObjectId obj);
  // upto == 0 requests reduction to the current head.
  RequestId reduce_log(GroupId g, SeqNo upto = 0);

  // Re-submits the resend buffer for `g` (after a server restart, §6).
  void resend_recent(GroupId g);

  // -- local replica ----------------------------------------------------------
  bool is_joined(GroupId g) const {
    RecursiveMutexLock lock(mu_);
    return replicas_.contains(g);
  }
  const SharedState* group_state(GroupId g) const;
  // Last known membership (from the join reply / notices / queries).
  std::vector<MemberInfo> known_members(GroupId g) const;
  // Next expected sequence number for `g`.
  SeqNo expected_seq(GroupId g) const;
  std::uint64_t deliveries_received() const {
    RecursiveMutexLock lock(mu_);
    return deliveries_received_;
  }
  std::uint64_t gaps_detected() const {
    RecursiveMutexLock lock(mu_);
    return gaps_detected_;
  }

  void on_start() override;
  void on_message(NodeId from, const Message& m) override;
  void on_timer(std::uint64_t tag) override;

 private:
  struct Replica {
    SharedState state;
    std::map<NodeId, MemberRole> members;
    SeqNo next_expected = 1;
    bool awaiting_retransmit = false;
  };

  RequestId next_request() CORONA_REQUIRES(mu_) { return next_request_id_++; }
  // Takes the record by value: callers hand over their last use with
  // std::move, so the resend buffer entry is a move, not a deep copy of
  // the payload bytes.
  void remember_send(GroupId g, UpdateRecord rec) CORONA_REQUIRES(mu_);
  void handle_join_reply(const Message& m) CORONA_REQUIRES(mu_);
  void handle_deliver(const Message& m) CORONA_REQUIRES(mu_);
  void handle_state_reply(const Message& m) CORONA_REQUIRES(mu_);
  void apply_record(GroupId g, Replica& r, const UpdateRecord& rec)
      CORONA_REQUIRES(mu_);

  mutable RecursiveMutex mu_;
  NodeId server_ CORONA_GUARDED_BY(mu_);
  Callbacks cb_ CORONA_GUARDED_BY(mu_);
  Config config_;  // set at construction only, read-only afterwards
  RequestId next_request_id_ CORONA_GUARDED_BY(mu_) = 1;
  std::map<GroupId, Replica> replicas_ CORONA_GUARDED_BY(mu_);
  // Resend buffer: this client's own recent multicasts, per group.
  std::map<GroupId, std::deque<UpdateRecord>> recent_sends_
      CORONA_GUARDED_BY(mu_);
  std::uint64_t deliveries_received_ CORONA_GUARDED_BY(mu_) = 0;
  std::uint64_t gaps_detected_ CORONA_GUARDED_BY(mu_) = 0;
};

}  // namespace corona
