// The shared-state model (paper §3.1).
//
// The shared state of a group is a set S = {(O1,S1), ..., (On,Sn)} of shared
// objects, where each Si is an opaque byte-stream encoding of object Oi.  The
// service is deliberately ignorant of object semantics: it can consolidate
// state only through the two operations the protocol defines —
//
//   * bcastState(O, bytes)  — the bytes REPLACE object O's stream;
//   * bcastUpdate(O, bytes) — the bytes are APPENDED to O's stream,
//                             "preserving the history of updates".
//
// Alongside the consolidated object streams, SharedState keeps the update
// history (one UpdateRecord per sequenced message since the last reduction
// point) so that joins can be served with "the latest n updates" and log
// reduction can replace a history prefix with the consolidated state.
//
// Invariant (tested property): replaying the full message history over the
// initial state always reproduces the consolidated objects, across any
// interleaving of reductions.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "serial/message.h"
#include "util/bytes.h"
#include "util/context.h"
#include "util/ids.h"
#include "util/invariant.h"

namespace corona {

class SharedState {
 public:
  SharedState() = default;

  // Installs an initial snapshot (group creation or recovery).
  void load(SeqNo base_seq, const std::vector<StateEntry>& snapshot);

  // Applies one sequenced state message.  Records must arrive in sequence
  // order; `rec.seq` must exceed head_seq().
  CORONA_HOT_PATH void apply(const UpdateRecord& rec);

  // -- reads -----------------------------------------------------------------
  // Consolidated snapshot of every object, sorted by object id.
  std::vector<StateEntry> snapshot() const;
  // Snapshot as of base_seq() — what a checkpoint at the last reduction
  // point contains.  Invariant: replaying the retained history over this
  // snapshot reproduces snapshot().
  std::vector<StateEntry> snapshot_at_base() const;
  // Snapshot restricted to the given objects (missing ids are skipped).
  std::vector<StateEntry> snapshot_of(std::span<const ObjectId> ids) const;
  // The full retained history, ascending by seq.
  std::vector<UpdateRecord> history() const;
  // The latest n retained records (fewer if the history is shorter).
  std::vector<UpdateRecord> last_n(std::size_t n) const;
  // The latest n retained records touching any of `ids`.
  std::vector<UpdateRecord> last_n_of(std::span<const ObjectId> ids,
                                      std::size_t n) const;
  // Records with seq in (after, head] — for retransmission.
  std::vector<UpdateRecord> since(SeqNo after) const;

  bool has_object(ObjectId id) const { return objects_.contains(id); }
  const Bytes* object(ObjectId id) const;
  std::size_t object_count() const { return objects_.size(); }

  // Sequence number of the newest applied record (== base_seq if none).
  SeqNo head_seq() const { return head_seq_; }
  // The history covers (base_seq, head_seq].
  SeqNo base_seq() const { return base_seq_; }
  std::size_t history_size() const { return history_.size(); }
  std::uint64_t history_bytes() const { return history_bytes_; }
  std::uint64_t state_bytes() const { return state_bytes_; }

  // -- log reduction (paper §3.2) ---------------------------------------------
  // Drops history records with seq <= upto; the consolidated objects become
  // the authoritative state at `upto`.  No-op if upto <= base_seq.  `upto`
  // is clamped to head_seq().  Returns the number of records dropped.
  std::size_t reduce_to(SeqNo upto);

  // Structural invariants: base_seq <= head_seq; history seqs strictly
  // ascend within (base_seq, head_seq] and end exactly at head_seq; the
  // byte accounting matches the retained records and objects.  (History
  // records need not be *contiguous*: object-filtered joins install
  // filtered tails on clients.)
  InvariantReport check_invariants() const;

 private:
  friend struct SharedStateTestAccess;  // invariant tests corrupt internals

  static void apply_to(std::map<ObjectId, Bytes>& objects,
                       const UpdateRecord& rec);

  std::map<ObjectId, Bytes> objects_;       // consolidated at head_seq_
  std::map<ObjectId, Bytes> base_objects_;  // consolidated at base_seq_
  std::deque<UpdateRecord> history_;
  SeqNo base_seq_ = 0;
  SeqNo head_seq_ = 0;
  std::uint64_t history_bytes_ = 0;
  std::uint64_t state_bytes_ = 0;
};

}  // namespace corona
