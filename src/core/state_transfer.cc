#include "core/state_transfer.h"

namespace corona {

std::size_t TransferContent::total_bytes() const {
  std::size_t n = 0;
  for (const StateEntry& s : snapshot) n += s.data.size();
  for (const UpdateRecord& u : updates) n += u.data.size();
  return n;
}

TransferContent build_transfer(const SharedState& state,
                               const TransferPolicySpec& policy) {
  TransferContent out;
  switch (policy.mode) {
    case TransferMode::kFullState:
      // The consolidated streams already fold in the whole history, so the
      // client is synchronized to the head and needs no update records.
      out.snapshot = state.snapshot();
      out.base_seq = state.head_seq();
      break;

    case TransferMode::kLastN: {
      out.updates = state.last_n(policy.last_n);
      out.base_seq = out.updates.empty() ? state.head_seq()
                                         : out.updates.front().seq - 1;
      break;
    }

    case TransferMode::kObjects:
      out.snapshot = state.snapshot_of(policy.objects);
      out.base_seq = state.head_seq();
      break;

    case TransferMode::kObjectsLastN: {
      out.updates = state.last_n_of(policy.objects, policy.last_n);
      out.base_seq = out.updates.empty() ? state.head_seq()
                                         : out.updates.front().seq - 1;
      break;
    }

    case TransferMode::kNothing:
      out.base_seq = state.head_seq();
      break;
  }
  return out;
}

}  // namespace corona
