#include "core/session_manager.h"

namespace corona {

const char* group_action_name(GroupAction a) {
  switch (a) {
    case GroupAction::kCreate: return "create";
    case GroupAction::kDelete: return "delete";
    case GroupAction::kJoin: return "join";
    case GroupAction::kLeave: return "leave";
    case GroupAction::kPublish: return "publish";
    case GroupAction::kReduceLog: return "reduce-log";
  }
  return "?";
}

void AclSessionManager::allow(NodeId client, GroupId group,
                              GroupAction action) {
  rules_.emplace(client.value, group.value, action);
}

void AclSessionManager::allow_all_actions(NodeId client, GroupId group) {
  for (GroupAction a :
       {GroupAction::kCreate, GroupAction::kDelete, GroupAction::kJoin,
        GroupAction::kLeave, GroupAction::kPublish, GroupAction::kReduceLog}) {
    allow(client, group, a);
  }
}

void AclSessionManager::revoke(NodeId client, GroupId group,
                               GroupAction action) {
  rules_.erase({client.value, group.value, action});
}

bool AclSessionManager::match(std::uint64_t client, std::uint64_t group,
                              GroupAction action) const {
  return rules_.contains({client, group, action});
}

Status AclSessionManager::authorize(NodeId client, GroupId group,
                                    GroupAction action) {
  const bool allowed = match(client.value, group.value, action) ||
                       match(client.value, kAnyGroup, action) ||
                       match(kAnyClient, group.value, action) ||
                       match(kAnyClient, kAnyGroup, action);
  if (allowed) return Status::ok();
  return Status::error(Errc::kPermissionDenied,
                       std::string("session manager denied ") +
                           group_action_name(action));
}

}  // namespace corona
