#include "core/client.h"

#include <algorithm>

#include "util/logging.h"

namespace corona {

CoronaClient::CoronaClient(NodeId server)
    : CoronaClient(server, Callbacks{}, Config{}) {}

CoronaClient::CoronaClient(NodeId server, Callbacks callbacks)
    : CoronaClient(server, std::move(callbacks), Config{}) {}

CoronaClient::CoronaClient(NodeId server, Callbacks callbacks, Config config)
    : server_(server), cb_(std::move(callbacks)), config_(config) {}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

RequestId CoronaClient::create_group(GroupId g, std::string name,
                                     bool persistent,
                                     std::vector<StateEntry> initial_state) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  send(server_, make_create_group(g, std::move(name), persistent,
                                  std::move(initial_state), rid));
  return rid;
}

RequestId CoronaClient::delete_group(GroupId g) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  send(server_, make_delete_group(g, rid));
  return rid;
}

RequestId CoronaClient::join(GroupId g, TransferPolicySpec policy,
                             MemberRole role, bool notify_membership) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  send(server_, make_join(g, std::move(policy), role, notify_membership, rid));
  return rid;
}

RequestId CoronaClient::leave(GroupId g) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  replicas_.erase(g);
  recent_sends_.erase(g);
  send(server_, make_leave(g, rid));
  return rid;
}

RequestId CoronaClient::get_membership(GroupId g) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  send(server_, make_get_membership(g, rid));
  return rid;
}

RequestId CoronaClient::bcast_state(GroupId g, ObjectId obj, Bytes payload,
                                    bool sender_inclusive) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  UpdateRecord rec;
  rec.kind = PayloadKind::kState;
  rec.object = obj;
  rec.data = payload;
  rec.sender = id();
  rec.request_id = rid;
  remember_send(g, std::move(rec));
  send(server_, make_bcast(PayloadKind::kState, g, obj, std::move(payload),
                           sender_inclusive, rid));
  return rid;
}

RequestId CoronaClient::bcast_update(GroupId g, ObjectId obj, Bytes payload,
                                     bool sender_inclusive) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  UpdateRecord rec;
  rec.kind = PayloadKind::kUpdate;
  rec.object = obj;
  rec.data = payload;
  rec.sender = id();
  rec.request_id = rid;
  remember_send(g, std::move(rec));
  send(server_, make_bcast(PayloadKind::kUpdate, g, obj, std::move(payload),
                           sender_inclusive, rid));
  return rid;
}

RequestId CoronaClient::lock(GroupId g, ObjectId obj) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  send(server_, make_lock_request(g, obj, rid));
  return rid;
}

RequestId CoronaClient::unlock(GroupId g, ObjectId obj) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  send(server_, make_lock_release(g, obj, rid));
  return rid;
}

RequestId CoronaClient::reduce_log(GroupId g, SeqNo upto) {
  RecursiveMutexLock lock(mu_);
  const RequestId rid = next_request();
  send(server_, make_reduce_log(g, upto, rid));
  return rid;
}

void CoronaClient::remember_send(GroupId g, UpdateRecord rec) {
  if (config_.resend_buffer == 0) return;
  auto& buf = recent_sends_[g];
  buf.push_back(std::move(rec));
  while (buf.size() > config_.resend_buffer) buf.pop_front();
}

void CoronaClient::resend_recent(GroupId g) {
  RecursiveMutexLock lock(mu_);
  auto it = recent_sends_.find(g);
  if (it == recent_sends_.end() || it->second.empty()) return;
  Message m;
  m.type = MsgType::kResendReply;
  m.group = g;
  m.updates.assign(it->second.begin(), it->second.end());
  send(server_, m);
}

// ---------------------------------------------------------------------------
// Local replica reads
// ---------------------------------------------------------------------------

const SharedState* CoronaClient::group_state(GroupId g) const {
  RecursiveMutexLock lock(mu_);
  auto it = replicas_.find(g);
  return it != replicas_.end() ? &it->second.state : nullptr;
}

std::vector<MemberInfo> CoronaClient::known_members(GroupId g) const {
  RecursiveMutexLock lock(mu_);
  std::vector<MemberInfo> out;
  auto it = replicas_.find(g);
  if (it == replicas_.end()) return out;
  for (const auto& [node, role] : it->second.members) {
    out.push_back(MemberInfo{node, role});
  }
  return out;
}

SeqNo CoronaClient::expected_seq(GroupId g) const {
  RecursiveMutexLock lock(mu_);
  auto it = replicas_.find(g);
  return it != replicas_.end() ? it->second.next_expected : 0;
}

// ---------------------------------------------------------------------------
// Keepalives
// ---------------------------------------------------------------------------

void CoronaClient::on_start() {
  if (config_.heartbeat_interval > 0) {
    set_timer(config_.heartbeat_interval, /*tag=*/1);
  }
}

void CoronaClient::on_timer(std::uint64_t tag) {
  if (tag != 1) return;
  RecursiveMutexLock lock(mu_);
  send(server_, make_heartbeat(0));
  set_timer(config_.heartbeat_interval, /*tag=*/1);
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

// Client dispatch surface: every MsgType must be handled below or waived.
// lint-dispatch: MsgType
// dispatch-ignore: kInvalid -- sentinel; the decoder rejects it upstream
// dispatch-ignore: kCreateGroup kDeleteGroup kJoin kLeave -- sent via make_*
// dispatch-ignore: kGetMembership kBcastState kBcastUpdate -- sent via make_*
// dispatch-ignore: kLockRequest kLockRelease kReduceLog -- sent via make_*
// dispatch-ignore: kHeartbeat -- sent via make_heartbeat, never received
// dispatch-ignore: kServerHello kFwdMulticast kSeqMulticast -- server tier
// dispatch-ignore: kGroupOp kGroupOpResult kHeartbeatAck -- server tier
// dispatch-ignore: kServerList kElectionClaim kElectionVote -- server tier
// dispatch-ignore: kCoordAnnounce kBackupAssign -- server tier
// dispatch-ignore: kDigestRequest kDigestReply -- server tier
void CoronaClient::on_message(NodeId from, const Message& m) {
  RecursiveMutexLock lock(mu_);
  (void)from;
  switch (m.type) {
    case MsgType::kReply:
      if (cb_.on_reply) {
        cb_.on_reply(m.request_id, Status{m.status, m.text});
      }
      break;
    case MsgType::kJoinReply: handle_join_reply(m); break;
    case MsgType::kDeliver: handle_deliver(m); break;
    case MsgType::kStateReply: handle_state_reply(m); break;
    case MsgType::kMembershipInfo: {
      auto it = replicas_.find(m.group);
      if (it != replicas_.end()) {
        it->second.members.clear();
        for (const MemberInfo& mi : m.members) {
          it->second.members.emplace(mi.node, mi.role);
        }
      }
      if (cb_.on_membership_info) cb_.on_membership_info(m.group, m.members);
      break;
    }
    case MsgType::kMembershipNotice: {
      auto it = replicas_.find(m.group);
      if (it != replicas_.end()) {
        if (m.accept) {
          it->second.members.emplace(m.sender, m.role);
        } else {
          it->second.members.erase(m.sender);
        }
      }
      if (cb_.on_membership_change) {
        cb_.on_membership_change(m.group, m.sender, m.role, m.accept);
      }
      break;
    }
    case MsgType::kLockGrant:
      if (cb_.on_lock_granted) cb_.on_lock_granted(m.group, m.object);
      break;
    case MsgType::kGroupDeleted:
      replicas_.erase(m.group);
      recent_sends_.erase(m.group);
      if (cb_.on_group_deleted) cb_.on_group_deleted(m.group);
      break;
    case MsgType::kLogReduced:
      // The local replica's history is not trimmed automatically; clients
      // that mirror the history can react via on_reply-style polling.  The
      // consolidated state is unaffected by reduction.
      if (cb_.on_reply) {
        cb_.on_reply(m.request_id, Status::ok());
      }
      break;
    case MsgType::kResendRequest:
      resend_recent(m.group);
      break;
    case MsgType::kStateQuery: {
      // Peer-transfer donor duty (the §2 ISIS-style baseline): the server
      // asks this member to supply the group state for a joining client.
      Message reply;
      reply.type = MsgType::kStateReply;
      reply.group = m.group;
      reply.request_id = m.request_id;
      auto it = replicas_.find(m.group);
      if (it == replicas_.end()) {
        reply.status = Errc::kNotFound;
      } else {
        reply.seq = it->second.state.head_seq();
        reply.state = it->second.state.snapshot();
      }
      send(from, reply);
      break;
    }
    default:
      LOG_WARN("client", "unexpected ", msg_type_name(m.type));
      break;
  }
}

void CoronaClient::handle_join_reply(const Message& m) {
  if (m.status != Errc::kOk) {
    if (cb_.on_joined) cb_.on_joined(m.group, Status{m.status, m.text});
    return;
  }
  Replica r;
  r.state.load(m.seq, m.state);
  for (const UpdateRecord& u : m.updates) r.state.apply(u);
  r.next_expected = r.state.head_seq() + 1;
  for (const MemberInfo& mi : m.members) r.members.emplace(mi.node, mi.role);
  replicas_[m.group] = std::move(r);
  if (cb_.on_joined) cb_.on_joined(m.group, Status::ok());
}

void CoronaClient::apply_record(GroupId g, Replica& r,
                                const UpdateRecord& rec) {
  r.state.apply(rec);
  r.next_expected = rec.seq + 1;
  ++deliveries_received_;
  if (cb_.on_deliver) cb_.on_deliver(g, rec);
}

void CoronaClient::handle_deliver(const Message& m) {
  auto it = replicas_.find(m.group);
  if (it == replicas_.end()) return;  // left the group; stale delivery
  Replica& r = it->second;

  UpdateRecord rec;
  rec.seq = m.seq;
  rec.kind = m.kind;
  rec.object = m.object;
  rec.data = m.payload;
  rec.sender = m.sender;
  rec.timestamp = m.timestamp;
  rec.request_id = m.request_id;

  if (rec.seq < r.next_expected) return;  // duplicate
  if (rec.seq > r.next_expected && config_.gap_detection) {
    ++gaps_detected_;
    if (!r.awaiting_retransmit) {
      r.awaiting_retransmit = true;
      Message req;
      req.type = MsgType::kRetransmitReq;
      req.group = m.group;
      req.seq = r.next_expected;
      req.seq2 = rec.seq;  // the gap ends where this delivery begins
      send(server_, req);
    }
    // The out-of-order record itself is recovered by the retransmit reply
    // (its range is inclusive of rec.seq? no: seq2 = rec.seq - 1 suffices,
    // so apply rec after the gap fills).  Buffering one record keeps the
    // protocol simple: re-request includes rec.seq as well and we drop it
    // here; the server resends it.
    return;
  }
  apply_record(m.group, r, rec);
}

void CoronaClient::handle_state_reply(const Message& m) {
  auto it = replicas_.find(m.group);
  if (it == replicas_.end()) return;
  Replica& r = it->second;
  r.awaiting_retransmit = false;
  if (!m.state.empty()) {
    // The gap was reduced away server-side: reload from the snapshot.
    r.state.load(m.seq, m.state);
    r.next_expected = m.seq + 1;
    return;
  }
  for (const UpdateRecord& u : m.updates) {
    if (u.seq == r.next_expected) {
      apply_record(m.group, r, u);
    }
  }
}

}  // namespace corona
