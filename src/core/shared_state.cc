#include "core/shared_state.h"

#include <algorithm>
#include <cassert>

namespace corona {

void SharedState::load(SeqNo base_seq, const std::vector<StateEntry>& snapshot) {
  objects_.clear();
  base_objects_.clear();
  history_.clear();
  history_bytes_ = 0;
  state_bytes_ = 0;
  base_seq_ = base_seq;
  head_seq_ = base_seq;
  for (const StateEntry& s : snapshot) {
    state_bytes_ += s.data.size();
    objects_[s.object] = s.data;
    base_objects_[s.object] = s.data;
  }
  CORONA_CHECK_INVARIANTS(*this);
}

void SharedState::apply_to(std::map<ObjectId, Bytes>& objects,
                           const UpdateRecord& rec) {
  Bytes& obj = objects[rec.object];
  if (rec.kind == PayloadKind::kState) {
    obj = rec.data;
  } else {
    obj.insert(obj.end(), rec.data.begin(), rec.data.end());
  }
}

void SharedState::apply(const UpdateRecord& rec) {
  assert(rec.seq > head_seq_ && "records must be applied in sequence order");
  head_seq_ = rec.seq;
  if (rec.kind == PayloadKind::kState) {
    auto it = objects_.find(rec.object);
    state_bytes_ -= it != objects_.end() ? it->second.size() : 0;
    state_bytes_ += rec.data.size();
  } else {
    state_bytes_ += rec.data.size();
  }
  apply_to(objects_, rec);
  history_bytes_ += rec.data.size();
  history_.push_back(rec);
  CORONA_CHECK_INVARIANTS(*this);
}

std::vector<StateEntry> SharedState::snapshot() const {
  std::vector<StateEntry> out;
  out.reserve(objects_.size());
  for (const auto& [id, data] : objects_) out.push_back(StateEntry{id, data});
  return out;
}

std::vector<StateEntry> SharedState::snapshot_of(
    std::span<const ObjectId> ids) const {
  std::vector<StateEntry> out;
  for (ObjectId id : ids) {
    auto it = objects_.find(id);
    if (it != objects_.end()) out.push_back(StateEntry{id, it->second});
  }
  return out;
}

std::vector<UpdateRecord> SharedState::history() const {
  return {history_.begin(), history_.end()};
}

std::vector<UpdateRecord> SharedState::last_n(std::size_t n) const {
  const std::size_t take = std::min(n, history_.size());
  return {history_.end() - static_cast<std::ptrdiff_t>(take), history_.end()};
}

std::vector<UpdateRecord> SharedState::last_n_of(std::span<const ObjectId> ids,
                                                 std::size_t n) const {
  std::vector<UpdateRecord> out;
  for (auto it = history_.rbegin(); it != history_.rend() && out.size() < n;
       ++it) {
    if (std::find(ids.begin(), ids.end(), it->object) != ids.end()) {
      out.push_back(*it);
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<UpdateRecord> SharedState::since(SeqNo after) const {
  std::vector<UpdateRecord> out;
  for (const UpdateRecord& r : history_) {
    if (r.seq > after) out.push_back(r);
  }
  return out;
}

const Bytes* SharedState::object(ObjectId id) const {
  auto it = objects_.find(id);
  return it != objects_.end() ? &it->second : nullptr;
}

std::size_t SharedState::reduce_to(SeqNo upto) {
  upto = std::min(upto, head_seq_);
  if (upto <= base_seq_) return 0;
  std::size_t dropped = 0;
  // Fold the dropped prefix into the base snapshot so the checkpoint stays
  // "the consistent group state existing at that point" (§3.2).
  while (!history_.empty() && history_.front().seq <= upto) {
    apply_to(base_objects_, history_.front());
    history_bytes_ -= history_.front().data.size();
    history_.pop_front();
    ++dropped;
  }
  base_seq_ = upto;
  CORONA_CHECK_INVARIANTS(*this);
  return dropped;
}

InvariantReport SharedState::check_invariants() const {
  InvariantReport rep;
  if (base_seq_ > head_seq_) {
    rep.fail("SharedState: base_seq " + std::to_string(base_seq_) +
             " > head_seq " + std::to_string(head_seq_));
  }
  SeqNo prev = base_seq_;
  for (const UpdateRecord& r : history_) {
    if (r.seq <= prev) {
      rep.fail("SharedState: history seq " + std::to_string(r.seq) +
               " does not ascend past " + std::to_string(prev));
    }
    prev = r.seq;
  }
  if (!history_.empty() && history_.back().seq != head_seq_) {
    rep.fail("SharedState: newest history seq " +
             std::to_string(history_.back().seq) + " != head_seq " +
             std::to_string(head_seq_));
  }
  std::uint64_t hist_bytes = 0;
  for (const UpdateRecord& r : history_) hist_bytes += r.data.size();
  if (hist_bytes != history_bytes_) {
    rep.fail("SharedState: history_bytes " + std::to_string(history_bytes_) +
             " != recomputed " + std::to_string(hist_bytes));
  }
  std::uint64_t obj_bytes = 0;
  for (const auto& [id, data] : objects_) obj_bytes += data.size();
  if (obj_bytes != state_bytes_) {
    rep.fail("SharedState: state_bytes " + std::to_string(state_bytes_) +
             " != recomputed " + std::to_string(obj_bytes));
  }
  return rep;
}

std::vector<StateEntry> SharedState::snapshot_at_base() const {
  std::vector<StateEntry> out;
  out.reserve(base_objects_.size());
  for (const auto& [id, data] : base_objects_) {
    out.push_back(StateEntry{id, data});
  }
  return out;
}

}  // namespace corona
