// Workspace session manager hook (paper §3.2: "The Corona server works in
// conjunction with an external workspace session manager that determines
// which client is allowed to execute these actions").
//
// The server consults a SessionManager before every group-management action.
// Two implementations ship: AllowAllSessionManager (the default) and
// AclSessionManager, a deny-by-default access-control list keyed by
// (client, group, action) with wildcards.
#pragma once

#include <map>
#include <set>

#include "util/ids.h"
#include "util/result.h"

namespace corona {

enum class GroupAction {
  kCreate,
  kDelete,
  kJoin,
  kLeave,
  kPublish,  // bcastState / bcastUpdate
  kReduceLog,
};

const char* group_action_name(GroupAction a);

class SessionManager {
 public:
  virtual ~SessionManager() = default;
  virtual Status authorize(NodeId client, GroupId group,
                           GroupAction action) = 0;
};

class AllowAllSessionManager final : public SessionManager {
 public:
  Status authorize(NodeId, GroupId, GroupAction) override {
    return Status::ok();
  }
};

// Deny-by-default ACL.  Rules are added per client; `kAnyGroup` wildcards
// the group and a client id of kAnyClient wildcards the client.
class AclSessionManager final : public SessionManager {
 public:
  static constexpr std::uint64_t kAnyGroup = ~0ull;
  static constexpr std::uint64_t kAnyClient = ~0ull;

  void allow(NodeId client, GroupId group, GroupAction action);
  void allow_all_actions(NodeId client, GroupId group);
  void revoke(NodeId client, GroupId group, GroupAction action);

  Status authorize(NodeId client, GroupId group, GroupAction action) override;

 private:
  using Key = std::tuple<std::uint64_t, std::uint64_t, GroupAction>;
  std::set<Key> rules_;
  bool match(std::uint64_t client, std::uint64_t group,
             GroupAction action) const;
};

}  // namespace corona
