#include "core/locks.h"

#include <algorithm>

namespace corona {

LockTable::AcquireOutcome LockTable::acquire(ObjectId object, NodeId who) {
  auto it = locks_.find(object);
  if (it == locks_.end()) {
    locks_.emplace(object, Entry{who, {}});
    return AcquireOutcome::kGranted;
  }
  Entry& e = it->second;
  if (e.holder == who) return AcquireOutcome::kAlreadyHeld;
  if (std::find(e.queue.begin(), e.queue.end(), who) != e.queue.end()) {
    return AcquireOutcome::kAlreadyHeld;
  }
  e.queue.push_back(who);
  CORONA_CHECK_INVARIANTS(*this);
  return AcquireOutcome::kQueued;
}

Result<std::optional<NodeId>> LockTable::release(ObjectId object, NodeId who) {
  auto it = locks_.find(object);
  if (it == locks_.end()) {
    return Status::error(Errc::kNotFound, "lock not held");
  }
  Entry& e = it->second;
  if (!(e.holder == who)) {
    return Status::error(Errc::kLockHeld, "lock held by another member");
  }
  if (e.queue.empty()) {
    locks_.erase(it);
    return std::optional<NodeId>{};
  }
  e.holder = e.queue.front();
  e.queue.pop_front();
  CORONA_CHECK_INVARIANTS(*this);
  return std::optional<NodeId>{e.holder};
}

std::vector<std::pair<ObjectId, NodeId>> LockTable::drop_member(NodeId who) {
  std::vector<std::pair<ObjectId, NodeId>> grants;
  for (auto it = locks_.begin(); it != locks_.end();) {
    Entry& e = it->second;
    e.queue.erase(std::remove(e.queue.begin(), e.queue.end(), who),
                  e.queue.end());
    if (e.holder == who) {
      if (e.queue.empty()) {
        it = locks_.erase(it);
        continue;
      }
      e.holder = e.queue.front();
      e.queue.pop_front();
      grants.emplace_back(it->first, e.holder);
    }
    ++it;
  }
  CORONA_CHECK_INVARIANTS(*this);
  return grants;
}

std::vector<std::pair<ObjectId, NodeId>> LockTable::all_holders() const {
  std::vector<std::pair<ObjectId, NodeId>> out;
  out.reserve(locks_.size());
  for (const auto& [obj, e] : locks_) out.emplace_back(obj, e.holder);
  return out;
}

std::vector<std::pair<ObjectId, NodeId>> LockTable::all_waiters() const {
  std::vector<std::pair<ObjectId, NodeId>> out;
  for (const auto& [obj, e] : locks_) {
    for (NodeId w : e.queue) out.emplace_back(obj, w);
  }
  return out;
}

InvariantReport LockTable::check_invariants() const {
  InvariantReport rep;
  for (const auto& [obj, e] : locks_) {
    std::vector<NodeId> seen;
    for (NodeId w : e.queue) {
      if (w == e.holder) {
        rep.fail("LockTable: holder node:" + std::to_string(e.holder.value) +
                 " also queued for obj:" + std::to_string(obj.value));
      }
      if (std::find(seen.begin(), seen.end(), w) != seen.end()) {
        rep.fail("LockTable: node:" + std::to_string(w.value) +
                 " queued twice for obj:" + std::to_string(obj.value));
      }
      seen.push_back(w);
    }
  }
  return rep;
}

std::optional<NodeId> LockTable::holder(ObjectId object) const {
  auto it = locks_.find(object);
  if (it == locks_.end()) return std::nullopt;
  return it->second.holder;
}

std::size_t LockTable::waiters(ObjectId object) const {
  auto it = locks_.find(object);
  return it == locks_.end() ? 0 : it->second.queue.size();
}

}  // namespace corona
