// State-log reduction policies (paper §3.2).
//
// "At the request of the communication service (several policies may be
// implemented based on factors such as the state log size and the type of
// the data) or, under certain circumstances, when desired by a client, the
// history of state updates for a group may be trimmed up to a point and
// replaced with the consistent group state existing at that point."
//
// A ReductionPolicy inspects a group's SharedState after each append and
// answers "reduce now?".  The server performs the actual reduction (trim the
// in-memory history, install a checkpoint in the GroupStore).  Client-
// requested reduction (kReduceLog) bypasses the policy.
#pragma once

#include <cstdint>
#include <memory>

#include "core/shared_state.h"

namespace corona {

class ReductionPolicy {
 public:
  virtual ~ReductionPolicy() = default;
  // Returns the seq to reduce to (usually head), or 0 for "not now".
  virtual SeqNo should_reduce(const SharedState& state) = 0;
};

// Never reduce (groups with cheap histories, or the client drives it).
class NoReduction final : public ReductionPolicy {
 public:
  SeqNo should_reduce(const SharedState&) override { return 0; }
};

// Reduce when the retained history exceeds `max_bytes` of payload.
class SizeThresholdReduction final : public ReductionPolicy {
 public:
  explicit SizeThresholdReduction(std::uint64_t max_bytes)
      : max_bytes_(max_bytes) {}
  SeqNo should_reduce(const SharedState& state) override {
    return state.history_bytes() > max_bytes_ ? state.head_seq() : 0;
  }

 private:
  std::uint64_t max_bytes_;
};

// Reduce when more than `max_records` updates are retained.
class CountThresholdReduction final : public ReductionPolicy {
 public:
  explicit CountThresholdReduction(std::size_t max_records)
      : max_records_(max_records) {}
  SeqNo should_reduce(const SharedState& state) override {
    return state.history_size() > max_records_ ? state.head_seq() : 0;
  }

 private:
  std::size_t max_records_;
};

// Keeps a tail window of `keep` records: reduces down to head-keep whenever
// the history exceeds 2*keep.  This preserves the ability to serve
// "latest n" joins for n <= keep while bounding memory.
class WindowReduction final : public ReductionPolicy {
 public:
  explicit WindowReduction(std::size_t keep) : keep_(keep) {}
  SeqNo should_reduce(const SharedState& state) override {
    if (state.history_size() <= 2 * keep_) return 0;
    return state.head_seq() - static_cast<SeqNo>(keep_);
  }

 private:
  std::size_t keep_;
};

std::unique_ptr<ReductionPolicy> make_no_reduction();
std::unique_ptr<ReductionPolicy> make_size_threshold(std::uint64_t max_bytes);
std::unique_ptr<ReductionPolicy> make_count_threshold(std::size_t max_records);
std::unique_ptr<ReductionPolicy> make_window(std::size_t keep);

}  // namespace corona
