// Stateless baseline server (paper §5.2, Figure 3's "stateless" curve).
//
// "We compared the performance of group broadcasts when the service
// maintains shared state and when the service does not maintain shared
// state" — where the stateless server "acts as a sequencer only".
//
// This class is a genuinely independent minimal implementation, not a
// configuration of CoronaServer: it keeps only group membership (it must
// know whom to multicast to), assigns sequence numbers, and forwards.  No
// shared state, no log, no persistence, no locks, no state transfer —
// a join returns an empty transfer.
#pragma once

#include <map>
#include <set>

#include "runtime/runtime.h"
#include "serial/message.h"
#include "util/ids.h"

namespace corona {

class StatelessServer : public Node {
 public:
  struct Stats {
    std::uint64_t messages_sequenced = 0;
    std::uint64_t deliveries_sent = 0;
  };

  void on_message(NodeId from, const Message& m) override;
  const Stats& stats() const { return stats_; }

 private:
  struct GroupEntry {
    std::map<NodeId, MemberRole> members;
    SeqNo next_seq = 1;
  };

  void handle_bcast(NodeId from, const Message& m);

  std::map<GroupId, GroupEntry> groups_;
  Stats stats_;
};

}  // namespace corona
