#include "core/log_reduction.h"

namespace corona {

std::unique_ptr<ReductionPolicy> make_no_reduction() {
  return std::make_unique<NoReduction>();
}
std::unique_ptr<ReductionPolicy> make_size_threshold(std::uint64_t max_bytes) {
  return std::make_unique<SizeThresholdReduction>(max_bytes);
}
std::unique_ptr<ReductionPolicy> make_count_threshold(std::size_t max_records) {
  return std::make_unique<CountThresholdReduction>(max_records);
}
std::unique_ptr<ReductionPolicy> make_window(std::size_t keep) {
  return std::make_unique<WindowReduction>(keep);
}

}  // namespace corona
