// CoronaServer — the stateful logical server (paper §3).
//
// The server owns, per group: the shared state, the membership, the total
// order (a per-group sequencer), the lock table, and the durable log.  It
// answers the full client protocol:
//
//   create/delete group, join (with customized state transfer), leave,
//   getMembership, bcastState/bcastUpdate (sender-inclusive or -exclusive,
//   server-side timestamping), lock request/release, client-requested and
//   policy-driven log reduction, gap retransmission, and recovery resends.
//
// Configuration covers the evaluation axes of §5: stateful vs stateless
// operation (Figure 3), flush policy for the durable log (the §6 "logging is
// off the critical path" claim), reduction policy, and the optional QoS
// scheduler of §5.3.
//
// Deployment: a CoronaServer can serve clients directly (single-server
// configuration) or sit behind the replicated service of src/replica/, which
// embeds the same class per leaf.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/group.h"
#include "core/log_reduction.h"
#include "core/qos_scheduler.h"
#include "core/session_manager.h"
#include "core/state_transfer.h"
#include "runtime/runtime.h"
#include "serial/message.h"
#include "storage/group_store.h"
#include "util/context.h"
#include "util/ids.h"

namespace corona {

// Where join-time state transfers come from.
//
//   kService — the paper's design: the stateful server answers the join from
//              its own copy; no existing member is involved (§3.2).
//   kPeer    — the ISIS-style baseline the paper argues against (§2): the
//              state is fetched from an existing member, so "slow members
//              can slow down the join operation" and a crashed donor costs
//              "the timeout for failure detection and making an additional
//              request to another client".  Implemented for the comparative
//              benches; not recommended for use.
enum class JoinTransferMode { kService, kPeer };

// When the durable log is made durable relative to delivery (§6).
enum class FlushPolicy {
  kNone,   // never flush (pure-memory log; everything lost on crash)
  kAsync,  // flush on a timer, off the multicast critical path (the paper's
           // design: "multicast data to a group in parallel with disk logging")
  kSync,   // flush + await the device before delivering (ablation baseline)
};

struct ServerConfig {
  // false reproduces the "stateless" curve of Figure 3: the server still
  // sequences and multicasts but maintains no shared state and no log, and
  // joins transfer nothing.
  bool stateful = true;

  FlushPolicy flush = FlushPolicy::kAsync;
  Duration flush_interval = 100 * kMillisecond;

  // Join-transfer source (see JoinTransferMode).  kPeer waits up to
  // `peer_timeout` for a donor member before retrying the next one, and
  // falls back to the service copy when no member can answer.
  JoinTransferMode join_transfer = JoinTransferMode::kService;
  Duration peer_timeout = 1 * kSecond;

  // CPU charged per sequenced message for state maintenance (applying the
  // message to the in-memory state and appending to the in-memory log).
  // Constant per message + linear in payload — this is the overhead Figure 3
  // shows to be negligible next to the N point-to-point sends.
  Duration state_cpu_per_msg = 20;       // us
  double state_cpu_per_byte = 0.02;      // us/byte

  // Per-group reduction policy factory (default: never reduce).
  std::function<std::unique_ptr<ReductionPolicy>()> reduction_factory;

  // Optional QoS scheduling of incoming multicasts (§5.3).
  bool enable_qos = false;
  QosScheduler::Config qos;
  // Pacing of the QoS drain loop: one queued multicast is admitted to the
  // sequencer every `qos_service_time`.  Under overload the queue builds up
  // and the scheduler's priorities, aging and shedding decide who waits —
  // the "explicit control over the scheduling of different activities" of
  // the §5.3 adaptive server.  0 drains back-to-back.
  Duration qos_service_time = 0;

  // Client-failure tolerance (companion paper [15]: "how to deal with
  // client or link failures").  When > 0, a member silent for longer than
  // this is treated as crashed: it is removed from every group, its locks
  // are released to the next waiters, and membership notices go out.
  // Clients send keepalive heartbeats when idle (CoronaClient::Config).
  // 0 disables the sweep (clients only leave explicitly).
  Duration client_timeout = 0;

  // Batched fan-out & group commit.  When batch_max_msgs > 1, incoming
  // multicasts queue at the server and are sequenced as a batch: the queue
  // drains when it reaches batch_max_msgs or batch_max_delay after the first
  // queued message, whichever comes first.  The whole batch is covered by a
  // single log flush (group commit) under FlushPolicy::kSync, and each
  // client receives one coalesced frame per drain instead of one frame per
  // message.  Sequencing order is arrival order and each record's timestamp
  // is stamped at arrival, so per-client delivery streams are byte-identical
  // to the unbatched path.  batch_max_msgs <= 1 keeps today's per-message
  // path exactly.
  std::size_t batch_max_msgs = 1;
  Duration batch_max_delay = 0;

  // Test hook (bug seeding for the checker): silently drop the last message
  // of every multi-message client frame.  The contiguity oracle must catch
  // the resulting per-client sequence gap.  Never enable outside tests.
  bool debug_drop_batch_tail = false;

  // §5.3 extension: deliver through the runtime's one-to-many primitive
  // ("a version of the communication system which uses both IP-multicast,
  // whenever possible, and point-to-point TCP connections").  Fan-out then
  // costs the server one send instead of one per member — the scalability
  // trade §4 discusses.  Point-to-point remains the default because "some
  // clients are connected through ISPs that do not provide IP-multicast".
  bool use_ip_multicast = false;
};

// Counters the benches read off the server.
struct ServerStats {
  std::uint64_t messages_sequenced = 0;
  std::uint64_t deliveries_sent = 0;
  std::uint64_t delivery_bytes = 0;
  std::uint64_t joins_served = 0;
  std::uint64_t transfer_bytes = 0;  // state shipped in join replies
  std::uint64_t reductions = 0;
  std::uint64_t records_dropped_by_reduction = 0;
  std::uint64_t flushes = 0;
  std::uint64_t resends_applied = 0;
  std::uint64_t retransmits_served = 0;
  std::uint64_t qos_shed = 0;
  std::uint64_t clients_expired = 0;   // dropped by the liveness sweep
  std::uint64_t peer_transfers = 0;    // joins served by a donor member
  std::uint64_t peer_timeouts = 0;     // donors that had to be skipped
  // Batching / group commit.
  std::uint64_t batches_sequenced = 0;     // drains covering > 1 message
  std::uint64_t batched_messages = 0;      // messages sequenced via a batch
  std::uint64_t batch_frames_sent = 0;     // coalesced (>1 msg) client frames
  std::uint64_t group_commits = 0;         // sync flushes covering > 1 record
  std::uint64_t group_commit_records = 0;  // records those commits covered
};

class CoronaServer : public Node {
 public:
  // `store` is the server's "disk": it must outlive the server object so a
  // fresh CoronaServer can be constructed over it after a crash (the sim
  // models a machine whose disk survives process failure).  Pass nullptr for
  // a throwaway in-process store.  `session_manager` may be nullptr (allow
  // all).
  CoronaServer(ServerConfig config, GroupStore* store,
               SessionManager* session_manager = nullptr);
  ~CoronaServer() override;

  void on_start() override;
  void on_message(NodeId from, const Message& m) override;
  void on_timer(std::uint64_t tag) override;

  const ServerStats& stats() const { return stats_; }
  GroupStore& store() { return *store_; }
  bool has_group(GroupId g) const { return groups_.contains(g); }
  const Group* group(GroupId g) const;
  std::size_t group_count() const { return groups_.size(); }
  // Sets the QoS class of a group (0 = highest of 3).
  void set_group_qos_class(GroupId g, int klass);

 private:
  friend class ReplicaServer;  // the replicated leaf reuses group handling

  // -- request handlers ------------------------------------------------------
  void handle_create(NodeId from, const Message& m);
  void handle_delete(NodeId from, const Message& m);
  void handle_join(NodeId from, const Message& m);
  void handle_leave(NodeId from, const Message& m);
  void handle_get_membership(NodeId from, const Message& m);
  CORONA_HOT_PATH void handle_bcast(NodeId from, const Message& m);
  void handle_lock_request(NodeId from, const Message& m);
  void handle_lock_release(NodeId from, const Message& m);
  void handle_reduce_log(NodeId from, const Message& m);
  void handle_retransmit(NodeId from, const Message& m);
  void handle_resend_reply(NodeId from, const Message& m);
  // Peer-transfer baseline (JoinTransferMode::kPeer).
  struct PendingPeerJoin;
  void begin_peer_transfer(Group& group, NodeId joiner, const Message& join);
  void handle_peer_state(NodeId from, const Message& m);
  void peer_transfer_timeout(std::uint64_t token);
  void finish_join_reply(Group& group, const PendingPeerJoin& p, SeqNo base,
                         std::vector<StateEntry> snapshot,
                         std::vector<UpdateRecord> updates);

  // -- internals -------------------------------------------------------------
  // One multicast awaiting sequencing (batch queue) or delivery (sync hold).
  struct PendingDelivery {
    GroupId group;
    UpdateRecord rec;
    bool sender_inclusive;
    NodeId sender;
  };

  Group* find_group(GroupId g);
  Status authorize(NodeId client, GroupId g, GroupAction action);
  // Sequences `rec` only: allocates the seq, marks the dedup set, charges
  // state CPU, applies to shared state and appends to the log.  Shared by
  // the per-message and batched paths so both produce identical records.
  CORONA_HOT_PATH void sequence_record(Group& group, UpdateRecord& rec);
  // Sequences `rec` into `group`, applies it to state + log, charges CPU.
  // Delivery is immediate (kNone/kAsync) or deferred behind the disk (kSync).
  CORONA_HOT_PATH void sequence_and_deliver(Group& group, UpdateRecord rec,
                                            bool sender_inclusive,
                                            NodeId sender);
  CORONA_HOT_PATH void deliver_to_members(Group& group,
                                          const UpdateRecord& rec,
                                          bool sender_inclusive,
                                          NodeId sender);
  // Queues a validated multicast on the batch queue; drains at threshold.
  CORONA_HOT_PATH void enqueue_batch(PendingDelivery p);
  // Sequences every queued multicast in arrival order, covers the run with
  // one group commit (kSync), and fans out coalesced per-client frames.
  CORONA_HOT_PATH void drain_batch();
  // Fans out a run of already-sequenced records, one coalesced frame per
  // client.  A single-record run degenerates to deliver_to_members.
  CORONA_HOT_PATH void fanout_batch(std::vector<PendingDelivery>& items);
  void send_membership_notices(Group& group, NodeId subject, MemberRole role,
                               bool joined);
  void perform_reduction(Group& group, SeqNo upto);
  void maybe_reduce(Group& group);
  void drop_member_everywhere(NodeId who);  // leave/disconnect cleanup
  void schedule_flush();
  void flush_now();
  void process(NodeId from, const Message& m);  // post-QoS dispatch
  void recover_from_store();

  ServerConfig config_;
  GroupStore* store_;                      // may point at owned_store_
  std::unique_ptr<GroupStore> owned_store_;
  SessionManager* session_;                // may point at owned_session_
  std::unique_ptr<SessionManager> owned_session_;
  std::map<GroupId, Group> groups_;
  std::map<GroupId, std::unique_ptr<ReductionPolicy>> reduction_;
  std::map<NodeId, TimePoint> client_last_heard_;
  QosScheduler qos_;
  bool qos_drain_scheduled_ = false;
  TimePoint qos_busy_until_ = 0;  // end of the current admission slot
  ServerStats stats_;

  // Sync-flush holds: the whole commit group waits for one device write and
  // is then fanned out together.
  std::map<std::uint64_t, std::vector<PendingDelivery>> pending_sync_;
  std::uint64_t next_pending_ = 1;

  // Batch queue (config_.batch_max_msgs > 1 only).
  std::vector<PendingDelivery> batch_queue_;
  TimerHandle batch_timer_ = 0;

  struct PendingPeerJoin {
    GroupId group;
    NodeId joiner;
    RequestId request_id = 0;
    MemberRole role = MemberRole::kPrincipal;
    bool notify = false;
    NodeId donor;
    std::vector<NodeId> remaining_donors;
    TimerHandle timer = 0;
  };
  std::map<std::uint64_t, PendingPeerJoin> pending_peer_;
  std::uint64_t next_peer_token_ = 1;

  static constexpr std::uint64_t kFlushTimer = 1;
  static constexpr std::uint64_t kQosDrainTimer = 2;
  static constexpr std::uint64_t kLivenessTimer = 3;
  static constexpr std::uint64_t kBatchTimer = 4;
  static constexpr std::uint64_t kSyncTagBase = 1000;
  static constexpr std::uint64_t kPeerTagBase = 1u << 30;
};

}  // namespace corona
