// Per-object lock service (paper §3.2: "Corona also provides interfaces for
// synchronizing client updates through locks").
//
// Locks are advisory, per (group, object), granted in FIFO request order.
// A member that leaves or crashes implicitly releases every lock it holds
// and abandons its queued requests; the next waiter (if any) is granted.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/invariant.h"
#include "util/result.h"

namespace corona {

class LockTable {
 public:
  enum class AcquireOutcome {
    kGranted,      // caller now holds the lock
    kQueued,       // someone else holds it; caller is enqueued
    kAlreadyHeld,  // caller already holds (or is already queued for) it
  };

  // Requests `object`'s lock for `who`.
  AcquireOutcome acquire(ObjectId object, NodeId who);

  // Releases `object` if `who` holds it; returns the next grantee, if any.
  // kNotFound if the lock isn't held, kLockHeld if held by someone else.
  Result<std::optional<NodeId>> release(ObjectId object, NodeId who);

  // Removes `who` as holder and waiter everywhere (leave/crash).  Returns
  // the (object, new holder) grants that result.
  std::vector<std::pair<ObjectId, NodeId>> drop_member(NodeId who);

  std::optional<NodeId> holder(ObjectId object) const;
  std::size_t waiters(ObjectId object) const;

  // Every (object, holder) pair, in object order.
  std::vector<std::pair<ObjectId, NodeId>> all_holders() const;
  // Every (object, waiter) pair, in object then FIFO-queue order.
  std::vector<std::pair<ObjectId, NodeId>> all_waiters() const;

  // Structural invariants: a holder is never also queued for the same
  // object, and the FIFO queue holds no duplicates (both would make a
  // grant fire twice or never).
  InvariantReport check_invariants() const;

 private:
  friend struct LockTableTestAccess;  // invariant tests corrupt internals

  struct Entry {
    NodeId holder;
    std::deque<NodeId> queue;
  };
  std::map<ObjectId, Entry> locks_;
};

}  // namespace corona
