#include "core/qos_scheduler.h"

#include <algorithm>
#include <cassert>

namespace corona {

void QosScheduler::set_group_class(GroupId g, int klass) {
  assert(klass >= 0 && klass < kClasses);
  group_class_[g] = klass;
}

int QosScheduler::group_class(GroupId g) const {
  auto it = group_class_.find(g);
  return it != group_class_.end() ? it->second : 1;
}

void QosScheduler::enqueue(NodeId from, Message msg) {
  const int klass = group_class(msg.group);
  classes_[klass].push_back(Waiting{Item{from, std::move(msg)}, 0});
  ++enqueued_;
  max_depth_ = std::max(max_depth_, depth());
  maybe_shed();
}

void QosScheduler::maybe_shed() {
  if (config_.shed_threshold == 0 || depth() <= config_.shed_threshold) return;
  // Drop the oldest message of the lowest-priority non-empty class.
  for (int k = kClasses - 1; k >= 0; --k) {
    if (!classes_[k].empty()) {
      classes_[k].pop_front();
      ++shed_;
      return;
    }
  }
}

void QosScheduler::age_and_promote() {
  if (config_.aging_limit == 0) return;
  for (int k = 1; k < kClasses; ++k) {
    for (auto& w : classes_[k]) ++w.age;
    while (!classes_[k].empty() &&
           classes_[k].front().age >= config_.aging_limit) {
      Waiting w = std::move(classes_[k].front());
      classes_[k].pop_front();
      w.age = 0;
      classes_[k - 1].push_back(std::move(w));
      ++promoted_;
    }
  }
}

std::optional<QosScheduler::Item> QosScheduler::dequeue() {
  for (auto& q : classes_) {
    if (!q.empty()) {
      Item item = std::move(q.front().item);
      q.pop_front();
      age_and_promote();
      return item;
    }
  }
  return std::nullopt;
}

std::size_t QosScheduler::depth() const {
  std::size_t n = 0;
  for (const auto& q : classes_) n += q.size();
  return n;
}

}  // namespace corona
