#include "sim/simulator.h"

namespace corona {

std::uint64_t Simulator::run_until_idle(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && queue_.run_next()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  // A fence event at `deadline` guarantees virtual time reaches it and that
  // no event scheduled later (or scheduled at the same instant but after the
  // fence) executes.
  std::uint64_t n = 0;
  bool fence_hit = false;
  queue_.schedule_at(deadline, [&fence_hit] { fence_hit = true; });
  while (!fence_hit && queue_.run_next()) ++n;
  return n > 0 ? n - 1 : 0;  // don't count the fence itself
}

}  // namespace corona
