// Network + host model for the discrete-event engine.
//
// The paper's evaluation (§5.2) runs on a handful of workstations joined by
// a 10 Mbps shared Ethernet, with the server multicasting via multiple
// point-to-point TCP messages.  Three resources shape every curve there:
//
//   1. host CPU — the server serializes its N point-to-point sends, so
//      round-trip latency to the last receiver grows linearly in N;
//   2. the shared medium — aggregate throughput saturates near the wire rate;
//   3. propagation latency — a constant floor.
//
// This model charges exactly those three resources.  Each host owns two CPU
// timelines — a send/worker timeline and a receive timeline, modeling the
// paper's multi-threaded server — and each message costs per-message +
// per-byte CPU on both ends; transmissions serialize on an optional shared
// medium; then a per-host-pair latency applies.  Receive capacity is booked
// at the ARRIVAL instant (book_receive), so receivers serialize in true
// arrival order.  Nodes are *placed* on hosts (many nodes per host, like the
// paper's clients "uniformly distributed over 6 machines").
//
// Failure injection: crash/restart of nodes, link cuts, and named partitions
// (every node is in a partition cell; traffic crosses cells only when the
// network is healed).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace corona {

// Per-host CPU cost model, in microseconds.  Calibrated profiles approximate
// the paper's machines; see bench/scenario.h for the calibration notes.
struct HostProfile {
  // Calibration knobs, not accumulators: every cost derived from them is
  // llround()ed to integral microseconds before entering any timeline.
  double send_per_msg_us = 50.0;   // lint: float-ok
  double send_per_byte_us = 0.02;  // lint: float-ok
  double recv_per_msg_us = 50.0;   // lint: float-ok
  double recv_per_byte_us = 0.02;  // lint: float-ok

  // "UltraSparc 1, 64 MB, Solaris" running the Java server (paper §5.2).
  static HostProfile ultrasparc();
  // "quad Pentium II 200, 256 MB, Windows NT" (paper Table 1).
  static HostProfile pentium_ii_quad();
  // Client workstation (Sparc 20 class).
  static HostProfile sparc20();

  // Effort to push one message of `size` bytes out of (or into) the host.
  Duration send_cost(std::size_t size) const;
  Duration recv_cost(std::size_t size) const;
};

struct HostId {
  std::uint32_t value = 0;
  friend bool operator==(HostId, HostId) = default;
};

class SimNetwork {
 public:
  SimNetwork();

  // -- topology ------------------------------------------------------------
  HostId add_host(const HostProfile& profile);
  void place(NodeId node, HostId host);
  HostId host_of(NodeId node) const;

  // Propagation latency between distinct hosts (default 300 us, LAN-ish).
  void set_default_latency(Duration latency) { default_latency_ = latency; }
  // Override for one ordered host pair (applied symmetrically).
  void set_latency(HostId a, HostId b, Duration latency);
  // Loopback latency for nodes placed on the same host.
  void set_loopback_latency(Duration latency) { loopback_latency_ = latency; }

  // Shared-medium bandwidth in bytes per second; 0 disables the medium
  // (infinite bandwidth).  10 Mbps Ethernet ~ 1.25e6 B/s.
  void set_shared_bandwidth(double bytes_per_sec) {  // lint: float-ok
    shared_bytes_per_sec_ = bytes_per_sec;
  }

  // -- failure injection -----------------------------------------------------
  void crash_node(NodeId node) { crashed_.insert(node); }
  void restart_node(NodeId node) { crashed_.erase(node); }
  bool is_crashed(NodeId node) const { return crashed_.contains(node); }

  // Puts `node` into partition cell `cell`.  All nodes start in cell 0;
  // traffic flows only within a cell.  heal() returns everyone to cell 0.
  void set_partition_cell(NodeId node, std::uint32_t cell);
  void heal_partitions();

  // -- transmission ----------------------------------------------------------
  // Computes the ARRIVAL time of a `size`-byte message sent at `now`
  // (sender CPU + shared medium + propagation), advancing the sender-CPU
  // and medium timelines.  Returns nullopt if the message is lost (crashed
  // endpoint or partition cut) — note the sender still pays its CPU cost
  // for a lost send, as a real sender would.  Receive-side CPU is booked
  // separately via book_receive() AT the arrival instant, so receivers
  // serialize in true arrival order (a backlogged sender elsewhere cannot
  // reserve receive capacity ahead of traffic that arrives earlier).
  std::optional<TimePoint> transmit(NodeId from, NodeId to, std::size_t size,
                                    TimePoint now);

  // Books `size` bytes of receive processing at `to`, starting no earlier
  // than `arrival`; returns the delivery (processing-complete) time.
  TimePoint book_receive(NodeId to, std::size_t size, TimePoint arrival);

  // One-to-many transmission (IP-multicast model, paper §5.3): the sender
  // pays ONE per-message send cost and the medium carries ONE copy; each
  // receiver still pays its own receive cost and link latency.  Returns one
  // ARRIVAL time (or nullopt for lost) per receiver, in order; receivers
  // book their processing via book_receive at arrival.
  std::vector<std::optional<TimePoint>> transmit_multicast(
      NodeId from, const std::vector<NodeId>& to, std::size_t size,
      TimePoint now);

  // Many-to-one-peer transmission (batched fan-out): `msgs` messages totaling
  // `size` bytes travel as ONE coalesced frame, so the sender pays a single
  // per-message CPU cost for the whole batch (plus the per-byte cost of the
  // full payload) and the medium carries one contiguous run.  Message
  // accounting still counts `msgs` messages; the batch itself is counted in
  // batches_sent().  Loss is all-or-nothing for the frame.
  std::optional<TimePoint> transmit_batch(NodeId from, NodeId to,
                                          std::size_t size, std::size_t msgs,
                                          TimePoint now);

  // Occupies `node`'s host CPU for `d` starting no earlier than `now`
  // (server-internal work such as state maintenance).
  void charge_cpu(NodeId node, Duration d, TimePoint now);

  // Accounting (total bytes accepted onto the wire).
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t batches_sent() const { return batches_sent_; }

  // Diagnostics: how far ahead of `now` a node's host timelines are booked
  // (the queueing backlog at that host).
  Duration tx_backlog(NodeId node, TimePoint now) const;
  Duration rx_backlog(NodeId node, TimePoint now) const;

 private:
  // Send-side and receive-side work occupy separate timelines, modeling
  // the paper's multi-threaded server (a receive thread drains the socket
  // while worker threads process and fan out).  Server-internal work
  // (charge_cpu) shares the send/worker timeline.
  struct Host {
    HostProfile profile;
    TimePoint tx_free_at = 0;
    TimePoint rx_free_at = 0;
  };

  Duration latency_between(HostId a, HostId b) const;
  std::uint32_t cell_of(NodeId node) const;

  std::vector<Host> hosts_;
  std::map<NodeId, HostId> placement_;
  std::map<std::uint64_t, Duration> pair_latency_;  // key: a<<32|b
  std::set<NodeId> crashed_;
  std::map<NodeId, std::uint32_t> partition_cell_;
  Duration default_latency_ = 300;  // us
  Duration loopback_latency_ = 30;  // us
  // Rate knob; tx times are llround()ed to integral us at use.
  double shared_bytes_per_sec_ = 1.25e6;  // 10 Mbps; lint: float-ok
  TimePoint medium_free_at_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t batches_sent_ = 0;  // coalesced frames (transmit_batch calls)
};

}  // namespace corona
