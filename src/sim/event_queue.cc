#include "sim/event_queue.h"

#include <algorithm>

namespace corona {

EventQueue::EventId EventQueue::schedule_at(TimePoint at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{std::max(at, now_), id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool EventQueue::run_next() {
  while (!heap_.empty()) {
    // priority_queue::top is const; move out via const_cast-free copy of the
    // callback only when we actually run it.
    Entry e = heap_.top();
    heap_.pop();
    if (is_cancelled(e.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), e.id));
      --live_count_;
      continue;
    }
    now_ = e.at;
    --live_count_;
    e.fn();
    return true;
  }
  return false;
}

}  // namespace corona
