#include "sim/event_queue.h"

#include <algorithm>

namespace corona {

EventQueue::EventId EventQueue::schedule_at(TimePoint at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{std::max(at, now_), id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool EventQueue::run_next() {
  while (!heap_.empty()) {
    // priority_queue::top is const; move out via const_cast-free copy of the
    // callback only when we actually run it.
    Entry e = heap_.top();
    heap_.pop();
    if (is_cancelled(e.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), e.id));
      --live_count_;
      continue;
    }
    CORONA_INVARIANT(e.at >= now_,
                     "EventQueue: virtual time would run backwards");
    now_ = e.at;
    --live_count_;
    e.fn();
    return true;
  }
  return false;
}

InvariantReport EventQueue::check_invariants() const {
  InvariantReport rep;
  std::vector<EventId> queued;
  auto heap = heap_;  // walk by draining a copy; heap_ itself is untouched
  while (!heap.empty()) {
    const Entry& e = heap.top();
    if (e.at < now_) {
      rep.fail("EventQueue: event id:" + std::to_string(e.id) + " at " +
               std::to_string(e.at) + " is before now " + std::to_string(now_));
    }
    if (e.id >= next_id_) {
      rep.fail("EventQueue: event id:" + std::to_string(e.id) +
               " >= next_id " + std::to_string(next_id_));
    }
    queued.push_back(e.id);
    heap.pop();
  }
  std::sort(queued.begin(), queued.end());
  for (std::size_t i = 1; i < queued.size(); ++i) {
    if (queued[i] == queued[i - 1]) {
      rep.fail("EventQueue: duplicate event id:" + std::to_string(queued[i]));
    }
  }
  for (EventId c : cancelled_) {
    if (!std::binary_search(queued.begin(), queued.end(), c)) {
      rep.fail("EventQueue: cancelled id:" + std::to_string(c) +
               " is not queued (cancellation must be lazy)");
    }
  }
  // Cancellation is fully lazy: a cancelled entry stays queued AND counted
  // until run_next pops it, so the live count always equals the heap size.
  if (live_count_ != queued.size()) {
    rep.fail("EventQueue: live_count " + std::to_string(live_count_) +
             " != queued " + std::to_string(queued.size()));
  }
  return rep;
}

}  // namespace corona
