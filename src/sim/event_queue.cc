#include "sim/event_queue.h"

#include <algorithm>

namespace corona {

EventQueue::EventId EventQueue::schedule_at(TimePoint at, EventTag tag,
                                            Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{std::max(at, now_), id, tag, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool EventQueue::run_next() {
  return scheduler_ ? run_next_scheduled() : run_next_in_order();
}

bool EventQueue::run_next_in_order() {
  while (!heap_.empty()) {
    // priority_queue::top is const; move out via const_cast-free copy of the
    // callback only when we actually run it.
    Entry e = heap_.top();
    heap_.pop();
    if (is_cancelled(e.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), e.id));
      --live_count_;
      continue;
    }
    CORONA_INVARIANT(e.at >= now_,
                     "EventQueue: virtual time would run backwards");
    now_ = e.at;
    --live_count_;
    e.fn();
    return true;
  }
  return false;
}

bool EventQueue::run_next_scheduled() {
  // Drain the heap, retiring cancelled entries along the way, so the
  // scheduler sees every live event at once.
  std::vector<Entry> live;
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (is_cancelled(e.id)) {
      cancelled_.erase(std::find(cancelled_.begin(), cancelled_.end(), e.id));
      --live_count_;
      continue;
    }
    live.push_back(std::move(e));
  }
  if (live.empty()) return false;

  std::sort(live.begin(), live.end(), [](const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.id < b.id;
  });
  std::vector<EventDesc> descs;
  descs.reserve(live.size());
  for (const Entry& e : live) descs.push_back(EventDesc{e.id, e.at, e.tag});

  const EventId chosen = scheduler_->pick(descs);
  std::size_t idx = live.size();
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i].id == chosen) {
      idx = i;
      break;
    }
  }
  CORONA_INVARIANT(idx < live.size(),
                   "EventQueue: scheduler picked an id that is not enabled");
  if (idx >= live.size()) idx = 0;  // release-build fallback: default order

  Entry e = std::move(live[idx]);
  live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));

  // pick() may have scheduled new events (fault injection does); they landed
  // on the just-drained heap clamped to the pre-jump now_.  Pull them out so
  // they get re-clamped alongside the bypassed ones.
  while (!heap_.empty()) {
    live.push_back(heap_.top());
    heap_.pop();
  }

  // Virtual time advances to the chosen event.  Everything the scheduler
  // bypassed is clamped forward to the new now_: picking a later event
  // *delays* the earlier ones, and time still never runs backwards.
  now_ = std::max(now_, e.at);
  for (Entry& r : live) {
    r.at = std::max(r.at, now_);
    heap_.push(std::move(r));
  }
  --live_count_;
  e.fn();
  return true;
}

std::vector<EventDesc> EventQueue::pending_events() const {
  std::vector<EventDesc> out;
  auto heap = heap_;  // walk by draining a copy; heap_ itself is untouched
  while (!heap.empty()) {
    const Entry& e = heap.top();
    if (!is_cancelled(e.id)) out.push_back(EventDesc{e.id, e.at, e.tag});
    heap.pop();
  }
  // The drain above already yields ascending (at, id) order.
  return out;
}

InvariantReport EventQueue::check_invariants() const {
  InvariantReport rep;
  std::vector<EventId> queued;
  auto heap = heap_;  // walk by draining a copy; heap_ itself is untouched
  while (!heap.empty()) {
    const Entry& e = heap.top();
    if (e.at < now_) {
      rep.fail("EventQueue: event id:" + std::to_string(e.id) + " at " +
               std::to_string(e.at) + " is before now " + std::to_string(now_));
    }
    if (e.id >= next_id_) {
      rep.fail("EventQueue: event id:" + std::to_string(e.id) +
               " >= next_id " + std::to_string(next_id_));
    }
    queued.push_back(e.id);
    heap.pop();
  }
  std::sort(queued.begin(), queued.end());
  for (std::size_t i = 1; i < queued.size(); ++i) {
    if (queued[i] == queued[i - 1]) {
      rep.fail("EventQueue: duplicate event id:" + std::to_string(queued[i]));
    }
  }
  for (EventId c : cancelled_) {
    if (!std::binary_search(queued.begin(), queued.end(), c)) {
      rep.fail("EventQueue: cancelled id:" + std::to_string(c) +
               " is not queued (cancellation must be lazy)");
    }
  }
  // Cancellation is fully lazy: a cancelled entry stays queued AND counted
  // until run_next pops it, so the live count always equals the heap size.
  if (live_count_ != queued.size()) {
    rep.fail("EventQueue: live_count " + std::to_string(live_count_) +
             " != queued " + std::to_string(queued.size()));
  }
  return rep;
}

}  // namespace corona
