#include "sim/sim_disk.h"

#include <algorithm>
#include <cmath>

namespace corona {

TimePoint SimDisk::write(std::size_t size, TimePoint now,
                         std::size_t records) {
  const TimePoint start = std::max(now, free_at_);
  // Per-op rate expression, llround()ed immediately — no float state.  The
  // fixed per_op_us is charged once per write regardless of how many log
  // records it covers — that amortization is the whole point of group
  // commit.
  const auto xfer = static_cast<Duration>(std::llround(
      static_cast<double>(size) / profile_.bytes_per_sec * 1e6));  // lint: float-ok
  free_at_ = start + profile_.per_op_us + xfer;
  bytes_written_ += size;
  ++ops_;
  records_written_ += records;
  max_commit_records_ = std::max(max_commit_records_, records);
  return free_at_;
}

}  // namespace corona
