#include "sim/sim_disk.h"

#include <algorithm>
#include <cmath>

namespace corona {

TimePoint SimDisk::write(std::size_t size, TimePoint now) {
  const TimePoint start = std::max(now, free_at_);
  // Per-op rate expression, llround()ed immediately — no float state.
  const auto xfer = static_cast<Duration>(std::llround(
      static_cast<double>(size) / profile_.bytes_per_sec * 1e6));  // lint: float-ok
  free_at_ = start + profile_.per_op_us + xfer;
  bytes_written_ += size;
  ++ops_;
  return free_at_;
}

}  // namespace corona
