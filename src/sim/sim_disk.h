// Simulated log device.
//
// The paper (§6) puts the typical 1998 disk at 3-5 MB/s and argues that
// state logging stays off the multicast critical path because the service
// "can multicast data to a group in parallel with disk logging".  This model
// gives stable storage a timeline of its own: writes queue at the device and
// complete at device speed, independently of host CPU time, so a bench can
// compare asynchronous logging (completion ignored) with synchronous
// flush-before-ack (completion awaited).
#pragma once

#include <cstdint>

#include "util/time.h"

namespace corona {

struct DiskProfile {
  // Rate knob, not an accumulator: write() rounds to integral us per op.
  double bytes_per_sec = 4.0e6;  // paper: 3-5 MB/s; lint: float-ok
  Duration per_op_us = 500;      // seek/rotational + syscall overhead

  static DiskProfile nineties_disk() { return {}; }
  static DiskProfile fast_raid() { return {40.0e6, 100}; }
};

class SimDisk {
 public:
  explicit SimDisk(DiskProfile profile = {}) : profile_(profile) {}

  // Queues a write of `size` bytes issued at `now`; returns its completion
  // time.  Writes serialize at the device.  `records` is the number of log
  // records the write covers: a group commit amortizes the fixed per-op cost
  // (seek/rotational + syscall) over the whole commit group, which is
  // exactly what the accounting below measures.
  TimePoint write(std::size_t size, TimePoint now, std::size_t records = 1);

  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t ops() const { return ops_; }
  std::uint64_t records_written() const { return records_written_; }
  // Largest commit group a single write has covered.
  std::size_t max_commit_records() const { return max_commit_records_; }
  // Device-busy time ÷ wall time gives utilization; exposed for benches.
  TimePoint busy_until() const { return free_at_; }

 private:
  DiskProfile profile_;
  TimePoint free_at_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t records_written_ = 0;
  std::size_t max_commit_records_ = 0;
};

}  // namespace corona
