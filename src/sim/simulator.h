// Simulator: run-loop policies over the event queue.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.h"
#include "util/time.h"

namespace corona {

class Simulator {
 public:
  EventQueue& queue() { return queue_; }
  TimePoint now() const { return queue_.now(); }

  // Installs (or clears, with nullptr) a schedule controller on the queue;
  // see Scheduler in sim/event_queue.h.  Not owned.
  void set_scheduler(Scheduler* scheduler) { queue_.set_scheduler(scheduler); }

  // Runs events until the queue drains or `max_events` fire.
  // Returns the number of events executed.
  std::uint64_t run_until_idle(
      std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max());

  // Runs events with firing time <= `deadline`.  Virtual time does not
  // advance past the deadline even if the queue still holds later events.
  std::uint64_t run_until(TimePoint deadline);
  std::uint64_t run_for(Duration d) { return run_until(now() + d); }

 private:
  EventQueue queue_;
};

}  // namespace corona
