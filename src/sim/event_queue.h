// Discrete-event queue: the heart of the deterministic simulator.
//
// Events fire in (time, insertion-order) order, so two events scheduled for
// the same instant run in the order they were scheduled — this makes every
// simulation bit-reproducible regardless of container iteration quirks.
// (The comparator below implements exactly that tie-break; see the
// "SameTimestampEventsPopInInsertionOrder" test, which corona-check's state
// hashing relies on.)
//
// Schedule exploration (src/check/): a pluggable Scheduler can take over the
// pop order.  Each event may carry an EventTag describing what it is (a
// message arrival, a timer, a node start); before every step the queue hands
// the scheduler every live event, and the scheduler picks which one runs
// next.  Virtual time then advances to the chosen event's timestamp and all
// remaining events are clamped forward so time still never runs backwards —
// picking a later event *delays* the earlier ones, which is how corona-check
// injects delivery reorderings.  Without a scheduler installed nothing
// changes: the default (time, insertion-order) pop order is untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/invariant.h"
#include "util/time.h"

namespace corona {

// What a queued event represents, for external schedule controllers.  The
// engine (SimRuntime) tags the events it schedules; untagged events are
// kInternal and are never reordered decision points.
enum class EventKind : std::uint8_t {
  kInternal = 0,  // fences, harness bookkeeping, workload scripts
  kStart = 1,     // Node::on_start (initial start or post-restart)
  kArrival = 2,   // stage-1 message arrival at the destination host
  kDeliver = 3,   // stage-2 processed delivery (Node::on_message)
  kTimer = 4,     // Node::on_timer
};

struct EventTag {
  EventKind kind = EventKind::kInternal;
  std::uint64_t a = 0;  // kArrival/kDeliver: from; kStart/kTimer: owner
  std::uint64_t b = 0;  // kArrival/kDeliver: to; kTimer: the timer tag
};

// Descriptor of one live queued event, exposed to a Scheduler.
struct EventDesc {
  std::uint64_t id = 0;  // EventQueue::EventId
  TimePoint at = 0;
  EventTag tag;
};

// Schedule controller: chooses which live event runs next.  `enabled` is
// every live (non-cancelled) queued event in ascending (at, id) order, so
// enabled.front() is what the default policy would run.  pick() must return
// the id of one of them.  It may schedule *new* events on the queue (fault
// injection uses this for restarts) but must not cancel queued ones.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::uint64_t pick(const std::vector<EventDesc>& enabled) = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  // Schedules `fn` at absolute virtual time `at` (clamped to now).
  EventId schedule_at(TimePoint at, Callback fn) {
    return schedule_at(at, EventTag{}, std::move(fn));
  }
  EventId schedule_at(TimePoint at, EventTag tag, Callback fn);
  EventId schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  EventId schedule_after(Duration delay, EventTag tag, Callback fn) {
    return schedule_at(now_ + delay, tag, std::move(fn));
  }

  // Cancellation is lazy: the event stays queued but won't run.
  void cancel(EventId id) { cancelled_.push_back(id); }

  // Installs (or clears, with nullptr) an external schedule controller.
  // The queue does not own the scheduler.
  void set_scheduler(Scheduler* scheduler) { scheduler_ = scheduler; }
  Scheduler* scheduler() const { return scheduler_; }

  TimePoint now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  // Every live queued event in ascending (at, id) order — what a Scheduler
  // would be offered next.  O(n log n); meant for controllers and tests.
  std::vector<EventDesc> pending_events() const;

  // Runs the next live event; returns false if none remain.  With a
  // scheduler installed, the scheduler picks which live event runs.
  bool run_next();

  // Structural invariants: virtual time never runs backwards (every queued
  // event fires at or after now), event ids are unique and below next_id_,
  // live_count_ matches the queued population (cancellation is fully lazy:
  // a cancelled entry stays queued and counted until popped), and every
  // cancelled id is still queued.
  InvariantReport check_invariants() const;

 private:
  friend struct EventQueueTestAccess;  // invariant tests corrupt internals

  struct Entry {
    TimePoint at;
    EventId id;
    EventTag tag;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      // Same instant: the lower (earlier-assigned) id pops first, so
      // same-timestamp events run in insertion order.
      return a.id > b.id;
    }
  };

  bool is_cancelled(EventId id) const;
  bool run_next_in_order();
  bool run_next_scheduled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventId> cancelled_;
  Scheduler* scheduler_ = nullptr;
  TimePoint now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace corona
