// Discrete-event queue: the heart of the deterministic simulator.
//
// Events fire in (time, insertion-order) order, so two events scheduled for
// the same instant run in the order they were scheduled — this makes every
// simulation bit-reproducible regardless of container iteration quirks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/invariant.h"
#include "util/time.h"

namespace corona {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  // Schedules `fn` at absolute virtual time `at` (clamped to now).
  EventId schedule_at(TimePoint at, Callback fn);
  EventId schedule_after(Duration delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancellation is lazy: the event stays queued but won't run.
  void cancel(EventId id) { cancelled_.push_back(id); }

  TimePoint now() const { return now_; }
  bool empty() const { return live_count_ == 0; }
  std::size_t pending() const { return live_count_; }

  // Runs the next live event; returns false if none remain.
  bool run_next();

  // Structural invariants: virtual time never runs backwards (every queued
  // event fires at or after now), event ids are unique and below next_id_,
  // live_count_ matches the queued population (cancellation is fully lazy:
  // a cancelled entry stays queued and counted until popped), and every
  // cancelled id is still queued.
  InvariantReport check_invariants() const;

 private:
  friend struct EventQueueTestAccess;  // invariant tests corrupt internals

  struct Entry {
    TimePoint at;
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  bool is_cancelled(EventId id) const;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventId> cancelled_;
  TimePoint now_ = 0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace corona
