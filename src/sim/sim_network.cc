#include "sim/sim_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace corona {

HostProfile HostProfile::ultrasparc() {
  // Calibrated so that a single stateful server multicasting 1000-byte
  // messages to N clients shows the paper's Figure 3 shape: a few
  // milliseconds of floor and a slope of roughly 2 ms per client,
  // saturating near 600-900 KB/s aggregate (Table 1 / §5.2).
  HostProfile p;
  p.send_per_msg_us = 700.0;
  p.send_per_byte_us = 0.55;
  p.recv_per_msg_us = 250.0;
  p.recv_per_byte_us = 0.15;
  return p;
}

HostProfile HostProfile::pentium_ii_quad() {
  // The NT box sustains visibly higher throughput in Table 1; model it as
  // roughly 1.7x the UltraSparc on both fixed and per-byte costs.
  HostProfile p;
  p.send_per_msg_us = 400.0;
  p.send_per_byte_us = 0.32;
  p.recv_per_msg_us = 150.0;
  p.recv_per_byte_us = 0.09;
  return p;
}

HostProfile HostProfile::sparc20() {
  HostProfile p;
  p.send_per_msg_us = 900.0;
  p.send_per_byte_us = 0.70;
  p.recv_per_msg_us = 350.0;
  p.recv_per_byte_us = 0.20;
  return p;
}

// Per-message expressions over calibration knobs, rounded to integral us
// before they touch any timeline — no running float state.
Duration HostProfile::send_cost(std::size_t size) const {
  return static_cast<Duration>(std::llround(
      send_per_msg_us +  // lint: float-ok
      send_per_byte_us * static_cast<double>(size)));  // lint: float-ok
}

Duration HostProfile::recv_cost(std::size_t size) const {
  return static_cast<Duration>(std::llround(
      recv_per_msg_us +  // lint: float-ok
      recv_per_byte_us * static_cast<double>(size)));  // lint: float-ok
}

SimNetwork::SimNetwork() = default;

HostId SimNetwork::add_host(const HostProfile& profile) {
  hosts_.push_back(Host{profile, 0});
  return HostId{static_cast<std::uint32_t>(hosts_.size() - 1)};
}

void SimNetwork::place(NodeId node, HostId host) {
  assert(host.value < hosts_.size());
  placement_[node] = host;
}

HostId SimNetwork::host_of(NodeId node) const {
  auto it = placement_.find(node);
  assert(it != placement_.end() && "node was never placed on a host");
  return it->second;
}

void SimNetwork::set_latency(HostId a, HostId b, Duration latency) {
  const auto key = [](HostId x, HostId y) {
    return (static_cast<std::uint64_t>(x.value) << 32) | y.value;
  };
  pair_latency_[key(a, b)] = latency;
  pair_latency_[key(b, a)] = latency;
}

Duration SimNetwork::latency_between(HostId a, HostId b) const {
  if (a == b) return loopback_latency_;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a.value) << 32) | b.value;
  auto it = pair_latency_.find(key);
  return it != pair_latency_.end() ? it->second : default_latency_;
}

void SimNetwork::set_partition_cell(NodeId node, std::uint32_t cell) {
  partition_cell_[node] = cell;
}

void SimNetwork::heal_partitions() { partition_cell_.clear(); }

std::uint32_t SimNetwork::cell_of(NodeId node) const {
  auto it = partition_cell_.find(node);
  return it != partition_cell_.end() ? it->second : 0;
}

std::vector<std::optional<TimePoint>> SimNetwork::transmit_multicast(
    NodeId from, const std::vector<NodeId>& to, std::size_t size,
    TimePoint now) {
  std::vector<std::optional<TimePoint>> out(to.size());
  const HostId from_host = host_of(from);
  Host& src = hosts_[from_host.value];

  // One send cost, one copy on the wire.
  const TimePoint cpu_start = std::max(now, src.tx_free_at);
  const TimePoint wire_ready = cpu_start + src.profile.send_cost(size);
  src.tx_free_at = wire_ready;
  if (crashed_.contains(from)) return out;

  TimePoint tx_end = wire_ready;
  if (shared_bytes_per_sec_ > 0) {
    const TimePoint tx_start = std::max(wire_ready, medium_free_at_);
    // Per-message rate expression, llround()ed immediately.
    const auto tx_time = static_cast<Duration>(std::llround(
        static_cast<double>(size) / shared_bytes_per_sec_ * 1e6));  // lint: float-ok
    tx_end = tx_start + tx_time;
    medium_free_at_ = tx_end;
  }
  bytes_sent_ += size;
  ++messages_sent_;

  for (std::size_t i = 0; i < to.size(); ++i) {
    if (crashed_.contains(to[i]) || cell_of(from) != cell_of(to[i])) continue;
    const HostId to_host = host_of(to[i]);
    out[i] = (from_host == to_host ? wire_ready : tx_end) +
             latency_between(from_host, to_host);
  }
  return out;
}

Duration SimNetwork::tx_backlog(NodeId node, TimePoint now) const {
  const Host& h = hosts_[host_of(node).value];
  return std::max<Duration>(0, h.tx_free_at - now);
}

Duration SimNetwork::rx_backlog(NodeId node, TimePoint now) const {
  const Host& h = hosts_[host_of(node).value];
  return std::max<Duration>(0, h.rx_free_at - now);
}

void SimNetwork::charge_cpu(NodeId node, Duration d, TimePoint now) {
  Host& h = hosts_[host_of(node).value];
  h.tx_free_at = std::max(now, h.tx_free_at) + d;
}

std::optional<TimePoint> SimNetwork::transmit(NodeId from, NodeId to,
                                              std::size_t size,
                                              TimePoint now) {
  const HostId from_host = host_of(from);
  const HostId to_host = host_of(to);
  Host& src = hosts_[from_host.value];

  // Sender CPU: serialized on the sending host's worker/send timeline.
  // Paid even for lost sends.
  const TimePoint cpu_start = std::max(now, src.tx_free_at);
  const TimePoint wire_ready = cpu_start + src.profile.send_cost(size);
  src.tx_free_at = wire_ready;

  if (crashed_.contains(from) || crashed_.contains(to)) return std::nullopt;
  if (cell_of(from) != cell_of(to)) return std::nullopt;

  // Shared medium: transmissions serialize at the wire rate.  Loopback
  // (same host) skips the wire.
  TimePoint tx_end = wire_ready;
  if (from_host != to_host && shared_bytes_per_sec_ > 0) {
    const TimePoint tx_start = std::max(wire_ready, medium_free_at_);
    // Per-message rate expression, llround()ed immediately.
    const auto tx_time = static_cast<Duration>(std::llround(
        static_cast<double>(size) / shared_bytes_per_sec_ * 1e6));  // lint: float-ok
    tx_end = tx_start + tx_time;
    medium_free_at_ = tx_end;
  }

  const TimePoint arrival = tx_end + latency_between(from_host, to_host);

  bytes_sent_ += size;
  ++messages_sent_;
  return arrival;
}

std::optional<TimePoint> SimNetwork::transmit_batch(NodeId from, NodeId to,
                                                    std::size_t size,
                                                    std::size_t msgs,
                                                    TimePoint now) {
  const HostId from_host = host_of(from);
  const HostId to_host = host_of(to);
  Host& src = hosts_[from_host.value];

  // One per-message CPU cost covers the whole coalesced frame: the sender
  // enters the kernel once for the run of frames (a writev), paying the
  // fixed syscall/context cost once and the per-byte copy cost in full.
  const TimePoint cpu_start = std::max(now, src.tx_free_at);
  const TimePoint wire_ready = cpu_start + src.profile.send_cost(size);
  src.tx_free_at = wire_ready;

  if (crashed_.contains(from) || crashed_.contains(to)) return std::nullopt;
  if (cell_of(from) != cell_of(to)) return std::nullopt;

  TimePoint tx_end = wire_ready;
  if (from_host != to_host && shared_bytes_per_sec_ > 0) {
    const TimePoint tx_start = std::max(wire_ready, medium_free_at_);
    // Per-batch rate expression, llround()ed immediately.
    const auto tx_time = static_cast<Duration>(std::llround(
        static_cast<double>(size) / shared_bytes_per_sec_ * 1e6));  // lint: float-ok
    tx_end = tx_start + tx_time;
    medium_free_at_ = tx_end;
  }

  const TimePoint arrival = tx_end + latency_between(from_host, to_host);

  bytes_sent_ += size;
  messages_sent_ += msgs;
  ++batches_sent_;
  return arrival;
}

TimePoint SimNetwork::book_receive(NodeId to, std::size_t size,
                                   TimePoint arrival) {
  Host& dst = hosts_[host_of(to).value];
  const TimePoint deliver_at =
      std::max(arrival, dst.rx_free_at) + dst.profile.recv_cost(size);
  dst.rx_free_at = deliver_at;
  return deliver_at;
}

}  // namespace corona
