#include "check/trace.h"

namespace corona::check {

std::string ScheduleTrace::to_string() const {
  if (choices.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(choices[i]);
  }
  return out;
}

std::optional<ScheduleTrace> ScheduleTrace::parse(const std::string& text) {
  ScheduleTrace trace;
  if (text.empty()) return std::nullopt;
  if (text == "-") return trace;
  std::uint64_t current = 0;
  bool have_digit = false;
  for (const char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<std::uint64_t>(c - '0');
      if (current > UINT32_MAX) return std::nullopt;
      have_digit = true;
    } else if (c == ',') {
      if (!have_digit) return std::nullopt;
      trace.choices.push_back(static_cast<std::uint32_t>(current));
      current = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit) return std::nullopt;
  trace.choices.push_back(static_cast<std::uint32_t>(current));
  return trace;
}

void ScheduleTrace::strip_trailing_zeros() {
  while (!choices.empty() && choices.back() == 0) choices.pop_back();
}

}  // namespace corona::check
