// corona-check — systematic schedule & fault exploration over the
// deterministic simulator (docs/ANALYSIS.md, "Schedule exploration").
//
//   corona-check                           # bounded DFS, single-server world
//   corona-check --world replicated ...    # coordinator fail-stop + election
//   corona-check --mode random --seed 7    # seeded random walks (deep runs)
//   corona-check --replay 2,0,1            # re-execute one trace, twice,
//                                          # and verify byte-identical output
//
// Exit codes: 0 = all explored schedules quiet, 2 = violation found (the
// minimized trace is printed and, with --trace-out, written to a file),
// 3 = replay mismatch (nondeterminism — a harness bug), 1 = usage error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "check/explorer.h"

namespace {

using corona::check::Explorer;
using corona::check::ExplorerOptions;
using corona::check::RunResult;
using corona::check::ScheduleTrace;
using corona::check::WorldOptions;

int usage() {
  std::cerr <<
      "usage: corona-check [options]\n"
      "  --world single|replicated   world shape (default single)\n"
      "  --mode dfs|random           search strategy (default dfs)\n"
      "  --schedules N               schedule budget (default 10000)\n"
      "  --depth N                   decision points per run (default 10)\n"
      "  --delay-bound N             delayed-delivery budget per run (default 3)\n"
      "  --branch N                  max candidates per decision (default 6)\n"
      "  --crash-bound N             server crashes per run (default 1)\n"
      "  --partition-bound N         client partitions per run (default 1)\n"
      "  --clients N / --servers N   world size (defaults 3 / 3)\n"
      "  --multicasts N              multicasts per client (default 2)\n"
      "  --seed N                    random-mode seed (default 1)\n"
      "  --seed-bug                  plant the ordering mutation (clients run\n"
      "                              without gap detection; search relaxes\n"
      "                              per-channel FIFO to expose it)\n"
      "  --batch N                   server batch_max_msgs (default 1 = off;\n"
      "                              > 1 arms the batch-boundary gap oracle)\n"
      "  --batch-delay MS            batch delay bound in ms (default 2)\n"
      "  --seed-batch-bug            plant the batch mutation (server drops\n"
      "                              every coalesced frame's tail record;\n"
      "                              the boundary oracle must catch it)\n"
      "  --no-prune                  disable revisited-state pruning\n"
      "  --replay TRACE|@FILE        re-execute one schedule trace twice\n"
      "  --trace-out FILE            write a violating trace here\n";
  return 1;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  WorldOptions world;
  ExplorerOptions options;
  std::string replay;
  std::string trace_out;

  auto need_value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t n = 0;
    const char* v = nullptr;
    if (arg == "--world") {
      if ((v = need_value(i)) == nullptr) return usage();
      const std::string value = v;
      if (value == "single") {
        world.mode = WorldOptions::Mode::kSingleServer;
      } else if (value == "replicated") {
        world.mode = WorldOptions::Mode::kReplicated;
      } else {
        return usage();
      }
    } else if (arg == "--mode") {
      if ((v = need_value(i)) == nullptr) return usage();
      const std::string value = v;
      if (value == "dfs") {
        options.mode = ExplorerOptions::Mode::kDfs;
      } else if (value == "random") {
        options.mode = ExplorerOptions::Mode::kRandom;
      } else {
        return usage();
      }
    } else if (arg == "--schedules") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      options.max_schedules = n;
    } else if (arg == "--depth") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      options.max_decisions = static_cast<int>(n);
    } else if (arg == "--delay-bound") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      options.delay_budget = static_cast<int>(n);
    } else if (arg == "--branch") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      options.max_branch = static_cast<int>(n);
    } else if (arg == "--crash-bound") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      world.max_crashes = static_cast<int>(n);
    } else if (arg == "--partition-bound") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      world.max_partitions = static_cast<int>(n);
    } else if (arg == "--clients") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      world.clients = n;
    } else if (arg == "--servers") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      world.servers = n;
    } else if (arg == "--multicasts") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      world.multicasts_per_client = static_cast<int>(n);
    } else if (arg == "--seed") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      options.seed = n;
    } else if (arg == "--seed-bug") {
      world.seed_ordering_bug = true;
      options.relax_channel_fifo = true;
    } else if (arg == "--batch") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      world.batch_max_msgs = n;
    } else if (arg == "--batch-delay") {
      if ((v = need_value(i)) == nullptr || !parse_u64(v, n)) return usage();
      world.batch_max_delay = static_cast<corona::Duration>(n) *
                              corona::kMillisecond;
    } else if (arg == "--seed-batch-bug") {
      world.seed_batch_bug = true;
    } else if (arg == "--no-prune") {
      options.prune_visited = false;
    } else if (arg == "--replay") {
      if ((v = need_value(i)) == nullptr) return usage();
      replay = v;
    } else if (arg == "--trace-out") {
      if ((v = need_value(i)) == nullptr) return usage();
      trace_out = v;
    } else {
      return usage();
    }
  }

  if (!replay.empty()) {
    std::string text = replay;
    if (text[0] == '@') {
      // Replay-trace read, user-supplied input; lint: file-io-ok
      std::ifstream in(text.substr(1));
      if (!in || !std::getline(in, text)) {
        std::cerr << "corona-check: cannot read trace file " << replay << "\n";
        return 1;
      }
    }
    const auto trace = ScheduleTrace::parse(text);
    if (!trace.has_value()) {
      std::cerr << "corona-check: malformed trace '" << text << "'\n";
      return 1;
    }
    Explorer explorer(world, options);
    const RunResult first = explorer.run_one(*trace);
    const RunResult second = explorer.run_one(*trace);
    if (first.report != second.report || first.steps != second.steps ||
        first.deliveries != second.deliveries) {
      std::cerr << "corona-check: REPLAY MISMATCH — run 1 ("
                << first.steps << " steps, " << first.deliveries
                << " deliveries, report '" << first.report << "') vs run 2 ("
                << second.steps << " steps, " << second.deliveries
                << " deliveries, report '" << second.report << "')\n";
      return 3;
    }
    std::cout << "replay " << trace->to_string() << ": " << first.steps
              << " steps, " << first.deliveries
              << " deliveries, deterministic\n";
    if (first.violated) {
      std::cout << "violation: " << first.report << "\n";
      return 2;
    }
    std::cout << "all oracles quiet\n";
    return 0;
  }

  Explorer explorer(world, options);
  const Explorer::Result result = explorer.explore();
  std::cout << "explored " << result.stats.schedules
            << " distinct schedules (" << result.stats.total_steps
            << " events, " << result.stats.pruned_branches
            << " subtrees pruned, " << result.stats.crash_runs
            << " with a crash, " << result.stats.partition_runs
            << " with a partition"
            << (result.stats.exhausted ? ", bounded tree exhausted" : "")
            << ")\n";
  if (!result.found) {
    std::cout << "all oracles quiet\n";
    return 0;
  }
  std::cout << "VIOLATION: " << result.report << "\n";
  std::cout << "minimized trace: " << result.trace.to_string() << "\n";
  // The hint repeats every option that shapes candidate enumeration, so the
  // replayed decision widths match the search exactly.
  std::cout << "replay with: corona-check"
            << (world.mode == WorldOptions::Mode::kReplicated
                    ? " --world replicated"
                    : "")
            << (world.seed_ordering_bug ? " --seed-bug" : "")
            << (world.seed_batch_bug ? " --seed-batch-bug" : "")
            << (world.batch_max_msgs > 1
                    ? " --batch " + std::to_string(world.batch_max_msgs)
                    : "")
            << " --delay-bound " << options.delay_budget << " --branch "
            << options.max_branch << " --replay " << result.trace.to_string()
            << "\n";
  if (!trace_out.empty()) {
    // Diagnostic trace dump; loss is harmless; lint: file-io-ok
    std::ofstream out(trace_out);
    out << result.trace.to_string() << "\n";
  }
  return 2;
}
