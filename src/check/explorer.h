// corona-check's search engine: systematic exploration of delivery
// interleavings and fault schedules over a CheckWorld.
//
// The ControlledScheduler implements the sim::Scheduler hook.  Most events
// run in default (time, insertion) order; a *decision point* occurs when the
// next event is a message arrival and more than one choice is enabled:
//
//   * the head arrival of each (from, to) channel — per-channel FIFO is
//     preserved because the protocol runs over stream transports; picking a
//     head from a *different* channel reorders deliveries across channels.
//     (`relax_channel_fifo` lifts this, for demonstrating bugs that need
//     within-channel reordering.)
//   * picking an arrival later than the earliest one spends one unit of the
//     delay budget (delay-bounded search);
//   * crash / partition injection, while the fault window is open and the
//     world's fault budgets last (crash-bounded search).
//
// Each decision consumes one index from the prescribed trace; beyond the
// trace's end DFS takes choice 0 (the default event) and the random mode
// draws from a seeded Rng.  The recorded (choice, width, state-hash)
// sequence drives iterative-deepening DFS with revisited-state pruning:
// since worlds are deterministic, re-executing a prefix reproduces the run,
// so no state copying is ever needed (stateless model checking in the
// VeriSoft tradition).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "check/trace.h"
#include "check/world.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace corona::check {

struct ExplorerOptions {
  enum class Mode { kDfs, kRandom };
  Mode mode = Mode::kDfs;

  // Budget of distinct schedules (full world executions) to explore.
  std::uint64_t max_schedules = 10000;
  // Branching decision points per run; later decisions take the default.
  int max_decisions = 10;
  // Non-earliest arrival picks allowed per run (delay bound).
  int delay_budget = 3;
  // Cap on candidates offered at one decision point.
  int max_branch = 6;
  std::uint64_t seed = 1;
  // Hard per-run event cap (backstop; the world's horizon fence is the
  // normal terminator).
  std::uint64_t max_steps = 100000;
  // Skip branches whose pre-decision state hash was already reached through
  // a different choice prefix.
  bool prune_visited = true;
  // Offer every pending arrival as a candidate instead of only per-channel
  // heads (used with WorldOptions::seed_ordering_bug).
  bool relax_channel_fifo = false;
  // Run the world's full invariant walks every this many events (the
  // callback oracles are always on; 0 disables the periodic walk).
  std::uint64_t heavy_check_every = 32;
};

class ControlledScheduler : public Scheduler {
 public:
  struct Decision {
    std::uint32_t choice = 0;
    std::uint32_t width = 0;
    std::uint64_t state_hash = 0;  // world hash before the choice applied
  };

  // `rng` non-null selects random choices beyond the prescribed prefix
  // (random-walk mode); null means DFS default (choice 0).  Neither is
  // owned.
  ControlledScheduler(CheckWorld& world, const ExplorerOptions& options,
                      const ScheduleTrace& prescribed, Rng* rng);

  std::uint64_t pick(const std::vector<EventDesc>& enabled) override;

  const std::vector<Decision>& decisions() const { return decisions_; }
  // The full executed choice sequence (prescribed prefix + extensions).
  ScheduleTrace executed() const;

 private:
  CheckWorld& world_;
  const ExplorerOptions& options_;
  const ScheduleTrace& prescribed_;
  Rng* rng_;
  std::vector<Decision> decisions_;
  // max(options.max_decisions, prescribed.size()): a replayed trace is
  // honored in full even when it is longer than the configured depth.
  std::size_t max_decisions_;
  int delay_credits_;
};

struct RunResult {
  bool violated = false;
  std::string report;
  std::uint64_t steps = 0;
  std::uint64_t deliveries = 0;
  int crashes = 0;     // fault budget actually spent in this run
  int partitions = 0;
  ScheduleTrace executed;
  std::vector<ControlledScheduler::Decision> decisions;
};

struct ExploreStats {
  std::uint64_t schedules = 0;       // distinct schedules executed
  std::uint64_t total_steps = 0;     // events across all schedules
  std::uint64_t pruned_branches = 0; // subtrees skipped via state hashing
  std::uint64_t crash_runs = 0;      // schedules that injected a crash
  std::uint64_t partition_runs = 0;  // schedules that injected a partition
  bool exhausted = false;            // DFS enumerated the whole bounded tree
};

class Explorer {
 public:
  Explorer(WorldOptions world_options, ExplorerOptions options);

  struct Result {
    bool found = false;       // a violation was found (trace is minimized)
    std::string report;
    ScheduleTrace trace;
    ExploreStats stats;
  };

  // Explores until the schedule budget is spent, the bounded tree is
  // exhausted, or a violation is found (which is then minimized).
  Result explore();

  // Executes exactly one schedule.  Deterministic for a given trace when
  // `rng` is null: this is the replay primitive.
  RunResult run_one(const ScheduleTrace& prescribed, Rng* rng = nullptr);

  // Shrinks a violating trace: shortest violating prefix, then greedy
  // zeroing, then trailing-zero strip.  The result still violates.
  ScheduleTrace minimize(const ScheduleTrace& trace);

 private:
  std::optional<ScheduleTrace> next_trace(const RunResult& last);

  WorldOptions world_options_;
  ExplorerOptions options_;
  // State hash -> hash of the choice prefix that first reached it.
  std::map<std::uint64_t, std::uint64_t> visited_;
  ExploreStats stats_;
};

}  // namespace corona::check
