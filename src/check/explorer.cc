#include "check/explorer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/invariant.h"

namespace corona::check {
namespace {

// CORONA_INVARIANT checkpoints abort by default; during exploration they are
// routed into the current world's report so a tripped checkpoint is one more
// oracle violation with a replayable trace.  Single-threaded by design (the
// sim is single-threaded); the previous handler is restored after each run.
CheckWorld* g_checked_world = nullptr;

void recording_handler(const char* file, int line, const char* expr,
                       const char* message) {
  if (g_checked_world == nullptr) return;
  g_checked_world->external_fail(std::string("checkpoint ") + file + ":" +
                                 std::to_string(line) + " (" + expr +
                                 "): " + message);
}

std::uint64_t hash_prefix(const std::vector<std::uint32_t>& choices,
                          std::size_t len) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < len && i < choices.size(); ++i) {
    h ^= choices[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ControlledScheduler::ControlledScheduler(CheckWorld& world,
                                         const ExplorerOptions& options,
                                         const ScheduleTrace& prescribed,
                                         Rng* rng)
    : world_(world),
      options_(options),
      prescribed_(prescribed),
      rng_(rng),
      max_decisions_(std::max(static_cast<std::size_t>(options.max_decisions),
                              prescribed.size())),
      delay_credits_(options.delay_budget) {}

ScheduleTrace ControlledScheduler::executed() const {
  ScheduleTrace t;
  t.choices.reserve(decisions_.size());
  for (const Decision& d : decisions_) t.choices.push_back(d.choice);
  return t;
}

std::uint64_t ControlledScheduler::pick(
    const std::vector<EventDesc>& enabled) {
  const EventDesc& front = enabled.front();
  if (front.tag.kind != EventKind::kArrival || world_.violated() ||
      decisions_.size() >= max_decisions_) {
    return front.id;
  }

  // Candidate deliveries: the head (earliest (at, id)) arrival of each
  // (from, to) channel; `enabled` is sorted, so the first arrival seen per
  // channel is its head.  Later-than-front candidates need delay credit.
  std::vector<const EventDesc*> cands;
  std::set<std::pair<std::uint64_t, std::uint64_t>> channels;
  for (const EventDesc& e : enabled) {
    if (e.tag.kind != EventKind::kArrival) continue;
    if (!options_.relax_channel_fifo &&
        !channels.insert({e.tag.a, e.tag.b}).second) {
      continue;
    }
    if (e.at > front.at && delay_credits_ <= 0) continue;
    cands.push_back(&e);
    if (cands.size() >= static_cast<std::size_t>(options_.max_branch)) break;
  }

  int crash_choice = -1;
  int partition_choice = -1;
  if (world_.fault_window_open()) {
    int next = static_cast<int>(cands.size());
    if (world_.can_crash_server()) crash_choice = next++;
    if (world_.can_partition_client()) partition_choice = next++;
  }
  const std::uint32_t width =
      static_cast<std::uint32_t>(cands.size()) + (crash_choice >= 0 ? 1 : 0) +
      (partition_choice >= 0 ? 1 : 0);
  if (width <= 1) return front.id;

  const std::size_t pos = decisions_.size();
  std::uint32_t choice = 0;
  if (pos < prescribed_.choices.size()) {
    choice = prescribed_.choices[pos];
    if (choice >= width) choice = 0;  // minimizer may have shrunk the tree
  } else if (rng_ != nullptr) {
    choice = static_cast<std::uint32_t>(rng_->next_below(width));
  }
  decisions_.push_back(Decision{choice, width, world_.state_hash()});

  if (static_cast<int>(choice) == crash_choice) {
    world_.crash_server();
    return front.id;
  }
  if (static_cast<int>(choice) == partition_choice) {
    world_.partition_client();
    return front.id;
  }
  const EventDesc* chosen = cands[choice];
  if (chosen->at > front.at) --delay_credits_;
  return chosen->id;
}

Explorer::Explorer(WorldOptions world_options, ExplorerOptions options)
    : world_options_(world_options), options_(options) {}

RunResult Explorer::run_one(const ScheduleTrace& prescribed, Rng* rng) {
  CheckWorld world(world_options_);
  ControlledScheduler scheduler(world, options_, prescribed, rng);
  world.rt().sim().set_scheduler(&scheduler);
  g_checked_world = &world;
  const InvariantHandler previous = set_invariant_handler(recording_handler);

  world.arm();
  auto& queue = world.rt().sim().queue();
  RunResult result;
  while (!world.finished() && !world.violated() &&
         result.steps < options_.max_steps) {
    if (!queue.run_next()) break;
    ++result.steps;
    if (options_.heavy_check_every > 0 &&
        result.steps % options_.heavy_check_every == 0) {
      world.heavy_check();
    }
  }
  if (!world.violated()) world.final_check();

  set_invariant_handler(previous);
  g_checked_world = nullptr;
  world.rt().sim().set_scheduler(nullptr);

  result.violated = world.violated();
  result.report = world.violation();
  result.deliveries = world.deliveries();
  result.crashes = world.crashes_used();
  result.partitions = world.partitions_used();
  result.executed = scheduler.executed();
  result.decisions = scheduler.decisions();
  return result;
}

std::optional<ScheduleTrace> Explorer::next_trace(const RunResult& last) {
  const auto& decisions = last.decisions;
  // Register first sightings before backtracking, so a run never prunes a
  // state it discovered itself.
  if (options_.prune_visited) {
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      visited_.try_emplace(decisions[i].state_hash,
                           hash_prefix(last.executed.choices, i));
    }
  }
  for (std::size_t i = decisions.size(); i-- > 0;) {
    if (options_.prune_visited) {
      const auto it = visited_.find(decisions[i].state_hash);
      if (it != visited_.end() &&
          it->second != hash_prefix(last.executed.choices, i)) {
        // This decision state was already reached through a different
        // prefix; its subtree is a duplicate — don't branch here.
        ++stats_.pruned_branches;
        continue;
      }
    }
    if (decisions[i].choice + 1 < decisions[i].width) {
      ScheduleTrace next;
      next.choices.assign(last.executed.choices.begin(),
                          last.executed.choices.begin() +
                              static_cast<std::ptrdiff_t>(i));
      next.choices.push_back(decisions[i].choice + 1);
      return next;
    }
  }
  return std::nullopt;
}

ScheduleTrace Explorer::minimize(const ScheduleTrace& trace) {
  // 1. Shortest violating prefix (choices beyond a trace default to 0).
  ScheduleTrace best = trace;
  for (std::size_t len = 0; len <= trace.size(); ++len) {
    ScheduleTrace candidate;
    candidate.choices.assign(trace.choices.begin(),
                             trace.choices.begin() +
                                 static_cast<std::ptrdiff_t>(len));
    if (run_one(candidate).violated) {
      best = candidate;
      break;
    }
  }
  // 2. Greedy zeroing: any choice that can fall back to the default while
  // still violating is noise.
  for (std::size_t i = 0; i < best.size(); ++i) {
    if (best.choices[i] == 0) continue;
    ScheduleTrace candidate = best;
    candidate.choices[i] = 0;
    if (run_one(candidate).violated) best = candidate;
  }
  best.strip_trailing_zeros();
  return best;
}

Explorer::Result Explorer::explore() {
  Result result;
  ScheduleTrace current;
  Rng rng(options_.seed);
  while (stats_.schedules < options_.max_schedules) {
    const bool random = options_.mode == ExplorerOptions::Mode::kRandom;
    if (random) rng = Rng(options_.seed + stats_.schedules * 0x9e3779b9ull);
    RunResult run = run_one(current, random ? &rng : nullptr);
    ++stats_.schedules;
    stats_.total_steps += run.steps;
    if (run.crashes > 0) ++stats_.crash_runs;
    if (run.partitions > 0) ++stats_.partition_runs;
    if (run.violated) {
      result.found = true;
      result.trace = minimize(run.executed);
      result.report = run_one(result.trace).report;
      break;
    }
    if (random) continue;  // independent walks; the trace stays empty
    auto next = next_trace(run);
    if (!next.has_value()) {
      stats_.exhausted = true;
      break;
    }
    current = std::move(*next);
  }
  result.stats = stats_;
  return result;
}

}  // namespace corona::check
