// CheckWorld — the system-under-exploration for corona-check.
//
// One CheckWorld is one hermetic Corona deployment (single server + clients,
// or a replicated star) driven by a *scripted* workload: group creation,
// joins, concurrent multicasts, lock contention, a late joiner and a final
// "nudge" multicast, all scheduled at fixed virtual times as untagged
// (kInternal) events.  Everything nondeterministic about an execution is the
// delivery order and fault timing the controlled scheduler chooses — the
// world itself is a deterministic function of that choice sequence, which is
// what makes traces replayable (see src/check/trace.h).
//
// The world doubles as the oracle bundle (ISSUE: protocol-invariant oracles
// after every step):
//
//   * total order    — every observation of (group, seq) — a client delivery,
//                      a join-transfer record, the server's own history —
//                      must carry identical content; per client, delivered
//                      seqs strictly increase.
//   * state transfer — a join reply's transferred history is folded into the
//                      same (group, seq) consistency map, so a transfer that
//                      disagrees with what members saw live is a violation.
//   * lock safety    — at most one client *believes* it holds a lock per
//                      server epoch (beliefs are granted by on_lock_granted
//                      and dropped when the release is sent or the epoch
//                      changes, since the lock table is volatile server
//                      state); the server-side queue may only evolve by FIFO
//                      grant-from-head, tail appends and full drains.
//   * convergence    — at the horizon, every caught-up replica (client state
//                      at the server's head seq; replicated: leaf copies and
//                      clients at the coordinator's head) is byte-identical
//                      with the authority.
//   * structure      — every existing check_invariants() walk stays quiet.
//
// Violations accumulate into a report string; the first one ends the run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/server.h"
#include "replica/replica_server.h"
#include "runtime/sim_runtime.h"
#include "storage/group_store.h"

namespace corona::check {

struct WorldOptions {
  enum class Mode { kSingleServer, kReplicated };
  Mode mode = Mode::kSingleServer;

  std::size_t clients = 3;
  // Replicated mode: total servers, coordinator first (so 3 = coordinator +
  // 2 leaves).  Ignored in single-server mode.
  std::size_t servers = 3;

  int multicasts_per_client = 2;
  bool locks = true;
  bool late_joiner = true;

  // Fault budgets the scheduler may spend at decision points.
  // Single-server: crash+restart cycles of the server (disk survives).
  // Replicated: fail-stop crashes of the coordinator (election takes over).
  int max_crashes = 1;
  // Transient partitions of the highest-numbered client (healed on a timer).
  int max_partitions = 1;

  // Mutation switch for the harness's own regression test: clients run with
  // gap detection off, so a reordered delivery is applied out of order and
  // the total-order oracle must catch it.
  bool seed_ordering_bug = false;

  // Batched fan-out under exploration: > 1 turns on the server-side batch
  // queue (ServerConfig / ReplicaConfig), so the scheduler's choices include
  // where batch boundaries fall.  Deliveries must stay exactly contiguous
  // per (client, group) across those boundaries — enforced by a gap oracle
  // that only arms when batching is on (the unbatched gates keep their
  // original oracle set).
  std::size_t batch_max_msgs = 1;
  Duration batch_max_delay = 2 * kMillisecond;
  // Mutation: the server drops the tail record of every coalesced batch
  // frame (ServerConfig::debug_drop_batch_tail) and clients run without gap
  // detection, so the dropped tail surfaces as a (group, seq) gap the
  // batch-boundary oracle must catch.  Forces batch_max_msgs >= 2.
  bool seed_batch_bug = false;

  // kSync keeps "delivered => durable", which the cross-crash total-order
  // oracle depends on; with kAsync the (group, seq) map is reset per server
  // epoch instead (a recovering server may legitimately re-sequence).
  FlushPolicy flush = FlushPolicy::kSync;
};

class CheckWorld {
 public:
  explicit CheckWorld(const WorldOptions& options);
  ~CheckWorld();

  CheckWorld(const CheckWorld&) = delete;
  CheckWorld& operator=(const CheckWorld&) = delete;

  SimRuntime& rt() { return rt_; }

  // Schedules the scripted workload and the end-of-run fence.  Call once,
  // before running events.
  void arm();

  // Virtual time at which the run ends (the fence).
  TimePoint horizon() const { return horizon_; }
  bool finished() const { return fence_hit_; }

  bool violated() const { return !report_.empty(); }
  const std::string& violation() const { return report_; }
  // Folds in a violation detected outside the world's own oracles (the
  // explorer routes CORONA_INVARIANT checkpoint failures here).
  void external_fail(const std::string& what) { fail(what); }

  // -- fault actions (invoked by the controlled scheduler) -------------------
  bool fault_window_open() const;
  bool can_crash_server() const;
  void crash_server();
  bool can_partition_client() const;
  void partition_client();

  // -- oracles ---------------------------------------------------------------
  // Full invariant walks + lock-queue evolution; meant to run every few
  // steps and at decision points (per-delivery checks are callback-driven
  // and always on).
  void heavy_check();
  // Quiescent convergence oracles; run once, after the fence.
  void final_check();

  // FNV-1a hash of the protocol-visible state (replicas, server groups,
  // lock beliefs, fault budgets, pending-event tags) with every timestamp
  // excluded — two executions that hash equal here are schedule-equivalent
  // for pruning purposes.
  std::uint64_t state_hash();

  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t server_epoch() const { return server_epoch_; }
  int crashes_used() const { return options_.max_crashes - crashes_left_; }
  int partitions_used() const {
    return options_.max_partitions - partitions_left_;
  }

 private:
  struct Digest {
    std::uint64_t sender = 0;
    std::uint64_t request_id = 0;
    std::uint8_t kind = 0;
    std::uint64_t object = 0;
    std::uint64_t data_hash = 0;

    friend bool operator==(const Digest&, const Digest&) = default;
  };
  struct LockSnapshot {
    std::optional<NodeId> holder;
    std::vector<NodeId> queue;
  };

  void fail(const std::string& what);
  ServerConfig single_server_config() const;
  void build_single();
  void build_replicated();
  CoronaClient::Callbacks callbacks_for(std::size_t i);
  void on_deliver(std::size_t i, GroupId g, const UpdateRecord& rec);
  void on_joined(std::size_t i, GroupId g, Status s);
  void on_lock_granted(std::size_t i, GroupId g, ObjectId obj);
  void check_record(GroupId g, const UpdateRecord& rec, const std::string& via);
  void unlock_if_held(std::size_t i);
  void check_lock_evolution(GroupId g, const LockTable& locks);
  void check_client_states();
  const ReplicaServer* live_coordinator() const;

  WorldOptions options_;
  SimRuntime rt_;

  // Single-server mode.
  GroupStore store_;  // the server machine's disk; survives restarts
  std::unique_ptr<CoronaServer> server_;

  // Replicated mode.
  std::vector<std::unique_ptr<ReplicaServer>> replicas_;
  std::vector<NodeId> server_ids_;

  std::vector<std::unique_ptr<CoronaClient>> clients_;

  // Workload timeline (set by the constructor per mode).
  TimePoint fault_open_ = 0;
  TimePoint fault_close_ = 0;
  TimePoint horizon_ = 0;
  bool armed_ = false;
  bool fence_hit_ = false;

  // Fault state.
  int crashes_left_ = 0;
  int partitions_left_ = 0;
  std::uint64_t server_epoch_ = 0;  // bumped per server crash
  bool partition_active_ = false;

  // Oracle state.
  std::string report_;
  std::map<std::pair<std::uint64_t, SeqNo>, Digest> order_;  // (group, seq)
  std::vector<std::map<std::uint64_t, SeqNo>> last_seq_;     // [client][group]
  std::vector<std::set<std::uint64_t>> wants_join_;          // [client]
  // Lock beliefs: object -> (client index, epoch of the grant).
  std::map<std::uint64_t, std::pair<std::size_t, std::uint64_t>> believed_;
  std::map<std::uint64_t, LockSnapshot> lock_prev_;  // single-server FIFO audit
  std::uint64_t deliveries_ = 0;
};

}  // namespace corona::check
