#include "check/world.h"

#include <algorithm>

namespace corona::check {
namespace {

constexpr GroupId kG{1};
constexpr ObjectId kObj{7};
constexpr ObjectId kLockObj{9};
constexpr NodeId kServer{1};

NodeId client_node(std::size_t i) { return NodeId{100 + i}; }

// FNV-1a, 64-bit: the state hash must be identical across runs and machines,
// so it is spelled out rather than delegated to std::hash.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(const Bytes& b) {
    u64(b.size());
    for (std::uint8_t c : b) byte(c);
  }
  void state(const SharedState& s) {
    u64(s.base_seq());
    u64(s.head_seq());
    u64(s.history_size());
    for (const StateEntry& e : s.snapshot()) {
      u64(e.object.value);
      bytes(e.data);
    }
  }
};

std::uint64_t hash_bytes(const Bytes& b) {
  Fnv f;
  f.bytes(b);
  return f.h;
}

// True when `prefix` equals the first prefix.size() elements of `seq`.
bool is_prefix(const std::vector<NodeId>& prefix,
               const std::vector<NodeId>& seq) {
  if (prefix.size() > seq.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), seq.begin());
}

}  // namespace

CheckWorld::CheckWorld(const WorldOptions& options) : options_(options) {
  if (options_.seed_batch_bug && options_.batch_max_msgs < 2) {
    options_.batch_max_msgs = 4;  // the mutation needs multi-record frames
  }
  last_seq_.resize(options_.clients);
  wants_join_.resize(options_.clients);
  crashes_left_ = options_.max_crashes;
  partitions_left_ = options_.max_partitions;
  if (options_.mode == WorldOptions::Mode::kSingleServer) {
    build_single();
    fault_open_ = 15 * kMillisecond;
    fault_close_ = 40 * kMillisecond;
    horizon_ = 400 * kMillisecond;
  } else {
    build_replicated();
    fault_open_ = 40 * kMillisecond;
    fault_close_ = 120 * kMillisecond;
    horizon_ = 1500 * kMillisecond;
  }
  rt_.start();
}

CheckWorld::~CheckWorld() { rt_.sim().set_scheduler(nullptr); }

CoronaClient::Callbacks CheckWorld::callbacks_for(std::size_t i) {
  CoronaClient::Callbacks cb;
  cb.on_deliver = [this, i](GroupId g, const UpdateRecord& rec) {
    on_deliver(i, g, rec);
  };
  cb.on_joined = [this, i](GroupId g, Status s) { on_joined(i, g, s); };
  cb.on_lock_granted = [this, i](GroupId g, ObjectId obj) {
    on_lock_granted(i, g, obj);
  };
  return cb;
}

ServerConfig CheckWorld::single_server_config() const {
  ServerConfig cfg;
  cfg.flush = options_.flush;
  cfg.flush_interval = 50 * kMillisecond;
  cfg.batch_max_msgs = options_.batch_max_msgs;
  cfg.batch_max_delay = options_.batch_max_delay;
  cfg.debug_drop_batch_tail = options_.seed_batch_bug;
  return cfg;
}

void CheckWorld::build_single() {
  server_ = std::make_unique<CoronaServer>(single_server_config(), &store_);
  rt_.add_node(kServer, server_.get(), rt_.network().add_host(HostProfile{}));
  CoronaClient::Config ccfg;
  ccfg.gap_detection = !options_.seed_ordering_bug && !options_.seed_batch_bug;
  for (std::size_t i = 0; i < options_.clients; ++i) {
    clients_.push_back(
        std::make_unique<CoronaClient>(kServer, callbacks_for(i), ccfg));
    rt_.add_node(client_node(i), clients_[i].get(),
                 rt_.network().add_host(HostProfile{}));
  }
}

void CheckWorld::build_replicated() {
  ReplicaConfig cfg;
  cfg.heartbeat_interval = 50 * kMillisecond;
  cfg.fd_timeout = 200 * kMillisecond;
  cfg.election_window = 100 * kMillisecond;
  cfg.takeover_window = 100 * kMillisecond;
  cfg.flush_interval = 50 * kMillisecond;
  cfg.batch_max_msgs = options_.batch_max_msgs;
  cfg.batch_max_delay = options_.batch_max_delay;
  for (std::size_t i = 0; i < options_.servers; ++i) {
    server_ids_.push_back(NodeId{1 + i});
  }
  for (std::size_t i = 0; i < options_.servers; ++i) {
    replicas_.push_back(
        std::make_unique<ReplicaServer>(cfg, server_ids_, nullptr));
    rt_.add_node(server_ids_[i], replicas_[i].get(),
                 rt_.network().add_host(HostProfile{}));
  }
  CoronaClient::Config ccfg;
  ccfg.gap_detection = !options_.seed_ordering_bug && !options_.seed_batch_bug;
  for (std::size_t i = 0; i < options_.clients; ++i) {
    // Clients round-robin over the leaves (never the coordinator directly).
    const std::size_t leaf =
        options_.servers > 1 ? 1 + (i % (options_.servers - 1)) : 0;
    clients_.push_back(std::make_unique<CoronaClient>(
        server_ids_[leaf], callbacks_for(i), ccfg));
    rt_.add_node(client_node(i), clients_[i].get(),
                 rt_.network().add_host(HostProfile{}));
  }
}

void CheckWorld::arm() {
  CORONA_INVARIANT(!armed_, "CheckWorld::arm called twice");
  armed_ = true;
  auto& q = rt_.sim().queue();
  const bool replicated = options_.mode == WorldOptions::Mode::kReplicated;
  // The replicated service routes group operations through the coordinator,
  // so everything breathes on a longer timeline there.
  const Duration scale = replicated ? 2 : 1;
  const TimePoint t_create = 1 * scale * kMillisecond;
  const TimePoint t_join = 5 * scale * kMillisecond;
  const TimePoint t_mcast = 10 * scale * kMillisecond;
  const TimePoint t_lock = 14 * scale * kMillisecond;
  const TimePoint t_late = 25 * scale * kMillisecond;
  const TimePoint t_nudge = replicated ? 900 * kMillisecond : 60 * kMillisecond;

  q.schedule_at(t_create, [this] {
    clients_[0]->create_group(kG, "checked", /*persistent=*/true,
                              {{kObj, to_bytes("init")}});
  });
  const std::size_t late =
      options_.late_joiner && options_.clients > 1 ? options_.clients - 1
                                                   : options_.clients;
  for (std::size_t i = 0; i < options_.clients; ++i) {
    const TimePoint when = i == late ? t_late : t_join;
    q.schedule_at(when, [this, i] {
      wants_join_[i].insert(kG.value);
      clients_[i]->join(kG, TransferPolicySpec::full());
    });
  }
  // Each round is a *concurrent burst*: every member casts at the same
  // virtual instant, so the server sequences back-to-back updates and
  // several deliveries to the same client coexist in the queue — that is
  // where the scheduler's reordering choices actually live.
  for (std::size_t i = 0; i < options_.clients; ++i) {
    if (i == late) continue;  // the late joiner multicasts once, post-join
    for (int j = 0; j < options_.multicasts_per_client; ++j) {
      const TimePoint when = t_mcast + j * 3 * scale * kMillisecond;
      // Every cast writes its own object: with a shared target a silently
      // dropped update is masked by last-writer-wins, and the convergence
      // oracle would have nothing to see.
      q.schedule_at(when, [this, i, j] {
        clients_[i]->bcast_update(
            kG, ObjectId{kObj.value + 1 + i * 16 + static_cast<std::uint64_t>(j)},
            to_bytes("u" + std::to_string(i) + "." + std::to_string(j)));
      });
    }
  }
  if (options_.late_joiner && options_.clients > 1) {
    q.schedule_at(t_late + 10 * scale * kMillisecond, [this, late] {
      clients_[late]->bcast_update(kG, ObjectId{kObj.value + 200},
                                   to_bytes("late"));
    });
  }
  if (options_.locks && options_.clients >= 2) {
    q.schedule_at(t_lock, [this] {
      clients_[0]->lock(kG, kLockObj);
      clients_[1]->lock(kG, kLockObj);
    });
    q.schedule_at(t_lock + 8 * scale * kMillisecond,
                  [this] { unlock_if_held(0); });
    q.schedule_at(t_lock + 16 * scale * kMillisecond,
                  [this] { unlock_if_held(1); });
  }
  // Post-fault-window nudge: one last multicast so every healed / recovered
  // replica has a delivery that exposes its gaps before the horizon.
  q.schedule_at(t_nudge, [this] {
    clients_[0]->bcast_update(kG, ObjectId{kObj.value + 201},
                              to_bytes("nudge"));
  });
  q.schedule_at(horizon_, [this] { fence_hit_ = true; });
}

// -- faults -------------------------------------------------------------------

bool CheckWorld::fault_window_open() const {
  const TimePoint now = rt_.now();
  return now >= fault_open_ && now <= fault_close_;
}

bool CheckWorld::can_crash_server() const { return crashes_left_ > 0; }

void CheckWorld::crash_server() {
  CORONA_INVARIANT(crashes_left_ > 0, "crash budget exhausted");
  --crashes_left_;
  ++server_epoch_;  // stale lock beliefs and queue snapshots die with it
  lock_prev_.clear();
  auto& q = rt_.sim().queue();
  if (options_.mode == WorldOptions::Mode::kSingleServer) {
    // Crash + recover over the surviving disk, then have every client that
    // ever joined re-join (membership is volatile server state) and resend
    // its recent updates (§6).
    rt_.crash(kServer);
    store_.crash();
    if (options_.flush != FlushPolicy::kSync) {
      // The recovering server may legitimately re-sequence a lost tail, so
      // the (group, seq) ledger restarts with the epoch.
      order_.clear();
    }
    q.schedule_after(5 * kMillisecond, [this] {
      auto fresh =
          std::make_unique<CoronaServer>(single_server_config(), &store_);
      rt_.restart(kServer, fresh.get());
      server_ = std::move(fresh);
    });
    q.schedule_after(10 * kMillisecond, [this] {
      for (std::size_t i = 0; i < options_.clients; ++i) {
        if (wants_join_[i].contains(kG.value)) {
          clients_[i]->join(kG, TransferPolicySpec::full());
        }
      }
    });
    q.schedule_after(15 * kMillisecond, [this] {
      for (std::size_t i = 0; i < options_.clients; ++i) {
        if (wants_join_[i].contains(kG.value)) clients_[i]->resend_recent(kG);
      }
    });
  } else {
    // Fail-stop the coordinator; the leaves detect the silence, elect a
    // successor and pull the freshest state (§4.2).  No restart.
    rt_.crash(server_ids_[0]);
  }
}

bool CheckWorld::can_partition_client() const {
  return partitions_left_ > 0 && !partition_active_;
}

void CheckWorld::partition_client() {
  CORONA_INVARIANT(can_partition_client(), "partition budget exhausted");
  --partitions_left_;
  partition_active_ = true;
  const NodeId victim = client_node(options_.clients - 1);
  rt_.network().set_partition_cell(victim, 1);
  rt_.sim().queue().schedule_after(15 * kMillisecond, [this] {
    rt_.network().heal_partitions();
    partition_active_ = false;
  });
}

// -- oracles ------------------------------------------------------------------

void CheckWorld::fail(const std::string& what) {
  if (!report_.empty()) report_ += "; ";
  report_ += what;
}

void CheckWorld::check_record(GroupId g, const UpdateRecord& rec,
                              const std::string& via) {
  const Digest d{rec.sender.value, rec.request_id,
                 static_cast<std::uint8_t>(rec.kind), rec.object.value,
                 hash_bytes(rec.data)};
  auto [it, inserted] = order_.try_emplace({g.value, rec.seq}, d);
  if (!inserted && !(it->second == d)) {
    fail("total-order violation: group " + std::to_string(g.value) + " seq " +
         std::to_string(rec.seq) + " observed with conflicting content via " +
         via);
  }
}

void CheckWorld::on_deliver(std::size_t i, GroupId g, const UpdateRecord& rec) {
  ++deliveries_;
  auto& last = last_seq_[i];
  const auto it = last.find(g.value);
  if (it != last.end() && rec.seq <= it->second) {
    fail("ordering violation: client " + std::to_string(i) + " delivered seq " +
         std::to_string(rec.seq) + " after seq " + std::to_string(it->second));
  } else if (options_.batch_max_msgs > 1 && it != last.end() &&
             rec.seq > it->second + 1) {
    // With batching on, a coalesced frame must carry its run whole: a seq
    // jump at a client means a batch boundary swallowed records (e.g. a
    // dropped tail), which per-message delivery could never produce.
    fail("batch-boundary violation: client " + std::to_string(i) +
         " jumped from seq " + std::to_string(it->second) + " to " +
         std::to_string(rec.seq) + " across a batch boundary");
  }
  last[g.value] = rec.seq;
  check_record(g, rec, "delivery to client " + std::to_string(i));
}

void CheckWorld::on_joined(std::size_t i, GroupId g, Status s) {
  if (!s.is_ok()) return;
  const SharedState* st = clients_[i]->group_state(g);
  if (st == nullptr) {
    fail("join reported ok but client " + std::to_string(i) +
         " has no replica");
    return;
  }
  // State transfer must reproduce the sequencer's history: every transferred
  // record lands in the same (group, seq) ledger the live deliveries feed.
  for (const UpdateRecord& rec : st->history()) {
    check_record(g, rec, "join transfer to client " + std::to_string(i));
  }
  const InvariantReport rep = st->check_invariants();
  if (!rep.ok()) fail("client replica after join: " + rep.to_string());
  // A rejoin re-bases the replica; the monotonic-delivery cursor follows it.
  last_seq_[i][g.value] = st->head_seq();
}

void CheckWorld::on_lock_granted(std::size_t i, GroupId g, ObjectId obj) {
  (void)g;
  const auto it = believed_.find(obj.value);
  if (it != believed_.end() && it->second.second == server_epoch_ &&
      it->second.first != i) {
    fail("mutual-exclusion violation: clients " +
         std::to_string(it->second.first) + " and " + std::to_string(i) +
         " both hold obj " + std::to_string(obj.value) + " in epoch " +
         std::to_string(server_epoch_));
  }
  believed_[obj.value] = {i, server_epoch_};
}

void CheckWorld::unlock_if_held(std::size_t i) {
  const auto it = believed_.find(kLockObj.value);
  if (it == believed_.end() || it->second.first != i) return;
  const bool current = it->second.second == server_epoch_;
  believed_.erase(it);
  // The belief is surrendered when the release is *sent*: advisory locks
  // stop protecting the moment the holder decides to let go.
  if (current) clients_[i]->unlock(kG, kLockObj);
}

void CheckWorld::check_lock_evolution(GroupId g, const LockTable& locks) {
  (void)g;
  std::map<std::uint64_t, LockSnapshot> current;
  for (const auto& [obj, holder] : locks.all_holders()) {
    current[obj.value].holder = holder;
  }
  for (const auto& [obj, waiter] : locks.all_waiters()) {
    current[obj.value].queue.push_back(waiter);
  }
  for (const auto& [obj, old] : lock_prev_) {
    const auto it = current.find(obj);
    if (it == current.end() || !old.holder.has_value()) continue;  // drained
    const LockSnapshot& cur = it->second;
    if (!cur.holder.has_value()) continue;
    if (*cur.holder == *old.holder) {
      // Same holder: the FIFO queue may only have grown at the tail.
      if (!is_prefix(old.queue, cur.queue)) {
        fail("lock FIFO violation: obj " + std::to_string(obj) +
             " queue reordered under an unchanged holder");
      }
      continue;
    }
    const auto pos =
        std::find(old.queue.begin(), old.queue.end(), *cur.holder);
    if (pos != old.queue.end()) {
      // Grants pop from the head, so the survivors past the new holder must
      // still lead the queue in order.
      const std::vector<NodeId> expect(pos + 1, old.queue.end());
      if (!is_prefix(expect, cur.queue)) {
        fail("lock FIFO violation: obj " + std::to_string(obj) +
             " grant skipped queued waiters");
      }
    }
    // A holder absent from the old snapshot means the queue fully drained
    // and someone acquired afresh between checks — nothing to compare.
  }
  lock_prev_ = std::move(current);
}

void CheckWorld::check_client_states() {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const SharedState* st = clients_[i]->group_state(kG);
    if (st == nullptr) continue;
    const InvariantReport rep = st->check_invariants();
    if (!rep.ok()) {
      fail("client " + std::to_string(i) + " replica: " + rep.to_string());
    }
  }
}

void CheckWorld::heavy_check() {
  if (violated()) return;
  InvariantReport rep = rt_.sim().queue().check_invariants();
  if (options_.mode == WorldOptions::Mode::kSingleServer) {
    if (!rt_.is_crashed(kServer) && server_->has_group(kG)) {
      const Group* group = server_->group(kG);
      rep.merge(group->check_invariants());
      check_lock_evolution(kG, group->locks());
    }
  } else {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (rt_.is_crashed(server_ids_[i])) continue;
      if (const SharedState* ls = replicas_[i]->local_state(kG)) {
        rep.merge(ls->check_invariants());
      }
      if (const SharedState* cs = replicas_[i]->coord_state(kG)) {
        rep.merge(cs->check_invariants());
      }
    }
  }
  if (!rep.ok()) fail("invariant walk: " + rep.to_string());
  check_client_states();
}

const ReplicaServer* CheckWorld::live_coordinator() const {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (rt_.is_crashed(server_ids_[i])) continue;
    if (replicas_[i]->is_coordinator()) return replicas_[i].get();
  }
  return nullptr;
}

void CheckWorld::final_check() {
  if (violated()) return;
  heavy_check();
  if (violated()) return;

  const SharedState* authority = nullptr;
  if (options_.mode == WorldOptions::Mode::kSingleServer) {
    if (rt_.is_crashed(kServer) || !server_->has_group(kG)) return;
    authority = &server_->group(kG)->state();
  } else {
    const ReplicaServer* coord = live_coordinator();
    if (coord == nullptr) return;  // takeover didn't finish inside the horizon
    authority = coord->coord_state(kG);
    if (authority == nullptr) return;
    // Every live leaf holding a copy at the coordinator's head must agree
    // byte-for-byte (post-recovery replica convergence).
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (rt_.is_crashed(server_ids_[i]) || replicas_[i].get() == coord) {
        continue;
      }
      const SharedState* ls = replicas_[i]->local_state(kG);
      if (ls == nullptr || ls->head_seq() != authority->head_seq()) continue;
      if (ls->snapshot() != authority->snapshot()) {
        fail("convergence violation: leaf " +
             std::to_string(server_ids_[i].value) +
             " diverges from the coordinator at head " +
             std::to_string(authority->head_seq()));
      }
    }
  }

  // Caught-up clients (replica head == authority head) must be identical;
  // laggards are covered by the per-delivery ledger instead — a bounded run
  // may legitimately end with messages still in flight.
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const SharedState* st = clients_[i]->group_state(kG);
    if (st == nullptr) continue;
    if (options_.flush == FlushPolicy::kSync &&
        st->head_seq() > authority->head_seq()) {
      fail("convergence violation: client " + std::to_string(i) +
           " is ahead of the durable authority (head " +
           std::to_string(st->head_seq()) + " > " +
           std::to_string(authority->head_seq()) + ")");
      continue;
    }
    if (st->head_seq() != authority->head_seq()) continue;
    if (st->snapshot() != authority->snapshot()) {
      fail("convergence violation: client " + std::to_string(i) +
           " diverges from the authority at head " +
           std::to_string(authority->head_seq()));
    }
  }
}

std::uint64_t CheckWorld::state_hash() {
  Fnv f;
  f.u64(static_cast<std::uint64_t>(crashes_left_));
  f.u64(static_cast<std::uint64_t>(partitions_left_));
  f.u64(partition_active_ ? 1 : 0);
  f.u64(server_epoch_);
  for (const auto& [obj, who] : believed_) {
    f.u64(obj);
    f.u64(who.first);
    f.u64(who.second);
  }
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    f.u64(wants_join_[i].size());
    f.u64(clients_[i]->expected_seq(kG));
    if (const SharedState* st = clients_[i]->group_state(kG)) {
      f.state(*st);
    }
  }
  if (options_.mode == WorldOptions::Mode::kSingleServer) {
    f.u64(rt_.is_crashed(kServer) ? 1 : 0);
    if (!rt_.is_crashed(kServer) && server_->has_group(kG)) {
      const Group* group = server_->group(kG);
      f.u64(group->next_seq());
      f.state(group->state());
      for (const auto& [node, member] : group->members()) {
        f.u64(node.value);
        f.byte(static_cast<std::uint8_t>(member.role));
      }
      for (const auto& [obj, holder] : group->locks().all_holders()) {
        f.u64(obj.value);
        f.u64(holder.value);
      }
      for (const auto& [obj, waiter] : group->locks().all_waiters()) {
        f.u64(obj.value);
        f.u64(waiter.value);
      }
    }
  } else {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      f.u64(rt_.is_crashed(server_ids_[i]) ? 1 : 0);
      f.byte(replicas_[i]->is_coordinator() ? 1 : 0);
      f.u64(replicas_[i]->coordinator().value);
      f.u64(replicas_[i]->term());
      if (const SharedState* ls = replicas_[i]->local_state(kG)) f.state(*ls);
      if (const SharedState* cs = replicas_[i]->coord_state(kG)) f.state(*cs);
    }
  }
  // Pending-event *tags* (not timestamps): two states that differ only in
  // when the same work is queued are schedule-equivalent.
  for (const EventDesc& e : rt_.sim().queue().pending_events()) {
    f.byte(static_cast<std::uint8_t>(e.tag.kind));
    f.u64(e.tag.a);
    f.u64(e.tag.b);
  }
  return f.h;
}

}  // namespace corona::check
