// Schedule traces — the replayable identity of one explored execution.
//
// corona-check's worlds are deterministic functions of a choice sequence:
// every time the controlled scheduler reaches a branching decision point it
// consumes (or records) one index into the deterministic candidate list.
// The whole execution — every delivery order, every injected fault — is
// therefore reproduced byte-identically by replaying the same sequence, and
// a violation report ships as this one small vector (docs/ANALYSIS.md,
// "Schedule exploration").
//
// Choices beyond the end of a trace default to 0 (the event the plain
// simulator would have run), so a trace is a *prefix* of behavior: trailing
// zeros are redundant and the minimizer strips them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace corona::check {

struct ScheduleTrace {
  std::vector<std::uint32_t> choices;

  bool empty() const { return choices.empty(); }
  std::size_t size() const { return choices.size(); }

  // Canonical text form: comma-separated indices ("2,0,1"); "-" when empty.
  std::string to_string() const;
  // Parses the canonical form; nullopt on malformed input.
  static std::optional<ScheduleTrace> parse(const std::string& text);

  // Drops trailing zero choices (they equal the default behavior).
  void strip_trailing_zeros();

  friend bool operator==(const ScheduleTrace&, const ScheduleTrace&) = default;
};

}  // namespace corona::check
