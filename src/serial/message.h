// The Corona wire protocol.
//
// One flat `Message` record covers the client<->server protocol (paper §3)
// and the inter-server replication protocol (paper §4).  Fields not used by
// a message type stay at their defaults and cost one varint byte each on the
// wire; payload bytes dominate every interesting message.  Typed factory
// functions below are the supported way to build messages — they make the
// per-type field contracts explicit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/context.h"
#include "util/ids.h"
#include "util/result.h"
#include "util/time.h"

namespace corona {

// ---------------------------------------------------------------------------
// Enums
// ---------------------------------------------------------------------------

enum class MsgType : std::uint8_t {
  kInvalid = 0,

  // -- client -> server (group membership service, §3.2) --
  kCreateGroup,    // group, text=name, persistent, state=initial
  kDeleteGroup,    // group
  kJoin,           // group, policy, role, notify_membership
  kLeave,          // group
  kGetMembership,  // group

  // -- client -> server (group multicast + logging service, §3.2) --
  kBcastState,   // group, object, payload, sender_inclusive, request_id
  kBcastUpdate,  // group, object, payload, sender_inclusive, request_id
  kLockRequest,  // group, object
  kLockRelease,  // group, object
  kReduceLog,    // group, seq = reduce history up to (and including) seq

  // -- server -> client --
  kReply,             // status(+text), request_id: generic ack/error
  kJoinReply,         // group, status, seq=state base seq, state, updates, members
  kMembershipInfo,    // group, members (reply to kGetMembership)
  kMembershipNotice,  // group, sender=who, role, flag joined=true/left=false
  kDeliver,           // group, seq, kind, object, payload, sender, timestamp,
                      //   request_id (sequenced multicast delivery)
  kLockGrant,         // group, object
  kLogReduced,        // group, seq = new base of the update history
  kGroupDeleted,      // group (notification to members of a deleted group)

  // -- server <-> server (replicated service, §4) --
  kServerHello,       // sender=server id: leaf registers with coordinator
  kFwdMulticast,      // leaf -> coordinator: unsequenced client multicast
  kSeqMulticast,      // coordinator -> leaves: sequenced multicast
  kGroupOp,           // leaf -> coordinator: forwarded membership operation
                      //   (uses `fwd_type` for the original MsgType)
  kGroupOpResult,     // coordinator -> leaf: outcome of kGroupOp
  kHeartbeat,         // coordinator <-> servers, epoch
  kHeartbeatAck,      //
  kServerList,        // coordinator -> servers: epoch, nodes
  kElectionClaim,     // candidate -> servers: epoch
  kElectionVote,      // server -> candidate: epoch, accept
  kCoordAnnounce,     // new coordinator -> servers: epoch
  kStateQuery,        // server -> server: group (fetch state it lacks, §4)
  kStateReply,        // group, seq=base, state, updates
  kBackupAssign,      // coordinator -> server: group (hot-standby copy, §4.1)
  kRetransmitReq,     // group, seq..seq2 missing sequenced messages
  kResendRequest,     // server -> client: u64s=request ids to resend (§6)
  kResendReply,       // client -> server: updates (the resent originals)
  kDigestRequest,     // partition healing: group
  kDigestReply,       // group, seq=head, seq2=checkpoint, payload=state hash
};

const char* msg_type_name(MsgType t);

// Kind of a sequenced state message (paper §3.2): bcastState overwrites the
// object, bcastUpdate appends to its history.
enum class PayloadKind : std::uint8_t { kState = 0, kUpdate = 1 };

// Member roles (paper §3.1 footnote: "member roles (principal, observer) are
// used to specify the relationships among members of a group").
enum class MemberRole : std::uint8_t { kPrincipal = 0, kObserver = 1 };

// Join-time state-transfer policies (paper §3.2: whole state, latest n
// updates, or only certain objects).
enum class TransferMode : std::uint8_t {
  kFullState = 0,    // snapshot + full update history
  kLastN = 1,        // snapshot of nothing; only the latest n updates
  kObjects = 2,      // snapshot restricted to the listed objects
  kObjectsLastN = 3, // listed objects + their latest n updates
  kNothing = 4,      // no transfer; future deliveries only
};

// ---------------------------------------------------------------------------
// Compound fields
// ---------------------------------------------------------------------------

// One (object id, byte stream) pair of a shared-state snapshot.
struct StateEntry {
  ObjectId object;
  Bytes data;

  friend bool operator==(const StateEntry&, const StateEntry&) = default;
};

// One sequenced state message, as logged by the service and as shipped in
// join replies / state replies / resends.
struct UpdateRecord {
  SeqNo seq = 0;
  PayloadKind kind = PayloadKind::kUpdate;
  ObjectId object;
  Bytes data;
  NodeId sender;
  TimePoint timestamp = 0;
  RequestId request_id = 0;

  friend bool operator==(const UpdateRecord&, const UpdateRecord&) = default;
};

struct MemberInfo {
  NodeId node;
  MemberRole role = MemberRole::kPrincipal;

  friend bool operator==(const MemberInfo&, const MemberInfo&) = default;
};

// Client-specified state transfer policy carried in kJoin.
struct TransferPolicySpec {
  TransferMode mode = TransferMode::kFullState;
  std::uint32_t last_n = 0;          // for kLastN / kObjectsLastN
  std::vector<ObjectId> objects;     // for kObjects / kObjectsLastN

  static TransferPolicySpec full() { return {}; }
  static TransferPolicySpec last_n_updates(std::uint32_t n) {
    return {TransferMode::kLastN, n, {}};
  }
  static TransferPolicySpec objects_only(std::vector<ObjectId> ids) {
    return {TransferMode::kObjects, 0, std::move(ids)};
  }
  static TransferPolicySpec objects_last_n(std::vector<ObjectId> ids,
                                           std::uint32_t n) {
    return {TransferMode::kObjectsLastN, n, std::move(ids)};
  }
  static TransferPolicySpec nothing() {
    return {TransferMode::kNothing, 0, {}};
  }

  friend bool operator==(const TransferPolicySpec&,
                         const TransferPolicySpec&) = default;
};

// Standalone record codecs, shared by the wire protocol and stable storage.
CORONA_HOT_PATH Bytes encode_update_record(const UpdateRecord& u);
Result<UpdateRecord> decode_update_record(BytesView wire);
CORONA_HOT_PATH Bytes encode_state_entry(const StateEntry& s);
Result<StateEntry> decode_state_entry(BytesView wire);

// ---------------------------------------------------------------------------
// Message
// ---------------------------------------------------------------------------

struct Message {
  MsgType type = MsgType::kInvalid;
  MsgType fwd_type = MsgType::kInvalid;  // original type inside kGroupOp
  GroupId group;
  ObjectId object;
  SeqNo seq = 0;
  SeqNo seq2 = 0;
  NodeId sender;         // originating client / claimant / subject of notice
  NodeId origin_server;  // replica routing: which leaf forwarded this
  std::uint64_t epoch = 0;
  RequestId request_id = 0;
  TimePoint timestamp = 0;
  bool sender_inclusive = false;
  bool persistent = false;
  bool accept = false;  // election votes; joined/left flag in notices
  bool notify_membership = false;
  PayloadKind kind = PayloadKind::kUpdate;
  MemberRole role = MemberRole::kPrincipal;
  Errc status = Errc::kOk;
  std::string text;
  Bytes payload;
  std::vector<StateEntry> state;
  std::vector<UpdateRecord> updates;
  std::vector<MemberInfo> members;
  std::vector<NodeId> nodes;
  std::vector<std::uint64_t> u64s;
  TransferPolicySpec policy;

  CORONA_HOT_PATH Bytes encode() const;
  // Encoded size in bytes; this is the size the network model charges.
  std::size_t wire_size() const;
  static Result<Message> decode(BytesView wire);

  friend bool operator==(const Message&, const Message&) = default;
};

// ---------------------------------------------------------------------------
// Factories: the supported constructors for each message type.
// ---------------------------------------------------------------------------

Message make_create_group(GroupId g, std::string name, bool persistent,
                          std::vector<StateEntry> initial_state,
                          RequestId rid);
Message make_delete_group(GroupId g, RequestId rid);
Message make_join(GroupId g, TransferPolicySpec policy, MemberRole role,
                  bool notify_membership, RequestId rid);
Message make_leave(GroupId g, RequestId rid);
Message make_get_membership(GroupId g, RequestId rid);
Message make_bcast(PayloadKind kind, GroupId g, ObjectId obj, Bytes payload,
                   bool sender_inclusive, RequestId rid);
Message make_lock_request(GroupId g, ObjectId obj, RequestId rid);
Message make_lock_release(GroupId g, ObjectId obj, RequestId rid);
Message make_reduce_log(GroupId g, SeqNo upto, RequestId rid);

Message make_reply(Status s, RequestId rid);
Message make_deliver(GroupId g, const UpdateRecord& rec);

Message make_heartbeat(std::uint64_t epoch);
Message make_heartbeat_ack(std::uint64_t epoch);
Message make_server_list(std::uint64_t epoch, std::vector<NodeId> servers);
Message make_election_claim(NodeId candidate, std::uint64_t epoch);
Message make_election_vote(std::uint64_t epoch, bool accept);
Message make_coord_announce(NodeId coord, std::uint64_t epoch);

}  // namespace corona
