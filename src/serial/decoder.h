// Binary decoder: the reading half of serial/encoder.h.
//
// Every accessor is bounds-checked; a malformed buffer trips the `ok()` flag
// instead of reading out of range, and all subsequent reads return zeros.
// Callers check `ok()` once at the end of a record (monadic style keeps the
// decode functions flat).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace corona {

class Decoder {
 public:
  explicit Decoder(BytesView in) : in_(in) {}

  std::uint8_t get_u8() {
    if (!require(1)) return 0;
    return in_[pos_++];
  }
  bool get_bool() { return get_u8() != 0; }
  std::uint32_t get_u32() { return static_cast<std::uint32_t>(get_varint()); }
  std::uint64_t get_u64() { return get_varint(); }
  std::int64_t get_i64() {
    const std::uint64_t z = get_varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  Bytes get_bytes() {
    const std::uint64_t n = get_varint();
    if (!require(n)) return {};
    Bytes b(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
            in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  std::string get_string() {
    const std::uint64_t n = get_varint();
    if (!require(n)) return {};
    std::string s(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == in_.size(); }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  bool require(std::uint64_t n) {
    if (!ok_ || n > in_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (!require(1)) return 0;
      const std::uint8_t byte = in_[pos_++];
      if (shift >= 64) {  // overlong encoding
        ok_ = false;
        return 0;
      }
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  BytesView in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace corona
