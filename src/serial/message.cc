#include "serial/message.h"

#include "serial/decoder.h"
#include "serial/encoder.h"

namespace corona {

// Serializer kind list: the wire-name table below must cover every MsgType;
// the dispatch-exhaustiveness lint cross-checks role dispatch against it.
// lint-dispatch: MsgType
const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kInvalid: return "invalid";
    case MsgType::kCreateGroup: return "create-group";
    case MsgType::kDeleteGroup: return "delete-group";
    case MsgType::kJoin: return "join";
    case MsgType::kLeave: return "leave";
    case MsgType::kGetMembership: return "get-membership";
    case MsgType::kBcastState: return "bcast-state";
    case MsgType::kBcastUpdate: return "bcast-update";
    case MsgType::kLockRequest: return "lock-request";
    case MsgType::kLockRelease: return "lock-release";
    case MsgType::kReduceLog: return "reduce-log";
    case MsgType::kReply: return "reply";
    case MsgType::kJoinReply: return "join-reply";
    case MsgType::kMembershipInfo: return "membership-info";
    case MsgType::kMembershipNotice: return "membership-notice";
    case MsgType::kDeliver: return "deliver";
    case MsgType::kLockGrant: return "lock-grant";
    case MsgType::kLogReduced: return "log-reduced";
    case MsgType::kGroupDeleted: return "group-deleted";
    case MsgType::kServerHello: return "server-hello";
    case MsgType::kFwdMulticast: return "fwd-multicast";
    case MsgType::kSeqMulticast: return "seq-multicast";
    case MsgType::kGroupOp: return "group-op";
    case MsgType::kGroupOpResult: return "group-op-result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kHeartbeatAck: return "heartbeat-ack";
    case MsgType::kServerList: return "server-list";
    case MsgType::kElectionClaim: return "election-claim";
    case MsgType::kElectionVote: return "election-vote";
    case MsgType::kCoordAnnounce: return "coord-announce";
    case MsgType::kStateQuery: return "state-query";
    case MsgType::kStateReply: return "state-reply";
    case MsgType::kBackupAssign: return "backup-assign";
    case MsgType::kRetransmitReq: return "retransmit-req";
    case MsgType::kResendRequest: return "resend-request";
    case MsgType::kResendReply: return "resend-reply";
    case MsgType::kDigestRequest: return "digest-request";
    case MsgType::kDigestReply: return "digest-reply";
  }
  return "unknown";
}

namespace {

// Wire schema version; bump on incompatible change.
constexpr std::uint8_t kWireVersion = 1;

void encode_update(Encoder& e, const UpdateRecord& u) {
  e.put_u64(u.seq);
  e.put_u8(static_cast<std::uint8_t>(u.kind));
  e.put_u64(u.object.value);
  e.put_bytes(u.data);
  e.put_u64(u.sender.value);
  e.put_i64(u.timestamp);
  e.put_u64(u.request_id);
}

UpdateRecord decode_update(Decoder& d) {
  UpdateRecord u;
  u.seq = d.get_u64();
  u.kind = static_cast<PayloadKind>(d.get_u8());
  u.object = ObjectId(d.get_u64());
  u.data = d.get_bytes();
  u.sender = NodeId(d.get_u64());
  u.timestamp = d.get_i64();
  u.request_id = d.get_u64();
  return u;
}

}  // namespace

Bytes encode_update_record(const UpdateRecord& u) {
  Encoder e;
  encode_update(e, u);
  return e.take();
}

Result<UpdateRecord> decode_update_record(BytesView wire) {
  Decoder d(wire);
  UpdateRecord u = decode_update(d);
  if (!d.ok() || !d.at_end()) {
    return Status::error(Errc::kCorrupt, "bad update record");
  }
  return u;
}

Bytes encode_state_entry(const StateEntry& s) {
  Encoder e;
  e.put_u64(s.object.value);
  e.put_bytes(s.data);
  return e.take();
}

Result<StateEntry> decode_state_entry(BytesView wire) {
  Decoder d(wire);
  StateEntry s;
  s.object = ObjectId(d.get_u64());
  s.data = d.get_bytes();
  if (!d.ok() || !d.at_end()) {
    return Status::error(Errc::kCorrupt, "bad state entry");
  }
  return s;
}

Bytes Message::encode() const {
  Encoder e;
  e.put_u8(kWireVersion);
  e.put_u8(static_cast<std::uint8_t>(type));
  e.put_u8(static_cast<std::uint8_t>(fwd_type));
  e.put_u64(group.value);
  e.put_u64(object.value);
  e.put_u64(seq);
  e.put_u64(seq2);
  e.put_u64(sender.value);
  e.put_u64(origin_server.value);
  e.put_u64(epoch);
  e.put_u64(request_id);
  e.put_i64(timestamp);
  e.put_bool(sender_inclusive);
  e.put_bool(persistent);
  e.put_bool(accept);
  e.put_bool(notify_membership);
  e.put_u8(static_cast<std::uint8_t>(kind));
  e.put_u8(static_cast<std::uint8_t>(role));
  e.put_u8(static_cast<std::uint8_t>(status));
  e.put_string(text);
  e.put_bytes(payload);

  e.put_u32(static_cast<std::uint32_t>(state.size()));
  for (const StateEntry& s : state) {
    e.put_u64(s.object.value);
    e.put_bytes(s.data);
  }
  e.put_u32(static_cast<std::uint32_t>(updates.size()));
  for (const UpdateRecord& u : updates) encode_update(e, u);
  e.put_u32(static_cast<std::uint32_t>(members.size()));
  for (const MemberInfo& m : members) {
    e.put_u64(m.node.value);
    e.put_u8(static_cast<std::uint8_t>(m.role));
  }
  e.put_u32(static_cast<std::uint32_t>(nodes.size()));
  for (NodeId n : nodes) e.put_u64(n.value);
  e.put_u32(static_cast<std::uint32_t>(u64s.size()));
  for (std::uint64_t v : u64s) e.put_u64(v);

  e.put_u8(static_cast<std::uint8_t>(policy.mode));
  e.put_u32(policy.last_n);
  e.put_u32(static_cast<std::uint32_t>(policy.objects.size()));
  for (ObjectId o : policy.objects) e.put_u64(o.value);

  return e.take();
}

std::size_t Message::wire_size() const { return encode().size(); }

Result<Message> Message::decode(BytesView wire) {
  Decoder d(wire);
  const std::uint8_t version = d.get_u8();
  if (version != kWireVersion) {
    return Status::error(Errc::kCorrupt, "bad wire version");
  }
  Message m;
  m.type = static_cast<MsgType>(d.get_u8());
  m.fwd_type = static_cast<MsgType>(d.get_u8());
  m.group = GroupId(d.get_u64());
  m.object = ObjectId(d.get_u64());
  m.seq = d.get_u64();
  m.seq2 = d.get_u64();
  m.sender = NodeId(d.get_u64());
  m.origin_server = NodeId(d.get_u64());
  m.epoch = d.get_u64();
  m.request_id = d.get_u64();
  m.timestamp = d.get_i64();
  m.sender_inclusive = d.get_bool();
  m.persistent = d.get_bool();
  m.accept = d.get_bool();
  m.notify_membership = d.get_bool();
  m.kind = static_cast<PayloadKind>(d.get_u8());
  m.role = static_cast<MemberRole>(d.get_u8());
  m.status = static_cast<Errc>(d.get_u8());
  m.text = d.get_string();
  m.payload = d.get_bytes();

  const std::uint32_t n_state = d.get_u32();
  // Sanity bound: each entry takes >= 2 bytes on the wire.
  if (!d.ok() || n_state > d.remaining()) {
    return Status::error(Errc::kCorrupt, "bad state count");
  }
  m.state.reserve(n_state);
  for (std::uint32_t i = 0; i < n_state && d.ok(); ++i) {
    StateEntry s;
    s.object = ObjectId(d.get_u64());
    s.data = d.get_bytes();
    m.state.push_back(std::move(s));
  }

  const std::uint32_t n_updates = d.get_u32();
  if (!d.ok() || n_updates > d.remaining()) {
    return Status::error(Errc::kCorrupt, "bad update count");
  }
  m.updates.reserve(n_updates);
  for (std::uint32_t i = 0; i < n_updates && d.ok(); ++i) {
    m.updates.push_back(decode_update(d));
  }

  const std::uint32_t n_members = d.get_u32();
  if (!d.ok() || n_members > d.remaining()) {
    return Status::error(Errc::kCorrupt, "bad member count");
  }
  m.members.reserve(n_members);
  for (std::uint32_t i = 0; i < n_members && d.ok(); ++i) {
    MemberInfo mi;
    mi.node = NodeId(d.get_u64());
    mi.role = static_cast<MemberRole>(d.get_u8());
    m.members.push_back(mi);
  }

  const std::uint32_t n_nodes = d.get_u32();
  if (!d.ok() || n_nodes > d.remaining()) {
    return Status::error(Errc::kCorrupt, "bad node count");
  }
  m.nodes.reserve(n_nodes);
  for (std::uint32_t i = 0; i < n_nodes && d.ok(); ++i) {
    m.nodes.push_back(NodeId(d.get_u64()));
  }

  const std::uint32_t n_u64s = d.get_u32();
  if (!d.ok() || n_u64s > d.remaining()) {
    return Status::error(Errc::kCorrupt, "bad u64 count");
  }
  m.u64s.reserve(n_u64s);
  for (std::uint32_t i = 0; i < n_u64s && d.ok(); ++i) {
    m.u64s.push_back(d.get_u64());
  }

  m.policy.mode = static_cast<TransferMode>(d.get_u8());
  m.policy.last_n = d.get_u32();
  const std::uint32_t n_objs = d.get_u32();
  if (!d.ok() || n_objs > d.remaining() + 1) {
    // +1: the final object id may be the last byte of the buffer.
    return Status::error(Errc::kCorrupt, "bad policy object count");
  }
  m.policy.objects.reserve(n_objs);
  for (std::uint32_t i = 0; i < n_objs && d.ok(); ++i) {
    m.policy.objects.push_back(ObjectId(d.get_u64()));
  }

  if (!d.ok()) return Status::error(Errc::kCorrupt, "truncated message");
  if (!d.at_end()) return Status::error(Errc::kCorrupt, "trailing bytes");
  return m;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

Message make_create_group(GroupId g, std::string name, bool persistent,
                          std::vector<StateEntry> initial_state,
                          RequestId rid) {
  Message m;
  m.type = MsgType::kCreateGroup;
  m.group = g;
  m.text = std::move(name);
  m.persistent = persistent;
  m.state = std::move(initial_state);
  m.request_id = rid;
  return m;
}

Message make_delete_group(GroupId g, RequestId rid) {
  Message m;
  m.type = MsgType::kDeleteGroup;
  m.group = g;
  m.request_id = rid;
  return m;
}

Message make_join(GroupId g, TransferPolicySpec policy, MemberRole role,
                  bool notify_membership, RequestId rid) {
  Message m;
  m.type = MsgType::kJoin;
  m.group = g;
  m.policy = std::move(policy);
  m.role = role;
  m.notify_membership = notify_membership;
  m.request_id = rid;
  return m;
}

Message make_leave(GroupId g, RequestId rid) {
  Message m;
  m.type = MsgType::kLeave;
  m.group = g;
  m.request_id = rid;
  return m;
}

Message make_get_membership(GroupId g, RequestId rid) {
  Message m;
  m.type = MsgType::kGetMembership;
  m.group = g;
  m.request_id = rid;
  return m;
}

Message make_bcast(PayloadKind kind, GroupId g, ObjectId obj, Bytes payload,
                   bool sender_inclusive, RequestId rid) {
  Message m;
  m.type = kind == PayloadKind::kState ? MsgType::kBcastState
                                       : MsgType::kBcastUpdate;
  m.kind = kind;
  m.group = g;
  m.object = obj;
  m.payload = std::move(payload);
  m.sender_inclusive = sender_inclusive;
  m.request_id = rid;
  return m;
}

Message make_lock_request(GroupId g, ObjectId obj, RequestId rid) {
  Message m;
  m.type = MsgType::kLockRequest;
  m.group = g;
  m.object = obj;
  m.request_id = rid;
  return m;
}

Message make_lock_release(GroupId g, ObjectId obj, RequestId rid) {
  Message m;
  m.type = MsgType::kLockRelease;
  m.group = g;
  m.object = obj;
  m.request_id = rid;
  return m;
}

Message make_reduce_log(GroupId g, SeqNo upto, RequestId rid) {
  Message m;
  m.type = MsgType::kReduceLog;
  m.group = g;
  m.seq = upto;
  m.request_id = rid;
  return m;
}

Message make_reply(Status s, RequestId rid) {
  Message m;
  m.type = MsgType::kReply;
  m.status = s.code;
  m.text = std::move(s.detail);
  m.request_id = rid;
  return m;
}

Message make_deliver(GroupId g, const UpdateRecord& rec) {
  Message m;
  m.type = MsgType::kDeliver;
  m.group = g;
  m.seq = rec.seq;
  m.kind = rec.kind;
  m.object = rec.object;
  m.payload = rec.data;
  m.sender = rec.sender;
  m.timestamp = rec.timestamp;
  m.request_id = rec.request_id;
  return m;
}

Message make_heartbeat(std::uint64_t epoch) {
  Message m;
  m.type = MsgType::kHeartbeat;
  m.epoch = epoch;
  return m;
}

Message make_heartbeat_ack(std::uint64_t epoch) {
  Message m;
  m.type = MsgType::kHeartbeatAck;
  m.epoch = epoch;
  return m;
}

Message make_server_list(std::uint64_t epoch, std::vector<NodeId> servers) {
  Message m;
  m.type = MsgType::kServerList;
  m.epoch = epoch;
  m.nodes = std::move(servers);
  return m;
}

Message make_election_claim(NodeId candidate, std::uint64_t epoch) {
  Message m;
  m.type = MsgType::kElectionClaim;
  m.sender = candidate;
  m.epoch = epoch;
  return m;
}

Message make_election_vote(std::uint64_t epoch, bool accept) {
  Message m;
  m.type = MsgType::kElectionVote;
  m.epoch = epoch;
  m.accept = accept;
  return m;
}

Message make_coord_announce(NodeId coord, std::uint64_t epoch) {
  Message m;
  m.type = MsgType::kCoordAnnounce;
  m.sender = coord;
  m.epoch = epoch;
  return m;
}

}  // namespace corona
