// Binary encoder: appends primitive values to a growing byte buffer.
//
// Wire format conventions (shared with Decoder):
//   * u8           — one byte
//   * u32/u64/i64  — LEB128 varint (zigzag for signed)
//   * bytes/string — varint length prefix + raw bytes
// The format is self-delimiting per field but not self-describing; both ends
// share the schema in serial/message.h.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.h"

namespace corona {

class Encoder {
 public:
  Encoder() = default;

  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(std::uint32_t v) { put_varint(v); }
  void put_u64(std::uint64_t v) { put_varint(v); }
  // Zigzag-encoded signed 64-bit (timestamps may legitimately be negative
  // deltas in some records).
  void put_i64(std::int64_t v) {
    put_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
  }
  void put_bytes(BytesView b) {
    ensure(kMaxVarintBytes + b.size());
    put_varint(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void put_string(std::string_view s) {
    ensure(kMaxVarintBytes + s.size());
    put_varint(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }

  const Bytes& buffer() const { return out_; }
  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  static constexpr std::size_t kMaxVarintBytes = 10;  // 64 bits / 7, rounded

  // Grows capacity geometrically so a payload-sized append never lands on a
  // linear reallocation train.  An exact reserve(size+extra) per put would
  // defeat vector's doubling and turn N appends into O(N^2) copying; this
  // doubles (from a cacheline-ish floor) and only then clamps to the need.
  void ensure(std::size_t extra) {
    const std::size_t need = out_.size() + extra;
    if (need <= out_.capacity()) return;
    const std::size_t doubled = out_.capacity() ? out_.capacity() * 2 : 64;
    out_.reserve(doubled > need ? doubled : need);
  }

  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  Bytes out_;
};

}  // namespace corona
