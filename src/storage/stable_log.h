// Append-only stable log with explicit flush and fail-stop crash semantics.
//
// The paper logs every multicast "both in memory and on stable storage"
// (§3.2) and accepts that "in the case of a crash some of the latest updates
// ... have not been flushed to the disk and they are lost" (§6) — those are
// re-fetched from the original sender by sequence number.  This class gives
// exactly that contract: appended records are immediately visible to the
// live process, durable only after flush(), and crash() discards the
// unflushed tail the way power loss would.
//
// Storage is in-memory (the workload fits trivially in RAM); the *timing* of
// a real disk is modeled separately by sim::SimDisk so that logging cost and
// logging durability stay independently testable.  The real on-disk log with
// the same contract is storage/disk/disk_log.h.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/backend.h"
#include "util/bytes.h"

namespace corona {

class StableLog final : public LogBackend {
 public:
  // Appends a record; it is visible to the live process at once and durable
  // after the next flush().
  void append(Bytes record) override;

  // Makes every appended record durable.  Returns the number of records the
  // call committed — the size of the commit group.  A group commit (one
  // flush covering a whole batch of appends) pays the device's fixed per-op
  // cost once for all of them; callers forward the count to the disk model.
  std::size_t flush() override;

  // Fail-stop crash: the unflushed tail vanishes.  The live view becomes the
  // durable view (what a restarted process would recover).
  void crash() override;

  // Drops the first `n` records (log reduction / checkpointing).  Durable
  // and live views shrink together; reduction is applied atomically.
  void drop_prefix(std::size_t n) override;

  std::size_t size() const override { return records_.size(); }
  std::size_t durable_size() const override { return durable_count_; }
  std::size_t unflushed() const override {
    return records_.size() - durable_count_;
  }
  const Bytes& record(std::size_t i) const override { return records_.at(i); }

  std::uint64_t bytes_appended() const override { return bytes_appended_; }
  std::uint64_t bytes_flushed() const override { return bytes_flushed_; }
  // Bytes appended since the last flush (what the next flush would write).
  std::uint64_t pending_bytes() const override;

  // Group-commit accounting: flushes that committed at least one record,
  // total records those flushes covered, and the largest single commit group.
  std::uint64_t commits() const override { return commits_; }
  std::uint64_t records_flushed() const override { return records_flushed_; }
  std::size_t max_commit_records() const override {
    return max_commit_records_;
  }

 private:
  std::vector<Bytes> records_;
  std::size_t durable_count_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t bytes_flushed_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t records_flushed_ = 0;
  std::size_t max_commit_records_ = 0;
};

}  // namespace corona
