#include "storage/checkpoint_store.h"

#include <algorithm>

namespace corona {

void CheckpointStore::put(const std::string& key, Bytes blob) {
  staged_[key] = Staged{Op::kPut, std::move(blob)};
}

void CheckpointStore::erase(const std::string& key) {
  staged_[key] = Staged{Op::kErase, {}};
}

void CheckpointStore::flush() {
  for (auto& [key, staged] : staged_) {
    if (staged.op == Op::kPut) {
      bytes_committed_ += staged.blob.size();
      committed_[key] = std::move(staged.blob);
    } else {
      committed_.erase(key);
    }
  }
  staged_.clear();
}

void CheckpointStore::crash() { staged_.clear(); }

std::optional<Bytes> CheckpointStore::get(const std::string& key) const {
  if (auto it = staged_.find(key); it != staged_.end()) {
    if (it->second.op == Op::kErase) return std::nullopt;
    return it->second.blob;
  }
  if (auto it = committed_.find(key); it != committed_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<Bytes> CheckpointStore::get_durable(
    const std::string& key) const {
  if (auto it = committed_.find(key); it != committed_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::vector<std::string> CheckpointStore::durable_keys() const {
  std::vector<std::string> keys;
  keys.reserve(committed_.size());
  for (const auto& [key, _] : committed_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace corona
