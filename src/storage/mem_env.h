// The in-memory StorageEnv: StableLog + CheckpointStore behind the backend
// interfaces.  This is what a default-constructed GroupStore runs on — the
// sim's "stable storage in RAM, disk timing modeled separately" setup — and
// the reference model the durable backend is tested against.
#pragma once

#include <memory>

#include "storage/backend.h"
#include "storage/checkpoint_store.h"
#include "storage/stable_log.h"

namespace corona {

class MemStorageEnv final : public StorageEnv {
 public:
  std::unique_ptr<LogBackend> open_log(GroupId /*id*/) override {
    return std::make_unique<StableLog>();
  }
  // A StableLog's storage dies with the LogBackend object itself.
  void remove_log(GroupId /*id*/) override {}
  std::vector<GroupId> list_logs() const override { return {}; }

  CheckpointBackend& checkpoints() override { return checkpoints_; }
  const CheckpointBackend& checkpoints() const override {
    return checkpoints_;
  }

 private:
  CheckpointStore checkpoints_;
};

}  // namespace corona
