// Durable keyed checkpoint store implementing the CheckpointStore contract
// (storage/backend.h) against real files.
//
// One file per key under <data>/ckpt/, named <hex(key)>.ckpt so any key byte
// is filename-safe.  put()/erase() stage in memory; flush() commits each
// staged put with an atomic replace (temp + fsync + rename + dir fsync) and
// each staged erase with unlink + dir fsync — so a crash mid-flush leaves
// every key either at its old checkpoint or its new one, never torn.
//
// Opening validates every file (disk_format.h): bad magic/CRC, or a file
// whose embedded key does not match its name (a spliced copy), is deleted
// whole — a checkpoint has no salvageable prefix.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "storage/backend.h"
#include "storage/disk/disk_io.h"
#include "util/bytes.h"

namespace corona::disk {

class DiskCheckpointStore final : public CheckpointBackend {
 public:
  // Opens (creating if absent) the store rooted at `dir` and loads every
  // valid checkpoint.  `counters` (owned by the DiskEnv) must outlive this.
  CORONA_BLOCKING DiskCheckpointStore(std::string dir, DiskCounters* counters);

  void put(const std::string& key, Bytes blob) override;
  void erase(const std::string& key) override;

  CORONA_BLOCKING void flush() override;
  void crash() override;

  std::optional<Bytes> get(const std::string& key) const override;
  std::optional<Bytes> get_durable(const std::string& key) const override;
  std::vector<std::string> durable_keys() const override;

  std::uint64_t bytes_committed() const override { return bytes_committed_; }

 private:
  enum class Op { kPut, kErase };
  struct Staged {
    Op op;
    Bytes blob;
  };

  std::string key_path(const std::string& key) const;
  CORONA_BLOCKING void load();

  std::string dir_;
  DiskCounters* counters_;
  // Ordered so durable_keys() comes back sorted without a copy-and-sort.
  std::map<std::string, Bytes> committed_;  // mirrors the on-disk files
  std::map<std::string, Staged> staged_;
  std::uint64_t bytes_committed_ = 0;
};

}  // namespace corona::disk
