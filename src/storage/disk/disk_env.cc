#include "storage/disk/disk_env.h"

#include <cstdlib>

#include "storage/disk/disk_log.h"

namespace corona::disk {

DiskEnv::DiskEnv(DiskEnvConfig config)
    : config_(std::move(config)),
      checkpoints_(config_.dir + "/ckpt", &counters_) {
  ensure_dir(config_.dir + "/groups");
}

std::string DiskEnv::group_dir(GroupId id) const {
  return config_.dir + "/groups/" + std::to_string(id.value);
}

std::unique_ptr<LogBackend> DiskEnv::open_log(GroupId id) {
  return std::make_unique<DiskLog>(group_dir(id), config_.segment_bytes,
                                   &counters_);
}

void DiskEnv::remove_log(GroupId id) {
  remove_tree(group_dir(id));
  sync_dir(config_.dir + "/groups", &counters_);
}

std::vector<GroupId> DiskEnv::list_logs() const {
  std::vector<GroupId> ids;
  for (const std::string& name : list_dirs(config_.dir + "/groups")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(name.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || name.empty()) continue;
    ids.push_back(GroupId(v));
  }
  return ids;
}

}  // namespace corona::disk
