#include "storage/disk/disk_checkpoint.h"

#include "storage/disk/disk_format.h"

namespace corona::disk {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string hex_encode(const std::string& key) {
  std::string out;
  out.reserve(key.size() * 2);
  for (const char c : key) {
    const auto b = static_cast<std::uint8_t>(c);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

}  // namespace

DiskCheckpointStore::DiskCheckpointStore(std::string dir,
                                         DiskCounters* counters)
    : dir_(std::move(dir)), counters_(counters) {
  ensure_dir(dir_);
  load();
}

std::string DiskCheckpointStore::key_path(const std::string& key) const {
  return dir_ + "/" + hex_encode(key) + ".ckpt";
}

void DiskCheckpointStore::load() {
  bool removed = false;
  for (const std::string& name : list_files(dir_)) {
    const std::string path = dir_ + "/" + name;
    if (name.ends_with(".tmp")) {  // interrupted atomic replace
      remove_file(path);
      removed = true;
      continue;
    }
    if (!name.ends_with(".ckpt")) continue;
    const auto buf = read_file(path);
    std::optional<CheckpointFile> file;
    if (buf) file = decode_checkpoint_file(*buf);
    if (!file || hex_encode(file->key) + ".ckpt" != name) {
      remove_file(path);
      removed = true;
      ++counters_->corrupt_files_dropped;
      continue;
    }
    committed_[file->key] = file->blob;
  }
  // Make the unlinks durable, matching flush()'s erase path.
  if (removed) sync_dir(dir_, counters_);
}

void DiskCheckpointStore::put(const std::string& key, Bytes blob) {
  staged_[key] = Staged{Op::kPut, std::move(blob)};
}

void DiskCheckpointStore::erase(const std::string& key) {
  staged_[key] = Staged{Op::kErase, {}};
}

void DiskCheckpointStore::flush() {
  bool erased = false;
  for (auto& [key, staged] : staged_) {
    if (staged.op == Op::kPut) {
      atomic_write_file(key_path(key),
                        encode_checkpoint_file(key, staged.blob), counters_);
      ++counters_->checkpoints_written;
      counters_->checkpoint_bytes += staged.blob.size();
      bytes_committed_ += staged.blob.size();
      committed_[key] = std::move(staged.blob);
    } else {
      remove_file(key_path(key));
      committed_.erase(key);
      erased = true;
    }
  }
  if (erased) sync_dir(dir_, counters_);
  staged_.clear();
}

void DiskCheckpointStore::crash() { staged_.clear(); }

std::optional<Bytes> DiskCheckpointStore::get(const std::string& key) const {
  if (auto it = staged_.find(key); it != staged_.end()) {
    if (it->second.op == Op::kErase) return std::nullopt;
    return it->second.blob;
  }
  return get_durable(key);
}

std::optional<Bytes> DiskCheckpointStore::get_durable(
    const std::string& key) const {
  if (auto it = committed_.find(key); it != committed_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::vector<std::string> DiskCheckpointStore::durable_keys() const {
  std::vector<std::string> keys;
  keys.reserve(committed_.size());
  for (const auto& [key, _] : committed_) keys.push_back(key);
  return keys;
}

}  // namespace corona::disk
