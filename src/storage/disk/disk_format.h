// On-disk byte formats for the durable backend (docs/STORAGE.md).
//
// Everything here is pure buffer-level encode/decode — no file descriptors —
// so the exact same code path that recovery trusts is also what the
// deterministic corruption harness (tests/storage_fuzz_test.cc) and the
// libFuzzer entry (fuzz/storage_fuzz.cc) hammer in memory.
//
// Log segment file:
//   [segment header][record][record]...
//   header: "CSG1" magic (4) | base_index u64le (8) | crc32c(magic+base) (4)
//   record: payload_len u32le (4) | crc32c(payload) (4) | payload
//
// Recovery is strict truncation-on-corruption, mirroring FrameDecoder's
// teardown idiom: a scan accepts records until the first invalid one (bad
// length, short tail, CRC mismatch) and declares everything from that byte
// offset on dead.  A torn tail can only remove records, never resurrect or
// alter one — the CRC covers the payload and the length bounds it.
//
// Checkpoint file:
//   "CCK1" magic (4) | crc32c(key_len|key|blob) (4) |
//   key_len u32le (4) | key | blob
// Written to a temp name, fsynced, then renamed over the previous file, so
// a checkpoint is either the old bytes or the new bytes, never a mix; any
// file failing validation is discarded whole.
//
// Log meta file ("log.meta", atomically replaced on drop_prefix):
//   "CLM1" magic (4) | start_index u64le (8) | crc32c(start_index) (4)
// Records the logical index of the first live record, so restart does not
// resurrect a checkpoint-covered prefix that still shares a segment with
// live records.  A missing or corrupt meta file degrades to start 0: old
// records may reappear, and the layer above (GroupStore::recover) filters
// them by sequence number against the checkpoint base.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace corona::disk {

// Sanity ceiling on a single record's payload; a garbage length prefix must
// not make recovery buffer gigabytes before noticing (same rationale as
// net::kDefaultMaxFrameBytes).
constexpr std::size_t kMaxRecordBytes = 64 * 1024 * 1024;

constexpr std::size_t kSegmentHeaderBytes = 16;  // magic + base + crc
constexpr std::size_t kRecordHeaderBytes = 8;    // len + crc
constexpr std::size_t kMetaFileBytes = 16;       // magic + start + crc

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

// Appends a segment header for a segment whose first record has logical
// index `base_index`.
void append_segment_header(Bytes& out, std::uint64_t base_index);

// Appends one length-prefixed, checksummed record.
void append_record(Bytes& out, BytesView payload);

// Encoded size of a record with `payload_bytes` of payload.
inline std::size_t record_size_on_disk(std::size_t payload_bytes) {
  return kRecordHeaderBytes + payload_bytes;
}

// Result of scanning one segment buffer.
struct SegmentScan {
  bool header_ok = false;        // magic/CRC of the header validated
  std::uint64_t base_index = 0;  // logical index of records[0]
  std::vector<Bytes> records;    // the longest valid record prefix
  // Byte offset of the first invalid byte — the truncation point.  Equals
  // the buffer size when the whole segment is clean.
  std::size_t valid_bytes = 0;
  bool truncated = false;  // the scan stopped before the end of the buffer
};

// Scans a whole segment buffer (header + records), stopping at the first
// corruption.  Never throws, never reads out of bounds, linear time.
SegmentScan scan_segment(BytesView buf);

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

Bytes encode_checkpoint_file(const std::string& key, BytesView blob);

struct CheckpointFile {
  std::string key;
  Bytes blob;
};

// Decodes and validates a checkpoint file; nullopt if anything — magic,
// CRC, lengths — fails, in which case the file is discarded whole (a rename
// either completed or it did not; there is no partial-checkpoint state to
// salvage).
std::optional<CheckpointFile> decode_checkpoint_file(BytesView buf);

// ---------------------------------------------------------------------------
// Log meta file
// ---------------------------------------------------------------------------

Bytes encode_log_meta(std::uint64_t start_index);
// nullopt on any validation failure; callers degrade to start 0.
std::optional<std::uint64_t> decode_log_meta(BytesView buf);

}  // namespace corona::disk
