// The durable StorageEnv: one data directory holding everything a server
// needs to survive kill -9.
//
// Layout:
//   <dir>/ckpt/                 checkpoint files (DiskCheckpointStore)
//   <dir>/groups/<group-id>/    one segmented log per group (DiskLog)
//
// Construction opens (creating if absent) the directory tree and loads every
// valid checkpoint; logs load lazily as GroupStore opens them.  Reopening a
// DiskEnv on the same directory after a crash and constructing a GroupStore
// over it is the entire recovery story — CoronaServer::recover_from_store()
// then replays what GroupStore::recover() hands back.
//
// All backends of one env share one DiskCounters block, surfaced by stats().
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "storage/backend.h"
#include "storage/disk/disk_checkpoint.h"
#include "storage/disk/disk_io.h"

namespace corona::disk {

struct DiskEnvConfig {
  std::string dir;
  // Segment rotation threshold; a segment takes its last record when it
  // crosses this size, so files stay near it rather than exactly under it.
  std::size_t segment_bytes = 1u << 20;
};

class DiskEnv final : public StorageEnv {
 public:
  CORONA_BLOCKING explicit DiskEnv(DiskEnvConfig config);

  CORONA_BLOCKING std::unique_ptr<LogBackend> open_log(GroupId id) override;
  CORONA_BLOCKING void remove_log(GroupId id) override;
  CORONA_BLOCKING std::vector<GroupId> list_logs() const override;

  CheckpointBackend& checkpoints() override { return checkpoints_; }
  const CheckpointBackend& checkpoints() const override {
    return checkpoints_;
  }

  const std::string& dir() const { return config_.dir; }
  const DiskCounters& stats() const { return counters_; }

 private:
  std::string group_dir(GroupId id) const;

  DiskEnvConfig config_;
  DiskCounters counters_;
  DiskCheckpointStore checkpoints_;
};

}  // namespace corona::disk
